"""Analogies: transplanting a branch's delta onto another version."""

import pytest

from repro.provenance.analogy import apply_analogy, branch_actions
from repro.provenance.vistrail import Vistrail
from repro.util.errors import ProvenanceError
from repro.workflow.module import Module, ParameterSpec
from repro.workflow.ports import PortSpec
from repro.workflow.registry import ModuleRegistry


class Reader(Module):
    name = "Reader"
    output_ports = (PortSpec("out", "data"),)
    parameters = (ParameterSpec("path", ""),)

    def compute(self, inputs):
        return {"out": self.parameter_values["path"]}


class View(Module):
    name = "View"
    input_ports = (PortSpec("in", "data", optional=True),)
    output_ports = (PortSpec("out", "data"),)
    parameters = (ParameterSpec("colormap", "default"), ParameterSpec("level", 0.5))

    def compute(self, inputs):
        return {"out": self.parameter_values["colormap"]}


@pytest.fixture()
def registry():
    reg = ModuleRegistry()
    reg.register("t", Reader)
    reg.register("t", View)
    return reg


def build_two_workflows(registry):
    """One vistrail holding two sibling workflows (branches from root)."""
    vt = Vistrail("analogy", registry)
    # workflow A: reader + view
    reader_a = vt.add_module("Reader", {"path": "a.nc"})
    view_a = vt.add_module("View")
    vt.add_connection(reader_a, "out", view_a, "in")
    vt.tag("A-base")
    a_base = vt.current_version
    # refine A: the delta we will transplant
    vt.set_parameter(view_a, "colormap", "jet")
    vt.set_parameter(view_a, "level", 0.85)
    vt.tag("A-refined")
    a_refined = vt.current_version
    # workflow B: an independent branch from root with its own modules
    vt.checkout(0)
    reader_b = vt.add_module("Reader", {"path": "b.nc"})
    view_b = vt.add_module("View")
    vt.add_connection(reader_b, "out", view_b, "in")
    vt.tag("B-base")
    return vt, a_base, a_refined, vt.current_version, view_b


class TestBranchActions:
    def test_delta_extracted_in_order(self, registry):
        vt, a_base, a_refined, _b, _ = build_two_workflows(registry)
        delta = branch_actions(vt, a_base, a_refined)
        assert len(delta) == 2
        assert delta[0].describe().startswith("set")

    def test_non_ancestor_rejected(self, registry):
        vt, a_base, a_refined, b_base, _ = build_two_workflows(registry)
        with pytest.raises(ProvenanceError, match="ancestor"):
            branch_actions(vt, b_base, a_refined)


class TestApplyAnalogy:
    def test_transplants_parameter_changes(self, registry):
        vt, a_base, a_refined, b_base, view_b = build_two_workflows(registry)
        report = apply_analogy(vt, a_base, a_refined, b_base)
        assert report.fully_applied
        assert len(report.applied) == 2
        # B's view module now carries A's refinements
        assert vt.pipeline.modules[view_b].parameters["colormap"] == "jet"
        assert vt.pipeline.modules[view_b].parameters["level"] == 0.85
        # B's own reader is untouched
        readers = vt.pipeline.modules_of_type("Reader")
        assert vt.pipeline.modules[readers[0]].parameters["path"] == "b.nc"

    def test_analogy_recorded_as_new_versions(self, registry):
        vt, a_base, a_refined, b_base, _ = build_two_workflows(registry)
        before = len(vt.tree)
        report = apply_analogy(vt, a_base, a_refined, b_base)
        assert len(vt.tree) == before + 2
        assert report.new_version == vt.current_version
        assert report.new_version != b_base

    def test_added_module_gets_fresh_id(self, registry):
        vt = Vistrail("x", registry)
        base = vt.current_version
        overlay = vt.add_module("View", {"colormap": "extra"})
        refined = vt.current_version
        vt.checkout(base)
        other = vt.add_module("Reader")
        destination = vt.current_version
        report = apply_analogy(vt, base, refined, destination)
        assert any("add module" in line for line in report.applied)
        views = vt.pipeline.modules_of_type("View")
        assert len(views) == 1
        assert views[0] != overlay  # a fresh id, not the original

    def test_inapplicable_action_skipped_not_fatal(self, registry):
        vt = Vistrail("x", registry)
        # delta edits a View that the destination does not have
        view = vt.add_module("View")
        base_with_view = vt.current_version
        vt.set_parameter(view, "colormap", "jet")
        refined = vt.current_version
        vt.checkout(0)
        vt.add_module("Reader")
        destination = vt.current_version
        report = apply_analogy(vt, base_with_view, refined, destination)
        assert not report.fully_applied
        assert report.skipped
        assert "colormap" in report.skipped[0][0]

    def test_ambiguous_target_type_uses_original_id_if_valid(self, registry):
        # destination has TWO View modules → type-mapping is ambiguous;
        # the action falls back to the original id, which doesn't exist
        # there, so it is skipped (best-effort, reported)
        vt = Vistrail("x", registry)
        view = vt.add_module("View")
        base = vt.current_version
        vt.set_parameter(view, "level", 0.9)
        refined = vt.current_version
        vt.checkout(0)
        v1 = vt.add_module("View")
        v2 = vt.add_module("View")
        destination = vt.current_version
        report = apply_analogy(vt, base, refined, destination)
        # either applied to the same-id module (if ids coincide) or skipped;
        # never raises, and the report accounts for the action
        assert len(report.applied) + len(report.skipped) == 1
