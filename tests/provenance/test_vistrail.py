"""The vistrail controller: transparent capture, branching, persistence."""

import pytest

from repro.provenance.query import diff_versions, find_versions_by_tag, version_history
from repro.provenance.vistrail import Vistrail
from repro.util.errors import ProvenanceError
from repro.workflow.module import Module, ParameterSpec
from repro.workflow.ports import PortSpec
from repro.workflow.registry import ModuleRegistry


class Stage(Module):
    name = "Stage"
    input_ports = (PortSpec("in", optional=True),)
    output_ports = (PortSpec("out"),)
    parameters = (ParameterSpec("level", 0),)

    def compute(self, inputs):
        return {"out": self.parameter_values["level"]}


@pytest.fixture()
def registry():
    reg = ModuleRegistry()
    reg.register("t", Stage)
    return reg


@pytest.fixture()
def vistrail(registry):
    return Vistrail("exploration", registry)


class TestCapture:
    def test_every_edit_creates_a_version(self, vistrail):
        a = vistrail.add_module("Stage")
        b = vistrail.add_module("Stage")
        vistrail.add_connection(a, "out", b, "in")
        vistrail.set_parameter(a, "level", 3)
        # root + 4 edits
        assert len(vistrail.tree) == 5
        assert vistrail.current_version == 4

    def test_pipeline_mirrors_edits(self, vistrail):
        a = vistrail.add_module("Stage", {"level": 1})
        assert vistrail.pipeline.modules[a].parameters["level"] == 1
        vistrail.set_parameter(a, "level", 2)
        assert vistrail.pipeline.modules[a].parameters["level"] == 2

    def test_delete_module_records_connection_deletions(self, vistrail):
        a = vistrail.add_module("Stage")
        b = vistrail.add_module("Stage")
        vistrail.add_connection(a, "out", b, "in")
        before = vistrail.current_version
        vistrail.delete_module(a)
        # one DeleteConnection + one DeleteModule
        assert vistrail.current_version == before + 2
        # the resulting version replays cleanly
        replayed = vistrail.tree.materialize(vistrail.current_version, vistrail.registry)
        assert list(replayed.modules) == [b]


class TestNavigation:
    def test_checkout_restores_old_state(self, vistrail):
        a = vistrail.add_module("Stage", {"level": 1})
        v_before = vistrail.current_version
        vistrail.set_parameter(a, "level", 99)
        vistrail.checkout(v_before)
        assert vistrail.pipeline.modules[a].parameters["level"] == 1

    def test_branching_preserves_both_lines(self, vistrail):
        a = vistrail.add_module("Stage")
        fork = vistrail.current_version
        vistrail.set_parameter(a, "level", 1)
        branch_one = vistrail.current_version
        vistrail.checkout(fork)
        vistrail.set_parameter(a, "level", 2)
        branch_two = vistrail.current_version
        assert vistrail.tree.materialize(branch_one, vistrail.registry).modules[a].parameters["level"] == 1
        assert vistrail.tree.materialize(branch_two, vistrail.registry).modules[a].parameters["level"] == 2
        assert set(vistrail.tree.children(fork)) == {branch_one, branch_two}

    def test_new_modules_after_checkout_do_not_collide(self, vistrail):
        a = vistrail.add_module("Stage")
        v1 = vistrail.current_version
        b = vistrail.add_module("Stage")
        vistrail.checkout(v1)
        c = vistrail.add_module("Stage")
        assert c not in (a, b)

    def test_checkout_tag(self, vistrail):
        vistrail.add_module("Stage")
        vistrail.tag("setup")
        vistrail.add_module("Stage")
        vistrail.checkout_tag("setup")
        assert len(vistrail.pipeline.modules) == 1


class TestPersistence:
    def test_save_load_roundtrip(self, vistrail, registry, tmp_path):
        a = vistrail.add_module("Stage", {"level": 4})
        vistrail.tag("final")
        path = tmp_path / "trail.json"
        vistrail.save(path)
        loaded = Vistrail.load(path, registry)
        assert loaded.name == "exploration"
        assert loaded.current_version == vistrail.current_version
        assert loaded.pipeline.modules[a].parameters["level"] == 4
        assert loaded.tree.version_by_tag("final") == vistrail.current_version

    def test_load_corrupt_file(self, registry, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ProvenanceError):
            Vistrail.load(path, registry)

    def test_loaded_vistrail_continues_editing(self, vistrail, registry, tmp_path):
        vistrail.add_module("Stage")
        path = tmp_path / "t.json"
        vistrail.save(path)
        loaded = Vistrail.load(path, registry)
        new_module = loaded.add_module("Stage")
        assert new_module == 1  # continues the id sequence


class TestQueries:
    def test_version_history(self, vistrail):
        a = vistrail.add_module("Stage")
        vistrail.set_parameter(a, "level", 5)
        history = version_history(vistrail, vistrail.current_version)
        assert len(history) == 2
        assert "add module" in history[0]
        assert "level" in history[1]

    def test_find_versions_by_tag(self, vistrail):
        vistrail.add_module("Stage")
        vistrail.tag("one")
        vistrail.add_module("Stage")
        vistrail.tag("two")
        tags = find_versions_by_tag(vistrail)
        assert set(tags) >= {"one", "two"}
        assert tags["two"] > tags["one"]

    def test_diff_versions(self, vistrail):
        a = vistrail.add_module("Stage")
        fork = vistrail.current_version
        vistrail.set_parameter(a, "level", 1)
        v_one = vistrail.current_version
        vistrail.checkout(fork)
        vistrail.set_parameter(a, "level", 2)
        v_two = vistrail.current_version
        diff = diff_versions(vistrail.tree, v_one, v_two)
        assert diff["common_ancestor"] == [f"version {fork}"]
        assert len(diff["only_a"]) == 1 and len(diff["only_b"]) == 1
        assert "1" in diff["only_a"][0] and "2" in diff["only_b"][0]

    def test_find_versions_by_module(self, vistrail):
        from repro.provenance.query import find_versions_by_module

        vistrail.add_module("Stage")
        vistrail.add_module("Stage")
        hits = find_versions_by_module(vistrail, "Stage")
        assert len(hits) == 2
