"""The execution log: recording, querying, persistence."""

import pytest

from repro.provenance.log import ExecutionLog, LogEntry
from repro.util.errors import ProvenanceError
from repro.workflow.executor import ExecutionResult, ModuleRun


def fake_result(statuses=("ok", "ok"), wall=0.5):
    return ExecutionResult(
        outputs={},
        runs=[ModuleRun(i, f"m{i}", s, 0.1) for i, s in enumerate(statuses)],
        cache_hits=sum(1 for s in statuses if s == "cached"),
        cache_misses=sum(1 for s in statuses if s != "cached"),
        wall_time=wall,
    )


class TestRecording:
    def test_record_basic(self):
        log = ExecutionLog()
        entry = log.record("trail", 3, fake_result(), sheet="main")
        assert len(log) == 1
        assert entry.version == 3
        assert entry.annotations["sheet"] == "main"
        assert entry.ok

    def test_failed_run_not_ok(self):
        log = ExecutionLog()
        entry = log.record("trail", 1, fake_result(statuses=("ok", "error")))
        assert not entry.ok

    def test_for_version_filters(self):
        log = ExecutionLog()
        log.record("a", 1, fake_result())
        log.record("a", 2, fake_result())
        log.record("b", 1, fake_result())
        assert len(log.for_version("a", 1)) == 1
        assert len(log.for_version("a", 9)) == 0

    def test_total_module_time(self):
        log = ExecutionLog()
        log.record("a", 1, fake_result(statuses=("ok", "ok", "ok")))
        assert log.total_module_time() == pytest.approx(0.3)
        assert log.total_module_time("m0") == pytest.approx(0.1)


class TestPersistence:
    def test_save_load(self, tmp_path):
        log = ExecutionLog()
        log.record("trail", 2, fake_result(), note="hi")
        path = tmp_path / "log.json"
        log.save(path)
        loaded = ExecutionLog.load(path)
        assert len(loaded) == 1
        assert loaded.entries[0].annotations["note"] == "hi"
        assert loaded.entries[0].module_runs[0]["module_name"] == "m0"

    def test_malformed_entry(self):
        with pytest.raises(ProvenanceError):
            LogEntry.from_dict({"vistrail_name": "x"})
