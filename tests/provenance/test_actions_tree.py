"""Change actions and the version tree: replay, branching, ancestry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.provenance.actions import (
    AddConnection,
    AddModule,
    DeleteConnection,
    DeleteModule,
    SetParameter,
    action_from_dict,
)
from repro.provenance.version_tree import ROOT_VERSION, VersionTree
from repro.util.errors import ProvenanceError
from repro.workflow.module import Module, ParameterSpec
from repro.workflow.pipeline import Pipeline
from repro.workflow.ports import PortSpec
from repro.workflow.registry import ModuleRegistry


class Node(Module):
    name = "Node"
    input_ports = (PortSpec("in", optional=True),)
    output_ports = (PortSpec("out"),)
    parameters = (ParameterSpec("x", 0),)

    def compute(self, inputs):
        return {"out": self.parameter_values["x"]}


@pytest.fixture()
def registry():
    reg = ModuleRegistry()
    reg.register("t", Node)
    return reg


class TestActions:
    def test_roundtrip_all_kinds(self):
        actions = [
            AddModule(0, "t:Node", {"x": 3}),
            DeleteModule(0),
            AddConnection(0, 1, "out", 2, "in"),
            DeleteConnection(0),
            SetParameter(1, "x", [1, 2]),
        ]
        for action in actions:
            restored = action_from_dict(action.to_dict())
            assert restored == action

    def test_unknown_kind(self):
        with pytest.raises(ProvenanceError):
            action_from_dict({"kind": "Teleport"})

    def test_malformed_payload(self):
        with pytest.raises(ProvenanceError):
            action_from_dict({"kind": "AddModule", "module_id": 1})

    def test_non_json_value_rejected(self):
        with pytest.raises(ProvenanceError):
            SetParameter(0, "x", object())

    def test_apply_add_module(self, registry):
        pipeline = Pipeline(registry)
        AddModule(5, "t:Node", {"x": 9}).apply(pipeline)
        assert pipeline.modules[5].parameters["x"] == 9

    def test_describe_is_readable(self):
        assert "Node" in AddModule(0, "t:Node", {}).describe()
        assert "=" in SetParameter(0, "x", 1).describe()


class TestVersionTree:
    def test_root_exists(self):
        tree = VersionTree()
        assert ROOT_VERSION in tree
        assert len(tree) == 1

    def test_add_action_creates_child(self):
        tree = VersionTree()
        v1 = tree.add_action(ROOT_VERSION, AddModule(0, "t:Node", {}))
        assert tree.node(v1).parent == ROOT_VERSION
        assert tree.children(ROOT_VERSION) == [v1]

    def test_branching(self):
        tree = VersionTree()
        v1 = tree.add_action(ROOT_VERSION, AddModule(0, "t:Node", {}))
        v2a = tree.add_action(v1, SetParameter(0, "x", 1))
        v2b = tree.add_action(v1, SetParameter(0, "x", 2))
        assert set(tree.children(v1)) == {v2a, v2b}
        assert tree.branch_points() == [v1]
        assert set(tree.leaves()) == {v2a, v2b}

    def test_materialize_replays_actions(self, registry):
        tree = VersionTree()
        v1 = tree.add_action(ROOT_VERSION, AddModule(0, "t:Node", {"x": 1}))
        v2 = tree.add_action(v1, SetParameter(0, "x", 7))
        pipeline = tree.materialize(v2, registry)
        assert pipeline.modules[0].parameters["x"] == 7
        # the parent version still materializes to the older state
        older = tree.materialize(v1, registry)
        assert older.modules[0].parameters["x"] == 1

    def test_materialize_bad_replay_attributed(self, registry):
        tree = VersionTree()
        v1 = tree.add_action(ROOT_VERSION, DeleteModule(99))  # invalid from root
        with pytest.raises(ProvenanceError, match="replaying"):
            tree.materialize(v1, registry)

    def test_common_ancestor(self):
        tree = VersionTree()
        v1 = tree.add_action(ROOT_VERSION, AddModule(0, "t:Node", {}))
        v2a = tree.add_action(v1, SetParameter(0, "x", 1))
        v2b = tree.add_action(v1, SetParameter(0, "x", 2))
        v3a = tree.add_action(v2a, SetParameter(0, "x", 3))
        assert tree.common_ancestor(v3a, v2b) == v1
        assert tree.common_ancestor(v3a, v2a) == v2a
        assert tree.common_ancestor(v1, v1) == v1

    def test_tags_unique(self):
        tree = VersionTree()
        v1 = tree.add_action(ROOT_VERSION, AddModule(0, "t:Node", {}))
        v2 = tree.add_action(v1, SetParameter(0, "x", 1))
        tree.tag(v1, "good")
        tree.tag(v2, "good")  # moves the tag
        assert tree.version_by_tag("good") == v2
        with pytest.raises(ProvenanceError):
            tree.version_by_tag("absent")

    def test_unknown_version(self):
        tree = VersionTree()
        with pytest.raises(ProvenanceError):
            tree.node(42)

    def test_serialization_roundtrip(self, registry):
        tree = VersionTree()
        v1 = tree.add_action(ROOT_VERSION, AddModule(0, "t:Node", {"x": 5}))
        v2 = tree.add_action(v1, SetParameter(0, "x", 6))
        tree.add_action(v1, SetParameter(0, "x", 7))  # branch
        tree.tag(v2, "chosen")
        restored = VersionTree.from_dict(tree.to_dict())
        assert len(restored) == len(tree)
        assert restored.version_by_tag("chosen") == v2
        assert restored.materialize(v2, registry).modules[0].parameters["x"] == 6
        # growth continues without id collisions
        v_new = restored.add_action(v2, SetParameter(0, "x", 8))
        assert v_new not in (v1, v2)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=12))
    def test_path_to_root_always_terminates(self, parent_choices):
        """Random tree growth: every node's root path ends at ROOT."""
        tree = VersionTree()
        versions = [ROOT_VERSION]
        for i, choice in enumerate(parent_choices):
            parent = versions[choice % len(versions)]
            versions.append(tree.add_action(parent, SetParameter(0, "x", i)))
        for version in versions:
            path = tree.path_to_root(version)
            assert path[-1] == ROOT_VERSION
            assert len(set(path)) == len(path)  # no cycles
