"""The 2-D baseline plotting toolkit."""

import numpy as np
import pytest

from repro.cdat import zonal_mean
from repro.plots2d import (
    Chart2D,
    contour_plot,
    histogram_plot,
    line_plot,
    pseudocolor_plot,
    scatter_plot,
)
from repro.util.errors import RenderingError


class TestChart2D:
    def test_transform_corners(self):
        chart = Chart2D(200, 150, x_range=(0, 10), y_range=(0, 5))
        x0, y0, x1, y1 = chart.plot_box
        px, py = chart.to_pixel(np.array([0.0, 10.0]), np.array([0.0, 5.0]))
        assert px[0] == pytest.approx(x0)
        assert px[1] == pytest.approx(x1)
        assert py[0] == pytest.approx(y1)  # y grows upward in data space
        assert py[1] == pytest.approx(y0)

    def test_degenerate_range_rejected(self):
        with pytest.raises(RenderingError):
            Chart2D(x_range=(1.0, 1.0))

    def test_too_small_rejected(self):
        with pytest.raises(RenderingError):
            Chart2D(width=40, height=30)

    def test_polyline_draws_inside_box(self):
        chart = Chart2D(200, 150, x_range=(0, 1), y_range=(0, 1),
                        background=(0, 0, 0))
        chart.polyline([0.0, 1.0], [0.0, 1.0], color=(1, 0, 0))
        x0, y0, x1, y1 = chart.plot_box
        red = chart.fb.color[..., 0]
        assert red.max() == 1.0
        # nothing outside the plot box
        assert red[: y0, :].max() == 0.0
        assert red[:, : x0].max() == 0.0

    def test_nan_breaks_polyline(self):
        chart = Chart2D(200, 150, x_range=(0, 1), y_range=(0, 1),
                        background=(0, 0, 0))
        # two short segments with a NaN gap between them
        chart.polyline([0.0, 0.2, np.nan, 0.8, 1.0],
                       [0.5, 0.5, np.nan, 0.5, 0.5], color=(1, 1, 1))
        row = chart.fb.color[..., 0].max(axis=0)
        lit = np.nonzero(row > 0)[0]
        assert lit.size > 0
        # a gap exists: the lit columns are not one contiguous run
        assert (np.diff(lit) > 1).any()

    def test_axes_add_frame_and_labels(self):
        chart = Chart2D(200, 150, x_range=(0, 10), y_range=(0, 5),
                        title="T", x_label="X", background=(0, 0, 0))
        chart.draw_axes()
        img = chart.to_uint8()
        assert img.max() > 100  # frame/labels drew something bright

    def test_filled_columns_validation(self):
        chart = Chart2D(200, 150, x_range=(0, 3), y_range=(0, 5))
        with pytest.raises(RenderingError):
            chart.filled_columns([0, 1], [1, 2])


class TestLinePlot:
    def test_time_series(self, ta):
        from repro.cdat import area_average

        series = area_average(ta(level=500).squeeze())
        chart = line_plot(series, title="TA 500")
        img = chart.to_uint8()
        assert img.shape == (300, 400, 3)

    def test_multiple_series_colors(self, ta):
        from repro.cdat import area_average

        s1 = area_average(ta(level=1000.0).squeeze())
        s2 = area_average(ta(level=100.0).squeeze())
        chart = line_plot(s1, s2)
        img = chart.to_uint8().astype(int)
        # two distinct line colors present
        bright = img[img.sum(axis=2) > 250]
        assert len(np.unique(bright, axis=0)) >= 2

    def test_plain_array(self):
        chart = line_plot(np.sin(np.linspace(0, 6, 50)))
        assert chart.to_uint8().shape == (300, 400, 3)

    def test_needs_1d(self, ta):
        with pytest.raises(RenderingError):
            line_plot(ta)

    def test_no_series(self):
        with pytest.raises(RenderingError):
            line_plot()


class TestScatter:
    def test_correlated_fields(self, reanalysis):
        a = reanalysis("ta")(level=500).squeeze()
        chart = scatter_plot(a, a * 2.0 + 1.0)
        assert chart.to_uint8().shape == (300, 400, 3)

    def test_shape_mismatch(self, reanalysis):
        with pytest.raises(RenderingError):
            scatter_plot(reanalysis("ta"), reanalysis("ta")(latitude=(-30, 30)))

    def test_thinning_large_inputs(self, reanalysis):
        a = reanalysis("ta")
        chart = scatter_plot(a, a, max_points=100)
        assert chart.to_uint8().shape == (300, 400, 3)


class TestHistogram:
    def test_counts_rendered(self, ta):
        chart = histogram_plot(ta, bins=15)
        img = chart.to_uint8()
        assert (img[..., 2] > 150).sum() > 100  # blue bars present

    def test_bad_bins(self, ta):
        with pytest.raises(RenderingError):
            histogram_plot(ta, bins=0)

    def test_masked_excluded(self, simple_variable):
        chart = histogram_plot(simple_variable)
        assert chart.to_uint8().shape == (300, 400, 3)


class TestFieldPlots:
    def test_contour_plot(self, ta):
        field = ta(level=500.0)[0].squeeze()
        chart = contour_plot(field, n_levels=6)
        img = chart.to_uint8()
        # contour strokes appear inside the plot box
        x0, y0, x1, y1 = chart.plot_box
        interior = img[y0 + 1 : y1, x0 + 1 : x1]
        assert (interior.max(axis=2) > 150).sum() > 50

    def test_contour_requires_2d_gridded(self, ta):
        with pytest.raises(RenderingError):
            contour_plot(ta)  # 4-D

    def test_pseudocolor_plot(self, ta):
        field = ta(level=500.0)[0].squeeze()
        chart = pseudocolor_plot(field, colormap="jet")
        img = chart.to_uint8()
        x0, y0, x1, y1 = chart.plot_box
        interior = img[y0 + 2 : y1 - 1, x0 + 2 : x1 - 1]
        # a filled field: essentially every interior pixel colored
        assert (interior.sum(axis=2) > 30).mean() > 0.95

    def test_pseudocolor_orientation(self, ta):
        """North (high latitude) must land at the top of the image."""
        field = ta(level=1000.0)[0].squeeze()
        chart = pseudocolor_plot(field, colormap="grayscale")
        img = chart.to_uint8().astype(float)
        x0, y0, x1, y1 = chart.plot_box
        top_band = img[y0 + 2 : y0 + 10, x0 + 2 : x1 - 1].mean()
        mid_band = img[(y0 + y1) // 2 - 4 : (y0 + y1) // 2 + 4, x0 + 2 : x1 - 1].mean()
        # surface temperature: equator (mid) brighter than pole (top)
        assert mid_band > top_band

    def test_zonal_mean_profile_plot(self, ta):
        """The classic zonal-mean line plot via the same toolkit."""
        profile = zonal_mean(ta(level=500.0)[0].squeeze())
        chart = line_plot(profile, title="zonal mean")
        assert chart.to_uint8().shape == (300, 400, 3)
