"""DV3D cells (labels/basemap/colorbar/pick), interaction, animation."""

import numpy as np
import pytest

from repro.dv3d.animation import Animator
from repro.dv3d.basemap import basemap_polydata, coastline_segments
from repro.dv3d.cell import DV3DCell
from repro.dv3d.interaction import handle_drag, handle_key
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.volume import VolumePlot
from repro.util.errors import DV3DError


@pytest.fixture()
def slicer_cell(ta):
    return DV3DCell(SlicerPlot(ta), dataset_label="REANALYSIS")


class TestCell:
    def test_render_with_furnishings(self, slicer_cell):
        fb = slicer_cell.render(96, 72)
        assert fb.color.shape == (72, 96, 3)

    def test_labels_add_pixels(self, ta):
        bare = DV3DCell(SlicerPlot(ta), show_labels=False, show_colorbar=False,
                        show_basemap=False)
        dressed = DV3DCell(SlicerPlot(ta), show_labels=True, show_colorbar=True,
                           show_basemap=False)
        img_bare = bare.render(96, 72).to_uint8()
        img_dressed = dressed.render(96, 72).to_uint8()
        assert not np.array_equal(img_bare, img_dressed)

    def test_basemap_draws_coastlines(self, ta):
        with_map = DV3DCell(SlicerPlot(ta), show_basemap=True, show_labels=False,
                            show_colorbar=False)
        without = DV3DCell(SlicerPlot(ta), show_basemap=False, show_labels=False,
                           show_colorbar=False)
        assert not np.array_equal(
            with_map.render(96, 72).to_uint8(), without.render(96, 72).to_uint8()
        )

    def test_pick_display(self, slicer_cell):
        center = slicer_cell.plot.volume.center()
        result = slicer_cell.pick(center)
        assert slicer_cell.last_pick == result
        text = slicer_cell._pick_text()
        assert "PICK" in text

    def test_inactive_cell_ignores_events(self, slicer_cell):
        slicer_cell.deactivate()
        assert slicer_cell.handle_event("key", key="c") == {}
        slicer_cell.activate()
        assert slicer_cell.handle_event("key", key="c") != {}

    def test_configure_event(self, slicer_cell):
        slicer_cell.handle_event("configure", state={"plot": {"time_index": 2}})
        assert slicer_cell.plot.time_index == 2

    def test_unknown_event(self, slicer_cell):
        with pytest.raises(DV3DError):
            slicer_cell.handle_event("teleport")

    def test_state_roundtrip(self, slicer_cell):
        slicer_cell.plot.step_time()
        state = slicer_cell.state()
        other = DV3DCell(SlicerPlot(slicer_cell.plot.variable))
        other.apply_state(state)
        assert other.state() == state


class TestInteraction:
    def test_key_c_cycles_colormap(self, ta):
        plot = SlicerPlot(ta)
        before = plot.colormap.name
        delta = handle_key(plot, "c")
        assert delta["colormap"]["name"] != before

    def test_key_t_steps_time(self, ta):
        plot = SlicerPlot(ta)
        assert handle_key(plot, "t") == {"time_index": 1}
        assert handle_key(plot, "T") == {"time_index": 0}

    def test_key_r_resets_camera(self, ta):
        plot = SlicerPlot(ta)
        plot.camera = plot.default_camera().orbit(90, 0)
        delta = handle_key(plot, "r")
        assert "camera" in delta

    def test_key_toggles_planes(self, ta):
        plot = SlicerPlot(ta, enabled_planes=("x", "y", "z"))
        delta = handle_key(plot, "x")
        assert delta["toggled"] == {"x": False}

    def test_unbound_key(self, ta):
        with pytest.raises(DV3DError):
            handle_key(SlicerPlot(ta), "q")

    def test_mode_key_only_on_vector(self, ta):
        with pytest.raises(DV3DError):
            handle_key(SlicerPlot(ta), "m")

    def test_drag_camera_orbits(self, ta):
        plot = SlicerPlot(ta)
        delta = handle_drag(plot, 0.25, 0.0, "camera")
        assert plot.camera is not None
        assert "camera" in delta

    def test_drag_zoom(self, ta):
        plot = SlicerPlot(ta)
        base = plot.default_camera()
        plot.camera = base
        handle_drag(plot, 0.0, 1.0, "zoom")  # factor 2
        assert plot.camera.distance == pytest.approx(base.distance / 2)

    def test_drag_leveling_on_volume(self, ta):
        plot = VolumePlot(ta, center=0.5, width=0.2)
        delta = handle_drag(plot, 0.1, 0.0, "leveling")
        assert delta["tf_center"] == pytest.approx(0.6)

    def test_drag_leveling_rejected_on_slicer(self, ta):
        with pytest.raises(DV3DError):
            handle_drag(SlicerPlot(ta), 0.1, 0.0, "leveling")

    def test_drag_slice_mode(self, ta):
        plot = SlicerPlot(ta)
        delta = handle_drag(plot, 0.0, 0.25, "slice:z")
        assert delta["plane_positions"]["z"] == pytest.approx(0.5)

    def test_unknown_mode(self, ta):
        with pytest.raises(DV3DError):
            handle_drag(SlicerPlot(ta), 0, 0, "warp")


class TestAnimator:
    def test_frames_cover_time_axis(self, ta):
        plot = SlicerPlot(ta, enabled_planes=("z",))
        frames = Animator(plot).render_frames(width=32, height=24)
        assert len(frames) == 4
        assert frames[0].shape == (24, 32, 3)
        # successive frames differ (the data changes with time)
        assert not np.array_equal(frames[0], frames[1])

    def test_time_index_restored(self, ta):
        plot = SlicerPlot(ta)
        plot.set_time_index(2)
        Animator(plot).render_frames(width=16, height=12, count=2)
        assert plot.time_index == 2

    def test_stride_and_count(self, ta):
        plot = SlicerPlot(ta, enabled_planes=("z",))
        frames = Animator(plot).render_frames(width=16, height=12, count=2, stride=2)
        assert len(frames) == 2

    def test_save_frames(self, ta, tmp_path):
        plot = SlicerPlot(ta, enabled_planes=("z",))
        paths = Animator(plot).save_frames(tmp_path, width=16, height=12, count=2)
        assert len(paths) == 2
        assert all(p.exists() for p in paths)

    def test_camera_fixed_across_frames(self, ta):
        plot = SlicerPlot(ta, enabled_planes=("z",))
        animator = Animator(plot)
        frames = animator.render_frames(width=24, height=18)
        # frame border columns (background + frame box) are stable
        np.testing.assert_array_equal(frames[0][:, 0], frames[1][:, 0])

    def test_cell_animation_includes_labels(self, slicer_cell):
        frames = Animator(slicer_cell).render_frames(width=48, height=36, count=2)
        assert len(frames) == 2


class TestBasemap:
    def test_global_coastlines_nonempty(self):
        segments = coastline_segments()
        assert len(segments) >= 6
        for seg in segments:
            assert seg.shape[1] == 2

    def test_regional_clipping(self):
        pacific = coastline_segments((120.0, 180.0), (5.0, 45.0))
        for seg in pacific:
            assert seg[:, 0].min() >= 120.0 and seg[:, 0].max() <= 180.0
            assert seg[:, 1].min() >= 5.0 and seg[:, 1].max() <= 45.0

    def test_empty_window(self):
        assert coastline_segments((10.0, 11.0), (-1.0, 0.0)) == []

    def test_polydata_below_volume(self, ta):
        from repro.dv3d.translation import translate_variable

        bounds = translate_variable(ta).bounds()
        poly = basemap_polydata(bounds)
        assert poly.n_points > 0
        assert poly.points[:, 2].max() < bounds[4]
