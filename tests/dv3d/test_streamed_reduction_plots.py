"""End-to-end: DV3D plots of reduction outputs computed out of core.

The analysis data plane feeds the visualization plane: a reduction of a
streamed ``.cdz`` variable (never materialized whole) must render — as
a Hovmöller slicer and as a volume plot — byte-identically to the same
reduction of the eagerly loaded twin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cdat.climatology import anomalies
from repro.cdat.filters import detrend
from repro.cdms.dataset import open_dataset
from repro.cdms.storage import write_cdz
from repro.data import catalog
from repro.dv3d import HovmollerSlicerPlot, VolumePlot

SIZE = dict(nlat=16, nlon=24, nlev=4, ntime=8)


@pytest.fixture(scope="module")
def container(tmp_path_factory):
    path = tmp_path_factory.mktemp("redplot") / "reanalysis.cdz"
    ds = catalog.synthetic_reanalysis(**SIZE, seed="reduction-plots")
    write_cdz(path, [ds("ta")], dataset_id="redplot", version=2,
              chunk_timesteps=2)
    return path


def reduce_both(path, reduction):
    """The reduction on the eager and on the streamed variable; the
    streamed run must never trip the whole-array escape hatch."""
    eager = open_dataset(path, streaming="off").get_variable("ta")
    expected = reduction(eager)
    obs.set_recorder(obs.Recorder())
    obs.enable()
    try:
        with open_dataset(path, streaming="on") as ds:
            streamed = reduction(ds.get_variable("ta"))
        full = obs.get_recorder().counter_total("streaming.materialize.full")
    finally:
        obs.disable()
        obs.set_recorder(obs.Recorder())
    assert full == 0
    return expected, streamed


@pytest.mark.parametrize(
    "reduction", [anomalies, lambda v: detrend(v, axis="time")],
    ids=["anomalies", "detrend"],
)
def test_hovmoller_of_streamed_reduction_matches_eager(container, reduction):
    expected, streamed = reduce_both(container, reduction)
    frame_e = HovmollerSlicerPlot(expected).render(width=160, height=120)
    frame_s = HovmollerSlicerPlot(streamed).render(width=160, height=120)
    np.testing.assert_array_equal(frame_e.color, frame_s.color)


def test_volume_plot_of_streamed_reduction_matches_eager(container):
    expected, streamed = reduce_both(container, anomalies)
    frame_e = VolumePlot(expected).render(width=160, height=120)
    frame_s = VolumePlot(streamed).render(width=160, height=120)
    np.testing.assert_array_equal(frame_e.color, frame_s.color)
