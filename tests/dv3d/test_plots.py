"""The DV3D plot types: construction, interaction ops, state, rendering."""

import numpy as np
import pytest

from repro.dv3d.hovmoller import HovmollerSlicerPlot, HovmollerVolumePlot
from repro.dv3d.isosurface import IsosurfacePlot
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.vector_slicer import VectorSlicerPlot
from repro.dv3d.volume import VolumePlot
from repro.util.errors import DV3DError


class TestPlotBase:
    def test_scalar_range_covers_all_time(self, ta):
        plot = SlicerPlot(ta)
        lo, hi = plot.scalar_range
        assert lo <= float(ta.min()) + 1e-5
        assert hi >= float(ta.max()) - 1e-5

    def test_animation_steps_and_wraps(self, ta):
        plot = SlicerPlot(ta)
        assert plot.n_timesteps == 4
        assert plot.step_time(+1) == 1
        plot.set_time_index(3)
        assert plot.step_time(+1) == 0
        assert plot.step_time(-1) == 3

    def test_time_step_rebuilds_volume(self, ta):
        plot = SlicerPlot(ta)
        v0 = plot.volume
        plot.step_time()
        assert plot.volume is not v0

    def test_colormap_cycle_and_invert(self, ta):
        plot = SlicerPlot(ta)
        original = plot.colormap.name
        new_name = plot.cycle_colormap()
        assert new_name != original
        assert plot.invert_colormap() is True

    def test_pick_returns_value_and_coords(self, ta):
        plot = SlicerPlot(ta)
        center = plot.volume.center()
        result = plot.pick(center)
        assert np.isfinite(result["value"])
        assert result["longitude"] == pytest.approx(center[0])

    def test_pick_ray_hits_volume(self, ta):
        plot = SlicerPlot(ta)
        result = plot.pick_ray(20, 15, 40, 30)
        assert result is not None
        assert np.isfinite(result["value"])

    def test_pick_ray_corner_misses(self, ta):
        plot = SlicerPlot(ta)
        result = plot.pick_ray(0, 0, 100, 100)
        assert result is None or np.isfinite(result["value"])

    def test_state_roundtrip_via_apply(self, ta):
        plot = SlicerPlot(ta)
        plot.step_time()
        plot.cycle_colormap()
        plot.camera = plot.default_camera().orbit(30, 10)
        other = SlicerPlot(ta)
        other.apply_state(plot.state())
        assert other.state() == plot.state()

    def test_bad_scalar_range(self, ta):
        plot = SlicerPlot(ta)
        with pytest.raises(DV3DError):
            plot.set_scalar_range(5.0, 5.0)


class TestSlicer:
    def test_render_covers_pixels(self, ta):
        fb = SlicerPlot(ta).render(64, 48)
        assert fb.coverage() > 0.02

    def test_drag_slice_clamps(self, ta):
        plot = SlicerPlot(ta)
        assert plot.drag_slice("z", +2.0) == 1.0
        assert plot.drag_slice("z", -5.0) == 0.0

    def test_drag_changes_rendered_slice(self, ta):
        plot = SlicerPlot(ta, enabled_planes=("z",))
        img_a = plot.render(48, 36).to_uint8()
        plot.drag_slice("z", 0.5)
        img_b = plot.render(48, 36).to_uint8()
        assert not np.array_equal(img_a, img_b)

    def test_toggle_plane(self, ta):
        plot = SlicerPlot(ta, enabled_planes=("x", "y"))
        assert plot.toggle_plane("x") is False
        assert plot.enabled_planes == ("y",)
        assert plot.toggle_plane("z") is True
        assert "z" in plot.enabled_planes

    def test_unknown_plane(self, ta):
        with pytest.raises(DV3DError):
            SlicerPlot(ta).drag_slice("w", 0.1)

    def test_probe_on_plane(self, ta):
        plot = SlicerPlot(ta)
        result = plot.probe("z", 0.5, 0.5)
        assert np.isfinite(result["value"])

    def test_contour_overlay_adds_actor(self, reanalysis):
        plain = SlicerPlot(reanalysis("ta"), enabled_planes=("z",))
        overlaid = SlicerPlot(
            reanalysis("ta"), overlay_variable=reanalysis("zg"), enabled_planes=("z",)
        )
        assert len(overlaid.build_scene().actors) > len(plain.build_scene().actors)

    def test_scene_contains_frame(self, ta):
        scene = SlicerPlot(ta).build_scene()
        assert any(a.name == "frame" for a in scene.actors)


class TestVolume:
    def test_leveling_moves_window(self, ta):
        plot = VolumePlot(ta, center=0.5, width=0.2)
        delta = plot.level(0.1, 0.0)
        assert delta["center"] == pytest.approx(0.6)

    def test_leveling_changes_render(self, ta):
        plot = VolumePlot(ta, center=0.7, width=0.3)
        img_a = plot.render(32, 24).to_uint8()
        plot.level(-0.5, 1.5)
        img_b = plot.render(32, 24).to_uint8()
        assert not np.array_equal(img_a, img_b)

    def test_colormap_cycle_updates_transfer(self, ta):
        plot = VolumePlot(ta)
        plot.cycle_colormap()
        assert plot.transfer.colormap.name == plot.colormap.name

    def test_state_roundtrip(self, ta):
        plot = VolumePlot(ta)
        plot.level(0.12, 0.5)
        other = VolumePlot(ta)
        other.apply_state(plot.state())
        assert other.transfer.center == pytest.approx(plot.transfer.center)
        assert other.transfer.width == pytest.approx(plot.transfer.width)

    def test_scene_has_volume_actor(self, ta):
        scene = VolumePlot(ta).build_scene()
        assert len(scene.volume_actors) == 1


class TestIsosurface:
    def test_default_isovalue_mid_range(self, storm):
        plot = IsosurfacePlot(storm("wspd"))
        lo, hi = plot.scalar_range
        assert plot.isovalue == pytest.approx((lo + hi) / 2)

    def test_extract_surface_nonempty(self, storm):
        # the storm peaks mid-track; at t=2 the field exceeds the
        # (whole-series) mid-range default isovalue
        plot = IsosurfacePlot(storm("wspd"))
        plot.set_time_index(2)
        surface = plot.extract_surface()
        assert surface.n_triangles > 0

    def test_adjust_isovalue_changes_surface(self, storm):
        plot = IsosurfacePlot(storm("wspd"))
        plot.set_time_index(2)
        area_mid = plot.extract_surface().surface_area()
        plot.adjust_isovalue(+0.2)
        area_high = plot.extract_surface().surface_area()
        assert area_high != pytest.approx(area_mid)

    def test_isovalue_clamped(self, storm):
        plot = IsosurfacePlot(storm("wspd"))
        lo, hi = plot.scalar_range
        assert plot.set_isovalue(hi + 100) == hi

    def test_colored_by_second_variable(self, storm):
        plot = IsosurfacePlot(storm("wspd"), color_variable=storm("tcore"))
        plot.set_time_index(2)
        surface = plot.extract_surface()
        assert surface.colors is not None
        # colors vary across the surface (tcore is not constant there)
        assert np.ptp(surface.colors, axis=0).max() > 0.01

    def test_render(self, storm):
        fb = IsosurfacePlot(storm("wspd")).render(48, 36)
        assert fb.coverage() > 0.01


class TestHovmoller:
    def test_slicer_defaults_to_latitude_plane(self, waves):
        plot = HovmollerSlicerPlot(waves("olr_anom"))
        assert plot.enabled_planes == ("y",)

    def test_no_animation_axis(self, waves):
        plot = HovmollerSlicerPlot(waves("olr_anom"))
        assert plot.n_timesteps == 1

    def test_diagram_shape(self, waves):
        plot = HovmollerSlicerPlot(waves("olr_anom"))
        values, lons, times = plot.diagram(latitude=0.0)
        assert values.shape == (48, 40)  # (lon, time)
        assert lons.shape == (48,)

    def test_diagram_shows_propagation(self, waves):
        plot = HovmollerSlicerPlot(waves("olr_anom"))
        values, _, _ = plot.diagram(0.0)
        # crest longitude at t=0 vs later: phase moves
        c0 = int(np.argmax(values[:, 0]))
        c5 = int(np.argmax(values[:, 10]))
        assert c0 != c5

    def test_requires_time_axis(self, reanalysis):
        static = reanalysis("ta")[0].squeeze()
        with pytest.raises(DV3DError):
            HovmollerSlicerPlot(static)

    def test_volume_variant_renders(self, waves):
        plot = HovmollerVolumePlot(waves("olr_anom"), center=0.8, width=0.3)
        fb = plot.render(32, 24)
        assert fb.color.shape == (24, 32, 3)


class TestVectorSlicer:
    def test_glyph_mode_builds_lines(self, reanalysis):
        plot = VectorSlicerPlot(reanalysis("ua"), reanalysis("va"), glyph_stride=6)
        geometry = plot._field_geometry()
        assert len(geometry.lines) > 0

    def test_streamline_mode(self, reanalysis):
        plot = VectorSlicerPlot(
            reanalysis("ua"), reanalysis("va"), mode="streamlines", seed_density=4
        )
        geometry = plot._field_geometry()
        assert geometry.n_points > 0

    def test_toggle_mode(self, reanalysis):
        plot = VectorSlicerPlot(reanalysis("ua"), reanalysis("va"))
        assert plot.toggle_mode() == "streamlines"
        assert plot.toggle_mode() == "glyphs"

    def test_bad_mode(self, reanalysis):
        with pytest.raises(DV3DError):
            VectorSlicerPlot(reanalysis("ua"), reanalysis("va"), mode="arrows")

    def test_drag_slice(self, reanalysis):
        plot = VectorSlicerPlot(reanalysis("ua"), reanalysis("va"))
        assert plot.drag_slice(0.3) == pytest.approx(0.8)

    def test_pick_vector(self, reanalysis):
        plot = VectorSlicerPlot(reanalysis("ua"), reanalysis("va"))
        result = plot.pick_vector(plot.volume.center())
        assert result["speed"] == pytest.approx(
            np.hypot(result["u"], result["v"]), rel=1e-6
        )

    def test_render(self, reanalysis):
        fb = VectorSlicerPlot(reanalysis("ua"), reanalysis("va"), glyph_stride=8).render(40, 30)
        assert fb.coverage() > 0.0

    def test_state_includes_mode(self, reanalysis):
        plot = VectorSlicerPlot(reanalysis("ua"), reanalysis("va"))
        state = plot.state()
        assert state["mode"] == "glyphs"
        plot2 = VectorSlicerPlot(reanalysis("ua"), reanalysis("va"), mode="streamlines")
        plot2.apply_state(state)
        assert plot2.mode == "glyphs"
