"""The CDMS→volume translation stage."""

import numpy as np
import pytest

from repro.cdms.axis import level_axis, time_axis
from repro.cdms.variable import Variable
from repro.dv3d.translation import (
    add_variable_to_volume,
    translate_hovmoller,
    translate_variable,
    translate_vector_field,
)
from repro.util.errors import DV3DError


class TestTranslateVariable:
    def test_dimensions_xyz_order(self, ta):
        volume = translate_variable(ta, time_index=0)
        # (lon, lat, lev) = (24, 16, 5)
        assert volume.dimensions == (24, 16, 5)

    def test_world_x_is_longitude(self, ta):
        volume = translate_variable(ta)
        lon = ta.get_longitude().values
        np.testing.assert_allclose(volume.axis_coordinates(0), lon, atol=1e-9)

    def test_z_increases_with_altitude(self, ta):
        volume = translate_variable(ta)
        # surface (1000 hPa) at z=0; top of the data at max z
        assert volume.origin[2] == pytest.approx(0.0, abs=1e-9)
        assert volume.bounds()[5] > 0

    def test_vertical_span_proportioned(self, ta):
        volume = translate_variable(ta)
        bounds = volume.bounds()
        lon_span = bounds[1] - bounds[0]
        z_span = bounds[5] - bounds[4]
        assert 0.2 * lon_span < z_span < 0.6 * lon_span

    def test_explicit_vertical_exaggeration(self, ta):
        v1 = translate_variable(ta, vertical_exaggeration=1.0)
        v2 = translate_variable(ta, vertical_exaggeration=2.0)
        assert v2.bounds()[5] == pytest.approx(2 * v1.bounds()[5])

    def test_time_index_selects_step(self, ta):
        v0 = translate_variable(ta, time_index=0)
        v1 = translate_variable(ta, time_index=1)
        assert not np.array_equal(v0.scalars, v1.scalars)

    def test_time_index_out_of_range(self, ta):
        with pytest.raises(DV3DError):
            translate_variable(ta, time_index=99)

    def test_scalars_named_after_variable(self, ta):
        volume = translate_variable(ta)
        assert volume.active_scalars_name == "ta"

    def test_data_values_match_source_at_level_endpoints(self, ta):
        # interior levels are resampled onto a uniform height grid, but
        # the bottom and top levels are grid-exact
        volume = translate_variable(ta, time_index=0)
        source = ta[0].squeeze().reorder(["longitude", "latitude", "level"])
        src = source.filled(np.nan).astype(np.float32)
        np.testing.assert_allclose(volume.scalars[..., 0], src[..., 0], rtol=1e-5)
        np.testing.assert_allclose(volume.scalars[..., -1], src[..., -1], rtol=1e-5)
        # interior values stay within the source column's range (linear resample)
        assert volume.scalars.min() >= src.min() - 1e-3
        assert volume.scalars.max() <= src.max() + 1e-3

    def test_masked_becomes_nan(self, simple_variable):
        volume = translate_variable(simple_variable, time_index=0)
        assert np.isnan(volume.scalars).sum() >= 1

    def test_2d_variable_gets_unit_depth(self, ta):
        surface = ta(level=1000.0)[0].squeeze()
        volume = translate_variable(surface)
        assert volume.dimensions[2] == 1

    def test_requires_lat_lon(self):
        var = Variable(np.zeros((3, 2)), (time_axis([0.0, 1.0, 2.0]), level_axis([1000.0, 500.0])))
        with pytest.raises(DV3DError):
            translate_variable(var)

    def test_nonuniform_levels_resampled_monotone(self, ta):
        volume = translate_variable(ta)
        z = volume.axis_coordinates(2)
        assert np.all(np.diff(z) > 0)
        assert np.allclose(np.diff(z), np.diff(z)[0])  # uniform


class TestSecondVariable:
    def test_attach_second_field(self, reanalysis):
        volume = translate_variable(reanalysis("ta"), time_index=0)
        add_variable_to_volume(volume, reanalysis("zg"), time_index=0)
        assert volume.has_array("zg")
        assert volume.active_scalars_name == "ta"

    def test_shape_mismatch_rejected(self, reanalysis, ta):
        volume = translate_variable(ta, time_index=0)
        with pytest.raises(DV3DError):
            add_variable_to_volume(volume, ta(latitude=(-30, 30)), time_index=0)


class TestHovmoller:
    def test_time_is_z_axis(self, waves):
        volume = translate_hovmoller(waves("olr_anom"))
        # (lon, lat, time) = (48, 12, 40)
        assert volume.dimensions == (48, 12, 40)

    def test_requires_time_axis(self, reanalysis):
        static = reanalysis("ta")[0].squeeze()
        with pytest.raises(DV3DError):
            translate_hovmoller(static)

    def test_level_reduced(self, ta):
        volume = translate_hovmoller(ta, level_index=2)
        assert volume.dimensions == (24, 16, 4)

    def test_vertical_fraction(self, waves):
        volume = translate_hovmoller(waves("olr_anom"), vertical_fraction=1.0)
        bounds = volume.bounds()
        assert bounds[5] - bounds[4] == pytest.approx(bounds[1] - bounds[0], rel=0.05)

    def test_time_ordering_preserved(self, waves):
        wave = waves("olr_anom")
        volume = translate_hovmoller(wave)
        source = wave.reorder(["longitude", "latitude", "time"]).filled(np.nan)
        np.testing.assert_allclose(volume.scalars, source.astype(np.float32), rtol=1e-5)


class TestVectorField:
    def test_vector_array_built(self, reanalysis):
        volume = translate_vector_field(reanalysis("ua"), reanalysis("va"))
        assert volume.get_array("vectors").shape == (24, 16, 5, 3)
        assert volume.active_scalars_name == "speed"

    def test_speed_magnitude(self, reanalysis):
        volume = translate_vector_field(reanalysis("ua"), reanalysis("va"))
        vec = volume.get_array("vectors")
        speed = volume.get_array("speed")
        np.testing.assert_allclose(
            speed, np.sqrt((vec**2).sum(axis=-1)), rtol=1e-5
        )

    def test_w_component_defaults_zero(self, reanalysis):
        volume = translate_vector_field(reanalysis("ua"), reanalysis("va"))
        np.testing.assert_allclose(volume.get_array("vectors")[..., 2], 0.0)

    def test_shape_mismatch(self, reanalysis):
        with pytest.raises(DV3DError):
            translate_vector_field(
                reanalysis("ua"), reanalysis("va")(latitude=(-30, 30))
            )
