"""The cdms/cdat/dv3d workflow-module packages (§III.G chains)."""

import numpy as np
import pytest

from repro.util.errors import ModuleExecutionError
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline

SIZE = {"nlat": 12, "nlon": 16, "nlev": 4, "ntime": 2}


@pytest.fixture()
def executor():
    return Executor(caching=False)


def reader_chain(pipeline, variable="ta", selector=None):
    reader = pipeline.add_module(
        "CDMSDatasetReader", {"source": "synthetic_reanalysis", "size": SIZE}
    )
    var = pipeline.add_module(
        "CDMSVariableReader",
        {"variable": variable, "selector": selector or {}},
    )
    pipeline.add_connection(reader, "dataset", var, "dataset")
    return reader, var


class TestCDMSModules:
    def test_dataset_reader_synthetic(self, registry, executor):
        p = Pipeline(registry)
        reader = p.add_module(
            "CDMSDatasetReader", {"source": "storm_case_study",
                                  "size": {"nlat": 8, "nlon": 8, "nlev": 3, "ntime": 2}}
        )
        ds = executor.execute(p).output(reader, "dataset")
        assert "wspd" in ds

    def test_dataset_reader_cdz_path(self, registry, executor, tmp_path, storm):
        path = tmp_path / "s.cdz"
        storm.save(path)
        p = Pipeline(registry)
        reader = p.add_module("CDMSDatasetReader", {"source": str(path)})
        ds = executor.execute(p).output(reader, "dataset")
        assert set(ds.variable_ids) == {"tcore", "wspd"}

    def test_dataset_reader_unknown_source(self, registry, executor):
        p = Pipeline(registry)
        p.add_module("CDMSDatasetReader", {"source": "marsnet"})
        with pytest.raises(ModuleExecutionError):
            executor.execute(p)

    def test_variable_reader_with_selector(self, registry, executor):
        p = Pipeline(registry)
        _, var = reader_chain(p, "ta", selector={"latitude": [-30, 30], "level": 500})
        result = executor.execute(p).output(var, "variable")
        assert result.get_latitude().values.max() <= 30
        assert len(result.get_level()) == 1

    def test_variable_reader_requires_name(self, registry, executor):
        p = Pipeline(registry)
        reader = p.add_module("CDMSDatasetReader", {"source": "synthetic_reanalysis", "size": SIZE})
        var = p.add_module("CDMSVariableReader")
        p.add_connection(reader, "dataset", var, "dataset")
        with pytest.raises(ModuleExecutionError):
            executor.execute(p)

    def test_regrid_module(self, registry, executor):
        p = Pipeline(registry)
        _, var = reader_chain(p)
        regrid = p.add_module("CDMSRegrid", {"nlat": 6, "nlon": 8, "method": "conservative"})
        p.add_connection(var, "variable", regrid, "variable")
        out = executor.execute(p).output(regrid, "variable")
        assert out.get_grid().shape == (6, 8)


class TestCDATModule:
    def test_single_variable_operation(self, registry, executor):
        p = Pipeline(registry)
        _, var = reader_chain(p)
        op = p.add_module("CDATOperation", {"operation": "anomalies"})
        p.add_connection(var, "variable", op, "variable")
        out = executor.execute(p).output(op, "variable")
        assert out.shape == (2, 4, 12, 16)

    def test_two_variable_operation(self, registry, executor):
        p = Pipeline(registry)
        _, var_a = reader_chain(p, "ta")
        _, var_b = reader_chain(p, "zg")
        op = p.add_module("CDATOperation", {"operation": "correlation"})
        p.add_connection(var_a, "variable", op, "variable")
        p.add_connection(var_b, "variable", op, "variable2")
        result = executor.execute(p).output(op, "result")
        assert -1.0 <= result <= 1.0

    def test_two_variable_operation_missing_input(self, registry, executor):
        p = Pipeline(registry)
        _, var = reader_chain(p)
        op = p.add_module("CDATOperation", {"operation": "correlation"})
        p.add_connection(var, "variable", op, "variable")
        with pytest.raises(ModuleExecutionError):
            executor.execute(p)

    def test_operation_with_args(self, registry, executor):
        p = Pipeline(registry)
        _, var = reader_chain(p)
        op = p.add_module("CDATOperation", {"operation": "scale", "args": {"factor": 2.0}})
        p.add_connection(var, "variable", op, "variable")
        out = executor.execute(p).output(op, "variable")
        assert float(out.max()) > 400  # temperatures doubled


class TestDV3DModules:
    @pytest.mark.parametrize("plot_module", ["Slicer", "VolumeRender", "Isosurface"])
    def test_plot_to_cell_chain(self, registry, executor, plot_module):
        p = Pipeline(registry)
        _, var = reader_chain(p)
        plot = p.add_module(plot_module)
        cell = p.add_module("DV3DCell", {"width": 48, "height": 36})
        p.add_connection(var, "variable", plot, "variable")
        p.add_connection(plot, "plot", cell, "plot")
        result = executor.execute(p)
        image = result.output(cell, "image")
        assert image.shape == (36, 48, 3)
        assert image.dtype == np.uint8

    def test_hovmoller_chain(self, registry, executor):
        p = Pipeline(registry)
        reader = p.add_module(
            "CDMSDatasetReader",
            {"source": "wave_case_study", "size": {"nlon": 24, "nlat": 8, "ntime": 20}},
        )
        var = p.add_module("CDMSVariableReader", {"variable": "olr_anom"})
        plot = p.add_module("HovmollerSlicer")
        cell = p.add_module("DV3DCell", {"width": 40, "height": 30})
        p.add_connection(reader, "dataset", var, "dataset")
        p.add_connection(var, "variable", plot, "variable")
        p.add_connection(plot, "plot", cell, "plot")
        image = executor.execute(p).output(cell, "image")
        assert image.shape == (30, 40, 3)

    def test_vector_slicer_chain(self, registry, executor):
        p = Pipeline(registry)
        _, u = reader_chain(p, "ua")
        _, v = reader_chain(p, "va")
        plot = p.add_module("VectorSlicer")
        cell = p.add_module("DV3DCell", {"width": 40, "height": 30})
        p.add_connection(u, "variable", plot, "u")
        p.add_connection(v, "variable", plot, "v")
        p.add_connection(plot, "plot", cell, "plot")
        image = executor.execute(p).output(cell, "image")
        assert image.shape == (30, 40, 3)

    def test_translation_module(self, registry, executor):
        p = Pipeline(registry)
        _, var = reader_chain(p)
        trans = p.add_module("VolumeData", {"time_index": 1})
        p.add_connection(var, "variable", trans, "variable")
        volume = executor.execute(p).output(trans, "image_data")
        assert volume.dimensions == (16, 12, 4)

    def test_plot_state_parameter_applied(self, registry, executor):
        p = Pipeline(registry)
        _, var = reader_chain(p)
        plot = p.add_module("Slicer", {"state": {"time_index": 1}})
        cell = p.add_module("DV3DCell", {"width": 32, "height": 24})
        p.add_connection(var, "variable", plot, "variable")
        p.add_connection(plot, "plot", cell, "plot")
        live = executor.execute(p).output(cell, "cell")
        assert live.plot.time_index == 1

    def test_cell_state_parameter_applied(self, registry, executor):
        p = Pipeline(registry)
        _, var = reader_chain(p)
        plot = p.add_module("Slicer")
        cell = p.add_module(
            "DV3DCell",
            {"width": 32, "height": 24, "cell_state": {"show_basemap": False}},
        )
        p.add_connection(var, "variable", plot, "variable")
        p.add_connection(plot, "plot", cell, "plot")
        live = executor.execute(p).output(cell, "cell")
        assert live.show_basemap is False

    def test_volume_slicer_combined_module(self, registry, executor):
        p = Pipeline(registry)
        _, var = reader_chain(p)
        plot = p.add_module("VolumeSlicer")
        cell = p.add_module("DV3DCell", {"width": 40, "height": 30})
        p.add_connection(var, "variable", plot, "variable")
        p.add_connection(plot, "plot", cell, "plot")
        result = executor.execute(p)
        live = result.output(cell, "cell")
        assert live.plot.plot_type == "combined"
        assert len(live.plot.components) == 2
        assert result.output(cell, "image").shape == (30, 40, 3)

    def test_plot_objects_not_shared_between_branches(self, registry):
        """Two identical chains must produce independent live cells."""
        ex = Executor(caching=True)
        p = Pipeline(registry)
        cells = []
        for _ in range(2):
            _, var = reader_chain(p)
            plot = p.add_module("Slicer")
            cell = p.add_module("DV3DCell", {"width": 24, "height": 18})
            p.add_connection(var, "variable", plot, "variable")
            p.add_connection(plot, "plot", cell, "plot")
            cells.append(cell)
        result = ex.execute(p)
        live_a = result.output(cells[0], "cell")
        live_b = result.output(cells[1], "cell")
        assert live_a is not live_b
        assert live_a.plot is not live_b.plot
