"""CombinedPlot: scene merging, coordinated interaction, state."""

import pytest

from repro.dv3d.combined import CombinedPlot
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.volume import VolumePlot
from repro.util.errors import DV3DError


@pytest.fixture()
def combo(ta):
    volume = VolumePlot(ta, center=0.8, width=0.3)
    slicer = SlicerPlot(ta, enabled_planes=("z",))
    return CombinedPlot([volume, slicer])


class TestConstruction:
    def test_needs_components(self):
        with pytest.raises(DV3DError):
            CombinedPlot([])

    def test_time_length_mismatch_rejected(self, ta, waves):
        a = SlicerPlot(ta)  # 4 steps
        b = SlicerPlot(waves("olr_anom")(time=slice(0, 10)))  # 10 steps
        with pytest.raises(DV3DError, match="animation length"):
            CombinedPlot([a, b])

    def test_primary_supplies_metadata(self, combo, ta):
        assert combo.variable.id == "ta"
        assert combo.scalar_range == combo.primary.scalar_range


class TestScene:
    def test_scene_merges_actor_sets(self, combo):
        scene = combo.build_scene()
        assert len(scene.volume_actors) == 1  # from the volume component
        slice_actors = [a for a in scene.actors if "slice" in a.name]
        assert len(slice_actors) == 1  # from the slicer component

    def test_single_bounding_frame(self, combo):
        scene = combo.build_scene()
        frames = [a for a in scene.actors if a.name == "frame"]
        assert len(frames) == 1

    def test_render(self, combo):
        fb = combo.render(48, 36)
        assert fb.color.shape == (36, 48, 3)


class TestInteraction:
    def test_time_step_coordinates_components(self, combo):
        combo.set_time_index(2)
        assert all(c.time_index == 2 for c in combo.components)

    def test_key_t_through_dispatch(self, combo):
        delta = combo.handle_key("t")
        assert combo.time_index == 1
        assert all(c.time_index == 1 for c in combo.components)
        assert "component_0" in delta

    def test_leveling_reaches_volume_component(self, combo):
        delta = combo.handle_drag(0.1, 0.0, "leveling")
        assert "component_0" in delta  # the volume accepted it
        assert combo.components[0].transfer.center == pytest.approx(0.9)

    def test_slice_drag_reaches_slicer_component(self, combo):
        delta = combo.handle_drag(0.0, 0.25, "slice:z")
        assert "component_1" in delta
        assert combo.components[1].plane_positions["z"] == pytest.approx(0.5)

    def test_camera_drag_shared(self, combo):
        combo.handle_drag(0.2, 0.1, "camera")
        assert combo.camera is not None
        assert all(c.camera is combo.camera for c in combo.components)

    def test_unhandled_mode(self, ta):
        only_slicer = CombinedPlot([SlicerPlot(ta)])
        with pytest.raises(DV3DError):
            only_slicer.handle_drag(0.1, 0.0, "leveling")

    def test_colormap_cycles_every_component(self, combo):
        combo.cycle_colormap()
        names = {c.colormap.name for c in combo.components}
        assert len(names) == 1
        assert combo.colormap.name in names


class TestState:
    def test_state_roundtrip(self, combo, ta):
        combo.set_time_index(1)
        combo.handle_drag(0.1, 0.0, "leveling")
        state = combo.state()
        other = CombinedPlot([
            VolumePlot(ta, center=0.8, width=0.3),
            SlicerPlot(ta, enabled_planes=("z",)),
        ])
        other.apply_state(state)
        assert other.components[0].transfer.center == pytest.approx(
            combo.components[0].transfer.center
        )
        assert other.components[1].time_index == 1

    def test_in_cell_with_furnishings(self, combo):
        from repro.dv3d.cell import DV3DCell

        cell = DV3DCell(combo, dataset_label="COMBO", show_axes=True)
        fb = cell.render(96, 72)
        assert fb.color.shape == (72, 96, 3)
