"""Executor-level memoization through the shared result cache.

The executor's own per-instance signature cache is seed behavior; these
tests cover what the shared two-tier cache adds: results that survive
across executor instances and processes, and the cache-aware
``continue_independent`` semantics (a branch blocked by an upstream
failure completes from cache instead of being skipped).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.cache.config import CacheConfig
from repro.cache.store import DiskTier
from repro.workflow.executor import Executor
from repro.workflow.module import Module
from repro.workflow.pipeline import Pipeline
from repro.workflow.ports import PortSpec
from repro.workflow.registry import ModuleRegistry

CALLS = {"source": 0, "fail": False}


class Source(Module):
    output_ports = (PortSpec("out"),)

    def compute(self, inputs):
        CALLS["source"] += 1
        return {"out": 41}


class FlakySource(Module):
    """A non-cacheable source (like a live DV3D module) that can fail."""

    cacheable = False
    output_ports = (PortSpec("out"),)

    def compute(self, inputs):
        if CALLS["fail"]:
            raise RuntimeError("source is down")
        return {"out": 41}


class AddOne(Module):
    input_ports = (PortSpec("x"),)
    output_ports = (PortSpec("out"),)

    def compute(self, inputs):
        return {"out": inputs["x"] + 1}


class Independent(Module):
    output_ports = (PortSpec("out"),)

    def compute(self, inputs):
        return {"out": "independent"}


class Scaled(Module):
    from repro.workflow.module import ParameterSpec

    output_ports = (PortSpec("out"),)
    parameters = (ParameterSpec("factor", default=2),)

    def compute(self, inputs):
        return {"out": 10 * self.parameter_values["factor"]}


@pytest.fixture()
def registry_():
    reg = ModuleRegistry()
    for cls in (Source, FlakySource, AddOne, Independent, Scaled):
        reg.register("t", cls)
    return reg


@pytest.fixture(autouse=True)
def reset_calls():
    CALLS.update(source=0, fail=False)


def chain(reg, source="Source"):
    p = Pipeline(registry=reg)
    s = p.add_module(source)
    a = p.add_module("AddOne")
    p.add_connection(s, "out", a, "x")
    return p, s, a


class TestSharedMemoization:
    def test_results_survive_across_executor_instances(self, registry_, tmp_path):
        cfg = CacheConfig(path=str(tmp_path / "cache"))
        p1, _, a1 = chain(registry_)
        r1 = Executor(cache=cfg).execute(p1)
        assert r1.output(a1, "out") == 42 and r1.cache_misses == 2

        p2, _, a2 = chain(registry_)
        r2 = Executor(cache=cfg).execute(p2)  # a brand-new executor
        assert r2.output(a2, "out") == 42
        assert r2.cache_hits == 2 and r2.cache_misses == 0
        assert CALLS["source"] == 1

    def test_disk_tier_alone_serves_a_fresh_process_view(self, registry_, tmp_path):
        cfg = CacheConfig(path=str(tmp_path / "cache"), memory_entries=0)
        p1, _, _ = chain(registry_)
        Executor(cache=cfg).execute(p1)
        p2, _, a2 = chain(registry_)
        r2 = Executor(cache=cfg).execute(p2)
        assert r2.cache_hits == 2 and r2.output(a2, "out") == 42

    def test_disabled_cache_preserves_seed_behavior(self, registry_, tmp_path):
        p1, _, _ = chain(registry_)
        Executor().execute(p1)
        p2, _, _ = chain(registry_)
        r2 = Executor().execute(p2)  # fresh executor, no shared cache
        assert r2.cache_hits == 0
        assert CALLS["source"] == 2
        assert not (tmp_path / "cache").exists()

    def test_parameter_change_misses(self, registry_, tmp_path):
        cfg = CacheConfig(path=str(tmp_path / "cache"))

        def run(factor):
            p = Pipeline(registry=registry_)
            mid = p.add_module("Scaled", {"factor": factor})
            result = Executor(cache=cfg).execute(p)
            return result, result.output(mid, "out")

        r1, v1 = run(2)
        assert (r1.cache_misses, v1) == (1, 20)
        r2, v2 = run(2)  # same parameters: a hit from a fresh executor
        assert (r2.cache_hits, v2) == (1, 20)
        r3, v3 = run(3)  # a single parameter change: a miss
        assert (r3.cache_misses, v3) == (1, 30)


class TestCacheAwareContinueIndependent:
    def warm(self, registry_, tmp_path):
        cfg = CacheConfig(path=str(tmp_path / "cache"))
        p, _, _ = chain(registry_, source="FlakySource")
        assert Executor(cache=cfg).execute(p).ok
        CALLS["fail"] = True
        return cfg

    @pytest.mark.parametrize("workers", [1, 4])
    def test_blocked_branch_completes_from_cache(self, registry_, tmp_path, workers):
        cfg = self.warm(registry_, tmp_path)
        p, s, a = chain(registry_, source="FlakySource")
        result = Executor(
            cache=cfg, failure_policy="continue_independent", max_workers=workers
        ).execute(p)
        assert result.status_of(s) == "error"
        assert result.status_of(a) == "cached"  # not skipped: served warm
        assert result.output(a, "out") == 42
        assert not result.ok and len(result.skipped()) == 0

    @pytest.mark.parametrize("workers", [1, 4])
    def test_without_cache_blocked_branch_is_skipped(self, registry_, tmp_path, workers):
        self.warm(registry_, tmp_path)
        p, s, a = chain(registry_, source="FlakySource")
        result = Executor(
            failure_policy="continue_independent", max_workers=workers
        ).execute(p)  # no cache config: seed semantics
        assert result.status_of(s) == "error"
        assert result.status_of(a) == "skipped"

    def test_cold_cache_still_skips(self, registry_, tmp_path):
        CALLS["fail"] = True
        cfg = CacheConfig(path=str(tmp_path / "cold"))
        p, s, a = chain(registry_, source="FlakySource")
        result = Executor(
            cache=cfg, failure_policy="continue_independent"
        ).execute(p)
        assert result.status_of(a) == "skipped"  # nothing cached to serve

    def test_independent_branch_still_runs(self, registry_, tmp_path):
        cfg = self.warm(registry_, tmp_path)
        p, s, a = chain(registry_, source="FlakySource")
        ind = p.add_module("Independent")
        result = Executor(
            cache=cfg, failure_policy="continue_independent", max_workers=4
        ).execute(p)
        assert result.status_of(ind) == "ok"
        assert result.status_of(a) == "cached"


_CHILD = r"""
import sys
from repro.cache.config import CacheConfig
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline
from repro.workflow.registry import global_registry

sys.path.insert(0, sys.argv[2])
from tests.conftest import build_cell_chain

pipeline = Pipeline(global_registry())
ids = build_cell_chain(pipeline, width=48, height=36)
cfg = CacheConfig(path=sys.argv[1])
result = Executor(cache=cfg).execute(pipeline)
assert result.ok
sys.stdout.write(f"{result.cache_hits},{result.cache_misses}")
"""


class TestCrossProcess:
    def test_second_process_hits_what_the_first_stored(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(root, "src"), env.get("PYTHONPATH")) if p
        )

        def run():
            proc = subprocess.run(
                [sys.executable, "-c", _CHILD, cache_dir, root],
                env=env, capture_output=True, text=True, check=True,
            )
            hits, misses = proc.stdout.split(",")
            return int(hits), int(misses)

        cold_hits, cold_misses = run()
        assert cold_hits == 0 and cold_misses > 0
        warm_hits, warm_misses = run()
        # every cacheable module is served from the disk tier; only the
        # non-cacheable live modules (plot, cell) recompute
        assert warm_hits >= 2
        assert warm_misses == cold_misses - warm_hits
        assert len(DiskTier(cache_dir, max_bytes=1 << 30)) >= 2
