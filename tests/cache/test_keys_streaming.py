"""Streamed digests: a lazy variable hashes identically to its eager twin.

This is the property that lets eager and out-of-core runs of the same
reduction share cache entries — equal content implies equal key, no
matter which data plane the variable arrived through.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cache.keys import digest
from repro.cdms.axis import latitude_axis, longitude_axis, time_axis
from repro.cdms.dataset import open_dataset
from repro.cdms.storage import write_cdz
from repro.cdms.variable import Variable


def make_variable(seed=5, scale=1.0):
    rng = np.random.default_rng(seed)
    data = np.ma.MaskedArray(rng.normal(0.0, scale, size=(6, 3, 4)))
    data[0, 0, :2] = np.ma.masked
    axes = (
        time_axis(np.arange(6) * 30.0 + 15.0, calendar="noleap"),
        latitude_axis([-10.0, 0.0, 10.0]),
        longitude_axis([0.0, 90.0, 180.0, 270.0]),
    )
    return Variable(data, axes, id="ta", units="K")


@pytest.fixture()
def planes(tmp_path):
    path = tmp_path / "keys.cdz"
    write_cdz(path, [make_variable()], dataset_id="keys", version=2,
              chunk_timesteps=2)
    eager = open_dataset(path, streaming="off").get_variable("ta")
    lazy_ds = open_dataset(path, streaming="on")
    return eager, lazy_ds.get_variable("ta")


def test_lazy_digest_equals_eager_without_materializing(planes):
    eager, lazy = planes
    obs.set_recorder(obs.Recorder())
    obs.enable()
    try:
        lazy_digest = digest(lazy)
        full = obs.get_recorder().counter_total("streaming.materialize.full")
    finally:
        obs.disable()
        obs.set_recorder(obs.Recorder())
    assert lazy_digest == digest(eager)
    assert full == 0
    assert lazy._materialized is None


def test_materialized_lazy_variable_still_digests_equal(planes):
    eager, lazy = planes
    lazy._data  # trip the escape hatch; the eager branch takes over
    assert lazy._materialized is not None
    assert digest(lazy) == digest(eager)


def test_different_content_digests_differently(tmp_path, planes):
    _eager, lazy = planes
    path = tmp_path / "other.cdz"
    write_cdz(path, [make_variable(seed=6)], dataset_id="keys", version=2,
              chunk_timesteps=2)
    other = open_dataset(path, streaming="on").get_variable("ta")
    assert digest(other) != digest(lazy)


def test_digest_is_stable_across_repeat_streams(planes):
    _eager, lazy = planes
    assert digest(lazy) == digest(lazy)
