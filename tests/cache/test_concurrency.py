"""Disk-tier safety under concurrency and crashes.

The three guarantees the atomic-rename design makes:

* two processes racing on the same key are safe — readers observe
  either a miss or one writer's complete value, never a torn file;
* a writer SIGKILLed mid-publish leaves temp debris at worst, never a
  corrupt (or partial) final entry;
* eviction under size pressure never breaks a reader that already
  opened the entry (POSIX unlink-during-read).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import signal
import threading
import time

import pytest

from repro.cache.store import TMP_PREFIX, DiskTier

KEY = "ab" + "c" * 62


def _race_writer(root: str, key: str, payload_id: int, rounds: int) -> None:
    tier = DiskTier(root, max_bytes=1 << 30)
    value = {"writer": payload_id, "blob": bytes([payload_id]) * 65536}
    for _ in range(rounds):
        tier.put(key, value)


class TestSameKeyRace:
    def test_two_process_race_never_tears(self, tmp_path):
        root = str(tmp_path)
        ctx = mp.get_context("fork")
        rounds = 40
        writers = [
            ctx.Process(target=_race_writer, args=(root, KEY, wid, rounds))
            for wid in (1, 2)
        ]
        for proc in writers:
            proc.start()
        tier = DiskTier(root, max_bytes=1 << 30)
        observed = set()
        reads = 0
        try:
            while any(proc.is_alive() for proc in writers):
                found, value = tier.get(KEY)
                if found:
                    # a complete, self-consistent value from one writer
                    assert value["blob"] == bytes([value["writer"]]) * 65536
                    observed.add(value["writer"])
                    reads += 1
        finally:
            for proc in writers:
                proc.join(30.0)
        assert all(proc.exitcode == 0 for proc in writers)
        assert reads > 0 and observed <= {1, 2}
        # last published wins; the final entry is intact
        found, value = tier.get(KEY)
        assert found and value["writer"] in (1, 2)


def _killed_writer(root: str, key: str) -> None:
    # die *inside* put, after writing the temp file but before the
    # atomic rename publishes it
    from repro.cache import store

    def kill_instead_of_sync(fd: int) -> None:
        os.kill(os.getpid(), signal.SIGKILL)

    store._fsync = kill_instead_of_sync
    DiskTier(root, max_bytes=1 << 30).put(key, {"big": b"x" * 65536})


class TestKilledWriter:
    def test_sigkill_mid_publish_leaves_no_entry(self, tmp_path):
        root = str(tmp_path)
        ctx = mp.get_context("fork")
        proc = ctx.Process(target=_killed_writer, args=(root, KEY))
        proc.start()
        proc.join(30.0)
        assert proc.exitcode == -signal.SIGKILL
        tier = DiskTier(root, max_bytes=1 << 30)
        # no final entry, no corrupt read — a clean miss
        assert tier.get(KEY) == (False, None)
        assert len(tier) == 0
        # only temp debris remains, and it is ignored by entry scans
        debris = list(tmp_path.glob(f"{TMP_PREFIX}*"))
        assert len(debris) == 1
        # a later writer succeeds despite the debris
        tier.put(KEY, "recovered")
        assert tier.get(KEY) == (True, "recovered")

    def test_debris_from_killed_writer_is_eventually_reaped(self, tmp_path):
        root = str(tmp_path)
        ctx = mp.get_context("fork")
        proc = ctx.Process(target=_killed_writer, args=(root, KEY))
        proc.start()
        proc.join(30.0)
        (debris,) = list(tmp_path.glob(f"{TMP_PREFIX}*"))
        os.utime(debris, (1.0, 1.0))  # age it past STALE_TMP_SECONDS
        DiskTier(root, max_bytes=1 << 30).put("de" + "f" * 62, 1)
        assert not debris.exists()


class TestEvictionDuringRead:
    def test_unlinked_entry_stays_readable_through_open_handle(self, tmp_path):
        # the property DiskTier.get relies on: once the reader has the
        # file open, eviction (unlink) cannot tear the bytes out from
        # under it on POSIX
        tier = DiskTier(str(tmp_path), max_bytes=1 << 30)
        value = {"blob": b"z" * (1 << 20)}
        tier.put(KEY, value)
        path = tier._path(KEY)
        with open(path, "rb") as handle:
            path.unlink()  # eviction happens mid-read
            assert pickle.loads(handle.read()) == value
        assert tier.get(KEY) == (False, None)  # and is an honest miss after

    def test_reader_never_breaks_under_eviction_pressure(self, tmp_path):
        # hammer a tiny-budget tier from a writer thread (every put
        # evicts) while a reader loops on one key: every successful get
        # returns a complete value; failures are only clean misses
        blob = b"q" * 8192
        entry = len(pickle.dumps({"k": KEY, "blob": blob}, pickle.HIGHEST_PROTOCOL))
        tier = DiskTier(str(tmp_path), max_bytes=entry * 2)
        stop = threading.Event()
        errors = []

        def writer():
            keys = [KEY] + [f"{i:02d}" + "e" * 62 for i in range(10, 16)]
            i = 0
            while not stop.is_set():
                k = keys[i % len(keys)]
                tier.put(k, {"k": k, "blob": blob})
                i += 1

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            hits = 0
            deadline = time.monotonic() + 20.0
            while hits < 20 and time.monotonic() < deadline:
                try:
                    found, value = tier.get(KEY)
                except Exception as exc:  # noqa: BLE001 - the property under test
                    errors.append(exc)
                    break
                if found:
                    assert value == {"k": KEY, "blob": blob}
                    hits += 1
        finally:
            stop.set()
            thread.join(10.0)
        assert not errors, f"reader broke under eviction pressure: {errors[0]!r}"
        assert hits > 0  # the loop exercised real hits, not only misses


@pytest.mark.parametrize("n_procs", [4])
def test_many_processes_distinct_keys(tmp_path, n_procs):
    """Concurrent writers on distinct keys all land, none interfere."""
    ctx = mp.get_context("fork")
    keys = [f"{i:02d}" + "a" * 62 for i in range(n_procs)]
    procs = [
        ctx.Process(target=_race_writer, args=(str(tmp_path), key, i + 1, 10))
        for i, key in enumerate(keys)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(30.0)
    assert all(proc.exitcode == 0 for proc in procs)
    tier = DiskTier(str(tmp_path), max_bytes=1 << 30)
    assert len(tier) == n_procs
    for i, key in enumerate(keys):
        found, value = tier.get(key)
        assert found and value["writer"] == i + 1
