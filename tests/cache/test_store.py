"""The two cache tiers and their facade: bounds, TTL, degradation.

Clocks are injected so LRU/TTL behavior is tested deterministically;
disk-tier robustness (corrupt entries, unwritable roots, unpicklable
values) must always degrade to a miss, never to an exception.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro import obs
from repro.cache.config import (
    CACHE_DIR_ENV,
    CacheConfig,
    configure,
    default_cache_dir,
    get_config,
    set_config,
    use_config,
)
from repro.cache.store import (
    TMP_PREFIX,
    DiskTier,
    MemoryTier,
    ResultCache,
    get_cache,
    reset_cache,
)
from repro.util.errors import CacheError


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


class TestConfig:
    def test_validation(self):
        with pytest.raises(CacheError, match="memory_entries"):
            CacheConfig(memory_entries=-1)
        with pytest.raises(CacheError, match="disk_bytes"):
            CacheConfig(disk_bytes=-1)
        with pytest.raises(CacheError, match="ttl_seconds"):
            CacheConfig(ttl_seconds=-0.5)

    def test_tier_switches(self):
        assert not CacheConfig(enabled=False).wants_memory
        assert not CacheConfig(enabled=False).wants_disk
        assert not CacheConfig(memory_entries=0).wants_memory
        assert not CacheConfig(use_disk=False).wants_disk
        assert not CacheConfig(disk_bytes=0).wants_disk
        assert CacheConfig().wants_memory and CacheConfig().wants_disk

    def test_default_dir_honors_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "here"))
        assert default_cache_dir() == str(tmp_path / "here")
        assert CacheConfig().resolved_path() == str(tmp_path / "here")
        assert CacheConfig(path="/explicit").resolved_path() == "/explicit"

    def test_ambient_scope(self):
        base = get_config()
        cfg = CacheConfig(memory_entries=7)
        with use_config(cfg):
            assert get_config() is cfg
            inner = CacheConfig(memory_entries=9)
            with use_config(inner):
                assert get_config() is inner
            assert get_config() is cfg
        assert get_config() is base
        # None is a no-op scope
        with use_config(None):
            assert get_config() is base

    def test_configure_installs(self):
        before = get_config()
        try:
            cfg = configure(memory_entries=3, use_disk=False)
            assert get_config() is cfg
        finally:
            set_config(before)


class TestMemoryTier:
    def test_lru_eviction_order(self):
        tier = MemoryTier(capacity=2)
        assert tier.put("a", 1) == 0
        assert tier.put("b", 2) == 0
        assert tier.get("a") == (True, 1)  # refreshes "a"
        assert tier.put("c", 3) == 1  # evicts "b", the least recent
        assert tier.get("b") == (False, None)
        assert tier.get("a") == (True, 1)
        assert tier.get("c") == (True, 3)
        assert len(tier) == 2

    def test_ttl_expiry(self):
        clock = FakeClock()
        tier = MemoryTier(capacity=8, ttl_seconds=10.0, clock=clock)
        tier.put("k", "v")
        clock.now += 5.0
        assert tier.get("k") == (True, "v")
        clock.now += 6.0
        assert tier.get("k") == (False, None)
        assert len(tier) == 0  # expired entry dropped

    def test_overwrite_same_key(self):
        tier = MemoryTier(capacity=2)
        tier.put("k", 1)
        tier.put("k", 2)
        assert tier.get("k") == (True, 2)
        assert len(tier) == 1


class TestDiskTier:
    def test_roundtrip_and_fanout(self, tmp_path):
        tier = DiskTier(str(tmp_path), max_bytes=1 << 20)
        key = "ab" + "0" * 62
        assert tier.get(key) == (False, None)
        tier.put(key, {"x": [1, 2, 3]})
        assert tier.get(key) == (True, {"x": [1, 2, 3]})
        assert (tmp_path / "ab").is_dir()  # two-level fan-out
        assert len(tier) == 1 and tier.size_bytes() > 0

    def test_corrupt_entry_is_discarded_as_miss(self, tmp_path):
        tier = DiskTier(str(tmp_path), max_bytes=1 << 20)
        key = "cd" + "1" * 62
        tier.put(key, "value")
        path = tier._path(key)
        path.chmod(0o644)
        truncated = path.read_bytes()[:3]
        path.write_bytes(truncated)
        recorder = obs.enable(obs.Recorder())
        try:
            assert tier.get(key) == (False, None)
        finally:
            obs.disable()
        assert not path.exists()  # corrupt file removed
        assert recorder.counter_total("cache.corrupt") == 1
        # and the key is writable again
        tier.put(key, "value2")
        assert tier.get(key) == (True, "value2")

    def test_ttl_expiry_by_mtime(self, tmp_path):
        clock = FakeClock()
        tier = DiskTier(str(tmp_path), max_bytes=1 << 20, ttl_seconds=30.0, clock=clock)
        key = "ef" + "2" * 62
        tier.put(key, 1)
        path = tier._path(key)
        os.utime(path, (clock.now, clock.now))
        clock.now += 10.0
        assert tier.get(key) == (True, 1)
        clock.now += 31.0
        assert tier.get(key) == (False, None)
        assert not path.exists()

    def test_eviction_to_byte_budget_is_mtime_lru(self, tmp_path):
        # budget: exactly one entry fits
        entry_size = len(pickle.dumps(b"x" * 64, protocol=pickle.HIGHEST_PROTOCOL))
        tier = DiskTier(str(tmp_path), max_bytes=entry_size + 8)
        old_key = "aa" + "3" * 62
        new_key = "bb" + "4" * 62
        tier.put(old_key, b"x" * 64)
        assert tier._path(old_key).exists()
        os.utime(tier._path(old_key), (1.0, 1.0))  # make it stale
        evicted = tier.put(new_key, b"y" * 64)
        # oldest-mtime-first: the stale entry goes, the new one stays
        assert evicted == 1
        assert not tier._path(old_key).exists()
        assert tier.get(new_key) == (True, b"y" * 64)

    def test_stale_tmp_files_are_reaped(self, tmp_path):
        clock = FakeClock()
        tier = DiskTier(str(tmp_path), max_bytes=1 << 20, clock=clock)
        debris = tmp_path / f"{TMP_PREFIX}deadwriter"
        debris.write_bytes(b"partial")
        os.utime(debris, (clock.now - 1000.0, clock.now - 1000.0))
        fresh = tmp_path / f"{TMP_PREFIX}inflight"
        fresh.write_bytes(b"partial")
        os.utime(fresh, (clock.now, clock.now))
        tier.put("ab" + "5" * 62, 1)  # triggers the budget/reap pass
        assert not debris.exists()  # stale debris reaped
        assert fresh.exists()  # in-flight writer untouched

    def test_unpicklable_value_degrades_to_no_store(self, tmp_path):
        tier = DiskTier(str(tmp_path), max_bytes=1 << 20)
        recorder = obs.enable(obs.Recorder())
        try:
            assert tier.put("ab" + "6" * 62, lambda: None) == 0
        finally:
            obs.disable()
        assert len(tier) == 0
        assert recorder.counter_total("cache.unpicklable") == 1

    def test_tmp_files_never_visible_as_entries(self, tmp_path):
        tier = DiskTier(str(tmp_path), max_bytes=1 << 20)
        (tmp_path / f"{TMP_PREFIX}whatever").write_bytes(b"junk")
        assert list(tier.entries()) == []


class TestResultCache:
    def cfg(self, tmp_path, **kw):
        kw.setdefault("path", str(tmp_path / "cache"))
        return CacheConfig(**kw)

    def test_two_tier_promotion(self, tmp_path):
        cache = ResultCache(self.cfg(tmp_path, memory_entries=4))
        cache.put("k" * 64, 42)
        cache.memory.clear()  # simulate a fresh process: disk only
        found, value = cache.get("k" * 64)
        assert (found, value) == (True, 42)
        # promoted: now served from memory even with the disk gone
        cache.disk.clear()
        assert cache.get("k" * 64) == (True, 42)
        assert cache.hits == 2 and cache.misses == 0

    def test_memory_only_and_disk_only(self, tmp_path):
        mem_only = ResultCache(self.cfg(tmp_path, use_disk=False))
        assert mem_only.disk is None and mem_only.memory is not None
        disk_only = ResultCache(self.cfg(tmp_path, memory_entries=0))
        assert disk_only.memory is None and disk_only.disk is not None
        disk_only.put("a" * 64, "v")
        assert disk_only.get("a" * 64) == (True, "v")

    def test_stats_and_counters(self, tmp_path):
        recorder = obs.enable(obs.Recorder())
        try:
            cache = ResultCache(self.cfg(tmp_path))
            cache.get("m" * 64, site="test")
            cache.put("m" * 64, 1, site="test")
            cache.get("m" * 64, site="test")
            stats = cache.stats()
            assert stats["hits"] == 1 and stats["misses"] == 1
            assert stats["memory_entries"] == 1 and stats["disk_entries"] == 1
            assert recorder.counter_total("cache.misses") == 1
            assert recorder.counter_total("cache.hits") == 1
            lookups = [
                k for k in recorder.histograms if k.name == "cache.lookup.seconds"
            ]
            stores = [k for k in recorder.histograms if k.name == "cache.store.seconds"]
            assert lookups and stores
        finally:
            obs.disable()

    def test_eviction_counter(self, tmp_path):
        recorder = obs.enable(obs.Recorder())
        try:
            cache = ResultCache(self.cfg(tmp_path, memory_entries=1, use_disk=False))
            cache.put("a" * 64, 1)
            cache.put("b" * 64, 2)
            assert cache.evictions == 1
            assert recorder.counter_total("cache.evictions") == 1
        finally:
            obs.disable()

    def test_get_cache_tracks_ambient_config(self, tmp_path):
        cfg1 = self.cfg(tmp_path)
        with use_config(cfg1):
            first = get_cache()
            assert get_cache() is first  # same config: same instance
        cfg2 = self.cfg(tmp_path, memory_entries=99)
        with use_config(cfg2):
            assert get_cache() is not first
        reset_cache()

    def test_disabled_config_builds_no_tiers(self, tmp_path):
        cache = ResultCache(CacheConfig(enabled=False, path=str(tmp_path)))
        assert cache.memory is None and cache.disk is None
        cache.put("x" * 64, 1)
        assert cache.get("x" * 64) == (False, None)
        assert not any(tmp_path.iterdir())

    def test_entries_survive_pickle_of_numpy(self, tmp_path):
        import numpy as np

        cache = ResultCache(self.cfg(tmp_path, memory_entries=0))
        arr = np.ma.MaskedArray(np.arange(12.0).reshape(3, 4), mask=False)
        arr[1, 1] = np.ma.masked
        cache.put("n" * 64, {"out": arr})
        found, value = cache.get("n" * 64)
        assert found
        restored = value["out"]
        assert isinstance(restored, np.ma.MaskedArray)
        assert np.array_equal(restored.filled(0), arr.filled(0))
        assert np.array_equal(np.ma.getmaskarray(restored), np.ma.getmaskarray(arr))


class TestUnreadableRoot:
    def test_unwritable_root_degrades_to_miss(self, tmp_path):
        root = tmp_path / "ro"
        tier = DiskTier(str(root), max_bytes=1 << 20)
        root.chmod(0o555)
        try:
            if os.access(str(root / "probe"), os.W_OK):
                pytest.skip("running as a user unaffected by directory modes")
            try:
                assert tier.put("ab" + "7" * 62, 1) == 0  # no raise
            finally:
                pass
        finally:
            root.chmod(0o755)
