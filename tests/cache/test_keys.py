"""Canonical hashing: stability and sensitivity properties.

Hypothesis drives the core contract — equal values always produce
equal digests (across memory layouts, dict orderings and processes),
and any representational difference that can change a computed result
(dtype, endianness, shape, mask, NaN payload) produces a different
digest.  Cross-process stability is checked for real: a subprocess
with a different ``PYTHONHASHSEED`` must reproduce the parent's
digests bit for bit.
"""

from __future__ import annotations

import json
import os
import struct
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cache.config import CacheConfig, use_config
from repro.cache.keys import CODE_SALT, cache_key, digest, scene_digest
from repro.util.errors import CacheError

SHAPES = hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5)
DTYPES = st.sampled_from([np.float64, np.float32, np.int64, np.int32, np.uint8])
ARRAYS = DTYPES.flatmap(
    lambda dt: hnp.arrays(dtype=dt, shape=SHAPES, elements=hnp.from_dtype(np.dtype(dt), allow_nan=True))
)
SCALARS = st.one_of(
    st.none(), st.booleans(), st.integers(),
    st.floats(allow_nan=True, allow_infinity=True), st.text(max_size=20),
    st.binary(max_size=20),
)


class TestStability:
    @given(arr=ARRAYS)
    @settings(max_examples=50, deadline=None)
    def test_copy_has_equal_digest(self, arr):
        assert digest(arr) == digest(arr.copy())

    @given(arr=ARRAYS)
    @settings(max_examples=50, deadline=None)
    def test_layout_does_not_matter(self, arr):
        # Fortran order and strided views hash like their C-contiguous copy
        assert digest(np.asfortranarray(arr)) == digest(arr)
        strided = np.repeat(arr, 2, axis=0)[::2]
        assert np.array_equal(strided, arr, equal_nan=arr.dtype.kind == "f")
        assert digest(strided) == digest(arr)

    @given(value=SCALARS)
    @settings(max_examples=100, deadline=None)
    def test_scalars_are_deterministic(self, value):
        assert digest(value) == digest(value)

    @given(entries=st.dictionaries(st.text(max_size=8), st.integers(), max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_dict_order_does_not_matter(self, entries):
        reversed_insertion = dict(reversed(list(entries.items())))
        assert digest(entries) == digest(reversed_insertion)

    def test_nan_payload_is_deterministic(self):
        # the same NaN bit pattern always hashes the same way
        quiet = struct.unpack("<d", struct.pack("<Q", 0x7FF8000000000000))[0]
        assert digest(quiet) == digest(quiet)
        arr = np.array([1.0, quiet, 3.0])
        assert digest(arr) == digest(arr.copy())

    def test_masked_payload_under_mask_is_ignored(self):
        a = np.ma.MaskedArray([1.0, 2.0, 3.0], mask=[False, True, False])
        b = np.ma.MaskedArray([1.0, 99.0, 3.0], mask=[False, True, False])
        assert digest(a) == digest(b)


class TestSensitivity:
    def test_dtype_changes_digest(self):
        a = np.arange(6, dtype=np.float64)
        assert digest(a) != digest(a.astype(np.float32))
        assert digest(a) != digest(a.astype(np.int64))

    def test_endianness_changes_digest(self):
        a = np.arange(6, dtype=np.float64)
        swapped = a.astype(a.dtype.newbyteorder())
        assert np.array_equal(a, swapped)  # equal values...
        assert digest(a) != digest(swapped)  # ...different representation

    def test_shape_changes_digest(self):
        a = np.arange(6, dtype=np.float64)
        assert digest(a) != digest(a.reshape(2, 3))
        assert digest(a.reshape(2, 3)) != digest(a.reshape(3, 2))

    def test_nan_payload_differs_from_finite_and_other_nans(self):
        quiet = struct.unpack("<d", struct.pack("<Q", 0x7FF8000000000000))[0]
        payload = struct.unpack("<d", struct.pack("<Q", 0x7FF8000000000001))[0]
        assert digest(np.array([quiet])) != digest(np.array([1.0]))
        assert digest(np.array([quiet])) != digest(np.array([payload]))
        assert digest(quiet) != digest(payload)

    def test_signed_zero_differs(self):
        assert digest(0.0) != digest(-0.0)

    def test_mask_changes_digest(self):
        a = np.ma.MaskedArray([1.0, 2.0], mask=[False, False])
        b = np.ma.MaskedArray([1.0, 2.0], mask=[False, True])
        assert digest(a) != digest(b)

    def test_masked_differs_from_plain(self):
        plain = np.array([1.0, 2.0])
        masked = np.ma.MaskedArray([1.0, 2.0], mask=[False, False])
        assert digest(plain) != digest(masked)

    @given(a=st.integers(), b=st.integers())
    @settings(max_examples=50, deadline=None)
    def test_distinct_ints_have_distinct_digests(self, a, b):
        assert (digest(a) == digest(b)) == (a == b)

    def test_type_confusion_is_impossible(self):
        # tagged hashing: equal surface forms of different types differ
        assert digest(1) != digest(1.0)
        assert digest(True) != digest(1)
        assert digest("1") != digest(1)
        assert digest(b"x") != digest("x")
        assert digest([1, 2]) != digest({1: 2})
        assert digest(None) != digest(0)

    def test_list_boundaries_cannot_alias(self):
        assert digest(["ab", "c"]) != digest(["a", "bc"])
        assert digest([["a"], ["b"]]) != digest([["a", "b"], []])


class TestDomainTypes:
    def test_variable_digest_sensitive_to_data(self, simple_variable):
        base = digest(simple_variable)
        perturbed = simple_variable.clone() if hasattr(simple_variable, "clone") else None
        data = np.ma.copy(simple_variable.data)
        data[0, 0, 1, 1] = data[0, 0, 1, 1] + 0.5
        from repro.cdms.variable import Variable

        other = Variable(
            data, list(simple_variable.axes), id=simple_variable.id, units="K"
        )
        assert digest(other) != base
        del perturbed

    def test_axis_digest_stable_across_gen_bounds(self):
        from repro.cdms.axis import uniform_latitude

        axis = uniform_latitude(8)
        before = digest(axis)
        axis.gen_bounds()  # lazily caches bounds internally
        assert digest(axis) == before

    def test_axis_digest_sensitive_to_explicit_bounds(self):
        from repro.cdms.axis import uniform_latitude

        a = uniform_latitude(8)
        b = uniform_latitude(8)
        bounds = b.gen_bounds().copy()
        bounds[0, 0] -= 1.0
        b.set_bounds(bounds)
        assert digest(a) != digest(b)

    def test_unknown_type_raises_instead_of_guessing(self):
        class Opaque:
            pass

        with pytest.raises(CacheError, match="cannot canonically hash"):
            digest(Opaque())

    def test_scene_digest_sensitive_to_actor_change(self, reanalysis):
        from repro.dv3d.slicer import SlicerPlot

        plot = SlicerPlot(reanalysis("ta"))
        one = scene_digest(plot.build_scene())
        assert one == scene_digest(plot.build_scene())  # rebuild: stable
        plot.handle_key("x")  # toggle a slice plane
        assert scene_digest(plot.build_scene()) != one


class TestCacheKey:
    def test_site_and_salt_partition_the_keyspace(self):
        assert cache_key("a", 1) != cache_key("b", 1)
        assert cache_key("a", 1, salt="g1") != cache_key("a", 1, salt="g2")
        assert cache_key("a", 1) != cache_key("a", 2)
        assert cache_key("a", 1, salt="") == cache_key("a", 1, salt="")

    def test_ambient_config_salt_applies(self):
        base = cache_key("site", "x")
        with use_config(CacheConfig(salt="generation-2")):
            assert cache_key("site", "x") != base
        assert cache_key("site", "x") == base

    def test_code_salt_is_version_bound(self):
        import repro

        assert repro.__version__ in CODE_SALT


#: a recipe of values whose digests a child process must reproduce
_RECIPE = r"""
import struct, sys, json
import numpy as np
from repro.cache.keys import digest, cache_key

quiet = struct.unpack("<d", struct.pack("<Q", 0x7FF8000000000000))[0]
values = [
    None, True, 12345, -7, 3.14159, quiet, "unicode-é☃", b"\x00\xff",
    [1, "two", 3.0], {"b": 2, "a": 1}, {"a": 1, "b": 2},
    np.arange(24, dtype=np.float64).reshape(4, 6),
    np.arange(24, dtype=np.float32).reshape(4, 6),
    np.ma.MaskedArray([1.0, 2.0, 3.0], mask=[False, True, False]),
]
out = [digest(v) for v in values] + [cache_key("site", "part", salt="s")]
sys.stdout.write(json.dumps(out))
"""


def _recipe_digests(hash_seed: str):
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), str(_SRC)) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _RECIPE],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout)


_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src")


class TestCrossProcess:
    def test_digests_agree_across_hash_seeds(self):
        # str hashing is salted per process; canonical digests must not be
        one = _recipe_digests("1")
        two = _recipe_digests("4021")
        assert one == two
        # and the parent agrees with both
        quiet = struct.unpack("<d", struct.pack("<Q", 0x7FF8000000000000))[0]
        assert digest(quiet) == one[5]
        assert digest({"b": 2, "a": 1}) == one[9] == one[10]
        assert cache_key("site", "part", salt="s") == one[-1]
