"""Differential caching tests: warm == cold, any perturbation == miss.

For every DV3D plot type and both regrid schemes, a warm-cache result
must be **byte identical** to the cold recompute; perturbing any single
upstream input — data, camera, transfer function, module parameter —
must change the key and recompute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import get_cache, reset_cache
from repro.cache.config import CacheConfig, use_config
from repro.dv3d.hovmoller import HovmollerSlicerPlot
from repro.dv3d.isosurface import IsosurfacePlot
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.vector_slicer import VectorSlicerPlot
from repro.dv3d.volume import VolumePlot

WIDTH, HEIGHT = 64, 48

PLOT_TYPES = ["volume", "isosurface", "slicer", "vector_slicer", "hovmoller"]


def _build_plot(name, reanalysis, waves):
    if name == "volume":
        return VolumePlot(reanalysis("ta"), center=0.6, width=0.25)
    if name == "isosurface":
        return IsosurfacePlot(reanalysis("ta"), color_variable=reanalysis("hus"))
    if name == "slicer":
        return SlicerPlot(reanalysis("ta"))
    if name == "vector_slicer":
        return VectorSlicerPlot(
            reanalysis("ua"), reanalysis("va"), mode="streamlines", seed_density=8
        )
    if name == "hovmoller":
        return HovmollerSlicerPlot(waves("olr_anom"))
    raise AssertionError(name)


@pytest.fixture()
def cache_on(tmp_path):
    cfg = CacheConfig(path=str(tmp_path / "cache"))
    reset_cache()
    with use_config(cfg):
        yield cfg
    reset_cache()


class TestWarmFramesAreByteIdentical:
    @pytest.mark.parametrize("name", PLOT_TYPES)
    def test_plot_type(self, name, reanalysis, waves, cache_on):
        plot = _build_plot(name, reanalysis, waves)
        camera = plot.default_camera()
        cold = plot.render(WIDTH, HEIGHT, camera=camera)
        stats = get_cache().stats()
        assert stats["misses"] >= 1 and stats["hits"] == 0
        warm = plot.render(WIDTH, HEIGHT, camera=camera)
        assert np.array_equal(cold.color, warm.color), f"{name}: warm color differs"
        assert np.array_equal(cold.depth, warm.depth), f"{name}: warm depth differs"
        assert np.array_equal(cold.to_uint8(), warm.to_uint8())
        stats = get_cache().stats()
        assert stats["hits"] >= 1, f"{name}: warm render did not hit the cache"

    @pytest.mark.parametrize("name", PLOT_TYPES)
    def test_warm_survives_a_fresh_process_view(self, name, reanalysis, waves, cache_on):
        # drop the in-memory tier between renders: the disk tier alone
        # must reproduce the frame byte for byte (what a new process sees)
        plot = _build_plot(name, reanalysis, waves)
        camera = plot.default_camera()
        cold = plot.render(WIDTH, HEIGHT, camera=camera)
        cache = get_cache()
        cache.memory.clear()
        warm = plot.render(WIDTH, HEIGHT, camera=camera)
        assert np.array_equal(cold.color, warm.color)
        assert np.array_equal(cold.depth, warm.depth)
        assert cache.stats()["hits"] >= 1


class TestSingleInputPerturbationMisses:
    """Each case perturbs exactly one upstream input of a volume render."""

    def _misses(self):
        return get_cache().stats()["misses"]

    def test_data_perturbation(self, reanalysis, cache_on):
        from repro.cdms.variable import Variable

        ta = reanalysis("ta")
        plot = VolumePlot(ta, center=0.6, width=0.25)
        cam = plot.default_camera()
        plot.render(WIDTH, HEIGHT, camera=cam)
        baseline = self._misses()

        data = np.ma.copy(ta.data)
        data[..., 0, 0] = data[..., 0, 0] + 1e-3  # one corner, tiny delta
        perturbed = Variable(data, list(ta.axes), id=ta.id, units=ta.units)
        VolumePlot(perturbed, center=0.6, width=0.25).render(
            WIDTH, HEIGHT, camera=cam
        )
        assert self._misses() == baseline + 1

    def test_camera_perturbation(self, reanalysis, cache_on):
        plot = VolumePlot(reanalysis("ta"), center=0.6, width=0.25)
        cam = plot.default_camera()
        plot.render(WIDTH, HEIGHT, camera=cam)
        baseline = self._misses()
        plot.render(WIDTH, HEIGHT, camera=cam.orbit(0.5, 0.0))
        assert self._misses() == baseline + 1

    def test_transfer_function_perturbation(self, reanalysis, cache_on):
        ta = reanalysis("ta")
        plot = VolumePlot(ta, center=0.6, width=0.25)
        cam = plot.default_camera()
        plot.render(WIDTH, HEIGHT, camera=cam)
        baseline = self._misses()
        VolumePlot(ta, center=0.62, width=0.25).render(WIDTH, HEIGHT, camera=cam)
        assert self._misses() == baseline + 1

    def test_module_parameter_perturbation(self, reanalysis, cache_on):
        ta = reanalysis("ta")
        plot = SlicerPlot(ta)
        cam = plot.default_camera()
        plot.render(WIDTH, HEIGHT, camera=cam)
        baseline = self._misses()
        plot.handle_key("x")  # toggle a slice plane: a module-level knob
        plot.render(WIDTH, HEIGHT, camera=cam)
        assert self._misses() == baseline + 1

    def test_size_perturbation(self, reanalysis, cache_on):
        plot = VolumePlot(reanalysis("ta"), center=0.6, width=0.25)
        cam = plot.default_camera()
        plot.render(WIDTH, HEIGHT, camera=cam)
        baseline = self._misses()
        plot.render(WIDTH + 2, HEIGHT, camera=cam)
        assert self._misses() == baseline + 1

    def test_unperturbed_control(self, reanalysis, cache_on):
        # the control arm: no perturbation, no miss
        plot = VolumePlot(reanalysis("ta"), center=0.6, width=0.25)
        cam = plot.default_camera()
        plot.render(WIDTH, HEIGHT, camera=cam)
        baseline = self._misses()
        plot.render(WIDTH, HEIGHT, camera=cam)
        assert self._misses() == baseline


class TestRegridDifferential:
    @pytest.fixture()
    def grids(self, simple_variable):
        from repro.cdms.axis import uniform_latitude, uniform_longitude
        from repro.cdms.grid import RectilinearGrid

        target = RectilinearGrid(uniform_latitude(6), uniform_longitude(9))
        return simple_variable, target

    @pytest.mark.parametrize("scheme", ["bilinear", "conservative"])
    def test_warm_regrid_is_byte_identical(self, scheme, grids, cache_on):
        from repro.cdms import regrid as rg

        var, target = grids
        fn = rg.regrid_bilinear if scheme == "bilinear" else rg.regrid_conservative
        cold = fn(var, target)
        warm = fn(var, target)
        assert np.array_equal(
            np.ma.getdata(cold.data), np.ma.getdata(warm.data)
        ), f"{scheme}: warm payload differs"
        assert np.array_equal(
            np.ma.getmaskarray(cold.data), np.ma.getmaskarray(warm.data)
        )
        stats = get_cache().stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_scheme_partitions_keys(self, grids, cache_on):
        from repro.cdms import regrid as rg

        var, target = grids
        rg.regrid_bilinear(var, target)
        rg.regrid_conservative(var, target)
        assert get_cache().stats()["misses"] == 2

    def test_data_perturbation_misses(self, grids, cache_on):
        from repro.cdms import regrid as rg
        from repro.cdms.variable import Variable

        var, target = grids
        rg.regrid_bilinear(var, target)
        data = np.ma.copy(var.data)
        data[0, 0, 1, 1] = data[0, 0, 1, 1] + 1e-6
        other = Variable(data, list(var.axes), id=var.id, units=var.units)
        rg.regrid_bilinear(other, target)
        assert get_cache().stats()["misses"] == 2

    def test_target_grid_perturbation_misses(self, grids, cache_on):
        from repro.cdms import regrid as rg
        from repro.cdms.axis import uniform_latitude, uniform_longitude
        from repro.cdms.grid import RectilinearGrid

        var, target = grids
        rg.regrid_bilinear(var, target)
        other = RectilinearGrid(uniform_latitude(7), uniform_longitude(9))
        rg.regrid_bilinear(var, other)
        assert get_cache().stats()["misses"] == 2

    def test_parallel_tiling_partitions_keys(self, grids, cache_on):
        # the parallel regrid kernel is only near-exact, so a serial
        # product must never be served for a parallel request
        from repro.cache.keys import cache_key
        from repro.parallel.config import ParallelConfig

        var, target = grids
        serial = ParallelConfig()
        banded = ParallelConfig(workers=4, min_items=1)

        def key(pc):
            return cache_key(
                "regrid", "conservative", var, target,
                (pc.enabled, pc.workers, pc.tile_rows, pc.min_items),
            )

        if banded.enabled:
            assert key(serial) != key(banded)
        else:  # no shared memory on this platform: both resolve serial
            assert key(serial) == key(ParallelConfig())
