"""The variable view and the calculator interface."""

import pytest

from repro.app.calculator import Calculator
from repro.app.variable_view import VariableView
from repro.cdms.variable import Variable
from repro.util.errors import CDATError, CDMSError


@pytest.fixture()
def view(reanalysis):
    view = VariableView()
    view.load(reanalysis, "ta")
    view.load(reanalysis, "zg")
    return view


@pytest.fixture()
def calculator(view):
    return Calculator(view)


class TestVariableView:
    def test_load_and_names(self, view):
        assert view.names() == ["ta", "zg"]
        assert "ta" in view

    def test_load_with_subsetting(self, reanalysis):
        view = VariableView()
        tropics = view.load(reanalysis, "ta", name="ta_tropics", latitude=(-30, 30))
        assert tropics.get_latitude().values.max() <= 30
        assert "ta_tropics" in view

    def test_subset_existing(self, view):
        view.subset("ta", new_name="ta500", level=500)
        assert view.get("ta500").shape[1] == 1

    def test_rename(self, view):
        view.rename("ta", "temperature")
        assert "temperature" in view and "ta" not in view
        assert view.get("temperature").id == "temperature"

    def test_rename_collision(self, view):
        with pytest.raises(CDMSError):
            view.rename("ta", "zg")

    def test_delete(self, view):
        view.delete("zg")
        assert "zg" not in view
        with pytest.raises(CDMSError):
            view.delete("zg")

    def test_missing_variable_message(self, view):
        with pytest.raises(CDMSError, match="ta"):
            view.get("hus")

    def test_history_records_edits(self, view):
        view.subset("ta", new_name="x", level=500)
        view.rename("x", "y")
        assert any("subset" in h for h in view.history)
        assert any("rename" in h for h in view.history)

    def test_summary_structure(self, view):
        summary = view.summary()
        assert summary["ta"]["order"] == "tzyx"
        assert summary["ta"]["valid_fraction"] == 1.0


class TestCalculator:
    def test_arithmetic_expression(self, calculator, view):
        result = calculator.evaluate("ta - 273.15")
        assert isinstance(result, Variable)
        assert float(result.max()) == pytest.approx(float(view.get("ta").max()) - 273.15)

    def test_registry_function_call(self, calculator):
        result = calculator.evaluate("anomalies(ta)")
        assert isinstance(result, Variable)
        assert abs(float(result.mean())) < 5.0

    def test_two_variable_function(self, calculator):
        result = calculator.evaluate("correlation(ta, zg)")
        assert isinstance(result, float)
        assert -1.0 <= result <= 1.0

    def test_keyword_arguments(self, calculator):
        result = calculator.evaluate("running_mean(ta, window=3)")
        assert isinstance(result, Variable)

    def test_assignment_defines_variable(self, calculator, view):
        calculator.assign("warm = ta - 273.15")
        assert "warm" in view
        assert view.get("warm").id == "warm"

    def test_conditioned_keep(self, calculator):
        result = calculator.evaluate("keep(ta, ta > 280)")
        assert isinstance(result, Variable)
        assert result.valid_fraction() < 1.0

    def test_compound_expression(self, calculator):
        result = calculator.evaluate("(ta * 2 + zg / 100) - ta")
        assert isinstance(result, Variable)

    def test_unary_minus_and_power(self, calculator):
        result = calculator.evaluate("-(ta ** 2)")
        assert float(result.max()) <= 0.0

    def test_script_interface(self, calculator, view):
        results = calculator.run_script([
            "# comment line",
            "celsius = ta - 273.15",
            "",
            "z = standardize(celsius)",
        ])
        assert len(results) == 2
        assert "celsius" in view and "z" in view

    def test_unknown_variable(self, calculator):
        with pytest.raises(CDMSError):
            calculator.evaluate("missing + 1")

    def test_unknown_function(self, calculator):
        with pytest.raises(CDATError, match="unknown function"):
            calculator.evaluate("frobnicate(ta)")

    def test_syntax_error(self, calculator):
        with pytest.raises(CDATError, match="syntax"):
            calculator.evaluate("ta +* 2")

    def test_attribute_access_forbidden(self, calculator):
        with pytest.raises(CDATError):
            calculator.evaluate("ta.data")

    def test_subscript_forbidden(self, calculator):
        with pytest.raises(CDATError):
            calculator.evaluate("ta[0]")

    def test_import_forbidden(self, calculator):
        with pytest.raises(CDATError):
            calculator.evaluate("__import__('os')")

    def test_bad_assignment_target(self, calculator):
        with pytest.raises(CDATError):
            calculator.assign("2x = ta")

    def test_scalar_assignment_not_stored(self, calculator, view):
        calculator.assign("c = correlation(ta, zg)")
        assert "c" not in view  # only Variables enter the workspace

    def test_transcript(self, calculator):
        calculator.evaluate("ta + 1")
        assert calculator.transcript[-1][0] == "ta + 1"

    def test_help_lists_operations(self, calculator):
        listing = calculator.help()
        assert "anomalies" in listing
        assert "keep" in listing
