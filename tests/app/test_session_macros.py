"""Session macros: record, replay, persist."""

import pytest

from repro.app.session import Macro, MacroRecorder, MacroStep
from repro.dv3d.cell import DV3DCell
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.volume import VolumePlot
from repro.spreadsheet.sheet import CellBinding, Spreadsheet
from repro.spreadsheet.sync import SyncGroup
from repro.util.errors import SpreadsheetError


def make_group(ta, plots=("slicer", "volume")):
    sheet = Spreadsheet("s", 1, len(plots))
    for col, kind in enumerate(plots):
        slot = sheet.place(0, col, CellBinding("t", 0, col))
        plot = SlicerPlot(ta) if kind == "slicer" else VolumePlot(ta)
        slot.cell = DV3DCell(plot)
    return sheet, SyncGroup(sheet)


class TestRecording:
    def test_record_and_stop(self, ta):
        _, group = make_group(ta)
        recorder = MacroRecorder("tour", group)
        recorder.start()
        group.key("c")
        group.drag(0.1, 0.0, "camera")
        macro = recorder.stop()
        assert len(macro) == 2
        assert macro.steps[0] == MacroStep("key", {"key": "c"})

    def test_only_records_while_running(self, ta):
        _, group = make_group(ta)
        group.key("c")  # before start: not recorded
        recorder = MacroRecorder("tour", group)
        recorder.start()
        group.key("t")
        macro = recorder.stop()
        assert len(macro) == 1
        assert macro.steps[0].payload["key"] == "t"

    def test_double_start_rejected(self, ta):
        _, group = make_group(ta)
        recorder = MacroRecorder("x", group)
        recorder.start()
        with pytest.raises(SpreadsheetError):
            recorder.start()

    def test_stop_without_start(self, ta):
        _, group = make_group(ta)
        with pytest.raises(SpreadsheetError):
            MacroRecorder("x", group).stop()


class TestReplay:
    def test_replay_reproduces_state(self, ta):
        sheet_a, group_a = make_group(ta)
        recorder = MacroRecorder("tour", group_a)
        recorder.start()
        group_a.key("c")
        group_a.key("t")
        group_a.drag(0.0, 0.25, "slice:z")
        macro = recorder.stop()

        sheet_b, group_b = make_group(ta)
        applied = macro.replay(group_b)
        assert applied == 3
        state_a = sheet_a.get(0, 0).cell.plot.state()
        state_b = sheet_b.get(0, 0).cell.plot.state()
        assert state_a["colormap"] == state_b["colormap"]
        assert state_a["time_index"] == state_b["time_index"]
        assert state_a["plane_positions"] == state_b["plane_positions"]

    def test_replay_on_different_layout(self, ta):
        """A macro recorded on two cells replays on a three-cell sheet."""
        _, group_a = make_group(ta)
        recorder = MacroRecorder("tour", group_a)
        recorder.start()
        group_a.key("c")
        macro = recorder.stop()
        sheet_b, group_b = make_group(ta, plots=("slicer", "slicer", "volume"))
        macro.replay(group_b)
        names = {c.plot.colormap.name for c in sheet_b.live_cells()}
        assert len(names) == 1  # all three cycled together

    def test_configure_step(self, ta):
        sheet, group = make_group(ta)
        macro = Macro("conf", [MacroStep("configure",
                                         {"state": {"plot": {"time_index": 2}}})])
        macro.replay(group)
        assert all(c.plot.time_index == 2 for c in sheet.active_cells())

    def test_unknown_step_kind(self, ta):
        _, group = make_group(ta)
        macro = Macro("bad", [MacroStep("teleport", {})])
        with pytest.raises(SpreadsheetError):
            macro.replay(group)


class TestPersistence:
    def test_json_roundtrip(self, ta, tmp_path):
        _, group = make_group(ta)
        recorder = MacroRecorder("tour", group)
        recorder.start()
        group.key("c")
        group.drag(0.1, -0.2, "camera")
        macro = recorder.stop()
        path = tmp_path / "tour.macro.json"
        macro.save(path)
        loaded = Macro.load(path)
        assert loaded.name == "tour"
        assert [s.to_dict() for s in loaded.steps] == [s.to_dict() for s in macro.steps]

    def test_loaded_macro_replays(self, ta, tmp_path):
        _, group = make_group(ta)
        Macro("m", [MacroStep("key", {"key": "t"})]).save(tmp_path / "m.json")
        loaded = Macro.load(tmp_path / "m.json")
        sheet, group2 = make_group(ta)
        loaded.replay(group2)
        assert sheet.get(0, 0).cell.plot.time_index == 1

    def test_malformed_step(self):
        with pytest.raises(SpreadsheetError):
            MacroStep.from_dict({"kind": "key"})
