"""The application facade and the plot palette."""

import pytest

from repro.app.application import Application
from repro.app.plot_palette import PlotPalette
from repro.provenance.query import version_history
from repro.util.errors import DV3DError, SpreadsheetError

SIZE = {"nlat": 12, "nlon": 16, "nlev": 4, "ntime": 2}


@pytest.fixture()
def app(registry):
    application = Application(registry)
    application.new_project("demo")
    return application


class TestPalette:
    def test_all_plot_types_present(self):
        palette = PlotPalette()
        assert set(palette.names()) == {
            "Slicer", "Volume", "Isosurface",
            "HovmollerSlicer", "HovmollerVolume", "VectorSlicer",
            "VolumeSlicer",
        }

    def test_unknown_template(self):
        with pytest.raises(DV3DError):
            PlotPalette().get("PieChart")

    def test_describe(self):
        descriptions = PlotPalette().describe()
        assert "leveling" in descriptions["Volume"]


class TestApplication:
    def test_project_management(self, registry):
        app = Application(registry)
        with pytest.raises(SpreadsheetError):
            _ = app.project  # no project yet
        app.new_project("one")
        assert app.project.name == "one"
        with pytest.raises(SpreadsheetError):
            app.new_project("one")

    def test_create_plot_end_to_end(self, app):
        cell = app.create_plot(
            "Slicer", "main", (0, 0),
            dataset_source="synthetic_reanalysis",
            variables={"variable": "ta"},
            size=SIZE,
            cell_params={"width": 48, "height": 36},
        )
        assert cell is not None
        image = cell.render(48, 36).to_uint8()
        assert image.shape == (36, 48, 3)
        # the workflow construction was recorded as provenance
        vistrail = next(iter(app.project.vistrails.values()))
        history = version_history(vistrail, vistrail.current_version)
        assert any("Slicer" in line for line in history)
        assert any("DV3DCell" in line for line in history)

    def test_create_plot_without_execute(self, app):
        result = app.create_plot(
            "Volume", "main", (0, 1),
            dataset_source="synthetic_reanalysis",
            variables={"variable": "ta"}, size=SIZE, execute=False,
        )
        assert result is None
        slot = app.project.sheets["main"].get(0, 1)
        assert slot is not None and slot.cell is None

    def test_two_variable_plot(self, app):
        cell = app.create_plot(
            "Isosurface", "main", (1, 0),
            dataset_source="synthetic_reanalysis",
            variables={"variable": "ta", "color_variable": "zg"},
            size=SIZE,
            cell_params={"width": 32, "height": 24},
        )
        assert cell.plot.color_variable is not None

    def test_missing_required_variable(self, app):
        with pytest.raises(DV3DError, match="missing"):
            app.create_plot(
                "Slicer", "main", (0, 0),
                dataset_source="synthetic_reanalysis", variables={},
            )

    def test_sync_group_propagates(self, app):
        for col in range(2):
            app.create_plot(
                "Slicer", "main", (0, col),
                dataset_source="synthetic_reanalysis",
                variables={"variable": "ta"}, size=SIZE,
                cell_params={"width": 24, "height": 18},
            )
        group = app.sync_group("main")
        group.key("t")
        cells = app.project.sheets["main"].live_cells()
        assert all(c.plot.time_index == 1 for c in cells)

    def test_esg_integration(self, app):
        ds = app.open_esg_dataset("storm_case_study")
        assert "wspd" in ds
        assert app.esg.transfers

    def test_panel_views(self, app):
        app.create_plot(
            "Slicer", "main", (0, 0),
            dataset_source="synthetic_reanalysis",
            variables={"variable": "ta"}, size=SIZE, execute=False,
        )
        assert "Volume" in app.plot_view()
        project_view = app.project_view()
        assert "main" in project_view["demo"][0]
        ds = app.open_esg_dataset("storm_case_study")
        app.variables.load(ds, "wspd")
        assert "wspd" in app.variable_view()
