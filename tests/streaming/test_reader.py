"""The resilient chunk reader: verification, retries, quarantine, cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro import cache, obs
from repro.cdms.storage import read_cdz
from repro.resilience import faults
from repro.streaming.config import StreamingConfig
from repro.streaming.dataset import StreamingSource
from repro.util.errors import ChunkCorruptionError, StreamingError


FAST = StreamingConfig(retry_base_delay=0.0, prefetch=False)


@pytest.fixture()
def reader(v2_path):
    return StreamingSource(v2_path, FAST).reader("ta")


class TestHappyPath:
    def test_chunks_concatenate_to_eager(self, reader, v1_path):
        _, _, [eager] = read_cdz(v1_path)
        layout = reader.layout
        raw = np.concatenate(
            [reader.read_chunk(c) for c in layout.chunks], axis=layout.chunk_axis
        )
        assert raw.tobytes() == eager.filled().tobytes()

    def test_counters(self, reader):
        obs.enable()
        reader.read_chunk(reader.layout.chunks[0])
        recorder = obs.get_recorder()
        assert recorder.counter_total("streaming.chunks.read") == 1
        assert recorder.counter_total("streaming.chunks.verified") == 1
        assert recorder.counter_total("streaming.chunks.corrupt") == 0


class TestFaultSites:
    def test_transient_read_fault_retried(self, reader):
        obs.enable()
        faults.arm("streaming.read", "raise", match={"chunk": 2}, times=2)
        chunk = reader.layout.chunks[2]
        value = reader.read_chunk(chunk)
        assert value.shape == reader.layout.chunk_shape(chunk)
        assert obs.get_recorder().counter_total("streaming.chunks.retried") == 2
        assert not reader.is_quarantined(2)

    def test_exhausted_retries_quarantine(self, reader):
        faults.arm("streaming.read", "raise", match={"chunk": 1}, times=0)
        with pytest.raises(StreamingError):
            reader.read_chunk(reader.layout.chunks[1])
        assert reader.is_quarantined(1)

    def test_corrupt_fault_fails_verification(self, reader):
        faults.arm("streaming.verify", "corrupt", match={"chunk": 0}, times=0)
        with pytest.raises(ChunkCorruptionError):
            reader.read_chunk(reader.layout.chunks[0])

    def test_decode_fault_site(self, reader):
        faults.arm("streaming.decode", "raise", match={"chunk": 4}, times=0)
        with pytest.raises(StreamingError):
            reader.read_chunk(reader.layout.chunks[4])

    def test_heals_after_disarm(self, reader, v1_path):
        faults.arm("streaming.read", "raise", match={"chunk": 3}, times=0)
        with pytest.raises(StreamingError):
            reader.read_chunk(reader.layout.chunks[3])
        assert reader.is_quarantined(3)
        faults.disarm()
        _, _, [eager] = read_cdz(v1_path)
        value = reader.read_chunk(reader.layout.chunks[3])
        assert value.tobytes() == eager.filled()[3:4].tobytes()
        assert not reader.is_quarantined(3)


class TestLowres:
    def test_lowres_verified_and_shaped(self, reader):
        chunk = reader.layout.chunks[0]
        full = reader.read_lowres(chunk)
        assert full.shape == reader.layout.chunk_shape(chunk)
        # nearest-neighbour substitution: values come from the true chunk
        true = reader.read_chunk(chunk)
        assert np.isin(full, true).all()

    def test_lowres_missing_raises_typed(self, tmp_path, variable):
        from repro.cdms.storage import write_cdz

        path = tmp_path / "nolr.cdz"
        write_cdz(path, [variable], version=2, lowres_factor=1)
        reader = StreamingSource(path, FAST).reader("ta")
        with pytest.raises(StreamingError, match="no low-resolution"):
            reader.read_lowres(reader.layout.chunks[0])


class TestResultCache:
    def test_verified_chunks_cached_by_digest(self, v2_path, tmp_path):
        with cache.use_config(
            cache.CacheConfig(
                enabled=True, memory_entries=64, path=str(tmp_path / "c")
            )
        ):
            cache.reset_cache()
            obs.enable()
            reader = StreamingSource(v2_path, FAST).reader("ta")
            chunk = reader.layout.chunks[0]
            first = reader.read_chunk(chunk)
            second = reader.read_chunk(chunk)
            recorder = obs.get_recorder()
            assert recorder.counter_total("streaming.chunks.cache_hits") == 1
            assert recorder.counter_total("streaming.chunks.read") == 1
            assert first.tobytes() == second.tobytes()
        cache.reset_cache()

    def test_cache_hit_skips_armed_faults(self, v2_path, tmp_path):
        # a digest hit is proof of integrity: no re-read, no re-verify
        with cache.use_config(
            cache.CacheConfig(
                enabled=True, memory_entries=64, path=str(tmp_path / "c")
            )
        ):
            cache.reset_cache()
            reader = StreamingSource(v2_path, FAST).reader("ta")
            chunk = reader.layout.chunks[0]
            value = reader.read_chunk(chunk)
            faults.arm("streaming.read", "raise", times=0)
            again = reader.read_chunk(chunk)
            assert again.tobytes() == value.tobytes()
        cache.reset_cache()

    def test_disabled_cache_never_touched(self, reader):
        chunk = reader.layout.chunks[0]
        reader.read_chunk(chunk)
        assert cache.get_cache().stats()["hits"] == 0
