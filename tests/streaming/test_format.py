"""The v2 container format: layout, digests, statistics, fallbacks."""

from __future__ import annotations

import json
import zipfile

import numpy as np
import pytest

from repro.cdms.storage import detect_version, read_cdz, write_cdz
from repro.streaming.config import StreamingConfig
from repro.streaming.dataset import StreamingSource
from repro.streaming.format import content_digest, decimate, upsample
from repro.util.errors import CDMSError, StreamingError

from .conftest import make_variable


class TestLayout:
    def test_version_detected(self, v1_path, v2_path):
        assert detect_version(v1_path) == 1
        assert detect_version(v2_path) == 2

    def test_members_and_manifest(self, v2_path):
        with zipfile.ZipFile(v2_path) as archive:
            names = set(archive.namelist())
            manifest = json.loads(archive.read("manifest.json"))
        assert manifest["format_version"] == 2
        (var_meta,) = manifest["variables"]
        chunks = var_meta["chunks"]
        # one chunk per timestep by default
        assert len(chunks) == 8
        for row in chunks:
            assert row["member"] in names
            assert row["digest"].startswith("sha256:")
            assert row["lowres"]["member"] in names
            assert row["stats"]["valid"] > 0

    def test_chunks_stored_uncompressed(self, v2_path):
        with zipfile.ZipFile(v2_path) as archive:
            for info in archive.infolist():
                if info.filename.startswith("chunks/"):
                    assert info.compress_type == zipfile.ZIP_STORED

    def test_digests_cover_member_bytes(self, v2_path):
        with zipfile.ZipFile(v2_path) as archive:
            manifest = json.loads(archive.read("manifest.json"))
            for row in manifest["variables"][0]["chunks"]:
                payload = archive.read(row["member"])
                assert content_digest(payload) == row["digest"]

    def test_chunk_extent_honoured(self, tmp_path, variable):
        path = tmp_path / "c3.cdz"
        write_cdz(path, [variable], version=2, chunk_timesteps=3)
        source = StreamingSource(path)
        layout = source.layout("ta")
        assert [c.extent for c in layout.chunks] == [3, 3, 2]
        assert layout.chunk_of(5).start == 3

    def test_lowres_disabled(self, tmp_path, variable):
        path = tmp_path / "nolr.cdz"
        write_cdz(path, [variable], version=2, lowres_factor=1)
        layout = StreamingSource(path).layout("ta")
        assert all(c.lowres_member is None for c in layout.chunks)


class TestStatistics:
    def test_finite_range_matches_eager(self, v2_path, v1_path):
        _, _, [eager] = read_cdz(v1_path)
        layout = StreamingSource(v2_path).layout("ta")
        assert layout.finite_range() == eager.finite_range()

    def test_all_masked_chunk_has_null_stats(self, tmp_path):
        var = make_variable(ntime=2, masked=False)
        var.data[0] = np.ma.masked
        path = tmp_path / "m.cdz"
        write_cdz(path, [var], version=2)
        layout = StreamingSource(path).layout("ta")
        assert layout.chunks[0].stat_valid == 0
        assert layout.chunks[0].stat_min is None
        assert layout.finite_range() == var.finite_range()


class TestLowresResampling:
    def test_round_trip_shapes(self):
        raw = np.arange(2 * 5 * 7, dtype=np.float64).reshape(2, 5, 7)
        low = decimate(raw, 0, 2)
        assert low.shape == (2, 3, 4)
        full = upsample(low, raw.shape, 0, 2)
        assert full.shape == raw.shape
        # nearest-neighbour: every value in the upsample exists in the source
        assert np.isin(full, raw).all()

    def test_factor_one_identity(self):
        raw = np.arange(12.0).reshape(3, 4)
        assert (decimate(raw, 0, 1) == raw).all()
        assert (upsample(raw, raw.shape, 0, 1) == raw).all()


class TestParseErrors:
    def test_v1_source_rejected(self, v1_path):
        with pytest.raises(StreamingError, match="not a v2"):
            StreamingSource(v1_path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StreamingError, match="no such"):
            StreamingSource(tmp_path / "absent.cdz")

    def test_gap_in_chunk_table_rejected(self, tmp_path, v2_path):
        broken = tmp_path / "gap.cdz"
        with zipfile.ZipFile(v2_path) as src, zipfile.ZipFile(broken, "w") as dst:
            for info in src.infolist():
                payload = src.read(info.filename)
                if info.filename == "manifest.json":
                    manifest = json.loads(payload)
                    del manifest["variables"][0]["chunks"][3]
                    payload = json.dumps(manifest).encode()
                dst.writestr(info, payload)
        with pytest.raises(StreamingError, match="tile"):
            StreamingSource(broken)

    def test_unknown_axis_rejected(self, tmp_path, v2_path):
        broken = tmp_path / "ax.cdz"
        with zipfile.ZipFile(v2_path) as src, zipfile.ZipFile(broken, "w") as dst:
            for info in src.infolist():
                payload = src.read(info.filename)
                if info.filename == "manifest.json":
                    manifest = json.loads(payload)
                    manifest["variables"][0]["dimensions"][0] = "ghost"
                    payload = json.dumps(manifest).encode()
                dst.writestr(info, payload)
        with pytest.raises(CDMSError):
            StreamingSource(broken)


class TestConfigValidation:
    def test_bad_budget(self):
        with pytest.raises(StreamingError):
            StreamingConfig(memory_budget_bytes=0)

    def test_bad_depth(self):
        with pytest.raises(StreamingError):
            StreamingConfig(prefetch_depth=0)

    def test_bad_retries(self):
        with pytest.raises(StreamingError):
            StreamingConfig(read_retries=0)

    def test_retry_policy_shape(self):
        policy = StreamingConfig(read_retries=4, retry_base_delay=0.01).retry_policy()
        assert policy.max_attempts == 4
        assert len(policy.delays()) == 3
