"""The corruption matrix: every mangled container fails with a typed error.

Each damage mode — truncation, an on-disk bit flip inside a payload
member, a deleted member, an unsupported version stamp, plain garbage —
is applied to both container versions, and every read path must raise
:class:`CDMSError` (or its :class:`StreamingError` subclass), never a
bare ``KeyError``, ``zipfile.BadZipFile``, or ``zlib.error``.
"""

from __future__ import annotations

import json
import zipfile

import pytest

from repro.cdms.dataset import open_dataset
from repro.cdms.storage import detect_version, read_cdz
from repro.streaming.dataset import StreamingSource
from repro.util.errors import CDMSError, StreamingError


def flip_member_byte(path, member: str) -> None:
    """Flip one byte of *member*'s stored payload in the file itself."""
    with zipfile.ZipFile(path) as archive:
        info = archive.getinfo(member)
    with open(path, "r+b") as handle:
        handle.seek(info.header_offset)
        local = handle.read(30)
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        target = (
            info.header_offset + 30 + name_len + extra_len
            + info.compress_size // 2
        )
        handle.seek(target)
        byte = handle.read(1)[0]
        handle.seek(target)
        handle.write(bytes([byte ^ 0xFF]))


def drop_member(src, dst, member: str) -> None:
    with zipfile.ZipFile(src) as a, zipfile.ZipFile(dst, "w") as b:
        for info in a.infolist():
            if info.filename != member:
                b.writestr(info, a.read(info.filename))


def rewrite_manifest(src, dst, mutate) -> None:
    with zipfile.ZipFile(src) as a, zipfile.ZipFile(dst, "w") as b:
        for info in a.infolist():
            payload = a.read(info.filename)
            if info.filename == "manifest.json":
                manifest = json.loads(payload)
                mutate(manifest)
                payload = json.dumps(manifest).encode()
            b.writestr(info, payload)


@pytest.fixture(params=[1, 2], ids=["v1", "v2"])
def version(request):
    return request.param


@pytest.fixture()
def container(version, v1_path, v2_path):
    return {1: v1_path, 2: v2_path}[version]


PAYLOAD_MEMBER = {1: "vars/ta.npy", 2: "chunks/v000/c000002.npy"}


class TestCorruptionMatrix:
    def test_truncated_archive(self, tmp_path, container, version):
        broken = tmp_path / "trunc.cdz"
        payload = container.read_bytes()
        broken.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(CDMSError):
            read_cdz(broken)
        with pytest.raises(CDMSError):
            detect_version(broken)

    def test_bit_flipped_payload(self, tmp_path, container, version):
        import shutil

        broken = tmp_path / "flip.cdz"
        shutil.copy(container, broken)
        flip_member_byte(broken, PAYLOAD_MEMBER[version])
        with pytest.raises(CDMSError):
            read_cdz(broken)

    def test_bit_flipped_chunk_streaming_read(self, tmp_path, v2_path):
        import shutil

        broken = tmp_path / "flip2.cdz"
        shutil.copy(v2_path, broken)
        flip_member_byte(broken, PAYLOAD_MEMBER[2])
        source = StreamingSource(broken)
        reader = source.reader("ta")
        with pytest.raises(StreamingError):
            reader.read_chunk(reader.layout.chunks[2])

    def test_missing_payload_member(self, tmp_path, container, version):
        broken = tmp_path / "gone.cdz"
        drop_member(container, broken, PAYLOAD_MEMBER[version])
        with pytest.raises(CDMSError):
            read_cdz(broken)

    def test_missing_manifest(self, tmp_path, container, version):
        broken = tmp_path / "noman.cdz"
        drop_member(container, broken, "manifest.json")
        with pytest.raises(CDMSError):
            read_cdz(broken)
        with pytest.raises(CDMSError):
            detect_version(broken)

    def test_unsupported_format_version(self, tmp_path, container, version):
        broken = tmp_path / "v99.cdz"
        rewrite_manifest(
            container, broken, lambda m: m.update(format_version=99)
        )
        with pytest.raises(CDMSError, match="version"):
            read_cdz(broken)
        with pytest.raises(CDMSError, match="version"):
            open_dataset(broken, streaming="auto")

    def test_garbage_file(self, tmp_path):
        junk = tmp_path / "junk.cdz"
        junk.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CDMSError):
            read_cdz(junk)
        with pytest.raises(StreamingError):
            StreamingSource(junk)

    def test_manifest_not_json(self, tmp_path, container, version):
        broken = tmp_path / "badjson.cdz"
        with zipfile.ZipFile(container) as a, zipfile.ZipFile(broken, "w") as b:
            for info in a.infolist():
                payload = a.read(info.filename)
                if info.filename == "manifest.json":
                    payload = b"{ not json"
                b.writestr(info, payload)
        with pytest.raises(CDMSError):
            read_cdz(broken)
