"""Fixtures for the out-of-core streaming suite.

Every test gets a pristine fault registry and a disabled recorder; the
dataset fixtures write both container versions of the same variables so
differential assertions always have an eager twin to compare against.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cdms.axis import level_axis, time_axis, uniform_latitude, uniform_longitude
from repro.cdms.storage import write_cdz
from repro.cdms.variable import Variable
from repro.resilience import faults


@pytest.fixture(autouse=True)
def clean_faults_and_obs():
    faults.disarm()
    obs.set_recorder(obs.Recorder())
    yield
    faults.disarm()
    if obs.enabled():
        obs.disable()
    obs.set_recorder(obs.Recorder())


def make_variable(
    ntime: int = 8,
    nlev: int = 4,
    nlat: int = 10,
    nlon: int = 14,
    var_id: str = "ta",
    seed: int = 11,
    masked: bool = True,
) -> Variable:
    rng = np.random.default_rng(seed)
    data = np.ma.MaskedArray(rng.normal(280.0, 12.0, size=(ntime, nlev, nlat, nlon)))
    if masked:
        data[0, 0, 0, :3] = np.ma.masked
        data[-1, -1, -1, -1] = np.ma.masked
    axes = (
        time_axis(np.arange(ntime) * 30.0),
        level_axis(np.linspace(1000.0, 100.0, nlev).tolist()),
        uniform_latitude(nlat),
        uniform_longitude(nlon),
    )
    return Variable(data, axes, id=var_id, units="K")


@pytest.fixture()
def variable():
    return make_variable()


@pytest.fixture()
def v2_path(tmp_path, variable):
    path = tmp_path / "data_v2.cdz"
    write_cdz(path, [variable], dataset_id="streaming-test", version=2)
    return path


@pytest.fixture()
def v1_path(tmp_path, variable):
    path = tmp_path / "data_v1.cdz"
    write_cdz(path, [variable], dataset_id="streaming-test", version=1)
    return path
