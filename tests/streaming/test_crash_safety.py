"""Crash-safe publication: a SIGKILLed writer never leaves a torn .cdz.

``write_cdz`` stages the archive in a same-directory temp file and
publishes it with a single ``os.replace``.  Killing the writer between
the write and the fsync must leave either nothing or ``.tmp-*`` debris
at the destination — never a readable-but-partial container.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal

import pytest

from repro.cdms import storage
from repro.cdms.storage import read_cdz, write_cdz

from .conftest import make_variable


def _killed_writer(directory: str, version: int) -> None:
    def kill_instead_of_sync(fd: int) -> None:
        os.kill(os.getpid(), signal.SIGKILL)

    storage._fsync = kill_instead_of_sync
    write_cdz(
        os.path.join(directory, "out.cdz"),
        [make_variable(ntime=4)],
        version=version,
    )


def _failing_fsync(fd: int) -> None:
    raise OSError("disk full")


class TestKilledWriter:
    @pytest.mark.parametrize("version", [1, 2])
    def test_sigkill_mid_publish_leaves_no_final_file(self, tmp_path, version):
        ctx = mp.get_context("fork")
        proc = ctx.Process(target=_killed_writer, args=(str(tmp_path), version))
        proc.start()
        proc.join(60.0)
        assert proc.exitcode == -signal.SIGKILL

        final = tmp_path / "out.cdz"
        assert not final.exists(), "torn container published"
        debris = [p.name for p in tmp_path.iterdir()]
        assert all(name.startswith(storage._TMP_PREFIX) for name in debris)

    @pytest.mark.parametrize("version", [1, 2])
    def test_existing_file_survives_failed_rewrite(
        self, tmp_path, version, monkeypatch
    ):
        path = tmp_path / "data.cdz"
        original = make_variable(ntime=4, seed=1)
        write_cdz(path, [original], version=version)
        before = path.read_bytes()

        monkeypatch.setattr(storage, "_fsync", _failing_fsync)
        with pytest.raises(OSError):
            write_cdz(path, [make_variable(ntime=4, seed=2)], version=version)

        assert path.read_bytes() == before
        _, _, [var] = read_cdz(path)
        assert var.filled().tobytes() == original.filled().tobytes()
        # the aborted attempt cleans up its own temp file
        assert [p.name for p in tmp_path.iterdir()] == ["data.cdz"]

    def test_publish_is_atomic_rename(self, tmp_path, monkeypatch):
        observed = {}
        real_replace = os.replace

        def spy(src, dst):
            observed["src"] = str(src)
            observed["dst"] = str(dst)
            return real_replace(src, dst)

        monkeypatch.setattr(storage.os, "replace", spy)
        path = tmp_path / "atomic.cdz"
        write_cdz(path, [make_variable(ntime=2)], version=2)
        assert observed["dst"] == str(path)
        assert os.path.dirname(observed["src"]) == str(tmp_path)
        assert os.path.basename(observed["src"]).startswith(storage._TMP_PREFIX)
