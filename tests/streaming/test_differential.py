"""The byte-identity contract: streaming animation == in-memory animation.

Each of the five DV3D plot types is rendered twice over the same saved
v2 container — once through the eager ``Dataset.load`` path, once
through lazy streaming variables — and every frame must match byte for
byte.  A second pass pins the memory side: a dataset at least 4x the
configured budget streams through with peak resident chunk bytes under
that budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cdms.dataset import open_dataset
from repro.data import catalog
from repro.dv3d import (
    Animator,
    HovmollerSlicerPlot,
    IsosurfacePlot,
    SlicerPlot,
    StreamingAnimator,
    VectorSlicerPlot,
    VolumePlot,
)
from repro.streaming.config import StreamingConfig


SIZE = dict(nlat=24, nlon=36, nlev=6, ntime=6)
WAVE_SIZE = dict(nlon=48, nlat=16, ntime=10)


@pytest.fixture(scope="module")
def reanalysis_v2(tmp_path_factory):
    path = tmp_path_factory.mktemp("diff") / "reanalysis.cdz"
    catalog.synthetic_reanalysis(**SIZE).save(path, version=2)
    return path


@pytest.fixture(scope="module")
def wave_v2(tmp_path_factory):
    path = tmp_path_factory.mktemp("diff") / "wave.cdz"
    catalog.wave_case_study(**WAVE_SIZE).save(path, version=2)
    return path


def render_both(make_plot, path, count=3, **animator_kwargs):
    eager_ds = open_dataset(path, streaming="off")
    eager_frames = Animator(make_plot(eager_ds)).render_frames(
        count=count, **animator_kwargs
    )
    with open_dataset(path, streaming="on") as lazy_ds:
        animator = StreamingAnimator(make_plot(lazy_ds))
        lazy_frames, records = animator.render_frames_with_status(
            count=count, **animator_kwargs
        )
    assert all(r.status == "ok" for r in records), records
    return eager_frames, lazy_frames


def assert_frames_identical(eager_frames, lazy_frames):
    assert len(eager_frames) == len(lazy_frames)
    for index, (a, b) in enumerate(zip(eager_frames, lazy_frames)):
        assert a.shape == b.shape
        assert np.array_equal(a, b), f"frame {index} diverged"


class TestFiveWorkloads:
    def test_volume(self, reanalysis_v2):
        assert_frames_identical(
            *render_both(
                lambda ds: VolumePlot(
                    ds.get_variable("ta"), center=0.3, width=0.5
                ),
                reanalysis_v2,
            )
        )

    def test_isosurface(self, reanalysis_v2):
        assert_frames_identical(
            *render_both(
                lambda ds: IsosurfacePlot(
                    ds.get_variable("ta"),
                    color_variable=ds.get_variable("hus"),
                ),
                reanalysis_v2,
            )
        )

    def test_slicer(self, reanalysis_v2):
        assert_frames_identical(
            *render_both(
                lambda ds: SlicerPlot(ds.get_variable("ta")), reanalysis_v2
            )
        )

    def test_vector_slicer(self, reanalysis_v2):
        assert_frames_identical(
            *render_both(
                lambda ds: VectorSlicerPlot(
                    ds.get_variable("ua"),
                    ds.get_variable("va"),
                    mode="streamlines",
                    seed_density=3,
                ),
                reanalysis_v2,
            )
        )

    def test_hovmoller(self, wave_v2):
        assert_frames_identical(
            *render_both(
                lambda ds: HovmollerSlicerPlot(ds.get_variable("olr_anom")),
                wave_v2,
            )
        )


class TestMemoryBound:
    def test_peak_resident_under_budget(self, reanalysis_v2):
        probe = open_dataset(reanalysis_v2, streaming="on")
        layout = probe.streaming_source.layout("ta")
        dataset_bytes = layout.total_nbytes()
        budget = max(layout.max_chunk_nbytes(), dataset_bytes // 4)
        assert dataset_bytes >= 4 * budget or budget == layout.max_chunk_nbytes()
        probe.close()

        config = StreamingConfig(memory_budget_bytes=budget, prefetch_depth=8)
        with open_dataset(
            reanalysis_v2, streaming="on", streaming_config=config
        ) as ds:
            plot = SlicerPlot(ds.get_variable("ta"))
            StreamingAnimator(plot).render_frames(count=SIZE["ntime"])
            prefetcher = ds.streaming_source.prefetcher("ta")
            assert prefetcher.peak_resident_bytes <= budget
            assert dataset_bytes >= 4 * prefetcher.peak_resident_bytes
