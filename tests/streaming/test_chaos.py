"""Chaos: armed fault sites plus a permanently corrupt chunk on disk.

The acceptance scenario from the issue: with ``streaming.read`` /
``streaming.verify`` faults armed at a 10% rate and one chunk whose
bytes are flipped in the container itself, a 20-frame animation must
complete without an exception, account every frame in the
``streaming.frames.*`` counters, and — once faults are disarmed —
recover frames byte-identical to the in-memory render.
"""

from __future__ import annotations

import zipfile

import numpy as np
import pytest

from repro import obs
from repro.cdms.dataset import open_dataset
from repro.cdms.storage import write_cdz
from repro.dv3d import Animator, SlicerPlot, StreamingAnimator
from repro.resilience import faults
from repro.streaming.config import StreamingConfig
from repro.streaming.format import content_digest

from .conftest import make_variable


NTIME = 10
FRAMES = 20
FAST = StreamingConfig(retry_base_delay=0.0)

CORRUPT_CHUNK = 3
CORRUPT_MEMBER = f"chunks/v000/c{CORRUPT_CHUNK:06d}.npy"


@pytest.fixture()
def pristine(tmp_path):
    path = tmp_path / "pristine.cdz"
    write_cdz(path, [make_variable(ntime=NTIME)], version=2)
    return path


@pytest.fixture()
def corrupted(tmp_path, pristine):
    """A copy of the container with one chunk's bytes flipped on disk."""
    path = tmp_path / "corrupted.cdz"
    with zipfile.ZipFile(pristine) as src, zipfile.ZipFile(path, "w") as dst:
        for info in src.infolist():
            payload = src.read(info.filename)
            if info.filename == CORRUPT_MEMBER:
                flipped = bytearray(payload)
                flipped[len(flipped) // 2] ^= 0xFF
                payload = bytes(flipped)
            dst.writestr(info, payload)
    return path


def arm_ten_percent():
    # each fault skips 9 checks then fires once; chained they fire on
    # every 10th visit to the site — the issue's "10% of reads" rate
    for _ in range(3):
        faults.arm("streaming.read", "raise", after=9, times=1)
    for _ in range(3):
        faults.arm("streaming.verify", "corrupt", after=9, times=1)


class TestChaosRun:
    def test_animation_survives_and_accounts_every_frame(self, corrupted):
        obs.enable()
        arm_ten_percent()
        with open_dataset(corrupted, streaming="on", streaming_config=FAST) as ds:
            animator = StreamingAnimator(SlicerPlot(ds.get_variable("ta")))
            frames, records = animator.render_frames_with_status(count=FRAMES)

        assert len(frames) == FRAMES
        assert len(records) == FRAMES

        # the animation wraps the 10 timesteps twice; both visits to the
        # corrupt chunk must degrade to the verified low-res companion
        assert records[CORRUPT_CHUNK].status == "degraded"
        assert records[CORRUPT_CHUNK].source == "lowres"
        assert records[CORRUPT_CHUNK + NTIME].status == "degraded"

        recorder = obs.get_recorder()
        n_ok = sum(1 for r in records if r.status == "ok")
        n_degraded = sum(1 for r in records if r.status == "degraded")
        assert n_ok + n_degraded == FRAMES
        assert recorder.counter_total("streaming.frames.ok") == n_ok
        assert recorder.counter_total("streaming.frames.degraded") == n_degraded
        assert recorder.counter_total("streaming.chunks.corrupt") >= 1

    def test_recovery_is_byte_identical_after_disarm(self, pristine):
        eager = Animator(
            SlicerPlot(open_dataset(pristine, streaming="off").get_variable("ta"))
        ).render_frames(count=FRAMES)

        with open_dataset(pristine, streaming="on", streaming_config=FAST) as ds:
            animator = StreamingAnimator(SlicerPlot(ds.get_variable("ta")))
            faults.arm("streaming.read", "raise", match={"chunk": 4}, times=0)
            arm_ten_percent()
            degraded_frames, degraded_records = animator.render_frames_with_status(
                count=FRAMES
            )
            assert any(r.status == "degraded" for r in degraded_records)

            faults.disarm()
            animator.plot.invalidate()
            healed, records = animator.render_frames_with_status(count=FRAMES)

        assert all(r.status == "ok" for r in records)
        for index, (a, b) in enumerate(zip(healed, eager)):
            assert np.array_equal(a, b), f"frame {index} not recovered"

    def test_corrupt_container_still_round_trips_elsewhere(self, corrupted, pristine):
        # the flip is real: the on-disk digest no longer matches
        with zipfile.ZipFile(corrupted) as archive:
            import json

            manifest = json.loads(archive.read("manifest.json"))
            row = manifest["variables"][0]["chunks"][CORRUPT_CHUNK]
            assert content_digest(archive.read(CORRUPT_MEMBER)) != row["digest"]
