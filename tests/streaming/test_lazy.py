"""Lazy variable proxy: indexing equivalence, slab iteration, degradation."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import obs
from repro.cdms.dataset import open_dataset
from repro.cdms.lazy import LazyVariable
from repro.cdms.storage import read_cdz
from repro.resilience import faults
from repro.streaming.config import StreamingConfig
from repro.util.errors import CDMSError, StreamingError


FAST = StreamingConfig(retry_base_delay=0.0, prefetch=False)


@pytest.fixture()
def pair(v1_path, v2_path):
    _, _, [eager] = read_cdz(v1_path)
    dataset = open_dataset(v2_path, streaming="on", streaming_config=FAST)
    return eager, dataset.get_variable("ta")


class TestOpenModes:
    def test_on_yields_lazy(self, v2_path):
        dataset = open_dataset(v2_path, streaming="on")
        assert isinstance(dataset.get_variable("ta"), LazyVariable)
        assert dataset.is_streaming
        dataset.close()

    def test_auto_on_v1_is_eager(self, v1_path):
        dataset = open_dataset(v1_path, streaming="auto")
        assert not isinstance(dataset.get_variable("ta"), LazyVariable)
        assert not dataset.is_streaming

    def test_auto_on_v2_is_lazy(self, v2_path):
        with open_dataset(v2_path, streaming="auto") as dataset:
            assert isinstance(dataset.get_variable("ta"), LazyVariable)

    def test_on_requires_v2(self, v1_path):
        with pytest.raises(CDMSError, match="format v2"):
            open_dataset(v1_path, streaming="on")

    def test_off_is_eager_even_on_v2(self, v2_path):
        dataset = open_dataset(v2_path, streaming="off")
        assert not isinstance(dataset.get_variable("ta"), LazyVariable)

    def test_bad_mode(self, v2_path):
        with pytest.raises(CDMSError, match="streaming"):
            open_dataset(v2_path, streaming="sometimes")


class TestIndexingEquivalence:
    @pytest.mark.parametrize(
        "key",
        [
            np.s_[:],
            np.s_[0],
            np.s_[3],
            np.s_[-1],
            np.s_[2:6],
            np.s_[1:8:2],
            np.s_[::3, 1:3],
            np.s_[5, :, 2:7, ::2],
        ],
    )
    def test_getitem_matches_eager(self, pair, key):
        eager, lazy = pair
        expected = eager[key]
        got = lazy[key]
        assert got.shape == expected.shape
        assert got.filled().tobytes() == expected.filled().tobytes()
        assert np.array_equal(
            np.ma.getmaskarray(got.data), np.ma.getmaskarray(expected.data)
        )

    def test_empty_slice_raises_like_eager(self, pair):
        eager, lazy = pair
        with pytest.raises(CDMSError, match="selects no points"):
            eager[0:0]
        with pytest.raises(CDMSError, match="selects no points"):
            lazy[0:0]

    def test_metadata_matches(self, pair):
        eager, lazy = pair
        assert lazy.shape == eager.shape
        assert lazy.dtype == eager.dtype
        assert [a.id for a in lazy.axes] == [a.id for a in eager.axes]
        assert lazy.finite_range() == eager.finite_range()

    def test_full_materialization_counted_once(self, pair):
        _, lazy = pair
        obs.enable()
        lazy._data
        lazy._data
        assert (
            obs.get_recorder().counter_total("streaming.materialize.full") == 1
        )


class TestSlabIteration:
    def test_slab_count(self, pair):
        eager, lazy = pair
        assert eager.slab_count() == 1
        assert lazy.slab_count() == 8

    def test_slabs_concatenate_to_eager(self, pair):
        eager, lazy = pair
        slabs = list(lazy.iter_slabs())
        assert len(slabs) == lazy.slab_count()
        whole = np.ma.concatenate([s.data for s in slabs], axis=0)
        assert whole.filled(eager.missing_value).tobytes() == eager.filled().tobytes()


class TestDegradation:
    def test_degraded_context_substitutes_lowres(self, v2_path):
        obs.enable()
        dataset = open_dataset(v2_path, streaming="on", streaming_config=FAST)
        lazy = dataset.get_variable("ta")
        faults.arm("streaming.read", "raise", match={"chunk": 2}, times=0)
        with pytest.raises(StreamingError):
            lazy[2]
        with lazy.degraded():
            slab = lazy[2]
        assert slab.shape == (1,) + lazy.shape[1:]
        recorder = obs.get_recorder()
        assert recorder.counter_total("streaming.slabs.degraded") == 1
        assert recorder.counter_total("streaming.chunks.lowres") == 1

    def test_degraded_exits_cleanly(self, pair):
        _, lazy = pair
        with lazy.degraded():
            pass
        assert lazy._degraded_depth == 0


class TestPickle:
    def test_round_trip(self, pair):
        eager, lazy = pair
        clone = pickle.loads(pickle.dumps(lazy))
        assert isinstance(clone, LazyVariable)
        assert clone.id == "ta"
        assert clone[1:3].filled().tobytes() == eager[1:3].filled().tobytes()
