"""The prefetch pipeline: window sizing, budget bounds, error parking."""

from __future__ import annotations

import time

import pytest

from repro.resilience import faults
from repro.streaming.config import StreamingConfig
from repro.streaming.dataset import StreamingSource
from repro.util.errors import StreamingError


def chunk_bytes(source: StreamingSource) -> int:
    return source.layout("ta").max_chunk_nbytes()


def wait_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestWindowSizing:
    def test_window_clamped_by_budget(self, v2_path):
        probe = StreamingSource(v2_path)
        per_chunk = chunk_bytes(probe)
        # room for exactly (1 served + 2 ahead)
        config = StreamingConfig(
            memory_budget_bytes=3 * per_chunk, prefetch_depth=8
        )
        with StreamingSource(v2_path, config) as source:
            assert source.prefetcher("ta").window == 2

    def test_window_clamped_by_depth(self, v2_path):
        config = StreamingConfig(prefetch_depth=3)
        with StreamingSource(v2_path, config) as source:
            assert source.prefetcher("ta").window == 3

    def test_prefetch_disabled(self, v2_path):
        config = StreamingConfig(prefetch=False)
        with StreamingSource(v2_path, config) as source:
            prefetcher = source.prefetcher("ta")
            assert prefetcher.window == 0
            assert prefetcher._thread is None

    def test_chunk_over_budget_rejected(self, v2_path):
        probe = StreamingSource(v2_path)
        config = StreamingConfig(memory_budget_bytes=chunk_bytes(probe) - 1)
        with pytest.raises(StreamingError, match="budget"):
            StreamingSource(v2_path, config).prefetcher("ta")


class TestDelivery:
    def test_sequential_scan_stays_under_budget(self, v2_path):
        probe = StreamingSource(v2_path)
        per_chunk = chunk_bytes(probe)
        budget = 3 * per_chunk
        config = StreamingConfig(memory_budget_bytes=budget, prefetch_depth=8)
        with StreamingSource(v2_path, config) as source:
            prefetcher = source.prefetcher("ta")
            layout = source.layout("ta")
            for index in range(layout.n_chunks):
                value = prefetcher.get(index)
                assert value.shape == layout.chunk_shape(layout.chunks[index])
            assert prefetcher.peak_resident_bytes <= budget

    def test_lookahead_actually_runs_ahead(self, v2_path):
        config = StreamingConfig(prefetch_depth=2)
        with StreamingSource(v2_path, config) as source:
            prefetcher = source.prefetcher("ta")
            prefetcher.get(0)
            # chunks 1 and 2 should land in the slots without being asked for
            assert wait_until(
                lambda: {1, 2} <= set(prefetcher._slots), timeout=5.0
            )

    def test_wraparound_lookahead(self, v2_path):
        config = StreamingConfig(prefetch_depth=2)
        with StreamingSource(v2_path, config) as source:
            prefetcher = source.prefetcher("ta")
            last = source.layout("ta").n_chunks - 1
            prefetcher.get(last)
            assert wait_until(lambda: {0, 1} <= set(prefetcher._slots))

    def test_cursor_move_evicts_stale_slots(self, v2_path):
        config = StreamingConfig(prefetch_depth=1)
        with StreamingSource(v2_path, config) as source:
            prefetcher = source.prefetcher("ta")
            prefetcher.get(0)
            wait_until(lambda: 1 in prefetcher._slots)
            prefetcher.get(5)
            wait_until(lambda: 6 in prefetcher._slots)
            assert wait_until(
                lambda: set(prefetcher._slots) <= {5, 6}
            ), prefetcher._slots


class TestFailureParking:
    def test_background_error_surfaces_on_get_then_clears(self, v2_path):
        config = StreamingConfig(prefetch_depth=2, retry_base_delay=0.0)
        # arm before the prefetcher exists: its thread starts reading the
        # initial window immediately, and chunk 1 is inside it
        faults.arm("streaming.read", "raise", match={"chunk": 1}, times=0)
        with StreamingSource(v2_path, config) as source:
            prefetcher = source.prefetcher("ta")
            prefetcher.get(0)
            with pytest.raises(StreamingError):
                prefetcher.get(1)
            faults.disarm()
            value = prefetcher.get(1)
            assert value is not None

    def test_quarantined_chunk_skipped_by_background(self, v2_path):
        config = StreamingConfig(prefetch_depth=3, retry_base_delay=0.0)
        # arm before the prefetcher's thread can load chunk 2 cleanly
        faults.arm("streaming.read", "raise", match={"chunk": 2}, times=0)
        with StreamingSource(v2_path, config) as source:
            prefetcher = source.prefetcher("ta")
            reader = source.reader("ta")
            with pytest.raises(StreamingError):
                prefetcher.get(2)
            assert reader.is_quarantined(2)
            # the pipeline keeps serving everything around the bad chunk
            prefetcher.get(1)
            assert wait_until(lambda: 3 in prefetcher._slots)
            assert 2 not in prefetcher._slots
