"""Streaming through the workflow layer and hyperwall partitions.

``CDMSDatasetReader`` grows a ``streaming`` parameter: for ``.cdz``
sources, ``auto`` streams v2 containers and eagerly loads v1; the
rendered image must not depend on the ingest mode.  A partitioned
hyperwall pipeline exercises the per-cell path: each cell's
sub-workflow opens its own streaming source and reads only the chunks
its plot touches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cdms.lazy import LazyVariable
from repro.data import catalog
from repro.hyperwall.partition import partition_by_cell
from repro.util.errors import ModuleExecutionError
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline


SIZE = dict(nlat=12, nlon=16, nlev=4, ntime=3)


@pytest.fixture(scope="module")
def v1_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("wf") / "r1.cdz"
    catalog.synthetic_reanalysis(**SIZE).save(path, version=1)
    return path


@pytest.fixture(scope="module")
def v2_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("wf") / "r2.cdz"
    catalog.synthetic_reanalysis(**SIZE).save(path, version=2)
    return path


@pytest.fixture()
def executor():
    return Executor(caching=False)


def slicer_pipeline(registry, source, streaming, variable="ta"):
    p = Pipeline(registry)
    reader = p.add_module(
        "CDMSDatasetReader", {"source": str(source), "streaming": streaming}
    )
    var = p.add_module("CDMSVariableReader", {"variable": variable})
    plot = p.add_module("Slicer")
    cell = p.add_module("DV3DCell", {"width": 32, "height": 24})
    p.add_connection(reader, "dataset", var, "dataset")
    p.add_connection(var, "variable", plot, "variable")
    p.add_connection(plot, "plot", cell, "plot")
    return p, reader, cell


class TestReaderParameter:
    def test_streaming_on_yields_lazy_dataset(self, registry, executor, v2_file):
        p, reader, _ = slicer_pipeline(registry, v2_file, "on")
        ds = executor.execute(p).output(reader, "dataset")
        assert isinstance(ds.get_variable("ta"), LazyVariable)

    def test_auto_streams_v2_loads_v1(self, registry, executor, v1_file, v2_file):
        p, reader, _ = slicer_pipeline(registry, v1_file, "auto")
        eager = executor.execute(p).output(reader, "dataset")
        assert not eager.is_streaming
        p, reader, _ = slicer_pipeline(registry, v2_file, "auto")
        lazy = executor.execute(p).output(reader, "dataset")
        assert lazy.is_streaming

    def test_streaming_on_requires_v2(self, registry, executor, v1_file):
        p, _, _ = slicer_pipeline(registry, v1_file, "on")
        with pytest.raises(ModuleExecutionError):
            executor.execute(p)

    def test_image_identical_across_modes(self, registry, executor, v2_file):
        images = {}
        for mode in ("on", "off"):
            p, _, cell = slicer_pipeline(registry, v2_file, mode)
            images[mode] = executor.execute(p).output(cell, "image")
        assert np.array_equal(images["on"], images["off"])


class TestHyperwallPartition:
    def test_per_cell_streaming_matches_monolithic(
        self, registry, executor, v2_file
    ):
        p = Pipeline(registry)
        reader = p.add_module(
            "CDMSDatasetReader", {"source": str(v2_file), "streaming": "on"}
        )
        cells = []
        for variable in ("ta", "hus"):
            var = p.add_module("CDMSVariableReader", {"variable": variable})
            plot = p.add_module("Slicer")
            cell = p.add_module("DV3DCell", {"width": 24, "height": 18})
            p.add_connection(reader, "dataset", var, "dataset")
            p.add_connection(var, "variable", plot, "variable")
            p.add_connection(plot, "plot", cell, "plot")
            cells.append(cell)

        whole = executor.execute(p)
        partitions = partition_by_cell(p)
        for cell in cells:
            sub_image = Executor(caching=False).execute(
                partitions[cell]
            ).output(cell, "image")
            assert np.array_equal(sub_image, whole.output(cell, "image"))
