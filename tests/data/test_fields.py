"""Synthetic data generators: determinism, physical structure, metadata."""

import numpy as np

from repro.data import fields


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = fields.global_temperature(8, 12, 3, 2, seed="x")
        b = fields.global_temperature(8, 12, 3, 2, seed="x")
        np.testing.assert_array_equal(a.filled(), b.filled())

    def test_different_seed_different_data(self):
        a = fields.global_temperature(8, 12, 3, 2, seed="x")
        b = fields.global_temperature(8, 12, 3, 2, seed="y")
        assert not np.array_equal(a.filled(), b.filled())


class TestTemperature:
    def test_shape_and_order(self):
        ta = fields.global_temperature(10, 16, 4, 3)
        assert ta.shape == (3, 4, 10, 16)
        assert ta.order() == "tzyx"
        assert ta.units == "K"

    def test_equator_warmer_than_poles_at_surface(self):
        ta = fields.global_temperature(18, 24, 4, 2, seed="pole")
        surface = ta[0, 0].squeeze().filled(np.nan)
        equator = np.nanmean(surface[8:10])
        poles = np.nanmean(np.concatenate([surface[:2], surface[-2:]]))
        assert equator > poles + 10.0

    def test_troposphere_cools_with_height(self):
        ta = fields.global_temperature(10, 12, 8, 2, seed="lapse")
        profile = np.asarray(
            ta.data[0, :, 5, 0]
        )  # mid-latitude column, levels 1000 → 250
        assert profile[0] > profile[5]

    def test_seasonal_cycle_antiphased(self):
        ta = fields.global_temperature(18, 12, 3, 12, seed="season")
        north = float(np.ma.mean(ta.data[0, 0, -3:, :]) - np.ma.mean(ta.data[6, 0, -3:, :]))
        south = float(np.ma.mean(ta.data[0, 0, :3, :]) - np.ma.mean(ta.data[6, 0, :3, :]))
        assert north * south < 0  # opposite signs in the two hemispheres

    def test_polar_mask_option(self):
        ta = fields.global_temperature(20, 12, 3, 2, with_mask=True)
        assert 0.0 < 1.0 - ta.valid_fraction() < 0.5

    def test_physically_plausible_range(self):
        ta = fields.global_temperature(12, 16, 6, 3)
        assert 150.0 < float(ta.min()) and float(ta.max()) < 330.0


class TestWind:
    def test_geostrophic_pair_shapes(self):
        zg = fields.geopotential_height(10, 16, 4, 2, seed="zg")
        u, v = fields.geostrophic_wind(zg)
        assert u.shape == zg.shape == v.shape
        assert u.units == "m s-1"

    def test_westerlies_in_midlatitudes(self):
        zg = fields.geopotential_height(24, 32, 6, 2, seed="jet")
        u, _ = fields.geostrophic_wind(zg)
        # mid-latitude upper-level zonal-mean u should be westerly (positive)
        lat = u.get_latitude().values
        midlat = (np.abs(lat) > 30) & (np.abs(lat) < 60)
        upper = np.ma.mean(u.data[0, -2:, midlat, :])
        assert float(upper) > 0.0

    def test_speeds_bounded(self):
        zg = fields.geopotential_height(16, 24, 4, 2)
        u, v = fields.geostrophic_wind(zg)
        assert float(np.ma.max(np.ma.abs(u.data))) < 300.0


class TestWave:
    def test_attributes_record_construction(self):
        wave = fields.equatorial_wave(24, 8, 20, wavenumber=5, period_steps=10.0)
        assert wave.attributes["wavenumber"] == 5
        assert wave.attributes["eastward"] is True

    def test_equatorial_trapping(self):
        wave = fields.equatorial_wave(24, 16, 20, seed="trap")
        amplitude = np.abs(wave.filled(0)).mean(axis=(0, 2))
        assert amplitude[8] > 2 * amplitude[0]  # equator vs southern edge

    def test_propagation_moves_crest(self):
        wave = fields.equatorial_wave(
            72, 8, 10, wavenumber=2, period_steps=20.0, eastward=True, amplitude=5.0, seed="mv"
        )
        eq = wave.filled(0)[:, 4, :]
        c0 = int(np.argmax(eq[0]))
        c1 = int(np.argmax(eq[2]))
        shift = (c1 - c0) % 72
        assert 0 < shift < 36  # moved east, less than half the domain


class TestStorm:
    def test_track_moves_poleward(self):
        wspd = fields.storm_vortex(16, 16, 5, 8, seed="trk")
        track_lat = wspd.attributes["track_lat"]
        assert track_lat[-1] > track_lat[0] + 10

    def test_eyewall_max_not_at_center(self):
        wspd = fields.storm_vortex(48, 48, 5, 4, seed="eye")
        t = 2
        field2d = wspd.filled(0)[t, 0]
        peak = np.unravel_index(np.argmax(field2d), field2d.shape)
        lat = wspd.get_latitude().values
        lon = wspd.get_longitude().values
        # the wind max sits near (but not exactly on) the recorded center
        clat = wspd.attributes["track_lat"][t]
        clon = wspd.attributes["track_lon"][t]
        assert abs(lat[peak[0]] - clat) < 5.0
        assert abs(lon[peak[1]] - clon) < 6.0

    def test_wind_nonnegative(self):
        wspd = fields.storm_vortex(16, 16, 4, 3)
        assert float(wspd.min()) >= 0.0


class TestHumidity:
    def test_decays_with_height(self):
        hus = fields.specific_humidity(10, 12, 8, 2)
        column = np.asarray(hus.data[0, :, 5, 0])
        assert column[0] > 10 * column[-1]

    def test_nonnegative(self):
        hus = fields.specific_humidity(8, 8, 4, 2)
        assert float(hus.min()) >= 0.0


class TestCatalog:
    def test_reanalysis_contents(self, reanalysis):
        assert set(reanalysis.variable_ids) == {"ta", "zg", "ua", "va", "hus"}

    def test_variables_share_grid(self, reanalysis):
        assert reanalysis("ta").get_grid() == reanalysis("zg").get_grid()

    def test_storm_has_paired_variables(self, storm):
        assert set(storm.variable_ids) == {"wspd", "tcore"}
        assert storm("wspd").shape == storm("tcore").shape

    def test_wave_case_modes(self, waves):
        assert waves("olr_anom").attributes["eastward"] is True
        assert waves("olr_west").attributes["eastward"] is False

    def test_saveable(self, tmp_path, storm):
        storm.save(tmp_path / "storm.cdz")
        from repro.cdms.dataset import open_dataset

        loaded = open_dataset(tmp_path / "storm.cdz")
        assert set(loaded.variable_ids) == {"wspd", "tcore"}
