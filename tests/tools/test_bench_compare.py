"""Unit tests for the CI perf-regression comparator.

The gate's semantics are proven here with synthetic artifacts — CI
never has to induce a real regression to know the gate would catch
one.  Covers: calibration normalization, the relative threshold, the
absolute noise floor, the speedup-floor contract, the CLI exit codes,
and the job-summary side channel.
"""

import json
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import bench_compare  # noqa: E402


def artifact(raycast_s, isosurface_s, calibration_s=0.003):
    return {
        "meta": {"calibration_s": calibration_s},
        "kernels": {
            "raycast": {"serial_s": raycast_s, "parallel_s": raycast_s},
            "isosurface": {"serial_s": isosurface_s, "parallel_s": isosurface_s},
        },
    }


class TestCompareReports:
    def test_no_change_passes(self):
        rows = bench_compare.compare_reports(
            artifact(0.10, 0.10), artifact(0.10, 0.10)
        )
        assert [row["kernel"] for row in rows] == ["raycast", "isosurface"]
        assert not any(row["regression"] for row in rows)

    def test_large_regression_flagged(self):
        rows = bench_compare.compare_reports(
            artifact(0.20, 0.10), artifact(0.10, 0.10)
        )
        flagged = {row["kernel"]: row["regression"] for row in rows}
        assert flagged == {"raycast": True, "isosurface": False}

    def test_slowdown_within_threshold_passes(self):
        rows = bench_compare.compare_reports(
            artifact(0.115, 0.10), artifact(0.10, 0.10), threshold=0.20
        )
        assert not any(row["regression"] for row in rows)

    def test_speedup_never_flagged(self):
        rows = bench_compare.compare_reports(
            artifact(0.01, 0.01), artifact(0.10, 0.10)
        )
        assert not any(row["regression"] for row in rows)

    def test_calibration_normalizes_machine_speed(self):
        # fresh machine is 2x slower overall: raw times double, but so
        # does calibration_s — not a regression
        rows = bench_compare.compare_reports(
            artifact(0.20, 0.20, calibration_s=0.006),
            artifact(0.10, 0.10, calibration_s=0.003),
        )
        assert not any(row["regression"] for row in rows)
        assert all(abs(row["ratio"] - 1.0) < 1e-12 for row in rows)

    def test_noise_floor_suppresses_tiny_absolute_slowdowns(self):
        # 2x relative but only 1 ms absolute: below min_delta in
        # calibrated units, so it must not fail the build
        rows = bench_compare.compare_reports(
            artifact(0.002, 0.002), artifact(0.001, 0.001),
            threshold=0.20, min_delta=0.5,
        )
        assert not any(row["regression"] for row in rows)

    def test_missing_calibration_rejected(self):
        bad = artifact(0.1, 0.1)
        del bad["meta"]["calibration_s"]
        with pytest.raises(bench_compare.CompareError):
            bench_compare.compare_reports(bad, artifact(0.1, 0.1))

    def test_missing_kernel_rejected(self):
        bad = artifact(0.1, 0.1)
        del bad["kernels"]["isosurface"]
        with pytest.raises(bench_compare.CompareError):
            bench_compare.compare_reports(bad, artifact(0.1, 0.1))


class TestSpeedupContract:
    def test_floor_met(self):
        rows = bench_compare.check_speedup(
            artifact(0.03, 0.03), artifact(0.10, 0.10), floor=3.0
        )
        assert all(row["ok"] for row in rows)

    def test_floor_missed(self):
        rows = bench_compare.check_speedup(
            artifact(0.05, 0.03), artifact(0.10, 0.10), floor=3.0
        )
        by_kernel = {row["kernel"]: row["ok"] for row in rows}
        assert by_kernel == {"raycast": False, "isosurface": True}

    def test_speedup_calibrated(self):
        # fresh run came from a machine 2x slower overall; identical raw
        # times mean the fresh code is really 2x faster per calibrated unit
        rows = bench_compare.check_speedup(
            artifact(0.10, 0.10, calibration_s=0.006),
            artifact(0.10, 0.10, calibration_s=0.003),
            floor=1.5,
        )
        assert all(row["ok"] for row in rows)
        assert all(abs(row["speedup"] - 2.0) < 1e-12 for row in rows)


class TestCli:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        fresh = self.write(tmp_path, "fresh.json", artifact(0.1, 0.1))
        base = self.write(tmp_path, "base.json", artifact(0.1, 0.1))
        assert bench_compare.main([fresh, "--baseline", base]) == 0
        out = capsys.readouterr().out
        assert "Perf regression gate" in out and "| raycast |" in out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        fresh = self.write(tmp_path, "fresh.json", artifact(0.5, 0.1))
        base = self.write(tmp_path, "base.json", artifact(0.1, 0.1))
        assert bench_compare.main([fresh, "--baseline", base]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_exit_one_on_missed_speedup_floor(self, tmp_path, capsys):
        fresh = self.write(tmp_path, "fresh.json", artifact(0.1, 0.1))
        base = self.write(tmp_path, "base.json", artifact(0.1, 0.1))
        ref = self.write(tmp_path, "ref.json", artifact(0.2, 0.2))
        assert bench_compare.main(
            [fresh, "--baseline", base, "--speedup-baseline", ref,
             "--speedup-floor", "3.0"]
        ) == 1
        assert "speedup floor missed" in capsys.readouterr().err

    def test_exit_two_on_missing_file(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", artifact(0.1, 0.1))
        code = bench_compare.main(
            [str(tmp_path / "nope.json"), "--baseline", base]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_job_summary_written(self, tmp_path, monkeypatch, capsys):
        fresh = self.write(tmp_path, "fresh.json", artifact(0.1, 0.1))
        base = self.write(tmp_path, "base.json", artifact(0.1, 0.1))
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert bench_compare.main([fresh, "--baseline", base]) == 0
        assert "Perf regression gate" in summary.read_text()

    def test_committed_baselines_are_comparable(self, capsys):
        """The real committed artifacts satisfy the gate's schema."""
        baselines = TOOLS.parent / "benchmarks" / "baselines"
        fresh = bench_compare.load_report(str(baselines / "BENCH_parallel.json"))
        pre = bench_compare.load_report(
            str(baselines / "BENCH_parallel.pre_batching.json")
        )
        rows = bench_compare.compare_reports(fresh, fresh)
        assert not any(row["regression"] for row in rows)
        speedups = bench_compare.check_speedup(fresh, pre, floor=3.0)
        assert all(row["ok"] for row in speedups), speedups


def cdat_streaming_artifact(**overrides):
    report = {
        "kind": "cdat_streaming",
        "meta": {"seed": "bench-cdat-streaming"},
        "dataset_bytes": 400_000,
        "budget_bytes": 100_000,
        "peak_resident_bytes": 80_000,
        "materialize_full_count": 0,
        "peak_rss_bytes": 50_000_000,
        "ops": [
            {"name": name, "elapsed_s": 0.01, "throughput_mb_s": 40.0,
             "digest_match": True}
            for name in ("monthly_climatology", "zonal_mean",
                         "running_mean", "variance")
        ],
    }
    report.update(overrides)
    return report


class TestValidateCdatStreaming:
    def test_valid_artifact_passes(self):
        report = cdat_streaming_artifact()
        assert bench_compare.validate_cdat_streaming(report) is report

    def test_dataset_must_dwarf_budget(self):
        report = cdat_streaming_artifact(dataset_bytes=300_000)
        with pytest.raises(bench_compare.CompareError, match="4x"):
            bench_compare.validate_cdat_streaming(report)

    def test_peak_resident_over_budget_fails(self):
        report = cdat_streaming_artifact(peak_resident_bytes=100_001)
        with pytest.raises(bench_compare.CompareError, match="exceeded"):
            bench_compare.validate_cdat_streaming(report)

    def test_any_full_materialization_fails(self):
        report = cdat_streaming_artifact(materialize_full_count=1)
        with pytest.raises(bench_compare.CompareError, match="materialized"):
            bench_compare.validate_cdat_streaming(report)

    def test_digest_mismatch_fails(self):
        report = cdat_streaming_artifact()
        report["ops"][2]["digest_match"] = False
        with pytest.raises(
            bench_compare.CompareError, match="running_mean"
        ):
            bench_compare.validate_cdat_streaming(report)

    def test_too_few_ops_fails(self):
        report = cdat_streaming_artifact()
        report["ops"] = report["ops"][:2]
        with pytest.raises(bench_compare.CompareError, match=">= 3 ops"):
            bench_compare.validate_cdat_streaming(report)

    def test_missing_throughput_fails(self):
        report = cdat_streaming_artifact()
        del report["ops"][0]["throughput_mb_s"]
        with pytest.raises(bench_compare.CompareError, match="throughput_mb_s"):
            bench_compare.validate_cdat_streaming(report)

    def test_cli_dispatch_and_summary(self, tmp_path, monkeypatch, capsys):
        path = tmp_path / "cdat.json"
        path.write_text(json.dumps(cdat_streaming_artifact()))
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert bench_compare.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "Out-of-core analysis bench" in out
        assert "Out-of-core analysis bench" in summary.read_text()

    def test_cli_exit_two_on_violation(self, tmp_path, capsys):
        path = tmp_path / "cdat.json"
        path.write_text(
            json.dumps(cdat_streaming_artifact(materialize_full_count=2))
        )
        assert bench_compare.main([str(path)]) == 2
        assert "materialized" in capsys.readouterr().err
