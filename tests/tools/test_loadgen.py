"""The open-loop load harness: determinism and artifact schema.

Two contracts: (1) the trace generator is a pure function of its seed —
same seed, same arrivals, same scenes, same tenants, and a different
seed diverges; (2) the emitted ``BENCH_serving.json`` passes
``tools/bench_compare.py``'s serving schema gate without crashing.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import bench_compare  # noqa: E402
import loadgen  # noqa: E402


class TestTraceDeterminism:
    def test_same_seed_same_trace(self):
        a = loadgen.generate_trace("seed-1", offered_rps=50.0, duration_s=1.0)
        b = loadgen.generate_trace("seed-1", offered_rps=50.0, duration_s=1.0)
        assert a == b
        assert loadgen.trace_digest(a) == loadgen.trace_digest(b)

    def test_different_seed_different_trace(self):
        a = loadgen.generate_trace("seed-1", offered_rps=50.0, duration_s=1.0)
        b = loadgen.generate_trace("seed-2", offered_rps=50.0, duration_s=1.0)
        assert loadgen.trace_digest(a) != loadgen.trace_digest(b)

    def test_rate_scales_arrivals(self):
        slow = loadgen.generate_trace("s", offered_rps=20.0, duration_s=2.0, herd=False)
        fast = loadgen.generate_trace("s", offered_rps=200.0, duration_s=2.0, herd=False)
        assert len(fast) > len(slow) * 3
        assert all(0 <= e.arrival_s < 2.0 for e in fast)
        assert [e.arrival_s for e in fast] == sorted(e.arrival_s for e in fast)

    def test_herd_prelude_is_one_identical_scene_per_tenant(self):
        events = loadgen.generate_trace(
            "s", offered_rps=10.0, duration_s=0.5, tenants=6
        )
        herd = [e for e in events if e.arrival_s == 0.0]
        assert len(herd) == 6
        assert {e.scene for e in herd} == {0}
        assert len({e.tenant for e in herd}) == 6

    def test_population_shape(self):
        events = loadgen.generate_trace(
            "s", offered_rps=400.0, duration_s=2.0,
            tenants=4, sessions=2, scenes=8, herd=False,
        )
        assert {e.tenant for e in events} <= {f"tenant-{i}" for i in range(4)}
        assert {e.scene for e in events} <= set(range(8))
        # zipf head: scene 0 strictly dominates the tail scenes
        counts = [sum(1 for e in events if e.scene == s) for s in range(8)]
        assert counts[0] == max(counts)
        assert counts[0] > counts[-1]

    def test_zipf_weights_normalized_and_monotonic(self):
        weights = loadgen.zipf_weights(10, 1.1)
        assert weights.sum() == pytest.approx(1.0)
        assert all(weights[i] > weights[i + 1] for i in range(9))


class TestSyntheticWorkload:
    def test_payload_deterministic_per_scene(self):
        workload = loadgen.SyntheticWorkload(iterations=1, payload_bytes=64)
        request = loadgen.request_of(
            loadgen.TraceEvent(0.0, "tenant-0", "s", scene=3)
        )
        assert workload(request, False) == workload(request, False)
        assert workload(request, False) == workload.payload_for(3)
        other = loadgen.request_of(loadgen.TraceEvent(0.0, "t", "s", scene=4))
        assert workload(request, False) != workload(other, False)
        assert workload(request, True) != workload(request, False)


class TestArtifactSchema:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        """One real (tiny) harness run, reused by every schema test."""
        out = tmp_path_factory.mktemp("bench") / "BENCH_serving.json"
        code = loadgen.main(
            ["--quick", "--duration", "0.3", "--out", str(out), "--seed", "ci-test"]
        )
        assert code == 0
        return json.loads(out.read_text())

    def test_kind_and_meta(self, report):
        assert report["kind"] == "serving"
        assert report["meta"]["seed"] == "ci-test"
        assert report["meta"]["trace_digest"]

    def test_three_load_points_with_latency(self, report):
        points = report["load_points"]
        assert len(points) >= 3
        for point in points:
            assert point["offered_rps"] > 0
            assert point["completed"] <= point["offered"]
            for quantile in ("p50", "p90", "p99", "mean", "max"):
                assert point["latency_ms"][quantile] >= 0
            assert point["latency_ms"]["p50"] <= point["latency_ms"]["p99"]

    def test_bench_compare_validates_without_crashing(self, report):
        points = bench_compare.validate_serving(report)
        assert len(points) >= 3

    def test_bench_compare_cli_accepts_serving_artifact(
        self, report, tmp_path, capsys
    ):
        path = tmp_path / "fresh.json"
        path.write_text(json.dumps(report))
        assert bench_compare.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "Serving load harness" in out

    def test_bench_compare_rejects_malformed(self, report, tmp_path):
        broken = dict(report, load_points=report["load_points"][:2])
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(broken))
        assert bench_compare.main([str(path)]) == 2
        with pytest.raises(bench_compare.CompareError, match="load_points"):
            bench_compare.validate_serving(broken)

    def test_bench_compare_rejects_missing_digest(self, report):
        broken = dict(report, meta={k: v for k, v in report["meta"].items()
                                    if k != "trace_digest"})
        with pytest.raises(bench_compare.CompareError, match="trace_digest"):
            bench_compare.validate_serving(broken)

    def test_same_seed_same_trace_digest_across_runs(self, report, tmp_path):
        out = tmp_path / "again.json"
        assert loadgen.main(
            ["--quick", "--duration", "0.3", "--out", str(out), "--seed", "ci-test"]
        ) == 0
        again = json.loads(out.read_text())
        assert again["meta"]["trace_digest"] == report["meta"]["trace_digest"]
        assert [p["offered"] for p in again["load_points"]] == [
            p["offered"] for p in report["load_points"]
        ]
