"""The session-locality load harness and its bench gate.

Three contracts:

* the session trace generator is deterministic per seed and its
  ``predictable`` stamps agree exactly with
  :class:`repro.serving.NextFramePredictor` replayed over the same
  per-session history — ``sum(predictable)`` *is* the denominator of
  the speculative hit rate;
* the synthetic workload's payload oracle is timestep-aware without
  changing the bytes of timestep-less (``BENCH_serving``) requests;
* ``validate_serving_sessions`` accepts a well-formed artifact and
  rejects every gate violation — byte-identity mismatches, a hit rate
  below the floor, and a p99 that fails to improve on the baseline.
"""

from __future__ import annotations

import copy
import json
import sys
from collections import defaultdict
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import bench_compare  # noqa: E402
import loadgen  # noqa: E402

from repro.serving import NextFramePredictor  # noqa: E402


class TestSessionTrace:
    def test_same_seed_same_trace(self):
        a = loadgen.generate_session_trace("s", offered_rps=80.0, duration_s=1.0)
        b = loadgen.generate_session_trace("s", offered_rps=80.0, duration_s=1.0)
        assert a == b
        assert loadgen.trace_digest(a) == loadgen.trace_digest(b)
        c = loadgen.generate_session_trace("t", offered_rps=80.0, duration_s=1.0)
        assert loadgen.trace_digest(c) != loadgen.trace_digest(a)

    def test_sessions_are_animations_with_fixed_scenes(self):
        events = loadgen.generate_session_trace(
            "s", offered_rps=200.0, duration_s=2.0, sessions=6, p_step=0.9
        )
        by_session = defaultdict(list)
        for event in events:
            assert event.timestep is not None
            by_session[event.session].append(event)
        assert len(by_session) > 1
        steps = jumps = 0
        for frames in by_session.values():
            # one scene per session, for the life of the session
            assert len({e.scene for e in frames}) == 1
            for prev, cur in zip(frames, frames[1:]):
                if cur.timestep == (prev.timestep + 1) % loadgen.SESSION_TIMESTEPS:
                    steps += 1
                else:
                    jumps += 1
        # p_step = 0.9: stepping dominates, but teleports do occur
        assert steps > jumps * 3
        assert jumps > 0

    def test_predictable_flags_match_the_real_predictor(self):
        """The stamp is not an approximation: replaying each session's
        params through NextFramePredictor reproduces it bit-for-bit."""
        events = loadgen.generate_session_trace(
            "cross-check", offered_rps=300.0, duration_s=2.0,
            sessions=5, p_step=0.85,
        )
        predictor = NextFramePredictor()
        history = defaultdict(list)
        for event in events:
            params = {"scene": event.scene, "timestep": event.timestep}
            predicted = predictor.predict(history[event.session][-3:])
            assert event.predictable == (predicted == params)
            history[event.session].append(params)
        assert sum(e.predictable for e in events) > 0

    def test_zipf_concentrates_traffic_on_the_hot_session(self):
        events = loadgen.generate_session_trace(
            "s", offered_rps=400.0, duration_s=2.0, sessions=8, zipf_s=1.3
        )
        counts = defaultdict(int)
        for event in events:
            counts[event.session] += 1
        ranked = sorted(counts.values(), reverse=True)
        assert ranked[0] > ranked[-1]


class TestTimestepPayloads:
    def test_oracle_is_timestep_aware(self):
        workload = loadgen.SyntheticWorkload(iterations=1, payload_bytes=64)
        event = loadgen.TraceEvent(0.0, "t", "s", scene=2, timestep=7)
        request = loadgen.request_of(event)
        assert request.params["timestep"] == 7
        assert workload(request, False) == workload.payload_for(2, timestep=7)
        assert workload.payload_for(2, timestep=7) != workload.payload_for(
            2, timestep=8
        )

    def test_timestep_less_payloads_unchanged(self):
        """Backward compatibility: BENCH_serving bytes do not move."""
        workload = loadgen.SyntheticWorkload(iterations=1, payload_bytes=64)
        event = loadgen.TraceEvent(0.0, "t", "s", scene=2)
        assert "timestep" not in loadgen.request_of(event).params
        assert workload(loadgen.request_of(event), False) == \
            workload.payload_for(2)
        assert workload.payload_for(2) != workload.payload_for(2, timestep=0)

    def test_plain_trace_digests_unchanged_by_the_timestep_field(self):
        events = loadgen.generate_trace("seed-1", offered_rps=50.0,
                                        duration_s=1.0)
        rows = [(round(e.arrival_s, 9), e.tenant, e.session, e.scene)
                for e in events]
        from repro.cache.keys import digest
        assert loadgen.trace_digest(events) == digest(rows)


class TestSessionArtifact:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        """One real (tiny) baseline-vs-sessions run, reused per test."""
        out = tmp_path_factory.mktemp("bench") / "BENCH_serving_sessions.json"
        code = loadgen.main([
            "--session-locality", "--duration", "0.8", "--seed", "ci-sess",
            "--rps", "60", "--rps", "100", "--rps", "140",
            "--out", str(out),
        ])
        assert code == 0
        return json.loads(out.read_text())

    def test_kind_meta_and_shape(self, report):
        assert report["kind"] == "serving_sessions"
        assert report["meta"]["trace_digest"]
        assert report["meta"]["p_step"] == 0.95
        points = report["load_points"]
        assert len(points) == 3
        for point in points:
            assert point["predictable"] >= 0
            for mode in ("baseline", "sessions"):
                assert point[mode]["offered"] > 0
                assert point[mode]["latency_ms"]["p99"] >= 0
            for field in ("started", "rendered", "hit", "waste", "cancelled"):
                assert point["speculative"][field] >= 0

    def test_byte_identity_holds_in_both_modes(self, report):
        """The harness oracle found zero payload mismatches — the
        differential guarantee, measured over the whole live run."""
        for point in report["load_points"]:
            assert point["baseline"]["payload_mismatches"] == 0
            assert point["sessions"]["payload_mismatches"] == 0

    def test_speculation_engaged(self, report):
        hits = sum(p["speculative"]["hit"] for p in report["load_points"])
        predictable = sum(p["predictable"] for p in report["load_points"])
        assert predictable > 0
        assert hits > 0


def sessions_artifact(points=3):
    """A hand-built artifact that passes every gate (test double)."""

    def point(rps, predictable, hit, base_p99, sess_p99):
        def run(p99):
            return {
                "offered": 100, "completed": 100, "ok": 100, "shed": 0,
                "errors": 0, "payload_mismatches": 0,
                "latency_ms": {"p50": p99 / 3.0, "p99": p99},
            }
        return {
            "offered_rps": rps,
            "predictable": predictable,
            "baseline": run(base_p99),
            "sessions": run(sess_p99),
            "speculative": {
                "started": hit + 2, "rendered": hit + 1, "hit": hit,
                "waste": 1, "cancelled": 1,
            },
        }

    return {
        "kind": "serving_sessions",
        "meta": {"seed": "unit", "trace_digest": "d" * 32},
        "load_points": [
            point(80.0 * (i + 1), predictable=100, hit=80,
                  base_p99=20.0 + i, sess_p99=10.0 + i)
            for i in range(points)
        ],
    }


class TestValidateServingSessions:
    def test_valid_artifact_passes(self):
        points = bench_compare.validate_serving_sessions(sessions_artifact())
        assert len(points) == 3

    def test_too_few_points_rejected(self):
        with pytest.raises(bench_compare.CompareError, match="load_points"):
            bench_compare.validate_serving_sessions(sessions_artifact(points=2))

    def test_missing_trace_digest_rejected(self):
        artifact = sessions_artifact()
        del artifact["meta"]["trace_digest"]
        with pytest.raises(bench_compare.CompareError, match="trace_digest"):
            bench_compare.validate_serving_sessions(artifact)

    def test_payload_mismatch_fails_byte_identity(self):
        artifact = sessions_artifact()
        artifact["load_points"][1]["sessions"]["payload_mismatches"] = 3
        with pytest.raises(bench_compare.CompareError, match="byte identity"):
            bench_compare.validate_serving_sessions(artifact)

    def test_missing_mismatch_count_rejected(self):
        """An artifact produced without the oracle cannot pass."""
        artifact = sessions_artifact()
        del artifact["load_points"][0]["baseline"]["payload_mismatches"]
        with pytest.raises(bench_compare.CompareError, match="oracle"):
            bench_compare.validate_serving_sessions(artifact)

    def test_hit_rate_below_floor_rejected(self):
        artifact = sessions_artifact()
        for point in artifact["load_points"]:
            point["speculative"]["hit"] = 10  # 10/100 per point
        with pytest.raises(bench_compare.CompareError, match="hit rate"):
            bench_compare.validate_serving_sessions(artifact)

    def test_no_predictable_frames_rejected(self):
        artifact = sessions_artifact()
        for point in artifact["load_points"]:
            point["predictable"] = 0
            point["speculative"]["hit"] = 0
        with pytest.raises(bench_compare.CompareError, match="predictable"):
            bench_compare.validate_serving_sessions(artifact)

    def test_p99_regression_at_top_load_rejected(self):
        artifact = sessions_artifact()
        top = artifact["load_points"][-1]
        top["sessions"]["latency_ms"]["p99"] = \
            top["baseline"]["latency_ms"]["p99"] + 5.0
        with pytest.raises(bench_compare.CompareError,
                           match="highest offered load"):
            bench_compare.validate_serving_sessions(artifact)

    def test_p99_must_improve_on_half_the_points(self):
        artifact = sessions_artifact(points=4)
        for point in artifact["load_points"][:3]:
            point["sessions"]["latency_ms"]["p99"] = \
                point["baseline"]["latency_ms"]["p99"] * 2
        with pytest.raises(bench_compare.CompareError, match="load points"):
            bench_compare.validate_serving_sessions(artifact)

    def test_missing_speculative_counters_rejected(self):
        artifact = sessions_artifact()
        del artifact["load_points"][2]["speculative"]["waste"]
        with pytest.raises(bench_compare.CompareError, match="speculative"):
            bench_compare.validate_serving_sessions(artifact)

    def test_validation_does_not_mutate_the_artifact(self):
        artifact = sessions_artifact()
        pristine = copy.deepcopy(artifact)
        bench_compare.validate_serving_sessions(artifact)
        assert artifact == pristine

    def test_cli_dispatch_and_summary(self, tmp_path, monkeypatch, capsys):
        path = tmp_path / "sessions.json"
        path.write_text(json.dumps(sessions_artifact()))
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert bench_compare.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "Session-aware serving harness" in out
        assert "hit rate" in out
        assert "Session-aware serving harness" in summary.read_text()

    def test_cli_exit_two_on_violation(self, tmp_path, capsys):
        artifact = sessions_artifact()
        artifact["load_points"][0]["sessions"]["payload_mismatches"] = 1
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(artifact))
        assert bench_compare.main([str(path)]) == 2
        assert "byte identity" in capsys.readouterr().err
