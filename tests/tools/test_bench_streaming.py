"""The streaming bench artifact schema gate in ``tools/bench_compare.py``."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import bench_compare  # noqa: E402


def make_report(**overrides):
    report = {
        "kind": "streaming",
        "meta": {"seed": "bench-streaming", "quick": True},
        "frames": 16,
        "elapsed_s": 2.0,
        "frames_per_s": 8.0,
        "dataset_bytes": 400_000,
        "budget_bytes": 100_000,
        "peak_resident_bytes": 99_000,
        "peak_rss_bytes": 50_000_000,
        "fault_pass": {
            "frames": 20,
            "ok_frames": 18,
            "degraded_frames": 2,
            "chunks_corrupt": 3.0,
            "chunks_retried": 4.0,
            "counters_match": True,
            "completed": True,
        },
    }
    report.update(overrides)
    return report


class TestStreamingSchemaGate:
    def test_valid_report_passes(self):
        assert bench_compare.validate_streaming(make_report())

    def test_cli_accepts_and_renders_table(self, tmp_path, capsys):
        path = tmp_path / "fresh.json"
        path.write_text(json.dumps(make_report()))
        assert bench_compare.main([str(path)]) == 0
        assert "Out-of-core streaming bench" in capsys.readouterr().out

    def test_dataset_must_be_4x_budget(self):
        with pytest.raises(bench_compare.CompareError, match="4x"):
            bench_compare.validate_streaming(
                make_report(dataset_bytes=300_000)
            )

    def test_resident_must_fit_budget(self):
        with pytest.raises(bench_compare.CompareError, match="budget"):
            bench_compare.validate_streaming(
                make_report(peak_resident_bytes=100_001)
            )

    def test_missing_fps_rejected(self):
        with pytest.raises(bench_compare.CompareError, match="frames_per_s"):
            bench_compare.validate_streaming(make_report(frames_per_s=0))

    def test_unaccounted_chaos_frames_rejected(self):
        report = make_report()
        report["fault_pass"]["ok_frames"] = 17
        with pytest.raises(bench_compare.CompareError, match="accounted"):
            bench_compare.validate_streaming(report)

    def test_incomplete_chaos_rejected(self):
        report = make_report()
        report["fault_pass"]["completed"] = False
        with pytest.raises(bench_compare.CompareError, match="complete"):
            bench_compare.validate_streaming(report)

    def test_counter_mismatch_rejected(self):
        report = make_report()
        report["fault_pass"]["counters_match"] = False
        with pytest.raises(bench_compare.CompareError, match="counters"):
            bench_compare.validate_streaming(report)

    def test_cli_rejects_malformed(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(make_report(budget_bytes=0)))
        assert bench_compare.main([str(path)]) == 2
