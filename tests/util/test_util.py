"""Utilities: event bus, id generation, timing, deterministic RNG."""

import numpy as np
import pytest

from repro.util.events import Event, EventBus
from repro.util.ids import IdGenerator, new_uuid
from repro.util.rng import deterministic_rng
from repro.util.timing import Stopwatch, timed


class TestEventBus:
    def test_exact_topic_delivery(self):
        bus = EventBus()
        received = []
        bus.subscribe("cell.key", received.append)
        count = bus.emit("cell.key", key="c")
        assert count == 1
        assert received[0].get("key") == "c"

    def test_wildcard_prefix(self):
        bus = EventBus()
        received = []
        bus.subscribe("cell.*", received.append)
        bus.emit("cell.key", key="x")
        bus.emit("cell.drag", dx=0.1)
        bus.emit("camera.moved")
        assert len(received) == 2

    def test_unsubscribe(self):
        bus = EventBus()
        received = []
        unsubscribe = bus.subscribe("t", received.append)
        unsubscribe()
        assert bus.emit("t") == 0

    def test_handler_error_does_not_block_others(self):
        bus = EventBus()
        received = []

        def bad(_event):
            raise ValueError("boom")

        bus.subscribe("t", bad)
        bus.subscribe("t", received.append)
        with pytest.raises(ValueError):
            bus.emit("t")
        assert len(received) == 1

    def test_delivered_count(self):
        bus = EventBus()
        bus.subscribe("a", lambda e: None)
        bus.subscribe("a", lambda e: None)
        bus.emit("a")
        assert bus.delivered_count == 2

    def test_event_payload_access(self):
        event = Event.make("x", a=1, b="two")
        assert event.get("a") == 1
        assert event.get("missing", 42) == 42
        assert event.as_dict() == {"a": 1, "b": "two"}


class TestIds:
    def test_monotonic(self):
        gen = IdGenerator()
        assert [gen.next() for _ in range(3)] == [0, 1, 2]
        assert gen.last == 2

    def test_reserve_through(self):
        gen = IdGenerator()
        gen.next()
        gen.reserve_through(10)
        assert gen.next() == 11

    def test_reserve_below_current_is_noop(self):
        gen = IdGenerator()
        for _ in range(5):
            gen.next()
        gen.reserve_through(2)
        assert gen.next() == 5

    def test_uuid_unique(self):
        assert new_uuid() != new_uuid()
        assert len(new_uuid()) == 32


class TestTiming:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw.measure("op"):
                pass
        assert sw.count("op") == 3
        assert sw.total("op") >= 0.0
        assert sw.mean("op") == pytest.approx(sw.total("op") / 3)

    def test_summary(self):
        sw = Stopwatch()
        with sw.measure("a"):
            pass
        summary = sw.summary()
        assert summary["a"]["count"] == 1

    def test_timed_context(self):
        with timed() as box:
            pass
        assert box[0] >= 0.0


class TestRng:
    def test_integer_seed_reproducible(self):
        a = deterministic_rng(42).normal(size=5)
        b = deterministic_rng(42).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_string_seed_reproducible(self):
        a = deterministic_rng("temperature/run1").normal(size=5)
        b = deterministic_rng("temperature/run1").normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = deterministic_rng("a").normal(size=5)
        b = deterministic_rng("b").normal(size=5)
        assert not np.array_equal(a, b)
