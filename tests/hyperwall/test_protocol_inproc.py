"""The wire protocol and the in-process hyperwall simulation."""

import socket

import numpy as np
import pytest

from repro.hyperwall.inproc import InProcessHyperwall
from repro.hyperwall.protocol import Message, recv_message, send_message
from repro.util.errors import HyperwallError
from repro.workflow.pipeline import Pipeline
from tests.conftest import build_cell_chain


class TestMessage:
    def test_encode_decode_roundtrip(self):
        msg = Message("workflow", {"pipeline": {"modules": []}, "cell_id": 3})
        decoded = Message.decode(msg.encode()[4:])
        assert decoded == msg

    def test_malformed_body(self):
        with pytest.raises(HyperwallError):
            Message.decode(b"not json at all")

    def test_missing_kind(self):
        with pytest.raises(HyperwallError):
            Message.decode(b'{"payload": {}}')

    def test_socket_roundtrip(self):
        server, client = socket.socketpair()
        try:
            sent = Message("event", {"event_kind": "key", "event": {"key": "c"}})
            send_message(client, sent)
            received = recv_message(server)
            assert received == sent
        finally:
            server.close()
            client.close()

    def test_multiple_frames_in_order(self):
        server, client = socket.socketpair()
        try:
            for i in range(3):
                send_message(client, Message("ack", {"n": i}))
            for i in range(3):
                assert recv_message(server).payload["n"] == i
        finally:
            server.close()
            client.close()

    def test_eof_returns_none(self):
        server, client = socket.socketpair()
        client.close()
        try:
            assert recv_message(server) is None
        finally:
            server.close()


@pytest.fixture()
def wall_pipeline(registry):
    p = Pipeline(registry)
    ids = [build_cell_chain(p, width=64, height=48) for _ in range(3)]
    return p, ids


class TestInProcessHyperwall:
    def test_requires_cells(self, registry):
        p = Pipeline(registry)
        p.add_module("CDMSDatasetReader")
        with pytest.raises(HyperwallError):
            InProcessHyperwall(p)

    def test_server_renders_reduced(self, wall_pipeline):
        p, ids = wall_pipeline
        hw = InProcessHyperwall(p, reduction=4, client_resolution=(64, 48))
        report = hw.execute_server()
        assert report["n_cells"] == 3
        # reduced by 4x, clamped at the 16-pixel minimum
        for shape in report["image_shapes"].values():
            assert shape == (max(48 // 4, 16), max(64 // 4, 16), 3)

    def test_clients_render_full_resolution(self, wall_pipeline):
        p, _ = wall_pipeline
        hw = InProcessHyperwall(p, reduction=4, client_resolution=(64, 48))
        reports = hw.execute_clients()
        assert len(reports) == 3
        assert all(r.image_shape == (48, 64, 3) for r in reports)

    def test_tiles_assigned_distinctly(self, wall_pipeline):
        p, _ = wall_pipeline
        hw = InProcessHyperwall(p, client_resolution=(32, 24))
        tiles = [client.tile for client in hw.clients]
        assert len(set(tiles)) == 3

    def test_too_many_cells_for_wall(self, wall_pipeline):
        from repro.hyperwall.display import WallGeometry

        p, _ = wall_pipeline
        with pytest.raises(HyperwallError):
            InProcessHyperwall(p, wall=WallGeometry(columns=2, rows=1))

    def test_event_propagation_keeps_consistency(self, wall_pipeline):
        p, _ = wall_pipeline
        hw = InProcessHyperwall(p, reduction=2, client_resolution=(32, 24))
        hw.execute_all()
        assert all(hw.consistency_check().values())
        hw.propagate_event("key", key="c")
        hw.propagate_event("key", key="t")
        hw.propagate_event("drag", dx=0.1, dy=0.05, mode="camera")
        assert all(hw.consistency_check().values())
        assert len(hw.event_history) == 3

    def test_event_changes_client_render(self, wall_pipeline):
        p, _ = wall_pipeline
        hw = InProcessHyperwall(p, reduction=2, client_resolution=(32, 24))
        hw.execute_all()
        client = hw.clients[0]
        before = client.cell.render(32, 24).to_uint8()
        hw.propagate_event("key", key="c")  # colormap change
        after = client.cell.render(32, 24).to_uint8()
        assert not np.array_equal(before, after)

    def test_event_before_execution_fails(self, wall_pipeline):
        p, _ = wall_pipeline
        hw = InProcessHyperwall(p, client_resolution=(32, 24))
        with pytest.raises(HyperwallError):
            hw.propagate_event("key", key="c")

    def test_parallel_clients_match_serial(self, wall_pipeline):
        p, _ = wall_pipeline
        serial = InProcessHyperwall(p, client_resolution=(32, 24), max_workers=1)
        parallel = InProcessHyperwall(p, client_resolution=(32, 24), max_workers=3)
        reports_serial = sorted(serial.execute_clients(), key=lambda r: r.cell_id)
        reports_parallel = sorted(parallel.execute_clients(), key=lambda r: r.cell_id)
        for a, b in zip(reports_serial, reports_parallel):
            assert a.image_shape == b.image_shape
            assert a.image_mean == pytest.approx(b.image_mean)

    def test_execute_all_combined(self, wall_pipeline):
        p, _ = wall_pipeline
        hw = InProcessHyperwall(p, reduction=4, client_resolution=(32, 24))
        out = hw.execute_all()
        assert out["server"]["n_cells"] == 3
        assert len(out["clients"]) == 3
