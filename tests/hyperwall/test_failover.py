"""Hyperwall failover: dead clients, reassignment, degraded mirror frames.

Connection losses are injected deterministically through the fault
registry — server-side (``hyperwall.server.recv`` drops a connection),
client-side (``hyperwall.client.execute`` kills a real forked client
process mid-execution), and wire-level (``protocol.send`` corrupts a
frame).  The wall must always complete a full frame: every cell comes
back ``live``, ``reassigned`` or ``degraded``, and only ``fail_fast``
is allowed to raise.
"""

import threading

import pytest

from repro import obs
from repro.hyperwall import protocol
from repro.hyperwall.client import HyperwallClient
from repro.hyperwall.cluster import LocalCluster
from repro.hyperwall.display import WallGeometry
from repro.hyperwall.server import HyperwallServer
from repro.resilience import RetryPolicy, faults
from repro.util.errors import HyperwallError
from repro.workflow.pipeline import Pipeline
from tests.conftest import build_cell_chain

TINY_WALL = WallGeometry(columns=2, rows=1, tile_width=48, tile_height=36)
QUAD_WALL = WallGeometry(columns=2, rows=2, tile_width=32, tile_height=24)

#: no backoff waits in tests
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture()
def two_cell_pipeline(registry):
    p = Pipeline(registry)
    for _ in range(2):
        build_cell_chain(p, width=48, height=36)
    return p


def start_wall(pipeline, n_clients, failover, wall=TINY_WALL):
    """Threaded server/client pair with a given failover policy."""
    server = HyperwallServer(
        pipeline, wall=wall, reduction=4, failover=failover, retry=FAST_RETRY
    )
    threads = []
    for cid in range(n_clients):
        client = HyperwallClient(server.host, server.port, cid)
        client.connect()
        thread = threading.Thread(target=client.run, daemon=True)
        thread.start()
        threads.append(thread)
    server.accept_clients(n_clients)
    return server, threads


def stop_wall(server, threads):
    server.shutdown()
    for thread in threads:
        thread.join(5.0)


class TestReassignment:
    def test_dropped_client_cell_reassigned_to_survivor(self, two_cell_pipeline):
        faults.arm("hyperwall.server.recv", "drop", match={"client": 1})
        server, threads = start_wall(two_cell_pipeline, 2, "reassign")
        try:
            server.distribute_workflows()
            reports = server.execute_clients()
        finally:
            stop_wall(server, threads)
        assert len(reports) == 2
        by_status = {r["status"]: r for r in reports}
        assert set(by_status) == {"live", "reassigned"}
        # the survivor executed the lost cell at full tile resolution
        assert by_status["reassigned"]["reassigned_to"] == 0
        assert by_status["reassigned"]["image_shape"] == [36, 48, 3]
        assert 1 in server.dead_clients

    def test_no_survivors_falls_back_to_degraded(self, registry):
        p = Pipeline(registry)
        build_cell_chain(p, width=48, height=36)
        faults.arm("hyperwall.server.recv", "drop", match={"client": 0})
        wall = WallGeometry(columns=1, rows=1, tile_width=48, tile_height=36)
        server, threads = start_wall(p, 1, "reassign", wall=wall)
        try:
            server.distribute_workflows()
            reports = server.execute_clients()
        finally:
            stop_wall(server, threads)
        assert len(reports) == 1
        assert reports[0]["status"] == "degraded"

    def test_render_after_failover_uses_standby(self, two_cell_pipeline):
        faults.arm("hyperwall.server.recv", "drop", match={"client": 1})
        server, threads = start_wall(two_cell_pipeline, 2, "reassign")
        try:
            server.distribute_workflows()
            server.execute_clients()
            renders = server.request_renders(48, 36)
        finally:
            stop_wall(server, threads)
        assert len(renders) == 2
        statuses = sorted(r["status"] for r in renders)
        assert statuses == ["live", "reassigned"]
        assert all(r["image_shape"] == [36, 48, 3] for r in renders)


class TestDegradedMirror:
    def test_degrade_policy_serves_mirror_cell(self, two_cell_pipeline):
        recorder = obs.enable(obs.Recorder())
        try:
            faults.arm("hyperwall.server.recv", "drop", match={"client": 0})
            server, threads = start_wall(two_cell_pipeline, 2, "degrade")
            try:
                server.distribute_workflows()
                server.execute_server()
                reports = server.execute_clients()
            finally:
                stop_wall(server, threads)
        finally:
            obs.disable()
        assert len(reports) == 2
        degraded = [r for r in reports if r["status"] == "degraded"]
        assert len(degraded) == 1
        # mirror frames are reduced-resolution, clamped at 16px
        assert degraded[0]["image_shape"] == [16, 16, 3]
        assert recorder.counter_total("resilience.degraded") == 1
        assert any(
            k.name == "resilience.recovery.seconds" for k in recorder.histograms
        )

    def test_event_broadcast_skips_dead_client(self, two_cell_pipeline):
        faults.arm("hyperwall.server.recv", "drop", match={"client": 1})
        server, threads = start_wall(two_cell_pipeline, 2, "degrade")
        try:
            server.distribute_workflows()
            server.execute_server()
            server.execute_clients()
            ack = server.broadcast_event("key", key="c")
        finally:
            stop_wall(server, threads)
        assert sorted(ack["clients"]) == [0]
        assert len(ack["server"]) == 2


class TestFailFast:
    def test_fail_fast_policy_raises(self, two_cell_pipeline):
        faults.arm("hyperwall.server.recv", "drop", match={"client": 1})
        server, threads = start_wall(two_cell_pipeline, 2, "fail_fast")
        try:
            server.distribute_workflows()
            with pytest.raises(HyperwallError, match="disconnected during execution"):
                server.execute_clients()
        finally:
            stop_wall(server, threads)

    def test_invalid_policy_rejected(self, two_cell_pipeline):
        with pytest.raises(HyperwallError, match="failover"):
            HyperwallServer(two_cell_pipeline, wall=TINY_WALL, failover="retry-forever")


class TestCorruptPayload:
    def test_corrupt_report_detected_and_recovered(self, two_cell_pipeline):
        # corrupt one client's execution report on the wire: the server
        # must detect the malformed frame and recover the cell, never
        # propagate garbage
        faults.arm("protocol.send", "corrupt", match={"kind": "report"})
        server, threads = start_wall(two_cell_pipeline, 2, "reassign")
        try:
            server.distribute_workflows()
            server.execute_server()
            reports = server.execute_clients()
        finally:
            stop_wall(server, threads)
        assert len(reports) == 2
        statuses = [r["status"] for r in reports]
        assert statuses.count("live") == 1
        recovered = [s for s in statuses if s != "live"]
        assert recovered in (["reassigned"], ["degraded"])


class TestHealthCheck:
    def test_heartbeat_reports_alive_clients(self, two_cell_pipeline):
        server, threads = start_wall(two_cell_pipeline, 2, "reassign")
        try:
            assert server.check_health() == {0: True, 1: True}
            faults.arm("hyperwall.server.recv", "drop", match={"client": 0})
            assert server.check_health() == {0: False, 1: True}
            assert 0 in server.dead_clients
            # once dead, stays reported dead
            assert server.check_health() == {0: False, 1: True}
        finally:
            stop_wall(server, threads)


class TestAcceptRobustness:
    def test_malformed_hello_closes_all_accepted(self, two_cell_pipeline):
        import socket as socket_module

        server = HyperwallServer(two_cell_pipeline, wall=TINY_WALL)
        good = HyperwallClient(server.host, server.port, 0)
        good.connect()
        rogue = socket_module.create_connection((server.host, server.port), timeout=5)
        try:
            protocol.send_message(rogue, protocol.Message("execute", {}))
            with pytest.raises(HyperwallError, match=r"at 127\.0\.0\.1:\d+"):
                server.accept_clients(2, timeout=5)
            # the previously accepted connection was closed too, not leaked
            assert server._connections == {}
            good._sock.settimeout(5.0)
            assert protocol.recv_message(good._sock) is None  # EOF
        finally:
            rogue.close()
            good.close()
            server.shutdown()

    def test_client_io_timeout_parameter(self, two_cell_pipeline):
        server = HyperwallServer(two_cell_pipeline, wall=TINY_WALL)
        client = HyperwallClient(server.host, server.port, 0, io_timeout=0.5)
        try:
            client.connect()
            assert client._sock.gettimeout() == 0.5
            server.accept_clients(1)
        finally:
            client.close()
            server.shutdown()


class TestLocalClusterFailover:
    """The acceptance scenario: a real client process killed mid-frame."""

    def test_killed_client_process_frame_completes(self, registry):
        p = Pipeline(registry)
        for _ in range(4):
            build_cell_chain(p, width=32, height=24)
        # the kill is armed before start(): forked clients inherit it,
        # and the label confines it to client 2's process
        faults.arm("hyperwall.client.execute", "exit", match={"client": 2})
        cluster = LocalCluster(
            p, n_clients=4, wall=QUAD_WALL, reduction=4,
            io_timeout=30.0, failover="reassign",
        )
        with cluster:
            out = cluster.run_session(events=[{"event_kind": "key", "key": "c"}])
        reports = out["clients"]
        assert len(reports) == 4
        assert sorted(out["cell_status"].values()).count("live") == 3
        recovered = [r for r in reports if r["status"] != "live"]
        assert len(recovered) == 1
        assert recovered[0]["status"] in ("reassigned", "degraded")
        # a full frame: every cell produced an image
        assert all(len(r["image_shape"]) == 3 for r in reports)
        assert 2 in out["dead_clients"]
        # the event still propagated to the three survivors
        assert len(out["events"][0]["clients"]) == 3

    def test_degrade_cluster_serves_mirror(self, registry):
        p = Pipeline(registry)
        for _ in range(2):
            build_cell_chain(p, width=48, height=36)
        faults.arm("hyperwall.client.execute", "exit", match={"client": 1})
        cluster = LocalCluster(
            p, n_clients=2, wall=TINY_WALL, reduction=4,
            io_timeout=30.0, failover="degrade",
        )
        with cluster:
            out = cluster.run_session()
        statuses = sorted(out["cell_status"].values())
        assert statuses == ["degraded", "live"]
