"""Hyperwall replay through the shared result cache.

A 2x2 wall of real client processes runs a 3-frame animation sequence
twice, sharing one disk-tier cache directory.  The second pass must be
byte-identical to the first (proved by the wire-level image digests —
pixels never leave the display nodes) and fully served from cache (the
disk tier gains no entries).  Killing a client during the warm pass
must hand its cell to a survivor that reproduces the exact same bytes.
"""

from __future__ import annotations

import pytest

from repro.cache.config import CacheConfig
from repro.cache.store import DiskTier
from repro.hyperwall.cluster import LocalCluster
from repro.hyperwall.display import WallGeometry
from repro.resilience import faults
from repro.workflow.pipeline import Pipeline
from tests.conftest import build_cell_chain

QUAD_WALL = WallGeometry(columns=2, rows=2, tile_width=32, tile_height=24)
N_CELLS = 4
N_FRAMES = 3


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture()
def quad_pipeline(registry):
    p = Pipeline(registry)
    for _ in range(N_CELLS):
        build_cell_chain(p, width=32, height=24)
    return p


def play_sequence(cluster) -> dict:
    """Execute the wall, then render a 3-frame animation sequence.

    Returns ``{"execute": {cell_id: digest}, "frames": [{cell_id:
    digest}, ...], "status": {cell_id: status}}``.
    """
    cluster.server.distribute_workflows()
    cluster.server.execute_server()
    reports = cluster.server.execute_clients()
    out = {
        "execute": {r["cell_id"]: r["image_digest"] for r in reports},
        "status": {r["cell_id"]: r["status"] for r in reports},
        "frames": [],
    }
    for frame in range(N_FRAMES):
        if frame:
            cluster.server.broadcast_event("key", key="t")  # step time
        renders = cluster.server.request_renders(32, 24)
        out["frames"].append({r["cell_id"]: r["image_digest"] for r in renders})
    return out


def test_replayed_sequence_is_cached_and_byte_identical(quad_pipeline, tmp_path):
    cache_dir = str(tmp_path / "wall-cache")
    cfg = CacheConfig(path=cache_dir)

    with LocalCluster(
        quad_pipeline, n_clients=N_CELLS, wall=QUAD_WALL, io_timeout=60.0, cache=cfg
    ) as cluster:
        cold = play_sequence(cluster)

    assert set(cold["status"].values()) == {"live"}
    assert all(len(frame) == N_CELLS for frame in cold["frames"])
    entries_after_cold = len(DiskTier(cache_dir, max_bytes=1 << 30))
    assert entries_after_cold > 0

    # a brand-new cluster (fresh client processes) replays the sequence
    with LocalCluster(
        quad_pipeline, n_clients=N_CELLS, wall=QUAD_WALL, io_timeout=60.0, cache=cfg
    ) as cluster:
        warm = play_sequence(cluster)

    # byte-identity, cell by cell and frame by frame
    assert warm["execute"] == cold["execute"]
    assert warm["frames"] == cold["frames"]
    # ...and the pass was served from cache: the disk tier grew by nothing
    assert len(DiskTier(cache_dir, max_bytes=1 << 30)) == entries_after_cold


def test_client_killed_on_warm_frame_reassigned_byte_identical(
    quad_pipeline, tmp_path
):
    cache_dir = str(tmp_path / "wall-cache")
    cfg = CacheConfig(path=cache_dir)

    with LocalCluster(
        quad_pipeline, n_clients=N_CELLS, wall=QUAD_WALL, io_timeout=60.0, cache=cfg
    ) as cluster:
        cold = play_sequence(cluster)
    assert set(cold["status"].values()) == {"live"}

    # warm pass: client 2 dies mid-execution; its cell must come back
    # from a survivor with the exact bytes the dead client produced
    faults.arm("hyperwall.client.execute", "exit", match={"client": 2})
    with LocalCluster(
        quad_pipeline, n_clients=N_CELLS, wall=QUAD_WALL,
        io_timeout=60.0, failover="reassign", cache=cfg,
    ) as cluster:
        cluster.server.distribute_workflows()
        cluster.server.execute_server()
        reports = cluster.server.execute_clients()
        assert 2 in cluster.server.dead_clients

    by_status = {}
    for report in reports:
        by_status.setdefault(report["status"], []).append(report)
    assert len(by_status.get("reassigned", [])) == 1
    assert len(by_status.get("live", [])) == N_CELLS - 1
    recovered = by_status["reassigned"][0]
    # failover honored the cache: the reassigned cell is byte-identical
    # to the frame the original client produced on the cold pass
    assert recovered["image_digest"] == cold["execute"][recovered["cell_id"]]
    for report in by_status["live"]:
        assert report["image_digest"] == cold["execute"][report["cell_id"]]
