"""Failure injection: the distributed layer must fail loudly and cleanly."""

import socket
import threading

import pytest

from repro.hyperwall import protocol
from repro.hyperwall.client import HyperwallClient
from repro.hyperwall.display import WallGeometry
from repro.hyperwall.protocol import Message
from repro.hyperwall.server import HyperwallServer
from repro.util.errors import HyperwallError
from repro.workflow.pipeline import Pipeline
from tests.conftest import build_cell_chain

TINY_WALL = WallGeometry(columns=1, rows=1, tile_width=32, tile_height=24)


@pytest.fixture()
def one_cell_pipeline(registry):
    p = Pipeline(registry)
    build_cell_chain(p, width=32, height=24)
    return p


def run_client_thread(server):
    client = HyperwallClient(server.host, server.port, 0)
    client.connect()
    thread = threading.Thread(target=client.run, daemon=True)
    thread.start()
    return client, thread


class TestClientSideFailures:
    def test_execute_before_workflow_reports_error(self, one_cell_pipeline):
        server = HyperwallServer(one_cell_pipeline, wall=TINY_WALL)
        _client, thread = run_client_thread(server)
        try:
            server.accept_clients(1)
            # skip distribute_workflows: trigger execution directly
            conn = server._conn(0)
            protocol.send_message(conn, Message(protocol.KIND_EXECUTE))
            reply = protocol.recv_message(conn)
            assert reply.kind == protocol.KIND_ERROR
            assert "no workflow" in reply.payload["error"]
        finally:
            server.shutdown()
            thread.join(5.0)

    def test_broken_workflow_reports_error_not_hang(self, registry, one_cell_pipeline):
        # ship a workflow whose reader has an invalid source
        bad = Pipeline(registry)
        ids = build_cell_chain(bad, width=16, height=16)
        bad.set_parameter(ids["reader"], "source", "no_such_catalog_entry")
        server = HyperwallServer(one_cell_pipeline, wall=TINY_WALL)
        _client, thread = run_client_thread(server)
        try:
            server.accept_clients(1)
            conn = server._conn(0)
            protocol.send_message(
                conn,
                Message(protocol.KIND_WORKFLOW,
                        {"pipeline": bad.to_dict(), "cell_id": ids["cell"]}),
            )
            assert protocol.recv_message(conn).kind == protocol.KIND_ACK
            protocol.send_message(conn, Message(protocol.KIND_EXECUTE))
            reply = protocol.recv_message(conn)
            assert reply.kind == protocol.KIND_ERROR
            assert "no_such_catalog_entry" in reply.payload["error"]
        finally:
            server.shutdown()
            thread.join(5.0)

    def test_server_surfaces_client_error(self, registry, one_cell_pipeline):
        """execute_clients raises HyperwallError naming the failing client."""
        broken = Pipeline(registry)
        ids = build_cell_chain(broken, width=16, height=16)
        broken.set_parameter(ids["reader"], "source", "bogus")
        server = HyperwallServer(broken, wall=TINY_WALL)
        _client, thread = run_client_thread(server)
        try:
            server.accept_clients(1)
            server.distribute_workflows()
            with pytest.raises(HyperwallError, match="client 0 failed"):
                server.execute_clients()
        finally:
            server.shutdown()
            thread.join(5.0)

    def test_unknown_message_kind_answered_with_error(self, one_cell_pipeline):
        server = HyperwallServer(one_cell_pipeline, wall=TINY_WALL)
        _client, thread = run_client_thread(server)
        try:
            server.accept_clients(1)
            conn = server._conn(0)
            protocol.send_message(conn, Message("teleport", {}))
            reply = protocol.recv_message(conn)
            assert reply.kind == protocol.KIND_ERROR
        finally:
            server.shutdown()
            thread.join(5.0)


class TestProtocolRobustness:
    def test_mid_frame_disconnect_detected(self):
        server_sock, client_sock = socket.socketpair()
        try:
            # announce a 100-byte frame, deliver 10, hang up
            import struct

            client_sock.sendall(struct.pack(">I", 100) + b"x" * 10)
            client_sock.close()
            with pytest.raises(HyperwallError, match="mid-frame"):
                protocol.recv_message(server_sock)
        finally:
            server_sock.close()

    def test_oversized_frame_rejected(self):
        server_sock, client_sock = socket.socketpair()
        try:
            import struct

            client_sock.sendall(struct.pack(">I", protocol.MAX_MESSAGE_BYTES + 1))
            with pytest.raises(HyperwallError, match="exceeds"):
                protocol.recv_message(server_sock)
        finally:
            server_sock.close()
            client_sock.close()

    def test_client_must_say_hello(self, one_cell_pipeline):
        server = HyperwallServer(one_cell_pipeline, wall=TINY_WALL)
        try:
            rogue = socket.create_connection((server.host, server.port), timeout=5)
            protocol.send_message(rogue, Message("execute", {}))  # not a hello
            with pytest.raises(HyperwallError, match="introduce"):
                server.accept_clients(1, timeout=5)
            rogue.close()
        finally:
            server.shutdown()

    def test_heterogeneous_wall_event_tolerance(self, registry):
        """A leveling drag propagated to a slicer-only wall is ignored."""
        from repro.hyperwall.inproc import InProcessHyperwall

        p = Pipeline(registry)
        build_cell_chain(p, plot="Slicer", width=24, height=18)
        build_cell_chain(p, plot="VolumeRender", width=24, height=18)
        hw = InProcessHyperwall(p, client_resolution=(24, 18))
        hw.execute_all()
        result = hw.propagate_event("drag", dx=0.1, dy=0.0, mode="leveling")
        deltas = list(result["clients"].values())
        assert {} in deltas  # the slicer ignored it
        assert any(d for d in deltas)  # the volume applied it
