"""Wall geometry and workflow partitioning."""

import pytest

from repro.hyperwall.display import NCCS_WALL, WallGeometry
from repro.hyperwall.partition import (
    find_cell_modules,
    make_reduced_pipeline,
    partition_by_cell,
    set_cell_resolution,
)
from repro.util.errors import HyperwallError
from repro.workflow.pipeline import Pipeline
from tests.conftest import build_cell_chain


@pytest.fixture()
def three_cell_pipeline(registry):
    p = Pipeline(registry)
    ids = [build_cell_chain(p) for _ in range(3)]
    return p, ids


class TestWallGeometry:
    def test_nccs_wall_matches_paper(self):
        # "a 5x3 array of 46-inch displays ... 15.7 million pixel display"
        assert NCCS_WALL.n_tiles == 15
        assert NCCS_WALL.total_pixels == pytest.approx(15.7e6, rel=0.02)

    def test_tile_index_roundtrip(self):
        wall = WallGeometry(columns=5, rows=3)
        for index in range(wall.n_tiles):
            row, col = wall.tile_of(index)
            assert wall.index_of(row, col) == index

    def test_out_of_range(self):
        wall = WallGeometry(columns=2, rows=2)
        with pytest.raises(HyperwallError):
            wall.tile_of(4)
        with pytest.raises(HyperwallError):
            wall.index_of(2, 0)

    def test_server_mirror_size(self):
        wall = WallGeometry(tile_width=1024, tile_height=768)
        assert wall.server_mirror_size(4) == (256, 192)
        with pytest.raises(HyperwallError):
            wall.server_mirror_size(0)

    def test_bad_geometry(self):
        with pytest.raises(HyperwallError):
            WallGeometry(columns=0)


class TestPartition:
    def test_finds_all_cells(self, three_cell_pipeline):
        p, ids = three_cell_pipeline
        assert find_cell_modules(p) == sorted(chain["cell"] for chain in ids)

    def test_partition_one_subworkflow_per_cell(self, three_cell_pipeline):
        p, ids = three_cell_pipeline
        partitions = partition_by_cell(p)
        assert len(partitions) == 3
        for chain in ids:
            sub = partitions[chain["cell"]]
            # exactly the 4-module chain, ids preserved
            assert set(sub.modules) == set(chain.values())

    def test_partition_excludes_other_branches(self, three_cell_pipeline):
        p, ids = three_cell_pipeline
        partitions = partition_by_cell(p)
        sub = partitions[ids[0]["cell"]]
        assert ids[1]["cell"] not in sub.modules

    def test_partition_requires_cells(self, registry):
        p = Pipeline(registry)
        p.add_module("CDMSDatasetReader")
        with pytest.raises(HyperwallError):
            partition_by_cell(p)

    def test_shared_upstream_follows_both_cells(self, registry):
        # two cells fed from ONE reader: both sub-workflows contain it
        p = Pipeline(registry)
        reader = p.add_module("CDMSDatasetReader", {"source": "synthetic_reanalysis",
                                                    "size": {"nlat": 8, "nlon": 8, "nlev": 3, "ntime": 2}})
        cells = []
        for _ in range(2):
            var = p.add_module("CDMSVariableReader", {"variable": "ta"})
            plot = p.add_module("Slicer")
            cell = p.add_module("DV3DCell", {"width": 24, "height": 18})
            p.add_connection(reader, "dataset", var, "dataset")
            p.add_connection(var, "variable", plot, "variable")
            p.add_connection(plot, "plot", cell, "plot")
            cells.append(cell)
        partitions = partition_by_cell(p)
        for cell in cells:
            assert reader in partitions[cell].modules


class TestResolutionEditing:
    def test_reduced_pipeline_scales_cells(self, three_cell_pipeline):
        p, ids = three_cell_pipeline
        reduced = make_reduced_pipeline(p, 4)
        for chain in ids:
            params = reduced.modules[chain["cell"]].parameters
            assert params["width"] == 96 // 4
            assert params["height"] == 72 // 4

    def test_reduction_clamps_to_min_size(self, three_cell_pipeline):
        p, _ = three_cell_pipeline
        reduced = make_reduced_pipeline(p, 1000, min_size=16)
        for cell_id in find_cell_modules(reduced):
            assert reduced.modules[cell_id].parameters["width"] == 16

    def test_original_untouched(self, three_cell_pipeline):
        p, ids = three_cell_pipeline
        make_reduced_pipeline(p, 4)
        assert p.modules[ids[0]["cell"]].parameters["width"] == 96

    def test_uses_defaults_when_unset(self, registry):
        p = Pipeline(registry)
        chain = build_cell_chain(p)
        del p.modules[chain["cell"]].parameters["width"]
        del p.modules[chain["cell"]].parameters["height"]
        reduced = make_reduced_pipeline(p, 2)
        assert reduced.modules[chain["cell"]].parameters["width"] == 160  # 320 default / 2

    def test_set_cell_resolution_validates(self, three_cell_pipeline):
        p, ids = three_cell_pipeline
        set_cell_resolution(p, ids[0]["cell"], 640, 480)
        assert p.modules[ids[0]["cell"]].parameters["width"] == 640
        with pytest.raises(HyperwallError):
            set_cell_resolution(p, ids[0]["reader"], 640, 480)

    def test_bad_reduction(self, three_cell_pipeline):
        p, _ = three_cell_pipeline
        with pytest.raises(HyperwallError):
            make_reduced_pipeline(p, 0)
