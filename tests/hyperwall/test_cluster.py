"""The socket server/client pair and the multiprocessing cluster.

These run a real localhost session: server in this process, clients in
forked processes, the full protocol (hello → workflow → execute →
events → shutdown) over TCP.  Sizes are small to keep it fast.
"""

import threading

import pytest

from repro.hyperwall.client import HyperwallClient
from repro.hyperwall.cluster import LocalCluster
from repro.hyperwall.display import WallGeometry
from repro.hyperwall.server import HyperwallServer
from repro.workflow.pipeline import Pipeline
from tests.conftest import build_cell_chain

TINY_WALL = WallGeometry(columns=2, rows=1, tile_width=48, tile_height=36)


@pytest.fixture()
def two_cell_pipeline(registry):
    p = Pipeline(registry)
    for _ in range(2):
        build_cell_chain(p, width=48, height=36)
    return p


class TestServerClientThreads:
    """Protocol-level tests with the client on a thread (same process)."""

    def run_session(self, pipeline, n_clients=2, events=()):
        server = HyperwallServer(pipeline, wall=TINY_WALL, reduction=4)
        clients = []
        threads = []
        for cid in range(n_clients):
            client = HyperwallClient(server.host, server.port, cid)
            client.connect()
            thread = threading.Thread(target=client.run, daemon=True)
            thread.start()
            clients.append(client)
            threads.append(thread)
        try:
            server.accept_clients(n_clients)
            assignment = server.distribute_workflows()
            server_report = server.execute_server()
            reports = server.execute_clients()
            event_acks = [
                server.broadcast_event(kind, **payload) for kind, payload in events
            ]
        finally:
            server.shutdown()
            for thread in threads:
                thread.join(5.0)
        return assignment, server_report, reports, event_acks

    def test_full_session(self, two_cell_pipeline):
        assignment, server_report, reports, _ = self.run_session(two_cell_pipeline)
        assert len(assignment) == 2
        assert server_report["n_cells"] == 2
        assert len(reports) == 2
        for report in reports:
            assert report["image_shape"] == [36, 48, 3]  # full tile resolution

    def test_render_after_event_refreshes_frame(self, two_cell_pipeline):
        server = HyperwallServer(two_cell_pipeline, wall=TINY_WALL, reduction=4)
        clients, threads = [], []
        for cid in range(2):
            client = HyperwallClient(server.host, server.port, cid)
            client.connect()
            thread = threading.Thread(target=client.run, daemon=True)
            thread.start()
            clients.append(client)
            threads.append(thread)
        try:
            server.accept_clients(2)
            server.distribute_workflows()
            server.execute_server()
            server.execute_clients()
            before = server.request_renders(48, 36)
            server.broadcast_event("key", key="c")  # colormap change
            after = server.request_renders(48, 36)
            assert len(before) == len(after) == 2
            # the frames changed because the cell state changed
            for b, a in zip(before, after):
                assert b["image_shape"] == a["image_shape"] == [36, 48, 3]
                assert b["image_mean"] != a["image_mean"]
        finally:
            server.shutdown()
            for thread in threads:
                thread.join(5.0)

    def test_event_broadcast(self, two_cell_pipeline):
        _, _, _, acks = self.run_session(
            two_cell_pipeline,
            events=[("key", {"key": "c"}), ("drag", {"dx": 0.1, "dy": 0.0, "mode": "camera"})],
        )
        assert len(acks) == 2
        for ack in acks:
            assert len(ack["clients"]) == 2
            assert len(ack["server"]) == 2

    def test_too_few_clients_detected(self, two_cell_pipeline):
        server = HyperwallServer(two_cell_pipeline, wall=TINY_WALL)
        client = HyperwallClient(server.host, server.port, 0)
        client.connect()
        thread = threading.Thread(target=client.run, daemon=True)
        thread.start()
        try:
            server.accept_clients(1)
            from repro.util.errors import HyperwallError

            with pytest.raises(HyperwallError, match="clients"):
                server.distribute_workflows()
        finally:
            server.shutdown()
            thread.join(5.0)


class TestLocalCluster:
    """End-to-end with real child processes (the Fig. 5 configuration)."""

    def test_multiprocess_session(self, two_cell_pipeline):
        cluster = LocalCluster(two_cell_pipeline, n_clients=2, wall=TINY_WALL, reduction=4)
        try:
            cluster.start()
            out = cluster.run_session(events=[{"event_kind": "key", "key": "c"}])
        finally:
            cluster.stop()
        assert len(out["clients"]) == 2
        assert out["server"]["n_cells"] == 2
        assert out["clients"][0]["image_shape"] == [36, 48, 3]
        assert len(out["events"]) == 1
        # client execution reports carry cache statistics
        assert all("cache_misses" in r for r in out["clients"])
