"""The spreadsheet grid: placement, drag ops, activation, persistence."""

import pytest

from repro.dv3d.cell import DV3DCell
from repro.dv3d.slicer import SlicerPlot
from repro.spreadsheet.sheet import CellBinding, Spreadsheet
from repro.util.errors import SpreadsheetError


def binding(n=0):
    return CellBinding("trail", n, 3)


@pytest.fixture()
def sheet():
    return Spreadsheet("main", rows=2, columns=3)


@pytest.fixture()
def live_sheet(ta):
    sheet = Spreadsheet("live", rows=1, columns=2)
    for col in range(2):
        slot = sheet.place(0, col, binding(col))
        slot.cell = DV3DCell(SlicerPlot(ta))
    return sheet


class TestGrid:
    def test_bad_size(self):
        with pytest.raises(SpreadsheetError):
            Spreadsheet(rows=0, columns=2)

    def test_place_and_get(self, sheet):
        sheet.place(0, 1, binding())
        assert sheet.get(0, 1) is not None
        assert sheet.get(0, 0) is None

    def test_out_of_range(self, sheet):
        with pytest.raises(SpreadsheetError):
            sheet.place(5, 0, binding())

    def test_double_place_rejected(self, sheet):
        sheet.place(0, 0, binding())
        with pytest.raises(SpreadsheetError):
            sheet.place(0, 0, binding())

    def test_remove(self, sheet):
        sheet.place(0, 0, binding())
        removed = sheet.remove(0, 0)
        assert removed.binding.vistrail_name == "trail"
        with pytest.raises(SpreadsheetError):
            sheet.remove(0, 0)

    def test_resize_grows(self, sheet):
        sheet.resize(3, 4)
        sheet.place(2, 3, binding())

    def test_resize_cannot_orphan(self, sheet):
        sheet.place(1, 2, binding())
        with pytest.raises(SpreadsheetError):
            sheet.resize(1, 1)


class TestDragOps:
    def test_move(self, sheet):
        sheet.place(0, 0, binding())
        sheet.move((0, 0), (1, 2))
        assert sheet.get(0, 0) is None
        assert sheet.get(1, 2) is not None

    def test_move_to_occupied_rejected(self, sheet):
        sheet.place(0, 0, binding(1))
        sheet.place(0, 1, binding(2))
        with pytest.raises(SpreadsheetError):
            sheet.move((0, 0), (0, 1))

    def test_swap(self, sheet):
        sheet.place(0, 0, binding(1))
        sheet.place(0, 1, binding(2))
        sheet.swap((0, 0), (0, 1))
        assert sheet.get(0, 0).binding.version == 2
        assert sheet.get(0, 1).binding.version == 1

    def test_swap_with_empty(self, sheet):
        sheet.place(0, 0, binding(1))
        sheet.swap((0, 0), (1, 1))
        assert sheet.get(0, 0) is None
        assert sheet.get(1, 1).binding.version == 1

    def test_copy_shares_binding_values(self, sheet):
        sheet.place(0, 0, binding(7))
        copy = sheet.copy_cell((0, 0), (1, 1))
        assert copy.binding.version == 7
        assert copy.binding is not sheet.get(0, 0).binding

    def test_copy_from_empty(self, sheet):
        with pytest.raises(SpreadsheetError):
            sheet.copy_cell((0, 0), (1, 1))


class TestActivation:
    def test_active_cells_tracks_state(self, live_sheet):
        assert len(live_sheet.active_cells()) == 2
        live_sheet.set_active(0, 0, False)
        assert len(live_sheet.active_cells()) == 1

    def test_set_active_requires_live_cell(self, sheet):
        sheet.place(0, 0, binding())
        with pytest.raises(SpreadsheetError):
            sheet.set_active(0, 0, True)

    def test_compare_reports_differences(self, live_sheet):
        live_sheet.get(0, 1).cell.plot.step_time()
        comparison = live_sheet.compare((0, 0), (0, 1))
        assert "time_index" in comparison["state_differences"]

    def test_compare_identical(self, live_sheet):
        comparison = live_sheet.compare((0, 0), (0, 1))
        assert comparison["state_differences"] == {}


class TestPersistence:
    def test_roundtrip(self, sheet):
        sheet.place(0, 0, binding(3))
        sheet.place(1, 2, binding(9))
        restored = Spreadsheet.from_dict(sheet.to_dict())
        assert restored.rows == 2 and restored.columns == 3
        assert restored.get(0, 0).binding.version == 3
        assert restored.get(1, 2).binding.version == 9
        assert restored.occupied() == sheet.occupied()
