"""Synchronized cell interaction and project persistence/re-execution."""

import numpy as np
import pytest

from repro.dv3d.cell import DV3DCell
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.volume import VolumePlot
from repro.spreadsheet.project import Project
from repro.spreadsheet.sheet import CellBinding, Spreadsheet
from repro.spreadsheet.sync import SyncGroup
from repro.util.errors import SpreadsheetError
from tests.conftest import SMALL


@pytest.fixture()
def synced(ta):
    sheet = Spreadsheet("s", 1, 3)
    for col in range(3):
        slot = sheet.place(0, col, CellBinding("t", 0, col))
        plot = SlicerPlot(ta) if col < 2 else VolumePlot(ta)
        slot.cell = DV3DCell(plot)
    return sheet, SyncGroup(sheet)


class TestSync:
    def test_key_reaches_all_active(self, synced):
        sheet, group = synced
        deltas = group.key("t")
        assert len(deltas) == 3
        assert all(cell.plot.time_index == 1 for cell in sheet.live_cells())

    def test_inactive_cell_skipped(self, synced):
        sheet, group = synced
        sheet.set_active(0, 1, False)
        group.key("t")
        assert sheet.get(0, 0).cell.plot.time_index == 1
        assert sheet.get(0, 1).cell.plot.time_index == 0

    def test_drag_camera_synchronized(self, synced):
        sheet, group = synced
        group.drag(0.1, 0.0, "camera")
        cameras = [c.plot.camera for c in sheet.live_cells()]
        assert all(cam is not None for cam in cameras)

    def test_configure_propagates_state(self, synced):
        sheet, group = synced
        group.configure({"plot": {"time_index": 2}})
        assert all(c.plot.time_index == 2 for c in sheet.active_cells())

    def test_history_recorded(self, synced):
        _, group = synced
        group.key("c")
        group.drag(0.1, 0.2, "camera")
        assert len(group.history) == 2
        assert group.history[0][0] == "key"

    def test_bus_publishes(self, synced):
        _, group = synced
        seen = []
        group.bus.subscribe("cell.*", seen.append)
        group.key("c")
        assert len(seen) == 1

    def test_synchronize_cameras(self, synced):
        sheet, group = synced
        reference = sheet.get(0, 0).cell
        reference.plot.camera = reference.plot.default_camera().orbit(45, 0)
        updated = group.synchronize_cameras((0, 0))
        assert updated == 2
        cam_state = reference.plot.camera.state()
        for col in (1, 2):
            assert sheet.get(0, col).cell.plot.camera.state() == cam_state

    def test_animate_step(self, synced):
        sheet, group = synced
        group.animate_step(+1)
        group.animate_step(-1)
        assert all(c.plot.time_index == 0 for c in sheet.active_cells())


class TestProject:
    def make_project(self, registry):
        project = Project("demo", registry)
        sheet = project.new_sheet("main", 1, 2)
        vistrail = project.new_vistrail("wf")
        reader = vistrail.add_module(
            "cdms:CDMSDatasetReader", {"source": "synthetic_reanalysis", "size": dict(SMALL)}
        )
        var = vistrail.add_module("cdms:CDMSVariableReader", {"variable": "ta"})
        plot = vistrail.add_module("dv3d:Slicer")
        cell = vistrail.add_module("dv3d:DV3DCell", {"width": 32, "height": 24})
        vistrail.add_connection(reader, "dataset", var, "dataset")
        vistrail.add_connection(var, "variable", plot, "variable")
        vistrail.add_connection(plot, "plot", cell, "plot")
        vistrail.tag("slicer")
        sheet.place(0, 0, CellBinding("wf", vistrail.current_version, cell))
        return project

    def test_execute_cell_populates_slot(self, registry):
        project = self.make_project(registry)
        cell = project.execute_cell("main", 0, 0)
        assert project.sheets["main"].get(0, 0).cell is cell
        assert len(project.log) == 1
        assert project.log.entries[0].annotations["slot"] == [0, 0]

    def test_execute_empty_slot(self, registry):
        project = self.make_project(registry)
        with pytest.raises(SpreadsheetError):
            project.execute_cell("main", 0, 1)

    def test_execute_sheet(self, registry):
        project = self.make_project(registry)
        sheet = project.sheets["main"]
        sheet.copy_cell((0, 0), (0, 1))
        cells = project.execute_sheet("main")
        assert len(cells) == 2
        assert cells[0] is not cells[1]

    def test_duplicate_names_rejected(self, registry):
        project = self.make_project(registry)
        with pytest.raises(SpreadsheetError):
            project.new_sheet("main")
        with pytest.raises(SpreadsheetError):
            project.new_vistrail("wf")

    def test_save_load_reexecute(self, registry, tmp_path):
        project = self.make_project(registry)
        original = project.execute_cell("main", 0, 0)
        image_before = original.render(32, 24).to_uint8()
        project.save(tmp_path / "proj")
        loaded = Project.load(tmp_path / "proj", registry)
        assert sorted(loaded.sheets) == ["main"]
        assert sorted(loaded.vistrails) == ["wf"]
        assert len(loaded.log) == 1  # execution history restored
        regenerated = loaded.execute_cell("main", 0, 0)
        image_after = regenerated.render(32, 24).to_uint8()
        np.testing.assert_array_equal(image_before, image_after)

    def test_load_missing_directory(self, registry, tmp_path):
        with pytest.raises(SpreadsheetError):
            Project.load(tmp_path / "nothing", registry)
