"""Datasets and the .cdz container: round-trips, validation, errors."""

import json
import zipfile

import numpy as np
import pytest

from repro.cdms.axis import latitude_axis, time_axis
from repro.cdms.dataset import Dataset, open_dataset
from repro.cdms.storage import read_cdz, write_cdz
from repro.cdms.variable import Variable
from repro.util.errors import CDMSError


@pytest.fixture()
def dataset(simple_variable):
    second = simple_variable * 2.0
    second.id = "tvar2"
    return Dataset("unit", [simple_variable, second], attributes={"title": "test"})


class TestDataset:
    def test_membership_and_iteration(self, dataset):
        assert "tvar" in dataset
        assert list(dataset) == ["tvar", "tvar2"]
        assert len(dataset) == 2

    def test_duplicate_variable_rejected(self, dataset, simple_variable):
        with pytest.raises(CDMSError):
            dataset.add_variable(simple_variable)

    def test_missing_variable_raises_with_listing(self, dataset):
        with pytest.raises(CDMSError, match="tvar"):
            dataset.get_variable("nope")

    def test_call_subsets(self, dataset):
        sub = dataset("tvar", latitude=(-45, 45))
        lat = sub.get_latitude()
        assert lat.values.min() >= -45 and lat.values.max() <= 45

    def test_summary(self, dataset):
        summary = dataset.summary()
        assert summary["tvar"]["order"] == "tzyx"
        assert summary["tvar"]["units"] == "K"


class TestStorageRoundtrip:
    def test_full_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "unit.cdz"
        dataset.save(path)
        loaded = open_dataset(path)
        assert loaded.id == "unit"
        assert loaded.attributes["title"] == "test"
        assert loaded.variable_ids == ["tvar", "tvar2"]
        original = dataset("tvar")
        restored = loaded("tvar")
        np.testing.assert_allclose(restored.filled(), original.filled(), rtol=1e-6)
        assert restored.units == "K"
        # masked point survives the trip
        assert bool(np.ma.getmaskarray(restored.data)[0, 0, 0, 0])

    def test_axes_roundtrip_with_calendar(self, tmp_path):
        t = time_axis([0.0, 30.0], calendar="noleap")
        var = Variable(np.zeros(2), (t,), id="x")
        write_cdz(tmp_path / "a.cdz", [var])
        _, _, variables = read_cdz(tmp_path / "a.cdz")
        assert variables[0].get_time().calendar.name == "noleap"

    def test_bounds_roundtrip(self, tmp_path):
        lat = latitude_axis([0.0, 10.0])
        lat.gen_bounds()
        var = Variable(np.zeros(2), (lat,), id="x")
        write_cdz(tmp_path / "b.cdz", [var])
        _, _, variables = read_cdz(tmp_path / "b.cdz")
        np.testing.assert_allclose(
            variables[0].get_latitude().get_bounds(), lat.gen_bounds()
        )

    def test_shared_axes_stored_once(self, dataset, tmp_path):
        path = tmp_path / "c.cdz"
        dataset.save(path)
        with zipfile.ZipFile(path) as archive:
            axis_files = [n for n in archive.namelist()
                          if n.startswith("axes/") and not n.endswith("bounds.npy")]
        assert len(axis_files) == 4  # time, level, latitude, longitude


class TestVersionCompat:
    """Both container versions round-trip the same bytes (satellite of
    the streaming PR: v2 must be adoptable without rewriting v1 data)."""

    @pytest.mark.parametrize("version", [1, 2])
    def test_roundtrip_byte_identical(self, dataset, tmp_path, version):
        path = tmp_path / f"rt{version}.cdz"
        dataset.save(path, version=version)
        loaded = open_dataset(path)
        for vid in dataset.variable_ids:
            original = dataset.get_variable(vid)
            restored = loaded.get_variable(vid)
            assert restored.filled().tobytes() == original.filled().tobytes()
            assert np.array_equal(
                np.ma.getmaskarray(restored.data),
                np.ma.getmaskarray(original.data),
            )

    def test_v1_and_v2_reads_agree(self, dataset, tmp_path):
        p1, p2 = tmp_path / "a1.cdz", tmp_path / "a2.cdz"
        dataset.save(p1, version=1)
        dataset.save(p2, version=2)
        _, _, from_v1 = read_cdz(p1)
        _, _, from_v2 = read_cdz(p2)
        for a, b in zip(from_v1, from_v2):
            assert a.id == b.id
            assert a.filled().tobytes() == b.filled().tobytes()
            assert [ax.id for ax in a.axes] == [ax.id for ax in b.axes]

    def test_detect_version(self, dataset, tmp_path):
        from repro.cdms.storage import detect_version

        p1, p2 = tmp_path / "d1.cdz", tmp_path / "d2.cdz"
        dataset.save(p1, version=1)
        dataset.save(p2, version=2)
        assert detect_version(p1) == 1
        assert detect_version(p2) == 2


class TestStorageErrors:
    def test_empty_write_rejected(self, tmp_path):
        with pytest.raises(CDMSError):
            write_cdz(tmp_path / "x.cdz", [])

    def test_conflicting_axes_rejected(self, tmp_path):
        a = Variable(np.zeros(2), (latitude_axis([0.0, 10.0]),), id="a")
        b = Variable(np.zeros(2), (latitude_axis([0.0, 20.0]),), id="b")
        with pytest.raises(CDMSError, match="conflicting"):
            write_cdz(tmp_path / "x.cdz", [a, b])

    def test_missing_file(self, tmp_path):
        with pytest.raises(CDMSError):
            read_cdz(tmp_path / "absent.cdz")

    def test_not_a_cdz(self, tmp_path):
        path = tmp_path / "bad.cdz"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("something.txt", "hello")
        with pytest.raises(CDMSError, match="manifest"):
            read_cdz(path)

    def test_wrong_version(self, tmp_path, simple_variable):
        path = tmp_path / "v.cdz"
        write_cdz(path, [simple_variable])
        # tamper with the manifest version
        with zipfile.ZipFile(path) as archive:
            names = {n: archive.read(n) for n in archive.namelist()}
        manifest = json.loads(names["manifest.json"])
        manifest["format_version"] = 99
        names["manifest.json"] = json.dumps(manifest)
        with zipfile.ZipFile(path, "w") as archive:
            for name, blob in names.items():
                archive.writestr(name, blob)
        with pytest.raises(CDMSError, match="version"):
            read_cdz(path)
