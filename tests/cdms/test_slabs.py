"""The slab protocol and its shared helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cdms.axis import latitude_axis, longitude_axis, time_axis
from repro.cdms.dataset import open_dataset
from repro.cdms.slabs import (
    display_range,
    fold_finite_max,
    is_streamed,
    iter_aligned_slabs,
    map_slabs,
    materialize,
    padded_range,
    require_finite_range,
    slab_axis,
    slab_ranges,
)
from repro.cdms.storage import write_cdz
from repro.cdms.variable import Variable
from repro.util.errors import CDMSError, DV3DError


def eager_variable(ntime=6, nlat=4, nlon=5, seed=1, var_id="ta"):
    rng = np.random.default_rng(seed)
    data = np.ma.MaskedArray(rng.normal(0.0, 1.0, size=(ntime, nlat, nlon)))
    data[0, 0, 0] = np.ma.masked
    axes = (
        time_axis(np.arange(ntime) * 30.0 + 15.0, calendar="noleap"),
        latitude_axis(np.linspace(-30, 30, nlat).tolist()),
        longitude_axis(np.linspace(0, 288, nlon).tolist()),
    )
    return Variable(data, axes, id=var_id, units="K")


@pytest.fixture()
def lazy_pair(tmp_path):
    var = eager_variable()
    path = tmp_path / "slabs.cdz"
    write_cdz(path, [var], dataset_id="slabs", version=2, chunk_timesteps=2)
    eager = open_dataset(path, streaming="off").get_variable("ta")
    lazy = open_dataset(path, streaming="on").get_variable("ta")
    return eager, lazy


class TestProtocol:
    def test_eager_variable_is_one_slab_on_its_time_axis(self):
        var = eager_variable()
        assert var.slab_count() == 1
        assert slab_axis(var) == 0
        assert not is_streamed(var)
        assert slab_ranges(var) == [(0, 6)]
        (only,) = list(var.iter_slabs())
        assert only.shape == var.shape

    def test_slab_axis_falls_back_to_zero_without_time(self):
        var = Variable(
            np.zeros((3, 4)),
            (latitude_axis([0.0, 1.0, 2.0]), longitude_axis([0, 1, 2, 3])),
        )
        assert slab_axis(var) == 0

    def test_lazy_variable_partitions_along_chunk_axis(self, lazy_pair):
        eager, lazy = lazy_pair
        assert lazy.slab_count() == 3
        assert slab_axis(lazy) == 0
        assert is_streamed(lazy)
        assert slab_ranges(lazy) == [(0, 2), (2, 4), (4, 6)]
        gathered = np.ma.concatenate(
            [slab.data for slab in lazy.iter_slabs()], axis=0
        )
        np.testing.assert_array_equal(
            np.asarray(gathered.filled(0)), np.asarray(eager.data.filled(0))
        )


class TestAlignedIteration:
    def test_driver_partition_applies_to_all(self, lazy_pair):
        eager, lazy = lazy_pair
        tuples = list(iter_aligned_slabs(lazy, eager))
        assert len(tuples) == lazy.slab_count()
        for a, b in tuples:
            assert a.shape == b.shape

    def test_extent_mismatch_raises(self, lazy_pair):
        _eager, lazy = lazy_pair
        short = eager_variable(ntime=4)
        with pytest.raises(CDMSError):
            list(iter_aligned_slabs(lazy, short))

    def test_all_eager_yields_whole_variables(self):
        a, b = eager_variable(), eager_variable(seed=2, var_id="tb")
        (pair,) = list(iter_aligned_slabs(a, b))
        assert pair[0] is a and pair[1] is b


class TestRangePolicy:
    def test_require_finite_range_raises_chosen_error(self):
        var = eager_variable()
        var.data[:] = np.ma.masked
        with pytest.raises(DV3DError, match="no valid data"):
            require_finite_range(var, DV3DError)
        with pytest.raises(CDMSError, match="color variable"):
            require_finite_range(var, what="color variable")

    def test_padded_range_widens_degenerate_ranges(self):
        assert padded_range((1.0, 2.0)) == (1.0, 2.0)
        lo, hi = padded_range((3.0, 3.0))
        assert lo == 3.0 and hi > lo

    def test_display_range_composes(self):
        var = eager_variable()
        var.data[:] = 5.0
        lo, hi = display_range(var)
        assert lo == 5.0 and hi > lo

    def test_fold_finite_max_matches_global_max(self, lazy_pair):
        eager, lazy = lazy_pair
        speed = lambda v: np.abs(v.filled(np.nan))  # noqa: E731
        assert fold_finite_max(speed, lazy) == pytest.approx(
            float(np.abs(np.asarray(eager.data.filled(0.0))).max())
        )

    def test_fold_finite_max_none_when_empty(self):
        var = eager_variable()
        var.data[:] = np.ma.masked
        assert fold_finite_max(lambda v: v.filled(np.nan), var) is None


class TestMapAndMaterialize:
    def test_map_slabs_concatenates_along_surviving_axis(self, lazy_pair):
        eager, lazy = lazy_pair

        def halve(v):
            return Variable(v.data * 0.5, v.axes, id="h",
                            missing_value=v.missing_value)

        out = map_slabs(halve, lazy, id="h")
        assert out.shape == eager.shape
        np.testing.assert_allclose(
            np.asarray(out.data.filled(0.0)),
            np.asarray(eager.data.filled(0.0)) * 0.5,
        )

    def test_map_slabs_rejects_fn_that_drops_the_slab_axis(self, lazy_pair):
        _eager, lazy = lazy_pair

        def collapse(v):
            data = np.ma.mean(v.data, axis=0)
            return Variable(data, v.axes[1:], id="c")

        with pytest.raises(CDMSError, match="did not survive"):
            map_slabs(collapse, lazy)

    def test_materialize_counts_and_gathers(self, lazy_pair):
        eager, lazy = lazy_pair
        obs.set_recorder(obs.Recorder())
        obs.enable()
        try:
            gathered = materialize(lazy, op="test")
            count = obs.get_recorder().counter_total("cdat.materialize")
        finally:
            obs.disable()
            obs.set_recorder(obs.Recorder())
        assert count == 1
        assert gathered.slab_count() == 1
        np.testing.assert_array_equal(
            np.asarray(gathered.data.filled(0)), np.asarray(eager.data.filled(0))
        )

    def test_materialize_is_identity_for_eager(self):
        var = eager_variable()
        assert materialize(var) is var
