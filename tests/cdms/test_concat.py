"""Time concatenation of chunked variables and datasets."""

import numpy as np
import pytest

from repro.cdms.concat import concatenate_datasets, concatenate_time
from repro.cdms.dataset import Dataset
from repro.cdms.axis import latitude_axis, time_axis
from repro.cdms.variable import Variable
from repro.util.errors import CDMSError


def chunk(t_start, n=4, value=None, lat_values=(0.0, 10.0), units="K", vid="x",
          calendar="standard"):
    t = time_axis(np.arange(t_start, t_start + n, dtype=float), calendar=calendar)
    lat = latitude_axis(list(lat_values))
    data = np.full((n, len(lat_values)), t_start if value is None else value)
    return Variable(data, (t, lat), id=vid, units=units)


class TestConcatenateTime:
    def test_basic_splice(self):
        merged = concatenate_time([chunk(0), chunk(4)])
        assert merged.shape == (8, 2)
        np.testing.assert_allclose(merged.get_time().values, np.arange(8.0))
        # data from each piece lands in its block
        assert float(merged.data[0, 0]) == 0.0
        assert float(merged.data[4, 0]) == 4.0

    def test_out_of_order_input_sorted(self):
        merged = concatenate_time([chunk(4), chunk(0)])
        np.testing.assert_allclose(merged.get_time().values, np.arange(8.0))

    def test_single_piece_passthrough(self):
        piece = chunk(0)
        assert concatenate_time([piece]) is piece

    def test_empty_rejected(self):
        with pytest.raises(CDMSError):
            concatenate_time([])

    def test_overlap_rejected(self):
        with pytest.raises(CDMSError, match="overlap"):
            concatenate_time([chunk(0, n=5), chunk(3)])

    def test_mixed_variable_ids_rejected(self):
        with pytest.raises(CDMSError, match="mixed"):
            concatenate_time([chunk(0), chunk(4, vid="y")])

    def test_units_mismatch_rejected(self):
        with pytest.raises(CDMSError, match="units"):
            concatenate_time([chunk(0), chunk(4, units="degC")])

    def test_calendar_mismatch_rejected(self):
        with pytest.raises(CDMSError, match="calendar"):
            concatenate_time([chunk(0), chunk(4, calendar="noleap")])

    def test_spatial_axis_mismatch_rejected(self):
        with pytest.raises(CDMSError, match="non-time axis"):
            concatenate_time([chunk(0), chunk(4, lat_values=(0.0, 20.0))])

    def test_requires_time_axis(self):
        static = Variable(np.zeros(2), (latitude_axis([0.0, 10.0]),), id="x")
        with pytest.raises(CDMSError, match="no time axis"):
            concatenate_time([static, static])

    def test_mask_preserved(self):
        a = chunk(0)
        a.data[1, 1] = np.ma.masked
        merged = concatenate_time([a, chunk(4)])
        assert bool(np.ma.getmaskarray(merged.data)[1, 1])
        assert not np.ma.getmaskarray(merged.data)[5].any()


class TestConcatenateDatasets:
    def test_shared_variables_merged(self):
        ds_a = Dataset("jan", [chunk(0), chunk(0, vid="y")])
        ds_b = Dataset("feb", [chunk(4), chunk(4, vid="y")])
        merged = concatenate_datasets([ds_a, ds_b])
        assert set(merged.variable_ids) == {"x", "y"}
        assert merged("x").shape[0] == 8
        assert merged.attributes["concatenated_from"] == ["jan", "feb"]

    def test_common_subset_only(self):
        ds_a = Dataset("a", [chunk(0), chunk(0, vid="only_a")])
        ds_b = Dataset("b", [chunk(4)])
        merged = concatenate_datasets([ds_a, ds_b])
        assert merged.variable_ids == ["x"]

    def test_no_common_variables(self):
        ds_a = Dataset("a", [chunk(0, vid="p")])
        ds_b = Dataset("b", [chunk(4, vid="q")])
        with pytest.raises(CDMSError, match="common"):
            concatenate_datasets([ds_a, ds_b])

    def test_multifile_roundtrip(self, tmp_path):
        """The real use case: two .cdz files → one continuous variable."""
        from repro.cdms.dataset import open_dataset

        Dataset("jan", [chunk(0)]).save(tmp_path / "jan.cdz")
        Dataset("feb", [chunk(4)]).save(tmp_path / "feb.cdz")
        merged = concatenate_datasets(
            [open_dataset(tmp_path / "jan.cdz"), open_dataset(tmp_path / "feb.cdz")]
        )
        assert merged("x").shape[0] == 8
