"""Variables: the axes-follow-data contract, arithmetic, reductions."""

import numpy as np
import pytest

from repro.cdms.axis import latitude_axis, longitude_axis, time_axis
from repro.cdms.grid import RectilinearGrid
from repro.cdms.selectors import Selector
from repro.cdms.variable import Variable, as_variable
from repro.util.errors import CDMSError


class TestConstruction:
    def test_axis_length_mismatch(self):
        with pytest.raises(CDMSError):
            Variable(np.zeros((3, 4)), (latitude_axis([0.0] * 0 or [0.0, 1.0, 2.0]),
                                        longitude_axis([0.0, 1.0, 2.0])))

    def test_axis_count_mismatch(self):
        with pytest.raises(CDMSError):
            Variable(np.zeros((2, 2)), (latitude_axis([0.0, 1.0]),))

    def test_integer_data_promoted_to_float(self):
        v = Variable(np.arange(4).reshape(2, 2),
                     (latitude_axis([0.0, 1.0]), longitude_axis([0.0, 1.0])))
        assert v.dtype.kind == "f"

    def test_units_into_attributes(self, simple_variable):
        assert simple_variable.units == "K"
        assert simple_variable.attributes["units"] == "K"

    def test_order_string(self, simple_variable):
        assert simple_variable.order() == "tzyx"


class TestAxisAccess:
    def test_get_designated_axes(self, simple_variable):
        assert simple_variable.get_time().id == "time"
        assert simple_variable.get_level().id == "level"
        assert simple_variable.get_latitude().id == "latitude"
        assert simple_variable.get_longitude().id == "longitude"

    def test_axis_index_by_designation_and_id(self, simple_variable):
        assert simple_variable.axis_index("time") == 0
        assert simple_variable.axis_index("level") == 1
        assert simple_variable.axis_index("latitude") == 2

    def test_axis_index_unknown(self, simple_variable):
        with pytest.raises(CDMSError):
            simple_variable.axis_index("depth")

    def test_get_grid(self, simple_variable):
        grid = simple_variable.get_grid()
        assert isinstance(grid, RectilinearGrid)
        assert grid.shape == (8, 12)

    def test_no_grid_without_lat(self):
        v = Variable(np.zeros(3), (time_axis([0.0, 1.0, 2.0]),))
        assert v.get_grid() is None


class TestIndexing:
    def test_slicing_slices_axes(self, simple_variable):
        sub = simple_variable[1:3, :, 2:6]
        assert sub.shape == (2, 3, 4, 12)
        assert len(sub.get_time()) == 2
        assert len(sub.get_latitude()) == 4
        np.testing.assert_allclose(
            sub.get_latitude().values, simple_variable.get_latitude().values[2:6]
        )

    def test_int_index_keeps_dimension(self, simple_variable):
        sub = simple_variable[0]
        assert sub.ndim == 4 and sub.shape[0] == 1

    def test_squeeze_drops_singletons(self, simple_variable):
        sub = simple_variable[0].squeeze()
        assert sub.ndim == 3
        assert sub.get_time() is None

    def test_too_many_indices(self, simple_variable):
        with pytest.raises(CDMSError):
            simple_variable[0, 0, 0, 0, 0]

    def test_mask_follows_slicing(self, simple_variable):
        sub = simple_variable[0:1, 0:1, 0:1, 0:1]
        assert bool(sub.mask[0, 0, 0, 0])


class TestSelectors:
    def test_call_with_kwargs(self, simple_variable):
        sub = simple_variable(latitude=(-30, 30), level=500)
        lat = sub.get_latitude()
        assert lat.values.min() >= -30 and lat.values.max() <= 30
        assert sub.shape[1] == 1
        assert sub.get_level().values[0] == 500.0

    def test_call_with_selector_object(self, simple_variable):
        sub = simple_variable(Selector(lon=(0, 90)))
        assert sub.get_longitude().values.max() <= 90

    def test_time_string_selection(self, simple_variable):
        sub = simple_variable(time=("1979-01-01", "1979-02-15"))
        assert sub.shape[0] == 2

    def test_unmatched_criterion_raises(self, simple_variable):
        with pytest.raises(CDMSError):
            simple_variable(depth=(0, 10))

    def test_selector_composition_rhs_wins(self):
        combined = Selector(latitude=(0, 10)) & Selector(latitude=(20, 30))
        assert combined.criteria["latitude"] == (20, 30)

    def test_sub_region_alias(self, simple_variable):
        a = simple_variable.sub_region(latitude=(-30, 30))
        b = simple_variable(latitude=(-30, 30))
        np.testing.assert_allclose(a.filled(), b.filled())


class TestArithmetic:
    def test_add_variables(self, simple_variable):
        total = simple_variable + simple_variable
        np.testing.assert_allclose(total.filled(0), 2 * simple_variable.filled(0))
        assert total.axes == simple_variable.axes

    def test_scalar_operations(self, simple_variable):
        shifted = simple_variable - 273.15
        assert shifted.data.mean() == pytest.approx(
            float(simple_variable.data.mean()) - 273.15
        )
        scaled = 2.0 * simple_variable
        np.testing.assert_allclose(scaled.filled(0), simple_variable.filled(0) * 2)

    def test_shape_mismatch_raises(self, simple_variable):
        with pytest.raises(CDMSError):
            simple_variable + simple_variable[0:1]

    def test_division_by_zero_masks(self, simple_variable):
        zero = simple_variable * 0.0
        ratio = simple_variable / zero
        assert ratio.mask.all()

    def test_mask_propagates_through_add(self, simple_variable):
        total = simple_variable + simple_variable
        assert bool(total.mask[0, 0, 0, 0])

    def test_comparison_yields_indicator(self, simple_variable):
        cond = simple_variable > 280.0
        values = np.unique(cond.compressed())
        assert set(values).issubset({0.0, 1.0})
        # masked input stays masked in the condition
        assert bool(cond.mask[0, 0, 0, 0])

    def test_neg_abs_pow(self, simple_variable):
        assert float(abs(-simple_variable).max()) == pytest.approx(
            float(abs(simple_variable).max())
        )
        squared = simple_variable ** 2
        assert float(squared.min()) >= 0.0


class TestReorder:
    def test_reorder_by_string(self, simple_variable):
        flipped = simple_variable.reorder("xyzt")
        assert flipped.shape == simple_variable.shape[::-1]
        assert flipped.order() == "xyzt"

    def test_reorder_by_names(self, simple_variable):
        out = simple_variable.reorder(["latitude", "longitude", "time", "level"])
        assert out.shape == (8, 12, 3, 3)

    def test_reorder_roundtrip_preserves_data(self, simple_variable):
        back = simple_variable.reorder("xyzt").reorder("tzyx")
        np.testing.assert_allclose(back.filled(), simple_variable.filled())

    def test_reorder_incomplete_raises(self, simple_variable):
        with pytest.raises(CDMSError):
            simple_variable.reorder("xy")


class TestReductions:
    def test_mean_over_axis_drops_it(self, simple_variable):
        out = simple_variable.mean("time")
        assert out.ndim == 3
        assert out.get_time() is None

    def test_global_mean_is_float(self, simple_variable):
        assert isinstance(simple_variable.mean(), float)

    def test_min_max_bracket_mean(self, simple_variable):
        assert simple_variable.min() <= simple_variable.mean() <= simple_variable.max()

    def test_sum_matches_numpy(self, simple_variable):
        assert simple_variable.sum() == pytest.approx(float(simple_variable.data.sum()))

    def test_std_nonnegative(self, simple_variable):
        out = simple_variable.std("longitude")
        assert float(out.min()) >= 0.0


class TestMisc:
    def test_clone_deep_independent(self, simple_variable):
        clone = simple_variable.clone()
        clone.data[0, 0, 1, 1] = 999.0
        assert simple_variable.data[0, 0, 1, 1] != 999.0

    def test_valid_fraction(self, simple_variable):
        expected = 1.0 - 1.0 / simple_variable.size
        assert simple_variable.valid_fraction() == pytest.approx(expected)

    def test_filled_uses_missing_value(self, simple_variable):
        filled = simple_variable.filled()
        assert filled[0, 0, 0, 0] == pytest.approx(simple_variable.missing_value)

    def test_as_variable_wraps_array(self, simple_variable):
        doubled = as_variable(simple_variable.filled(0) * 2, simple_variable, id="double")
        assert doubled.id == "double"
        assert doubled.axes == simple_variable.axes

    def test_as_variable_shape_check(self, simple_variable):
        with pytest.raises(CDMSError):
            as_variable(np.zeros(3), simple_variable)
