"""Calendar arithmetic: serial round-trips, leap rules, CF units."""

import pytest
from hypothesis import given, strategies as st

from repro.cdms.calendar import Calendar, ComponentTime, RelativeTime
from repro.util.errors import CDMSError

CALENDARS = ["standard", "noleap", "360_day"]


class TestComponentTime:
    def test_parse_date_only(self):
        ct = ComponentTime.parse("1979-01-15")
        assert (ct.year, ct.month, ct.day) == (1979, 1, 15)
        assert ct.hour == 0 and ct.second == 0.0

    def test_parse_loose_form(self):
        assert ComponentTime.parse("1979-1-1") == ComponentTime(1979, 1, 1)

    def test_parse_with_time(self):
        ct = ComponentTime.parse("2000-06-30 12:30:15")
        assert (ct.hour, ct.minute, ct.second) == (12, 30, 15.0)

    def test_parse_rejects_garbage(self):
        with pytest.raises(CDMSError):
            ComponentTime.parse("yesterday")

    def test_month_validation(self):
        with pytest.raises(CDMSError):
            ComponentTime(2000, 13, 1)

    def test_day_validation(self):
        with pytest.raises(CDMSError):
            ComponentTime(2000, 1, 32)

    def test_ordering(self):
        assert ComponentTime(1999, 12, 31) < ComponentTime(2000, 1, 1)

    def test_isoformat(self):
        assert ComponentTime(7, 3, 2).isoformat().startswith("0007-03-02")


class TestCalendar:
    def test_canonical_aliases(self):
        assert Calendar("gregorian") == Calendar("standard")
        assert Calendar("365_day") == Calendar("noleap")

    def test_unknown_calendar_rejected(self):
        with pytest.raises(CDMSError):
            Calendar("lunar")

    def test_standard_leap_years(self):
        cal = Calendar("standard")
        assert cal.days_in_month(2000, 2) == 29  # divisible by 400
        assert cal.days_in_month(1900, 2) == 28  # divisible by 100 only
        assert cal.days_in_month(2004, 2) == 29
        assert cal.days_in_month(2003, 2) == 28

    def test_noleap_february(self):
        assert Calendar("noleap").days_in_month(2000, 2) == 28

    def test_360_day_months(self):
        cal = Calendar("360_day")
        assert all(cal.days_in_month(1999, m) == 30 for m in range(1, 13))
        assert cal.days_in_year(1999) == 360

    def test_days_in_year(self):
        assert Calendar("standard").days_in_year(2000) == 366
        assert Calendar("noleap").days_in_year(2000) == 365

    @pytest.mark.parametrize("name", CALENDARS)
    def test_serial_roundtrip_known_dates(self, name):
        cal = Calendar(name)
        for ct in [
            ComponentTime(1979, 1, 1),
            ComponentTime(2000, 2, 28, 23, 59, 30.0),
            ComponentTime(1850, 12, 30, 6),
            ComponentTime(1, 1, 1),
        ]:
            back = cal.from_serial(cal.to_serial(ct))
            assert (back.year, back.month, back.day, back.hour, back.minute) == (
                ct.year, ct.month, ct.day, ct.hour, ct.minute
            )
            assert back.second == pytest.approx(ct.second, abs=1e-3)

    def test_serial_is_monotonic_over_days(self):
        cal = Calendar("standard")
        previous = cal.to_serial(ComponentTime(1999, 12, 28))
        for day in [29, 30, 31]:
            current = cal.to_serial(ComponentTime(1999, 12, day))
            assert current == previous + 1
            previous = current

    def test_invalid_day_for_calendar(self):
        with pytest.raises(CDMSError):
            Calendar("360_day").to_serial(ComponentTime(2000, 1, 31))

    @given(
        st.sampled_from(CALENDARS),
        st.integers(min_value=1, max_value=3000),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=28),
        st.integers(min_value=0, max_value=23),
    )
    def test_serial_roundtrip_property(self, name, year, month, day, hour):
        cal = Calendar(name)
        ct = ComponentTime(year, month, day, hour)
        back = cal.from_serial(cal.to_serial(ct))
        assert (back.year, back.month, back.day, back.hour) == (year, month, day, hour)


class TestRelativeTime:
    def test_parse_units(self):
        seconds, epoch = RelativeTime.parse_units("days since 1979-01-01")
        assert seconds == 86400.0
        assert epoch == ComponentTime(1979, 1, 1)

    def test_parse_units_with_time_of_day(self):
        _, epoch = RelativeTime.parse_units("hours since 2000-01-01 06:30")
        assert epoch.hour == 6 and epoch.minute == 30

    def test_bad_units_rejected(self):
        with pytest.raises(CDMSError):
            RelativeTime.parse_units("fortnights since 1979-01-01")
        with pytest.raises(CDMSError):
            RelativeTime.parse_units("days after 1979-01-01")

    def test_to_component(self):
        rt = RelativeTime(31.0, "days since 1979-01-01")
        assert rt.to_component(Calendar("standard")) == ComponentTime(1979, 2, 1)

    def test_noleap_crosses_february(self):
        rt = RelativeTime(59.0, "days since 2000-01-01")  # noleap: Jan(31)+Feb(28)
        assert rt.to_component(Calendar("noleap")) == ComponentTime(2000, 3, 1)

    def test_from_component_inverse(self):
        cal = Calendar("standard")
        units = "hours since 1979-01-01"
        original = ComponentTime(1980, 7, 4, 18)
        rt = RelativeTime.from_component(original, units, cal)
        assert rt.to_component(cal) == original

    def test_rebase(self):
        cal = Calendar("standard")
        rt = RelativeTime(365.0, "days since 1979-01-01")
        rebased = rt.rebase("days since 1980-01-01", cal)
        assert rebased.value == pytest.approx(0.0)
