"""Regridding: conservation, identity, masks, periodicity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cdms.axis import longitude_axis, time_axis
from repro.cdms.grid import RectilinearGrid, uniform_grid
from repro.cdms.regrid import regrid_bilinear, regrid_conservative
from repro.cdms.variable import Variable
from repro.util.errors import CDMSError


def make_field(nlat, nlon, func=None, mask_box=None):
    grid = uniform_grid(nlat, nlon)
    lat = np.radians(grid.latitude.values)
    lon = np.radians(grid.longitude.values)
    if func is None:
        data = 280.0 + 20.0 * np.outer(np.cos(lat), np.ones(nlon)) + 3.0 * np.outer(
            np.ones(nlat), np.sin(2 * lon)
        )
    else:
        data = func(*np.meshgrid(lat, lon, indexing="ij"))
    arr = np.ma.MaskedArray(data)
    if mask_box:
        arr[mask_box] = np.ma.masked
    return Variable(arr, (grid.latitude, grid.longitude), id="f", units="K")


def area_mean(var):
    grid = var.get_grid()
    w = grid.area_weights()
    valid = ~np.ma.getmaskarray(var.data)
    ww = np.where(valid, w, 0.0)
    return float((var.filled(0.0) * ww).sum() / ww.sum())


class TestConservative:
    def test_global_mean_preserved_coarsening(self):
        src = make_field(36, 72)
        out = regrid_conservative(src, uniform_grid(18, 36))
        assert area_mean(out) == pytest.approx(area_mean(src), rel=1e-10)

    def test_global_mean_preserved_refining(self):
        src = make_field(18, 36)
        out = regrid_conservative(src, uniform_grid(36, 72))
        assert area_mean(out) == pytest.approx(area_mean(src), rel=1e-10)

    def test_constant_field_stays_constant(self):
        src = make_field(20, 40, func=lambda la, lo: np.full_like(la, 5.0))
        out = regrid_conservative(src, uniform_grid(13, 27))
        np.testing.assert_allclose(out.filled(0), 5.0, rtol=1e-12)

    def test_mask_produces_masked_output_cells(self):
        src = make_field(32, 64, mask_box=(slice(0, 16), slice(None)))
        out = regrid_conservative(src, uniform_grid(8, 16))
        # southern half masked → southern output rows masked
        assert np.ma.getmaskarray(out.data)[0].all()
        assert not np.ma.getmaskarray(out.data)[-1].any()

    def test_axes_replaced(self):
        src = make_field(10, 20)
        target = uniform_grid(5, 10)
        out = regrid_conservative(src, target)
        assert out.get_grid() == target

    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 30), st.integers(6, 40))
    def test_conservation_property(self, nlat, nlon):
        src = make_field(24, 48)
        out = regrid_conservative(src, uniform_grid(nlat, nlon))
        assert area_mean(out) == pytest.approx(area_mean(src), rel=1e-8)


class TestBilinear:
    def test_identity_on_same_grid(self):
        src = make_field(16, 32)
        out = regrid_bilinear(src, src.get_grid())
        np.testing.assert_allclose(out.filled(0), src.filled(0), rtol=1e-10)

    def test_linear_field_exact(self):
        # a field linear in sin(longitude of the grid) interpolates; use
        # a field linear in latitude degrees which bilinear reproduces
        src = make_field(20, 40, func=lambda la, lo: np.degrees(la) * 2.0)
        out = regrid_bilinear(src, uniform_grid(10, 40))
        expected = 2.0 * out.get_latitude().values
        np.testing.assert_allclose(out.filled(0)[:, 0], expected, atol=1e-9)

    def test_periodic_longitude_wrap(self):
        # sample at a longitude beyond the last source point: the wrap
        # interval (last → first+360) must interpolate, not clamp
        src = make_field(8, 8, func=lambda la, lo: np.broadcast_to(np.sin(lo), la.shape).copy())
        target = RectilinearGrid(
            src.get_latitude(),
            longitude_axis([358.0]),
        )
        out = regrid_bilinear(src, target)
        assert np.isfinite(out.filled(np.nan)).all()
        assert abs(float(out.filled(0)[0, 0]) - np.sin(np.radians(358.0))) < 0.1

    def test_masked_region_excluded_not_smeared(self):
        src = make_field(16, 32, mask_box=(slice(6, 10), slice(10, 20)))
        out = regrid_bilinear(src, uniform_grid(16, 32))
        # unmasked far region unchanged
        np.testing.assert_allclose(out.filled(0)[0], src.filled(0)[0], rtol=1e-10)

    def test_extra_dims_carried(self):
        grid = uniform_grid(8, 12)
        t = time_axis([0.0, 30.0])
        data = np.random.default_rng(3).normal(size=(2, 8, 12))
        var = Variable(data, (t, grid.latitude, grid.longitude), id="v")
        out = regrid_bilinear(var, uniform_grid(4, 6))
        assert out.shape == (2, 4, 6)
        assert out.get_time() is not None


class TestErrors:
    def test_requires_grid(self):
        var = Variable(np.zeros(3), (time_axis([0.0, 1.0, 2.0]),))
        with pytest.raises(CDMSError):
            regrid_bilinear(var, uniform_grid(4, 8))

    def test_unknown_method_via_variable(self):
        src = make_field(8, 12)
        with pytest.raises(CDMSError):
            src.regrid(uniform_grid(4, 6), method="cubic")

    def test_method_dispatch(self):
        src = make_field(8, 12)
        out = src.regrid(uniform_grid(4, 6), method="conservative")
        assert out.shape == (4, 6)
