"""Axes: designation, bounds, interval mapping, weights, subsetting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cdms.axis import (
    Axis,
    latitude_axis,
    level_axis,
    longitude_axis,
    time_axis,
    uniform_latitude,
    uniform_longitude,
)
from repro.util.errors import CDMSError


class TestConstruction:
    def test_values_are_readonly(self):
        axis = Axis("x", [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            axis.values[0] = 99.0

    def test_rejects_non_monotonic(self):
        with pytest.raises(CDMSError):
            Axis("x", [1.0, 3.0, 2.0])

    def test_rejects_duplicates(self):
        with pytest.raises(CDMSError):
            Axis("x", [1.0, 1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(CDMSError):
            Axis("x", [])

    def test_rejects_2d(self):
        with pytest.raises(CDMSError):
            Axis("x", np.zeros((2, 2)))

    def test_decreasing_allowed(self):
        axis = Axis("plev", [1000.0, 500.0, 100.0])
        assert not axis.increasing

    def test_equality_and_hash(self):
        a = latitude_axis([0.0, 10.0])
        b = latitude_axis([0.0, 10.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != latitude_axis([0.0, 20.0])


class TestDesignation:
    def test_latitude_by_units(self):
        assert Axis("whatever", [0.0], units="degrees_north").is_latitude()

    def test_longitude_by_id(self):
        assert Axis("lon", [0.0]).is_longitude()

    def test_level_by_units(self):
        assert Axis("p", [1000.0], units="hPa").is_level()

    def test_time_by_units(self):
        assert Axis("t", [0.0], units="days since 1979-01-01").is_time()

    def test_axis_attribute_wins(self):
        axis = Axis("strange", [0.0], attributes={"axis": "Z"})
        assert axis.designation() == "level"

    def test_other(self):
        assert Axis("member", [0.0, 1.0]).designation() == "other"

    @pytest.mark.parametrize(
        "factory,designation",
        [
            (lambda: latitude_axis([0.0]), "latitude"),
            (lambda: longitude_axis([0.0]), "longitude"),
            (lambda: level_axis([1000.0]), "level"),
            (lambda: time_axis([0.0]), "time"),
        ],
    )
    def test_factories(self, factory, designation):
        assert factory().designation() == designation


class TestBounds:
    def test_gen_bounds_contiguous(self):
        axis = Axis("x", [0.0, 1.0, 2.0, 4.0])
        bounds = axis.gen_bounds()
        assert bounds.shape == (4, 2)
        # adjacent cells share an edge
        np.testing.assert_allclose(bounds[:-1, 1], bounds[1:, 0])

    def test_gen_bounds_cover_values(self):
        axis = Axis("x", [0.0, 1.0, 3.0])
        bounds = axis.gen_bounds()
        assert np.all(bounds[:, 0] <= axis.values)
        assert np.all(axis.values <= bounds[:, 1])

    def test_latitude_bounds_clipped_to_poles(self):
        axis = uniform_latitude(4)
        bounds = axis.gen_bounds()
        assert bounds.min() >= -90.0 and bounds.max() <= 90.0

    def test_explicit_bounds_shape_checked(self):
        axis = Axis("x", [0.0, 1.0])
        with pytest.raises(CDMSError):
            axis.set_bounds(np.zeros((3, 2)))

    def test_cell_widths(self):
        axis = Axis("x", [0.0, 1.0, 2.0])
        np.testing.assert_allclose(axis.cell_widths(), [1.0, 1.0, 1.0])


class TestIntervalMapping:
    def test_map_interval_basic(self):
        axis = Axis("x", np.arange(10.0))
        assert axis.map_interval(2.0, 5.0) == (2, 6)

    def test_map_interval_reversed_arguments(self):
        axis = Axis("x", np.arange(10.0))
        assert axis.map_interval(5.0, 2.0) == (2, 6)

    def test_map_interval_empty_raises(self):
        axis = Axis("x", np.arange(10.0))
        with pytest.raises(CDMSError):
            axis.map_interval(100.0, 200.0)

    def test_map_interval_time_strings(self):
        axis = time_axis(np.arange(0, 365, 30.0))
        i0, i1 = axis.map_interval("1979-02-01", "1979-04-01")
        selected = axis.values[i0:i1]
        assert selected.min() >= 31 and selected.max() <= 91

    def test_nearest_index(self):
        axis = Axis("x", [0.0, 10.0, 20.0])
        assert axis.nearest_index(12.0) == 1
        assert axis.nearest_index(16.0) == 2

    def test_coerce_rejects_time_string_on_plain_axis(self):
        with pytest.raises(CDMSError):
            Axis("x", [0.0, 1.0]).map_interval("1979-01-01", "1979-02-01")


class TestSubsetting:
    def test_slice_preserves_metadata(self):
        axis = time_axis(np.arange(12) * 30.0, calendar="noleap")
        sub = axis.subaxis_slice(slice(2, 5))
        assert len(sub) == 3
        assert sub.calendar.name == "noleap"
        assert sub.units == axis.units

    def test_slice_slices_bounds(self):
        axis = Axis("x", np.arange(5.0))
        axis.gen_bounds()
        sub = axis.subaxis_slice(slice(1, 3))
        np.testing.assert_allclose(sub.get_bounds(), axis.gen_bounds()[1:3])

    def test_empty_slice_raises(self):
        with pytest.raises(CDMSError):
            Axis("x", np.arange(5.0)).subaxis_slice(slice(4, 2))

    def test_clone_is_independent(self):
        axis = latitude_axis([0.0, 10.0])
        clone = axis.clone()
        clone.attributes["note"] = "changed"
        assert "note" not in axis.attributes

    def test_getitem(self):
        axis = Axis("x", [1.0, 2.0, 3.0])
        assert axis[1] == 2.0
        assert isinstance(axis[0:2], Axis)


class TestWeights:
    def test_latitude_weights_sum_to_one(self):
        weights = uniform_latitude(32).area_weights()
        assert weights.sum() == pytest.approx(1.0)

    def test_latitude_weights_peak_at_equator(self):
        axis = uniform_latitude(18)
        weights = axis.area_weights()
        assert np.argmax(weights) in (8, 9)

    def test_longitude_weights_uniform(self):
        weights = uniform_longitude(12).area_weights()
        np.testing.assert_allclose(weights, 1.0 / 12)

    def test_uniform_latitude_exact_sphere(self):
        # sum of sin-differences over a full sphere is exactly 2
        axis = uniform_latitude(10)
        bounds = np.radians(axis.gen_bounds())
        total = np.abs(np.sin(bounds[:, 1]) - np.sin(bounds[:, 0])).sum()
        assert total == pytest.approx(2.0)


class TestTimeConversion:
    def test_as_component_time(self):
        axis = time_axis([0.0, 31.0], units="days since 1979-01-01")
        comps = axis.as_component_time()
        assert comps[0].month == 1 and comps[1].month == 2

    def test_as_component_time_requires_time_axis(self):
        with pytest.raises(CDMSError):
            latitude_axis([0.0]).as_component_time()


@given(st.integers(min_value=2, max_value=200))
def test_uniform_latitude_weights_property(n):
    weights = uniform_latitude(n).area_weights()
    assert weights.shape == (n,)
    assert np.all(weights > 0)
    assert weights.sum() == pytest.approx(1.0)
    # symmetric about the equator
    np.testing.assert_allclose(weights, weights[::-1], atol=1e-12)
