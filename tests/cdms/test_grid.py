"""Grids: area weights, physical areas, globality."""

import numpy as np
import pytest

from repro.cdms.axis import latitude_axis, longitude_axis
from repro.cdms.grid import RectilinearGrid, uniform_grid
from repro.util.errors import CDMSError


class TestConstruction:
    def test_requires_designated_axes(self):
        lat = latitude_axis([0.0, 10.0])
        lon = longitude_axis([0.0, 10.0])
        with pytest.raises(CDMSError):
            RectilinearGrid(lon, lat)  # swapped

    def test_shape(self):
        grid = uniform_grid(4, 8)
        assert grid.shape == (4, 8)

    def test_equality(self):
        assert uniform_grid(4, 8) == uniform_grid(4, 8)
        assert uniform_grid(4, 8) != uniform_grid(5, 8)


class TestWeights:
    def test_weights_sum_to_one(self):
        weights = uniform_grid(16, 32).area_weights()
        assert weights.sum() == pytest.approx(1.0)

    def test_weights_shape(self):
        assert uniform_grid(4, 6).area_weights().shape == (4, 6)

    def test_equator_heavier_than_poles(self):
        weights = uniform_grid(10, 4).area_weights()
        assert weights[5, 0] > weights[0, 0]

    def test_cell_areas_sum_to_sphere(self):
        grid = uniform_grid(24, 48)
        total = grid.cell_areas().sum()
        sphere = 4 * np.pi * 6.371e6 ** 2
        assert total == pytest.approx(sphere, rel=1e-6)

    def test_weighted_mean_of_ones_is_one(self):
        grid = uniform_grid(8, 16)
        assert (np.ones(grid.shape) * grid.area_weights()).sum() == pytest.approx(1.0)


class TestGlobality:
    def test_uniform_grid_is_global(self):
        assert uniform_grid(8, 16).is_global()

    def test_regional_grid_is_not(self):
        lat = latitude_axis(np.linspace(10, 40, 7))
        lon = longitude_axis(np.linspace(120, 160, 9))
        assert not RectilinearGrid(lat, lon).is_global()

    def test_bounds_shapes(self):
        lat_b, lon_b = uniform_grid(5, 7).bounds()
        assert lat_b.shape == (5, 2) and lon_b.shape == (7, 2)
