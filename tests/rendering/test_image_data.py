"""ImageData: structure, coordinates, sampling, slicing, gradients."""

import numpy as np
import pytest

from repro.rendering.image_data import ImageData
from repro.util.errors import RenderingError


@pytest.fixture()
def ramp_volume():
    """v(x, y, z) = x + 10y + 100z on a 5×4×3 grid with spacing (1, 2, 3)."""
    vol = ImageData((5, 4, 3), origin=(0.0, 0.0, 0.0), spacing=(1.0, 2.0, 3.0))
    i, j, k = np.meshgrid(np.arange(5), np.arange(4), np.arange(3), indexing="ij")
    x, y, z = i * 1.0, j * 2.0, k * 3.0
    vol.add_array("ramp", x + 10 * y + 100 * z)
    return vol


class TestStructure:
    def test_bounds(self, ramp_volume):
        assert ramp_volume.bounds() == (0.0, 4.0, 0.0, 6.0, 0.0, 6.0)

    def test_center(self, ramp_volume):
        np.testing.assert_allclose(ramp_volume.center(), [2.0, 3.0, 3.0])

    def test_diagonal(self, ramp_volume):
        assert ramp_volume.diagonal() == pytest.approx(np.sqrt(16 + 36 + 36))

    def test_rejects_bad_dimensions(self):
        with pytest.raises(RenderingError):
            ImageData((0, 2, 2))

    def test_rejects_bad_spacing(self):
        with pytest.raises(RenderingError):
            ImageData((2, 2, 2), spacing=(1.0, 0.0, 1.0))

    def test_n_points(self, ramp_volume):
        assert ramp_volume.n_points == 60


class TestArrays:
    def test_shape_validation(self, ramp_volume):
        with pytest.raises(RenderingError):
            ramp_volume.add_array("bad", np.zeros((2, 2, 2)))

    def test_vector_array(self, ramp_volume):
        ramp_volume.add_array("vec", np.zeros((5, 4, 3, 3)), set_active=False)
        assert ramp_volume.get_array("vec").shape == (5, 4, 3, 3)

    def test_active_scalars(self, ramp_volume):
        assert ramp_volume.active_scalars_name == "ramp"
        ramp_volume.add_array("other", np.ones((5, 4, 3)))
        assert ramp_volume.active_scalars_name == "other"
        ramp_volume.set_active_scalars("ramp")
        assert ramp_volume.active_scalars_name == "ramp"

    def test_vector_cannot_be_active(self, ramp_volume):
        ramp_volume.add_array("vec", np.zeros((5, 4, 3, 3)), set_active=False)
        with pytest.raises(RenderingError):
            ramp_volume.set_active_scalars("vec")

    def test_missing_array_lists_available(self, ramp_volume):
        with pytest.raises(RenderingError, match="ramp"):
            ramp_volume.get_array("absent")

    def test_scalar_range_ignores_nan(self):
        vol = ImageData((2, 2, 2))
        data = np.ones((2, 2, 2))
        data[0, 0, 0] = np.nan
        vol.add_array("x", data)
        assert vol.scalar_range() == (1.0, 1.0)


class TestCoordinates:
    def test_index_world_roundtrip(self, ramp_volume):
        ijk = np.array([[1.0, 2.0, 0.5]])
        world = ramp_volume.index_to_world(ijk)
        np.testing.assert_allclose(world, [[1.0, 4.0, 1.5]])
        np.testing.assert_allclose(ramp_volume.world_to_index(world), ijk)

    def test_axis_coordinates(self, ramp_volume):
        np.testing.assert_allclose(ramp_volume.axis_coordinates(1), [0.0, 2.0, 4.0, 6.0])


class TestSampling:
    def test_trilinear_exact_on_linear_field(self, ramp_volume):
        pts = np.array([[0.5, 1.0, 1.5], [2.25, 3.5, 4.5]])
        values = ramp_volume.sample(pts)
        expected = pts[:, 0] + 10 * pts[:, 1] + 100 * pts[:, 2]
        np.testing.assert_allclose(values, expected, rtol=1e-6)

    def test_outside_returns_fill(self, ramp_volume):
        value = ramp_volume.sample(np.array([[100.0, 0.0, 0.0]]))
        assert np.isnan(value[0])

    def test_vector_sampling(self, ramp_volume):
        vec = np.zeros((5, 4, 3, 3))
        vec[..., 0] = 2.0
        ramp_volume.add_array("vec", vec, set_active=False)
        out = ramp_volume.sample_vector(np.array([[1.0, 1.0, 1.0]]), "vec")
        np.testing.assert_allclose(out, [[2.0, 0.0, 0.0]])


class TestSlicing:
    def test_slice_on_grid_plane(self, ramp_volume):
        values, u, v = ramp_volume.extract_slice(0, 2.0)
        assert values.shape == (4, 3)
        np.testing.assert_allclose(u, [0.0, 2.0, 4.0, 6.0])
        expected = 2.0 + 10 * u[:, None] + 100 * v[None, :]
        np.testing.assert_allclose(values, expected, rtol=1e-6)

    def test_slice_interpolates_between_planes(self, ramp_volume):
        values, _, _ = ramp_volume.extract_slice(2, 1.5)  # between z=0 and z=3
        expected0, _, _ = ramp_volume.extract_slice(2, 0.0)
        expected1, _, _ = ramp_volume.extract_slice(2, 3.0)
        np.testing.assert_allclose(values, 0.5 * (expected0 + expected1), rtol=1e-6)

    def test_slice_clamps_out_of_range(self, ramp_volume):
        lo, _, _ = ramp_volume.extract_slice(0, -50.0)
        first, _, _ = ramp_volume.extract_slice(0, 0.0)
        np.testing.assert_allclose(lo, first)

    def test_bad_axis(self, ramp_volume):
        with pytest.raises(RenderingError):
            ramp_volume.extract_slice(3, 0.0)


class TestGradient:
    def test_gradient_of_linear_field(self, ramp_volume):
        # field = x + 10y + 100z in *world* coordinates, so the gradient
        # per world unit is exactly (1, 10, 100) regardless of spacing
        grad = ramp_volume.gradient()
        np.testing.assert_allclose(grad[..., 0], 1.0, rtol=1e-5)
        np.testing.assert_allclose(grad[..., 1], 10.0, rtol=1e-5)
        np.testing.assert_allclose(grad[..., 2], 100.0, rtol=1e-5)
