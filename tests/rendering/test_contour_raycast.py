"""Marching squares and the volume ray caster."""

import numpy as np
import pytest

from repro.rendering.camera import Camera
from repro.rendering.contour2d import contour_levels, marching_squares
from repro.rendering.image_data import ImageData
from repro.rendering.raycast import _ray_box_intersection, raycast_volume
from repro.rendering.transfer_function import TransferFunction
from repro.util.errors import RenderingError


class TestMarchingSquares:
    def test_circle_contour_radius(self):
        n = 64
        x = np.linspace(-1, 1, n)
        X, Y = np.meshgrid(x, x, indexing="ij")
        segments = marching_squares(np.sqrt(X**2 + Y**2), 0.5, x, x)
        assert segments
        pts = np.concatenate(segments)
        radii = np.linalg.norm(pts, axis=1)
        np.testing.assert_allclose(radii, 0.5, atol=0.03)

    def test_total_length_matches_circumference(self):
        n = 96
        x = np.linspace(-1, 1, n)
        X, Y = np.meshgrid(x, x, indexing="ij")
        segments = marching_squares(np.sqrt(X**2 + Y**2), 0.6, x, x)
        length = sum(np.linalg.norm(s[1] - s[0]) for s in segments)
        assert length == pytest.approx(2 * np.pi * 0.6, rel=0.02)

    def test_constant_field_no_contours(self):
        assert marching_squares(np.ones((8, 8)), 0.5) == []

    def test_level_outside_range(self):
        field = np.random.default_rng(0).random((8, 8))
        assert marching_squares(field, 99.0) == []

    def test_nan_cells_skipped(self):
        field = np.ones((6, 6))
        field[3:, :] = 0.0
        field[0, 0] = np.nan
        segments = marching_squares(field, 0.5)
        # contour exists but avoids the NaN corner cell
        assert segments
        for seg in segments:
            assert not (seg[:, 0] < 1.0).all() or not (seg[:, 1] < 1.0).all()

    def test_saddle_cells_resolve(self):
        # checkerboard 2x2 produces the saddle configuration
        field = np.array([[1.0, 0.0], [0.0, 1.0]])
        segments = marching_squares(field, 0.5)
        assert len(segments) == 2

    def test_coordinate_mapping(self):
        field = np.array([[0.0, 0.0], [1.0, 1.0]])
        segments = marching_squares(field, 0.5, [10.0, 20.0], [0.0, 1.0])
        np.testing.assert_allclose([s[0][0] for s in segments], 15.0)

    def test_requires_2d(self):
        with pytest.raises(RenderingError):
            marching_squares(np.zeros(5), 0.0)

    def test_contour_levels_inside_range(self):
        field = np.linspace(0, 10, 100).reshape(10, 10)
        levels = contour_levels(field, 5)
        assert len(levels) == 5
        assert levels.min() > 0.0 and levels.max() < 10.0


@pytest.fixture()
def blob_volume():
    """A dense ball in the middle of a transparent volume."""
    n = 24
    x = np.linspace(-1, 1, n)
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    vol = ImageData((n, n, n), origin=(-1, -1, -1), spacing=(2 / (n - 1),) * 3)
    vol.add_array("density", np.exp(-4 * (X**2 + Y**2 + Z**2)))
    return vol


class TestRayBoxIntersection:
    def test_hit_through_center(self):
        origins = np.array([[0.0, 0.0, -5.0]])
        dirs = np.array([[0.0, 0.0, 1.0]])
        t0, t1 = _ray_box_intersection(origins, dirs, (-1, 1, -1, 1, -1, 1))
        assert t0[0] == pytest.approx(4.0)
        assert t1[0] == pytest.approx(6.0)

    def test_miss(self):
        origins = np.array([[5.0, 5.0, -5.0]])
        dirs = np.array([[0.0, 0.0, 1.0]])
        t0, t1 = _ray_box_intersection(origins, dirs, (-1, 1, -1, 1, -1, 1))
        assert t0[0] > t1[0]

    def test_parallel_ray_inside_slab(self):
        origins = np.array([[0.0, 0.0, 0.0]])
        dirs = np.array([[1.0, 0.0, 0.0]])
        t0, t1 = _ray_box_intersection(origins, dirs, (-1, 1, -1, 1, -1, 1))
        assert t0[0] < t1[0]

    def test_origin_inside_box(self):
        origins = np.array([[0.0, 0.0, 0.0]])
        dirs = np.array([[0.0, 0.0, 1.0]])
        t0, t1 = _ray_box_intersection(origins, dirs, (-1, 1, -1, 1, -1, 1))
        assert t1[0] == pytest.approx(1.0)


class TestRaycast:
    def _camera(self, vol):
        return Camera.fit_bounds(vol.bounds())

    def test_output_shape_and_range(self, blob_volume):
        tf = TransferFunction(blob_volume.scalar_range(), center=0.8, width=0.5)
        rgba = raycast_volume(blob_volume, tf, self._camera(blob_volume), 32, 24)
        assert rgba.shape == (24, 32, 4)
        assert rgba.min() >= 0.0 and rgba.max() <= 1.0

    def test_center_opaque_corners_transparent(self, blob_volume):
        tf = TransferFunction(blob_volume.scalar_range(), center=0.9, width=0.4,
                              peak_opacity=1.0)
        rgba = raycast_volume(blob_volume, tf, self._camera(blob_volume), 33, 33)
        assert rgba[16, 16, 3] > 0.5
        assert rgba[0, 0, 3] < 0.05

    def test_empty_transfer_function_transparent(self, blob_volume):
        # a window placed above the data range → nothing maps to opacity
        tf = TransferFunction((10.0, 20.0), center=0.5, width=0.2)
        rgba = raycast_volume(blob_volume, tf, self._camera(blob_volume), 16, 16)
        assert rgba[..., 3].max() == pytest.approx(0.0, abs=1e-5)

    def test_depth_limit_occludes(self, blob_volume):
        tf = TransferFunction(blob_volume.scalar_range(), center=0.9, width=0.4,
                              peak_opacity=1.0)
        cam = self._camera(blob_volume)
        # geometry right at the camera: everything occluded
        depth = np.full((16, 16), 1e-6, dtype=np.float32)
        rgba = raycast_volume(blob_volume, tf, cam, 16, 16, depth_limit=depth)
        assert rgba[..., 3].max() == pytest.approx(0.0, abs=1e-5)

    def test_step_size_convergence(self, blob_volume):
        tf = TransferFunction(blob_volume.scalar_range(), center=0.8, width=0.5)
        cam = self._camera(blob_volume)
        fine = raycast_volume(blob_volume, tf, cam, 16, 16, step_size=0.02)
        coarse = raycast_volume(blob_volume, tf, cam, 16, 16, step_size=0.04)
        # opacity correction keeps results close across step sizes
        assert np.abs(fine[..., 3] - coarse[..., 3]).mean() < 0.05

    def test_lighting_changes_colors_not_alpha(self, blob_volume):
        tf = TransferFunction(blob_volume.scalar_range(), center=0.8, width=0.5)
        cam = self._camera(blob_volume)
        lit = raycast_volume(blob_volume, tf, cam, 16, 16, lighting=True)
        unlit = raycast_volume(blob_volume, tf, cam, 16, 16, lighting=False)
        np.testing.assert_allclose(lit[..., 3], unlit[..., 3], atol=1e-6)
        assert np.abs(lit[..., :3] - unlit[..., :3]).max() > 0.01

    def test_bad_step_size(self, blob_volume):
        tf = TransferFunction(blob_volume.scalar_range())
        with pytest.raises(RenderingError):
            raycast_volume(blob_volume, tf, self._camera(blob_volume), 8, 8, step_size=-1.0)
