"""Stereo composition and axis annotations."""

import numpy as np
import pytest

from repro.rendering.annotation import axis_annotations, nice_ticks, project_labels
from repro.rendering.camera import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.stereo import anaglyph, disparity_estimate, interlaced, side_by_side
from repro.util.errors import RenderingError


def frame(value, h=10, w=12):
    fb = Framebuffer(w, h, background=(value, value, value))
    return fb


class TestStereoComposition:
    def test_anaglyph_channels(self):
        left = frame(1.0)
        right = frame(0.0)
        out = anaglyph(left, right)
        assert out[0, 0, 0] == 255  # left luminance in red
        assert out[0, 0, 1] == 0 and out[0, 0, 2] == 0  # right in cyan

    def test_anaglyph_accepts_uint8(self):
        left = np.full((4, 4, 3), 255, dtype=np.uint8)
        right = np.zeros((4, 4, 3), dtype=np.uint8)
        out = anaglyph(left, right)
        assert out.dtype == np.uint8

    def test_shape_mismatch(self):
        with pytest.raises(RenderingError):
            anaglyph(frame(0.5), frame(0.5, h=11))

    def test_side_by_side_dimensions(self):
        out = side_by_side(frame(0.2), frame(0.8), gap=4)
        assert out.shape == (10, 12 + 4 + 12, 3)
        assert out[0, 12 + 2, 0] == 0  # the gap is black

    def test_interlaced_rows(self):
        out = interlaced(frame(1.0), frame(0.0))
        assert out[0, 0, 0] == 255  # even row: left
        assert out[1, 0, 0] == 0  # odd row: right

    def test_disparity_estimate_detects_shift(self):
        rng = np.random.default_rng(5)
        base = rng.random((20, 60, 3)).astype(np.float32)
        shifted = np.roll(base, 3, axis=1)
        assert disparity_estimate(base, shifted, max_shift=8) == pytest.approx(-3, abs=1)

    def test_stereo_pipeline_end_to_end(self, reanalysis):
        """A real stereo pair composes into a frame with parallax."""
        from repro.dv3d.isosurface import IsosurfacePlot
        from repro.rendering.scene import Renderer

        plot = IsosurfacePlot(reanalysis("ta"))
        left, right = Renderer(64, 48).render_stereo(
            plot.build_scene(), plot.default_camera(), eye_separation=0.1
        )
        composite = anaglyph(left, right)
        assert composite.shape == (48, 64, 3)
        assert not np.array_equal(left.to_uint8(), right.to_uint8())


class TestNiceTicks:
    def test_covers_range(self):
        ticks = nice_ticks(0.0, 100.0)
        assert ticks.min() >= 0.0 and ticks.max() <= 100.0
        assert len(ticks) >= 3

    def test_round_values(self):
        ticks = nice_ticks(-87.3, 91.6, target_count=5)
        steps = np.diff(ticks)
        assert np.allclose(steps, steps[0])
        # step is from the 1-2-5 ladder
        mantissa = steps[0] / 10 ** np.floor(np.log10(steps[0]))
        assert round(mantissa, 6) in (1.0, 2.0, 5.0)

    def test_small_range(self):
        ticks = nice_ticks(0.001, 0.009)
        assert len(ticks) >= 2

    def test_bad_range(self):
        with pytest.raises(RenderingError):
            nice_ticks(5.0, 5.0)


class TestAxisAnnotations:
    BOUNDS = (0.0, 360.0, -90.0, 90.0, 0.0, 30.0)

    def test_ticks_and_labels_generated(self):
        ticks, labels = axis_annotations(self.BOUNDS)
        assert ticks.n_points > 0
        assert len(ticks.lines) == len(labels)

    def test_geo_formatting(self):
        _, labels = axis_annotations(self.BOUNDS)
        texts = {l.text for l in labels}
        assert "EQ" in texts
        assert any(t.endswith("N") for t in texts)
        assert any(t.endswith("E") or t.endswith("W") or t in ("0", "180") for t in texts)

    def test_ticks_outside_box(self):
        ticks, _ = axis_annotations(self.BOUNDS)
        # tick endpoints extend below ymin or left of xmin
        assert ticks.points[:, 1].min() < self.BOUNDS[2] or ticks.points[:, 0].min() < self.BOUNDS[0]

    def test_project_labels_on_screen(self):
        _, labels = axis_annotations(self.BOUNDS)
        camera = Camera.fit_bounds(self.BOUNDS)
        placements = project_labels(labels, camera, 200, 150)
        assert placements
        for _text, row, col in placements:
            assert -50 <= col <= 250 and -20 <= row <= 170

    def test_degenerate_bounds(self):
        with pytest.raises(RenderingError):
            axis_annotations((0.0, 0.0, 0.0, 1.0, 0.0, 1.0))

    def test_cell_renders_with_axes(self, ta):
        from repro.dv3d.cell import DV3DCell
        from repro.dv3d.slicer import SlicerPlot

        with_axes = DV3DCell(SlicerPlot(ta), show_axes=True, show_labels=False,
                             show_colorbar=False, show_basemap=False)
        without = DV3DCell(SlicerPlot(ta), show_axes=False, show_labels=False,
                           show_colorbar=False, show_basemap=False)
        assert not np.array_equal(
            with_axes.render(120, 90).to_uint8(), without.render(120, 90).to_uint8()
        )
