"""Property tests for the min/max tile pyramid and empty-space skipping.

The pyramid's entire value is a conservativeness guarantee: a tile it
rules out must truly contain nothing — no voxel outside the tile's
bounds, no straddling cell in a non-straddling tile, and, end to end,
no sample whose skipping could change a rendered byte.  Hypothesis
sweeps volume shapes, value distributions (including NaN holes), tile
sizes and isovalues; the differential tests then pin the ray caster
and isosurface outputs with acceleration on vs off.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rendering.accel import (
    DEFAULT_TILE,
    MinMaxPyramid,
    raycast_row_weights,
    z_layer_weights,
)
from repro.rendering.camera import Camera
from repro.rendering.image_data import ImageData
from repro.rendering.isosurface import candidate_cells, marching_tetrahedra
from repro.rendering.raycast import raycast_volume
from repro.rendering.transfer_function import TransferFunction
from repro.util.errors import RenderingError


@st.composite
def scalar_volumes(draw):
    shape = (
        draw(st.integers(min_value=2, max_value=9)),
        draw(st.integers(min_value=2, max_value=9)),
        draw(st.integers(min_value=2, max_value=9)),
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    values = rng.normal(size=shape).astype(np.float32)
    if draw(st.booleans()):  # punch a NaN hole through part of the data
        mask = rng.random(shape) < draw(st.floats(min_value=0.05, max_value=0.4))
        values[mask] = np.nan
    return values


@st.composite
def tiles(draw):
    return draw(st.integers(min_value=1, max_value=5))


class TestPyramidBounds:
    @settings(max_examples=60, deadline=None)
    @given(values=scalar_volumes(), tile=tiles())
    def test_cell_bounds_cover_all_corner_voxels(self, values, tile):
        """Every finite voxel of every cell lies within its tile's bounds."""
        pyramid = MinMaxPyramid.build(values, tile=tile)
        level = pyramid.levels[0]
        nx, ny, nz = values.shape
        for i in range(nx - 1):
            for j in range(ny - 1):
                for k in range(nz - 1):
                    cell = values[i : i + 2, j : j + 2, k : k + 2]
                    ti, tj, tk = i // tile, j // tile, k // tile
                    finite = cell[np.isfinite(cell)]
                    if finite.size:
                        assert level.vmin[ti, tj, tk] <= finite.min()
                        assert level.vmax[ti, tj, tk] >= finite.max()
                    if np.isnan(cell).any():
                        assert level.nonfinite[ti, tj, tk]

    @settings(max_examples=40, deadline=None)
    @given(values=scalar_volumes(), tile=tiles())
    def test_coarser_levels_contain_finer(self, values, tile):
        pyramid = MinMaxPyramid.build(values, tile=tile)
        for fine, coarse in zip(pyramid.levels, pyramid.levels[1:]):
            for ti in range(fine.shape[0]):
                for tj in range(fine.shape[1]):
                    for tk in range(fine.shape[2]):
                        ci, cj, ck = ti // 2, tj // 2, tk // 2
                        if fine.vmin[ti, tj, tk] <= fine.vmax[ti, tj, tk]:
                            assert coarse.vmin[ci, cj, ck] <= fine.vmin[ti, tj, tk]
                            assert coarse.vmax[ci, cj, ck] >= fine.vmax[ti, tj, tk]
                        if fine.nonfinite[ti, tj, tk]:
                            assert coarse.nonfinite[ci, cj, ck]

    @settings(max_examples=60, deadline=None)
    @given(
        values=scalar_volumes(),
        tile=tiles(),
        isovalue=st.floats(min_value=-2.5, max_value=2.5),
    )
    def test_straddling_never_excludes_a_contributing_cell(
        self, values, tile, isovalue
    ):
        """A cell that would emit triangles always lies in a True tile."""
        pyramid = MinMaxPyramid.build(values, tile=tile)
        mask = pyramid.cell_mask(pyramid.straddling(isovalue))
        prepared = np.where(np.isfinite(values), values, -np.inf)
        nx, ny, nz = values.shape
        for i in range(nx - 1):
            for j in range(ny - 1):
                for k in range(nz - 1):
                    cell = prepared[i : i + 2, j : j + 2, k : k + 2]
                    crosses = bool((cell > isovalue).any() and (cell <= isovalue).any())
                    if crosses:
                        assert mask[i, j, k], (
                            f"cell ({i},{j},{k}) straddles isovalue {isovalue} "
                            "but its tile was culled"
                        )

    @settings(max_examples=60, deadline=None)
    @given(
        values=scalar_volumes(),
        tile=tiles(),
        lo=st.floats(min_value=-2.0, max_value=2.0),
        span=st.floats(min_value=0.0, max_value=2.0),
    )
    def test_blocked_tiles_hold_no_in_support_value(self, values, tile, lo, span):
        """Every finite voxel of a blocked tile is outside [lo, hi]."""
        hi = lo + span
        pyramid = MinMaxPyramid.build(values, tile=tile)
        blocked = pyramid.blocked_outside(lo, hi)
        mask = pyramid.cell_mask(blocked)
        nx, ny, nz = values.shape
        for i in range(nx - 1):
            for j in range(ny - 1):
                for k in range(nz - 1):
                    if not mask[i, j, k]:
                        continue
                    cell = values[i : i + 2, j : j + 2, k : k + 2]
                    finite = cell[np.isfinite(cell)]
                    assert not ((finite >= lo) & (finite <= hi)).any()

    def test_degenerate_volume_rejected(self):
        with pytest.raises(RenderingError):
            MinMaxPyramid.build(np.zeros((1, 4, 4), dtype=np.float32))
        with pytest.raises(RenderingError):
            MinMaxPyramid.build(np.zeros((4, 4), dtype=np.float32))

    def test_active_cell_bounds_tight_and_clipped(self):
        values = np.zeros((9, 9, 9), dtype=np.float32)
        pyramid = MinMaxPyramid.build(values, tile=4)
        mask = np.zeros(pyramid.levels[0].shape, dtype=bool)
        assert pyramid.active_cell_bounds(mask) is None
        mask[1, 0, 1] = True
        i0, i1, j0, j1, k0, k1 = pyramid.active_cell_bounds(mask)
        assert (i0, i1) == (4, 8)
        assert (j0, j1) == (0, 4)
        assert (k0, k1) == (4, 8)


def _blob_volume(n=20):
    x = np.linspace(-1, 1, n)
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    vol = ImageData((n, n, n), origin=(-1, -1, -1), spacing=(2 / (n - 1),) * 3)
    vol.add_array("blob", np.exp(-3 * (X**2 + Y**2 + Z**2)))
    return vol


class TestDifferentialSkipping:
    """Acceleration on vs off must be byte-for-byte invisible."""

    @settings(max_examples=8, deadline=None)
    @given(
        center=st.floats(min_value=0.1, max_value=0.95),
        width=st.floats(min_value=0.05, max_value=0.6),
    )
    def test_raycast_skipping_is_bitwise_invisible(self, center, width):
        volume = _blob_volume(14)
        camera = Camera.fit_bounds(volume.bounds())
        transfer = TransferFunction(
            volume.scalar_range(), center=center, width=width
        )
        on = raycast_volume(
            volume, transfer, camera, 32, 24, empty_space_skipping=True
        )
        off = raycast_volume(
            volume, transfer, camera, 32, 24, empty_space_skipping=False
        )
        assert on.tobytes() == off.tobytes()

    @settings(max_examples=10, deadline=None)
    @given(isovalue=st.floats(min_value=0.05, max_value=0.95))
    def test_isosurface_culling_is_array_identical(self, isovalue):
        volume = _blob_volume(14)
        on = marching_tetrahedra(volume, isovalue, accelerate=True)
        off = marching_tetrahedra(volume, isovalue, accelerate=False)
        assert np.array_equal(on.points, off.points)
        assert np.array_equal(on.triangles, off.triangles)

    def test_raycast_skipping_with_nan_regions(self):
        volume = _blob_volume(14)
        blob = volume.get_array("blob").copy()
        blob[4:9, :, :] = np.nan
        volume.add_array("blob", blob)
        camera = Camera.fit_bounds(volume.bounds())
        transfer = TransferFunction((0.0, 1.0), center=0.7, width=0.3)
        on = raycast_volume(
            volume, transfer, camera, 32, 24, empty_space_skipping=True
        )
        off = raycast_volume(
            volume, transfer, camera, 32, 24, empty_space_skipping=False
        )
        assert on.tobytes() == off.tobytes()

    def test_zero_opacity_short_circuit_matches_brute_force(self):
        volume = _blob_volume(12)
        camera = Camera.fit_bounds(volume.bounds())
        # window entirely above the data range: opacity support empty
        transfer = TransferFunction((5.0, 6.0), center=0.5, width=0.2)
        on = raycast_volume(
            volume, transfer, camera, 24, 18, empty_space_skipping=True
        )
        off = raycast_volume(
            volume, transfer, camera, 24, 18, empty_space_skipping=False
        )
        assert on.tobytes() == off.tobytes()

    def test_candidate_cells_cached_on_volume(self):
        volume = _blob_volume(12)
        first = candidate_cells(volume, 0.5, "blob")
        again = candidate_cells(volume, 0.5, "blob")
        assert first.shape == (11, 11, 11)
        # the pyramid behind the mask is cached per array
        assert volume.min_max_pyramid("blob") is volume.min_max_pyramid("blob")
        assert np.array_equal(first, again)


class TestCostModels:
    def test_z_layer_weights_track_candidates(self):
        mask = np.zeros((6, 6, 6), dtype=bool)
        mask[:, :, 2] = True
        weights = z_layer_weights(mask)
        assert weights.shape == (6,)
        assert weights[2] == weights.max()
        assert (weights > 0).all()  # base cost keeps every layer nonzero

    def test_raycast_row_weights_deterministic_and_positive(self):
        volume = _blob_volume(12)
        camera = Camera.fit_bounds(volume.bounds())
        a = raycast_row_weights(volume, camera, 32, 24, 0.1, volume.bounds())
        b = raycast_row_weights(volume, camera, 32, 24, 0.1, volume.bounds())
        assert np.array_equal(a, b)
        assert a.shape == (24,)
        assert (a >= 1.0).all()
        # rows through the volume cost more than rows that miss it
        assert a.max() > a.min()

    def test_raycast_row_weights_without_box_are_uniform(self):
        volume = _blob_volume(12)
        camera = Camera.fit_bounds(volume.bounds())
        weights = raycast_row_weights(volume, camera, 32, 24, 0.1, None)
        assert np.array_equal(weights, np.ones(24))

    def test_default_tile_sane(self):
        assert DEFAULT_TILE >= 1
