"""Colormaps and transfer functions: mapping, leveling, serialization."""

import numpy as np
import pytest

from repro.rendering.colormap import Colormap, colormap_names, get_colormap
from repro.rendering.transfer_function import (
    ColorTransferFunction,
    OpacityTransferFunction,
    TransferFunction,
)
from repro.util.errors import RenderingError


class TestColormap:
    def test_table_shape_and_range(self):
        cmap = Colormap("jet", n_colors=64)
        assert cmap.table.shape == (64, 3)
        assert cmap.table.min() >= 0.0 and cmap.table.max() <= 1.0

    def test_unknown_name(self):
        with pytest.raises(RenderingError):
            Colormap("nonexistent")

    def test_map_scalars_endpoints(self):
        cmap = Colormap("grayscale")
        rgb = cmap.map_scalars(np.array([0.0, 1.0]), 0.0, 1.0)
        np.testing.assert_allclose(rgb[0], [0, 0, 0], atol=1e-6)
        np.testing.assert_allclose(rgb[1], [1, 1, 1], atol=1e-6)

    def test_map_scalars_clamps(self):
        cmap = Colormap("grayscale")
        rgb = cmap.map_scalars(np.array([-5.0, 5.0]), 0.0, 1.0)
        np.testing.assert_allclose(rgb[0], [0, 0, 0], atol=1e-6)
        np.testing.assert_allclose(rgb[1], [1, 1, 1], atol=1e-6)

    def test_nan_gets_nan_color(self):
        cmap = Colormap("jet")
        rgb = cmap.map_scalars(np.array([np.nan]), 0.0, 1.0, nan_color=(1, 0, 1))
        np.testing.assert_allclose(rgb[0], [1, 0, 1])

    def test_invert_reverses(self):
        cmap = Colormap("jet")
        inv = cmap.invert()
        np.testing.assert_allclose(cmap.table, inv.table[::-1], atol=1e-6)
        assert inv.invert().inverted is False

    def test_next_map_cycles_through_all(self):
        cmap = Colormap(colormap_names()[0])
        seen = {cmap.name}
        for _ in range(len(colormap_names()) - 1):
            cmap = cmap.next_map()
            seen.add(cmap.name)
        assert seen == set(colormap_names())

    def test_degenerate_range(self):
        cmap = Colormap("jet")
        rgb = cmap.map_scalars(np.array([5.0]), 5.0, 5.0)
        assert rgb.shape == (1, 3)

    def test_state_roundtrip(self):
        cmap = Colormap("coolwarm", n_colors=32, inverted=True)
        back = Colormap.from_state(cmap.state())
        np.testing.assert_allclose(cmap.table, back.table)

    def test_colorbar_strip(self):
        strip = get_colormap("jet").colorbar_strip(width=5, height=20)
        assert strip.shape == (20, 5, 3)
        # low values at the bottom
        np.testing.assert_allclose(strip[-1, 0], Colormap("jet").table[0], atol=1e-6)

    def test_preserves_shape(self):
        cmap = Colormap("default")
        rgb = cmap.map_scalars(np.zeros((4, 5)), 0.0, 1.0)
        assert rgb.shape == (4, 5, 3)


class TestOpacityFunction:
    def test_interpolation(self):
        otf = OpacityTransferFunction([(0.0, 0.0), (1.0, 1.0)])
        np.testing.assert_allclose(otf(np.array([0.25, 0.75])), [0.25, 0.75])

    def test_needs_two_points(self):
        with pytest.raises(RenderingError):
            OpacityTransferFunction([(0.5, 0.5)])

    def test_rejects_out_of_range_points(self):
        with pytest.raises(RenderingError):
            OpacityTransferFunction([(0.0, 0.0), (1.5, 1.0)])

    def test_window_peak_at_center(self):
        otf = OpacityTransferFunction.window(0.5, 0.4, peak=0.8)
        assert otf(np.array([0.5]))[0] == pytest.approx(0.8)
        assert otf(np.array([0.0]))[0] == pytest.approx(0.0)
        assert otf(np.array([1.0]))[0] == pytest.approx(0.0)

    def test_window_clipped_at_edges(self):
        otf = OpacityTransferFunction.window(0.0, 0.4)
        assert otf(np.array([0.0]))[0] > 0.5  # peak clipped to x=0

    def test_ramp(self):
        otf = OpacityTransferFunction.ramp(0.5, 0.1)
        assert otf(np.array([0.4]))[0] == 0.0
        assert otf(np.array([0.8]))[0] == pytest.approx(1.0)


class TestTransferFunction:
    def test_evaluate_shapes(self):
        tf = TransferFunction((0.0, 10.0))
        rgb, alpha = tf.evaluate(np.array([1.0, 5.0, 9.0]))
        assert rgb.shape == (3, 3) and alpha.shape == (3,)

    def test_nan_zero_opacity(self):
        tf = TransferFunction((0.0, 10.0))
        _, alpha = tf.evaluate(np.array([np.nan]))
        assert alpha[0] == 0.0

    def test_level_moves_center(self):
        tf = TransferFunction((0.0, 1.0), center=0.5, width=0.2)
        moved = tf.level(0.2, 0.0)
        assert moved.center == pytest.approx(0.7)
        assert moved.width == pytest.approx(0.2, rel=1e-6)

    def test_level_scales_width(self):
        tf = TransferFunction((0.0, 1.0), center=0.5, width=0.2)
        widened = tf.level(0.0, 0.5)
        assert widened.width == pytest.approx(0.3, rel=1e-6)

    def test_level_clamps(self):
        tf = TransferFunction((0.0, 1.0), center=0.9, width=0.2)
        assert tf.level(0.5, 0.0).center == 1.0
        assert tf.level(0.0, -10.0).width >= 1e-3

    def test_bad_range(self):
        with pytest.raises(RenderingError):
            TransferFunction((5.0, 5.0))

    def test_state_roundtrip(self):
        tf = TransferFunction((0.0, 10.0), center=0.3, width=0.15, peak_opacity=0.6)
        back = TransferFunction.from_state(tf.state())
        assert back.center == tf.center
        assert back.width == tf.width
        assert back.scalar_range == tf.scalar_range

    def test_opacity_peaks_inside_window(self):
        tf = TransferFunction((0.0, 100.0), center=0.5, width=0.2)
        _, alpha_in = tf.evaluate(np.array([50.0]))
        _, alpha_out = tf.evaluate(np.array([10.0]))
        assert alpha_in[0] > alpha_out[0]

    def test_color_window(self):
        ctf = ColorTransferFunction(Colormap("grayscale"), window=(0.25, 0.75))
        rgb = ctf(np.array([0.25, 0.75]))
        np.testing.assert_allclose(rgb[0], [0, 0, 0], atol=1e-6)
        np.testing.assert_allclose(rgb[1], [1, 1, 1], atol=1e-6)
