"""Streamline integration and vector glyphs."""

import numpy as np
import pytest

from repro.rendering.glyphs import arrow_glyphs, slice_plane_glyphs
from repro.rendering.image_data import ImageData
from repro.rendering.streamline import (
    integrate_streamlines,
    plane_seed_grid,
    streamlines_to_polydata,
)
from repro.util.errors import RenderingError


@pytest.fixture()
def rotation_volume():
    """Solid-body rotation about the z axis: streamlines are circles."""
    n = 33
    x = np.linspace(-2, 2, n)
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    vol = ImageData((n, n, n), origin=(-2, -2, -2), spacing=(4 / (n - 1),) * 3)
    vec = np.stack([-Y, X, np.zeros_like(X)], axis=-1)
    vol.add_array("rot", vec, set_active=False)
    vol.add_array("speed", np.sqrt(X**2 + Y**2))
    return vol


@pytest.fixture()
def uniform_volume():
    """A uniform +x flow."""
    n = 17
    vol = ImageData((n, n, n), origin=(0, 0, 0), spacing=(1.0, 1.0, 1.0))
    vec = np.zeros((n, n, n, 3))
    vec[..., 0] = 2.0
    vol.add_array("flow", vec, set_active=False)
    return vol


class TestStreamlines:
    def test_uniform_flow_straight_lines(self, uniform_volume):
        seeds = np.array([[1.0, 8.0, 8.0]])
        lines = integrate_streamlines(uniform_volume, "flow", seeds, step_size=0.5)
        assert len(lines) == 1
        path = lines[0]
        np.testing.assert_allclose(path[:, 1], 8.0, atol=1e-9)
        np.testing.assert_allclose(path[:, 2], 8.0, atol=1e-9)
        assert path[-1, 0] > path[0, 0]  # moved downstream

    def test_terminates_at_boundary(self, uniform_volume):
        seeds = np.array([[14.0, 8.0, 8.0]])
        lines = integrate_streamlines(uniform_volume, "flow", seeds, step_size=0.5,
                                      max_steps=500)
        assert lines[0][-1, 0] <= 16.0 + 1e-9

    def test_rotation_preserves_radius(self, rotation_volume):
        seeds = np.array([[1.0, 0.0, 0.0]])
        lines = integrate_streamlines(
            rotation_volume, "rot", seeds, step_size=0.02, max_steps=300
        )
        radii = np.linalg.norm(lines[0][:, :2], axis=1)
        np.testing.assert_allclose(radii, 1.0, atol=0.02)

    def test_stalled_seed_produces_no_line(self, rotation_volume):
        # the rotation axis has zero velocity
        seeds = np.array([[0.0, 0.0, 0.0]])
        lines = integrate_streamlines(rotation_volume, "rot", seeds)
        assert lines == []

    def test_outside_seed_dropped(self, uniform_volume):
        seeds = np.array([[100.0, 0.0, 0.0]])
        assert integrate_streamlines(uniform_volume, "flow", seeds) == []

    def test_bidirectional_doubles_extent(self, uniform_volume):
        seeds = np.array([[8.0, 8.0, 8.0]])
        fwd = integrate_streamlines(uniform_volume, "flow", seeds, step_size=0.5)
        both = integrate_streamlines(uniform_volume, "flow", seeds, step_size=0.5,
                                     bidirectional=True)
        assert both[0][:, 0].min() < fwd[0][:, 0].min()

    def test_multiple_seeds_vectorized(self, uniform_volume):
        seeds = plane_seed_grid(uniform_volume, 0, 1.0, 3, 3)
        lines = integrate_streamlines(uniform_volume, "flow", seeds, step_size=0.5)
        assert len(lines) == 9

    def test_bad_seeds_shape(self, uniform_volume):
        with pytest.raises(RenderingError):
            integrate_streamlines(uniform_volume, "flow", np.zeros((2, 2)))


class TestStreamlinePolyData:
    def test_packing(self, uniform_volume):
        seeds = np.array([[1.0, 4.0, 4.0], [1.0, 10.0, 10.0]])
        lines = integrate_streamlines(uniform_volume, "flow", seeds, step_size=1.0)
        poly = streamlines_to_polydata(lines, uniform_volume, "flow")
        assert len(poly.lines) == 2
        assert poly.n_points == sum(len(l) for l in lines)
        np.testing.assert_allclose(poly.scalars, 2.0, atol=1e-6)  # |flow| = 2

    def test_empty(self):
        poly = streamlines_to_polydata([])
        assert poly.n_points == 0


class TestGlyphs:
    def test_arrow_structure(self):
        poly = arrow_glyphs(np.array([[0.0, 0.0, 0.0]]), np.array([[1.0, 0.0, 0.0]]))
        assert poly.n_points == 4  # tail, tip, two barbs
        assert len(poly.lines) == 1
        assert len(poly.lines[0]) == 5

    def test_glyph_length_scales_with_magnitude(self):
        poly = arrow_glyphs(
            np.zeros((2, 3)), np.array([[1.0, 0, 0], [3.0, 0, 0]]), scale=1.0
        )
        tips = poly.points[2:4]
        assert tips[1, 0] == pytest.approx(3.0)
        assert tips[0, 0] == pytest.approx(1.0)

    def test_max_length_clamps(self):
        poly = arrow_glyphs(
            np.zeros((1, 3)), np.array([[100.0, 0, 0]]), scale=1.0, max_length=2.0
        )
        assert poly.points[1, 0] == pytest.approx(2.0)

    def test_zero_vectors_dropped(self):
        poly = arrow_glyphs(np.zeros((2, 3)), np.zeros((2, 3)))
        assert poly.n_points == 0

    def test_scalars_carry_magnitude(self):
        poly = arrow_glyphs(np.zeros((1, 3)), np.array([[0.0, 4.0, 3.0]]))
        np.testing.assert_allclose(poly.scalars, 5.0)

    def test_slice_plane_glyphs(self, rotation_volume):
        poly = slice_plane_glyphs(rotation_volume, "rot", 2, 0.0, stride=8)
        assert poly.n_points > 0
        # glyph points stay on (or near, for barbs) the slice plane
        assert np.abs(poly.points[:, 2]).max() < 1.0

    def test_slice_plane_vectors_projected(self, rotation_volume):
        # a z-normal slice of a z-less field keeps glyphs exactly planar
        poly = slice_plane_glyphs(rotation_volume, "rot", 2, 0.0, stride=16)
        tails = poly.points[: poly.n_points // 4]
        np.testing.assert_allclose(tails[:, 2], 0.0, atol=1e-9)

    def test_bad_stride(self, rotation_volume):
        with pytest.raises(RenderingError):
            slice_plane_glyphs(rotation_volume, "rot", 2, 0.0, stride=0)
