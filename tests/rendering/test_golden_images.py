"""Golden-image regression suite for the DV3D plot types.

Each plot type is rendered twice — serial and 4-worker parallel — at a
fixed seed and size.  The two framebuffers must be **byte identical**
(the determinism contract of :mod:`repro.parallel`), and the serial
uint8 image must match the committed golden PPM under
``tests/goldens/`` within a small per-channel tolerance (absorbing
cross-platform libm/BLAS jitter without letting real regressions
through).

Regenerate the goldens after an intentional rendering change with::

    pytest tests/rendering/test_golden_images.py --regen-goldens

or, to touch only specific plot types and leave the rest alone::

    pytest tests/rendering/test_golden_images.py --regen-goldens=volume,isosurface

Each regeneration prints a changed-pixel summary against the previous
golden, so an "intentional" change that unexpectedly shifts thousands
of pixels is visible right in the test output.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.dv3d.hovmoller import HovmollerSlicerPlot
from repro.dv3d.isosurface import IsosurfacePlot
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.vector_slicer import VectorSlicerPlot
from repro.dv3d.volume import VolumePlot
from repro.parallel import ParallelConfig
from repro.rendering.ppm import read_ppm, write_ppm

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "goldens"
WIDTH, HEIGHT = 96, 72
WORKERS = 4
#: per-channel uint8 tolerance vs the committed goldens (serial-vs-
#: parallel comparison is exact; this only absorbs platform jitter)
GOLDEN_ATOL = 2

PARALLEL = ParallelConfig(workers=WORKERS, min_items=1, timeout=300.0)

pytestmark = pytest.mark.skipif(
    not PARALLEL.enabled, reason="POSIX shared memory unavailable"
)


def _regen_summary(golden_path, image):
    """Changed-pixel diff vs the previous golden (for regen output)."""
    if not golden_path.exists():
        return "new golden (no previous image)"
    previous = read_ppm(golden_path)
    if previous.shape != image.shape:
        return f"size changed {previous.shape} -> {image.shape}"
    diff = np.abs(previous.astype(np.int16) - image.astype(np.int16))
    changed = int(np.count_nonzero(diff.max(axis=-1)))
    if changed == 0:
        return "byte-identical to previous golden"
    total = image.shape[0] * image.shape[1]
    return (
        f"{changed}/{total} pixels changed "
        f"({100.0 * changed / total:.1f}%), max channel delta {int(diff.max())}"
    )


def _build_plot(name, reanalysis, waves):
    if name == "volume":
        return VolumePlot(reanalysis("ta"), center=0.6, width=0.25)
    if name == "isosurface":
        return IsosurfacePlot(reanalysis("ta"), color_variable=reanalysis("hus"))
    if name == "slicer":
        return SlicerPlot(reanalysis("ta"))
    if name == "vector_slicer":
        return VectorSlicerPlot(
            reanalysis("ua"), reanalysis("va"), mode="streamlines", seed_density=8
        )
    if name == "hovmoller":
        return HovmollerSlicerPlot(waves("olr_anom"))
    raise AssertionError(name)


@pytest.mark.parametrize(
    "name", ["volume", "isosurface", "slicer", "vector_slicer", "hovmoller"]
)
def test_golden_image(name, reanalysis, waves, request):
    plot = _build_plot(name, reanalysis, waves)
    serial_fb = plot.render(WIDTH, HEIGHT)
    parallel_fb = plot.render(WIDTH, HEIGHT, parallel=PARALLEL)

    # determinism contract: parallel tiling is invisible in the output
    assert np.array_equal(serial_fb.color, parallel_fb.color), (
        f"{name}: parallel framebuffer differs from serial"
    )
    assert np.array_equal(serial_fb.depth, parallel_fb.depth), (
        f"{name}: parallel depth buffer differs from serial"
    )

    image = serial_fb.to_uint8()
    golden_path = GOLDEN_DIR / f"{name}.ppm"
    regen = request.config.getoption("--regen-goldens")
    if regen is not None:
        requested = [t.strip() for t in regen.split(",") if t.strip()]
        if regen == "all" or name in requested:
            summary = _regen_summary(golden_path, image)
            golden_path.parent.mkdir(parents=True, exist_ok=True)
            write_ppm(golden_path, image)
            pytest.skip(f"regenerated {golden_path.name}: {summary}")
        else:
            pytest.skip(f"{name} not in --regen-goldens={regen}")
    assert golden_path.exists(), (
        f"missing golden {golden_path}; run pytest --regen-goldens"
    )
    golden = read_ppm(golden_path)
    assert golden.shape == image.shape
    diff = np.abs(golden.astype(np.int16) - image.astype(np.int16))
    assert int(diff.max()) <= GOLDEN_ATOL, (
        f"{name}: max channel deviation {int(diff.max())} > {GOLDEN_ATOL} "
        f"({int((diff > GOLDEN_ATOL).sum())} channels off)"
    )
