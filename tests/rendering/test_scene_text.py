"""Scenes, renderer composition, stereo, and text overlays."""

import numpy as np
import pytest

from repro.rendering.camera import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.geometry import box_outline, plane_quad
from repro.rendering.image_data import ImageData
from repro.rendering.scene import Actor, Renderer, Scene, VolumeActor
from repro.rendering.text import GLYPH_HEIGHT, glyph_bitmap, render_text, text_width
from repro.rendering.transfer_function import TransferFunction
from repro.util.errors import RenderingError


def quad_actor(color=(1.0, 0.0, 0.0)):
    quad = plane_quad(
        np.array([-1.0, -1.0, 0.0]), np.array([2.0, 0, 0]), np.array([0, 2.0, 0]), 3, 3
    )
    return Actor(quad, color=color, name="quad")


def small_volume():
    n = 12
    x = np.linspace(-1, 1, n)
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    vol = ImageData((n, n, n), origin=(-1, -1, -1), spacing=(2 / (n - 1),) * 3)
    vol.add_array("d", np.exp(-3 * (X**2 + Y**2 + Z**2)))
    return vol


class TestScene:
    def test_bounds_union(self):
        scene = Scene()
        scene.add_actor(quad_actor())
        scene.add_actor(Actor(box_outline((5, 6, 5, 6, 5, 6))))
        bounds = scene.bounds()
        assert bounds[0] == -1.0 and bounds[1] == 6.0

    def test_empty_scene_raises(self):
        with pytest.raises(RenderingError):
            Scene().bounds()

    def test_remove_by_name(self):
        scene = Scene()
        scene.add_actor(quad_actor())
        scene.add_actor(quad_actor())
        assert scene.remove("quad") == 2
        assert scene.actors == []

    def test_invisible_actor_excluded_from_bounds(self):
        scene = Scene()
        scene.add_actor(quad_actor())
        hidden = Actor(box_outline((50, 60, 50, 60, 50, 60)), visible=False)
        scene.add_actor(hidden)
        assert scene.bounds()[1] == 1.0


class TestRenderer:
    def test_render_covers_geometry(self):
        scene = Scene(background=(0, 0, 0))
        scene.add_actor(quad_actor())
        fb = Renderer(40, 30).render(scene)
        assert fb.coverage() > 0.05
        assert fb.color.max() > 0.1

    def test_invisible_actor_not_rendered(self):
        scene = Scene(background=(0, 0, 0))
        actor = quad_actor()
        actor.visible = False
        scene.add_actor(actor)
        scene.add_actor(Actor(box_outline((-1, 1, -1, 1, -1, 1)), visible=True,
                              line_color=(0.1, 0.1, 0.1)))
        fb = Renderer(30, 30).render(scene)
        assert fb.color[15, 15].max() < 0.2

    def test_volume_composited_over_geometry(self):
        scene = Scene(background=(0, 0, 0))
        vol = small_volume()
        tf = TransferFunction(vol.scalar_range(), center=0.9, width=0.4, peak_opacity=0.9)
        scene.add_volume(VolumeActor(vol, tf))
        fb = Renderer(30, 30).render(scene)
        assert fb.color[15, 15].max() > 0.05

    def test_geometry_occludes_volume(self):
        # an opaque quad between camera and volume keeps its own color
        scene = Scene(background=(0, 0, 0))
        vol = small_volume()
        tf = TransferFunction(vol.scalar_range(), center=0.9, width=0.4, peak_opacity=1.0)
        scene.add_volume(VolumeActor(vol, tf))
        quad = plane_quad(
            np.array([-2.0, -2.0, 1.5]), np.array([4.0, 0, 0]), np.array([0, 4.0, 0]), 3, 3
        )
        scene.add_actor(Actor(quad, color=(0.0, 1.0, 0.0), lighting=False))
        camera = Camera(position=(0, 0, 6), focal_point=(0, 0, 0), fov_degrees=40)
        fb = Renderer(31, 31).render(scene, camera)
        center = fb.color[15, 15]
        assert center[1] > center[0] and center[1] > center[2]  # green wins

    def test_stereo_pair_differs(self):
        scene = Scene(background=(0, 0, 0))
        scene.add_actor(quad_actor())
        left, right = Renderer(30, 30).render_stereo(scene)
        assert np.abs(left.color - right.color).max() > 0.0

    def test_bad_size(self):
        with pytest.raises(RenderingError):
            Renderer(0, 10)


class TestText:
    def test_glyph_shape(self):
        assert glyph_bitmap("A").shape == (7, 5)

    def test_known_glyph_pixels(self):
        bitmap = glyph_bitmap("I")
        assert bitmap[0].sum() == 3  # top bar of the serif I
        assert bool(bitmap[3, 2])  # center stroke

    def test_unknown_char_blank(self):
        assert glyph_bitmap("~").sum() == 0

    def test_lowercase_uppercased(self):
        np.testing.assert_array_equal(glyph_bitmap("a"), glyph_bitmap("A"))

    def test_render_text_dimensions(self):
        patch = render_text("AB")
        assert patch.shape == (GLYPH_HEIGHT, 11, 4)
        assert patch.shape[1] == text_width("AB")

    def test_render_text_scaling(self):
        patch = render_text("A", scale=3)
        assert patch.shape == (21, 15, 4)

    def test_alpha_channel(self):
        patch = render_text("X", background_alpha=0.25)
        assert patch[..., 3].max() == 1.0
        assert patch[..., 3].min() == pytest.approx(0.25)

    def test_empty_text(self):
        patch = render_text("")
        assert patch.shape[1] == 1

    def test_blend_into_framebuffer(self):
        fb = Framebuffer(40, 20, background=(0, 0, 0))
        fb.blend_patch(2, 2, render_text("HI", color=(1.0, 1.0, 0.0)))
        assert fb.color[..., 0].max() == pytest.approx(1.0)
        assert fb.color[..., 2].max() == pytest.approx(0.0)
