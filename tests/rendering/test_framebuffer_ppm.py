"""Framebuffer depth semantics, blending, downsampling; PPM round-trips."""

import numpy as np
import pytest

from repro.rendering.framebuffer import Framebuffer
from repro.rendering.ppm import read_ppm, write_pgm, write_ppm
from repro.util.errors import RenderingError


class TestFramebuffer:
    def test_clear_state(self):
        fb = Framebuffer(4, 3, background=(0.5, 0.0, 0.0))
        np.testing.assert_allclose(fb.color[..., 0], 0.5)
        assert np.isinf(fb.depth).all()
        assert fb.coverage() == 0.0

    def test_bad_size(self):
        with pytest.raises(RenderingError):
            Framebuffer(0, 5)

    def test_depth_test_nearest_wins(self):
        fb = Framebuffer(2, 2)
        fb.write_pixels(np.array([0]), np.array([0]), np.array([5.0]),
                        np.array([[1.0, 0.0, 0.0]]))
        fb.write_pixels(np.array([0]), np.array([0]), np.array([2.0]),
                        np.array([[0.0, 1.0, 0.0]]))
        np.testing.assert_allclose(fb.color[0, 0], [0, 1, 0])
        # farther write rejected
        fb.write_pixels(np.array([0]), np.array([0]), np.array([3.0]),
                        np.array([[0.0, 0.0, 1.0]]))
        np.testing.assert_allclose(fb.color[0, 0], [0, 1, 0])

    def test_duplicates_within_call_resolve_nearest(self):
        fb = Framebuffer(2, 2)
        fb.write_pixels(
            np.array([1, 1]), np.array([1, 1]), np.array([4.0, 1.0]),
            np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]),
        )
        np.testing.assert_allclose(fb.color[1, 1], [0, 0, 1])
        assert fb.depth[1, 1] == pytest.approx(1.0)

    def test_out_of_bounds_clipped(self):
        fb = Framebuffer(2, 2)
        drawn = fb.write_pixels(
            np.array([-1, 5]), np.array([0, 0]), np.array([1.0, 1.0]),
            np.ones((2, 3)),
        )
        assert drawn == 0

    def test_blend_image_alpha(self):
        fb = Framebuffer(2, 2, background=(0.0, 0.0, 0.0))
        rgba = np.zeros((2, 2, 4), dtype=np.float32)
        rgba[..., 0] = 1.0
        rgba[..., 3] = 0.5
        fb.blend_image(rgba)
        np.testing.assert_allclose(fb.color[..., 0], 0.5, atol=1e-6)

    def test_blend_image_shape_check(self):
        fb = Framebuffer(2, 2)
        with pytest.raises(RenderingError):
            fb.blend_image(np.zeros((3, 3, 4)))

    def test_blend_patch_clipping(self):
        fb = Framebuffer(4, 4, background=(0.0, 0.0, 0.0))
        patch = np.ones((3, 3, 4), dtype=np.float32)
        fb.blend_patch(-1, -1, patch)  # partially off-screen: no crash
        assert fb.color[0, 0, 0] == pytest.approx(1.0)
        assert fb.color[3, 3, 0] == pytest.approx(0.0)

    def test_to_uint8(self):
        fb = Framebuffer(1, 1, background=(1.0, 0.5, 0.0))
        img = fb.to_uint8()
        assert img.dtype == np.uint8
        assert tuple(img[0, 0]) == (255, 128, 0)

    def test_downsample_box_filter(self):
        fb = Framebuffer(4, 4, background=(0.0, 0.0, 0.0))
        fb.color[0:2, 0:2] = 1.0
        small = fb.downsample(2)
        assert small.shape == (2, 2, 3)
        assert small[0, 0, 0] == 255
        assert small[1, 1, 0] == 0

    def test_downsample_bad_factor(self):
        with pytest.raises(RenderingError):
            Framebuffer(4, 4).downsample(0)


class TestPPM:
    def test_ppm_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        image = rng.integers(0, 256, size=(7, 5, 3), dtype=np.uint8)
        path = tmp_path / "x.ppm"
        write_ppm(path, image)
        np.testing.assert_array_equal(read_ppm(path), image)

    def test_pgm_roundtrip(self, tmp_path):
        image = np.arange(20, dtype=np.uint8).reshape(4, 5)
        path = tmp_path / "x.pgm"
        write_pgm(path, image)
        np.testing.assert_array_equal(read_ppm(path), image)

    def test_write_rejects_wrong_dtype(self, tmp_path):
        with pytest.raises(RenderingError):
            write_ppm(tmp_path / "x.ppm", np.zeros((2, 2, 3)))

    def test_framebuffer_save(self, tmp_path):
        fb = Framebuffer(3, 2, background=(0.0, 1.0, 0.0))
        path = tmp_path / "fb.ppm"
        fb.save(str(path))
        image = read_ppm(path)
        assert image.shape == (2, 3, 3)
        assert image[0, 0, 1] == 255
