"""Marching tetrahedra: geometric correctness and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rendering.colormap import Colormap
from repro.rendering.image_data import ImageData
from repro.rendering.isosurface import color_surface_by_field, marching_tetrahedra


def sphere_volume(n=32, radius_field=True):
    x = np.linspace(-1, 1, n)
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    vol = ImageData((n, n, n), origin=(-1, -1, -1), spacing=(2 / (n - 1),) * 3)
    vol.add_array("r", np.sqrt(X**2 + Y**2 + Z**2))
    if radius_field:
        vol.add_array("x", X, set_active=False)
    return vol


class TestSphere:
    def test_surface_points_at_isovalue(self):
        vol = sphere_volume(24)
        surf = marching_tetrahedra(vol, 0.5)
        radii = np.linalg.norm(surf.points, axis=1)
        # linear interpolation of a radial field: small discretization error
        np.testing.assert_allclose(radii, 0.5, atol=0.02)

    def test_area_matches_analytic(self):
        vol = sphere_volume(40)
        surf = marching_tetrahedra(vol, 0.6)
        expected = 4 * np.pi * 0.6**2
        assert surf.surface_area() == pytest.approx(expected, rel=0.01)

    def test_area_converges_with_resolution(self):
        expected = 4 * np.pi * 0.6**2
        errors = []
        for n in (16, 32):
            surf = marching_tetrahedra(sphere_volume(n), 0.6)
            errors.append(abs(surf.surface_area() - expected))
        assert errors[1] < errors[0]

    def test_watertight_no_boundary_edges(self):
        """Every interior edge must be shared by exactly two triangles."""
        vol = sphere_volume(16)
        surf = marching_tetrahedra(vol, 0.5)
        tri = surf.triangles
        edges = np.concatenate([tri[:, [0, 1]], tri[:, [1, 2]], tri[:, [2, 0]]])
        edges = np.sort(edges, axis=1)
        _unique, counts = np.unique(edges, axis=0, return_counts=True)
        # a closed surface away from the volume boundary: all edges shared twice
        assert (counts == 2).all()

    def test_empty_above_max(self):
        vol = sphere_volume(12)
        assert marching_tetrahedra(vol, 10.0).n_points == 0

    def test_empty_below_min(self):
        vol = sphere_volume(12)
        assert marching_tetrahedra(vol, -1.0).n_points == 0


class TestGeneralBehavior:
    def test_planar_field_gives_plane(self):
        n = 10
        vol = ImageData((n, n, n))
        i = np.arange(n, dtype=float)
        vol.add_array("x", np.broadcast_to(i[:, None, None], (n, n, n)).copy())
        surf = marching_tetrahedra(vol, 4.5)
        np.testing.assert_allclose(surf.points[:, 0], 4.5, atol=1e-6)
        # area of the x=4.5 plane through a 9×9×9 cube of cells
        assert surf.surface_area() == pytest.approx(81.0, rel=1e-6)

    def test_nan_region_produces_no_surface(self):
        vol = sphere_volume(16)
        data = vol.get_array("r").copy()
        data[:8] = np.nan  # half the volume missing
        vol.add_array("r", data)
        surf = marching_tetrahedra(vol, 0.5)
        assert surf.n_points > 0
        assert surf.points[:, 0].min() >= vol.origin[0] + 6 * vol.spacing[0]

    def test_deduplication_shares_vertices(self):
        vol = sphere_volume(16)
        dedup = marching_tetrahedra(vol, 0.5, deduplicate=True)
        raw = marching_tetrahedra(vol, 0.5, deduplicate=False)
        assert dedup.n_points < raw.n_points
        # dedup quantizes vertices at 2^-20 index units: tiny area change
        assert dedup.surface_area() == pytest.approx(raw.surface_area(), rel=1e-5)

    def test_world_coordinates_respect_origin_spacing(self):
        n = 8
        vol = ImageData((n, n, n), origin=(100.0, 0.0, -5.0), spacing=(2.0, 1.0, 0.5))
        x = np.arange(n, dtype=float)
        vol.add_array("x", np.broadcast_to(x[:, None, None], (n, n, n)).copy())
        surf = marching_tetrahedra(vol, 3.5)
        np.testing.assert_allclose(surf.points[:, 0], 100.0 + 3.5 * 2.0, atol=1e-6)

    def test_too_small_volume(self):
        vol = ImageData((1, 5, 5))
        vol.add_array("x", np.zeros((1, 5, 5)))
        assert marching_tetrahedra(vol, 0.0).n_points == 0

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.15, max_value=1.2))
    def test_watertight_property_random_isovalues(self, isovalue):
        surf = marching_tetrahedra(sphere_volume(12), isovalue)
        if surf.n_triangles == 0:
            return
        tri = surf.triangles
        edges = np.sort(
            np.concatenate([tri[:, [0, 1]], tri[:, [1, 2]], tri[:, [2, 0]]]), axis=1
        )
        _u, counts = np.unique(edges, axis=0, return_counts=True)
        assert (counts <= 2).all()  # never more than 2 faces per edge


class TestColoring:
    def test_color_by_second_field(self):
        vol = sphere_volume(20)
        surf = marching_tetrahedra(vol, 0.5)
        colored = color_surface_by_field(surf, vol, "x", Colormap("coolwarm"))
        assert colored.colors is not None
        assert colored.colors.shape == (surf.n_points, 3)
        # x ranges over [-0.5, 0.5] on the surface: scalars reflect it
        assert colored.scalars.min() == pytest.approx(-0.5, abs=0.05)
        assert colored.scalars.max() == pytest.approx(0.5, abs=0.05)

    def test_explicit_range(self):
        vol = sphere_volume(16)
        surf = marching_tetrahedra(vol, 0.5)
        colored = color_surface_by_field(
            surf, vol, "x", Colormap("grayscale"), value_range=(-1.0, 1.0)
        )
        # x=0 maps to mid-gray
        mid = np.argmin(np.abs(colored.scalars))
        np.testing.assert_allclose(colored.colors[mid], 0.5, atol=0.08)

    def test_empty_surface_passthrough(self):
        vol = sphere_volume(12)
        empty = marching_tetrahedra(vol, 50.0)
        out = color_surface_by_field(empty, vol, "x", Colormap("jet"))
        assert out.n_points == 0
