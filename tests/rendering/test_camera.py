"""Camera: transforms, navigation invariants, stereo, projection."""

import numpy as np
import pytest

from repro.rendering.camera import Camera
from repro.util.errors import RenderingError


@pytest.fixture()
def camera():
    return Camera(position=(0.0, 0.0, 10.0), focal_point=(0.0, 0.0, 0.0),
                  view_up=(0.0, 1.0, 0.0), fov_degrees=45.0)


class TestConstruction:
    def test_coincident_position_rejected(self):
        with pytest.raises(RenderingError):
            Camera(position=(0, 0, 0), focal_point=(0, 0, 0))

    def test_bad_fov(self):
        with pytest.raises(RenderingError):
            Camera(fov_degrees=0.5)

    def test_bad_clip_planes(self):
        with pytest.raises(RenderingError):
            Camera(near=1.0, far=0.5)


class TestBasis:
    def test_orthonormal(self, camera):
        right, up, forward = camera.basis()
        for v in (right, up, forward):
            assert np.linalg.norm(v) == pytest.approx(1.0)
        assert right @ up == pytest.approx(0.0, abs=1e-12)
        assert right @ forward == pytest.approx(0.0, abs=1e-12)
        assert up @ forward == pytest.approx(0.0, abs=1e-12)

    def test_view_space_handedness(self, camera):
        # convention: forward = cross(up, right); i.e. looking down -z of
        # the (right, up, cross(right, up)) frame, the OpenGL view-space way
        right, up, forward = camera.basis()
        np.testing.assert_allclose(np.cross(up, right), forward, atol=1e-12)

    def test_degenerate_up_recovered(self):
        cam = Camera(position=(0, 0, 10), focal_point=(0, 0, 0), view_up=(0, 0, 1))
        right, up, forward = cam.basis()
        assert np.isfinite(right).all()


class TestTransforms:
    def test_focal_point_projects_to_image_center(self, camera):
        projected = camera.project(np.array([[0.0, 0.0, 0.0]]), 200, 100)
        assert projected[0, 0] == pytest.approx(199 / 2, abs=0.6)
        assert projected[0, 1] == pytest.approx(99 / 2, abs=0.6)
        assert projected[0, 2] == pytest.approx(10.0)

    def test_point_right_of_focal_projects_right(self, camera):
        projected = camera.project(np.array([[1.0, 0.0, 0.0]]), 200, 100)
        assert projected[0, 0] > 100

    def test_point_above_projects_up(self, camera):
        projected = camera.project(np.array([[0.0, 1.0, 0.0]]), 200, 100)
        assert projected[0, 1] < 50  # pixel y grows downward

    def test_behind_camera_gives_nan(self, camera):
        ndc = camera.view_to_ndc(camera.world_to_view(np.array([[0.0, 0.0, 20.0]])))
        assert np.isnan(ndc[0, 0])

    def test_pixel_rays_unit_length(self, camera):
        _origins, dirs = camera.pixel_rays(8, 6)
        np.testing.assert_allclose(np.linalg.norm(dirs, axis=1), 1.0, rtol=1e-12)

    def test_center_ray_points_forward(self, camera):
        _o, dirs = camera.pixel_rays(9, 9)
        center = dirs[4 * 9 + 4]
        _, _, forward = camera.basis()
        assert center @ forward > 0.999


class TestNavigation:
    def test_orbit_preserves_distance(self, camera):
        moved = camera.orbit(30.0, 15.0)
        assert moved.distance == pytest.approx(camera.distance)
        assert moved.focal_point == camera.focal_point

    def test_orbit_360_returns_home(self, camera):
        moved = camera
        for _ in range(8):
            moved = moved.orbit(45.0, 0.0)
        np.testing.assert_allclose(moved.position, camera.position, atol=1e-9)

    def test_zoom_halves_distance(self, camera):
        assert camera.zoom(2.0).distance == pytest.approx(camera.distance / 2)

    def test_zoom_refuses_past_near_plane(self, camera):
        very_close = camera.zoom(1e9)
        assert very_close.distance == pytest.approx(camera.distance)

    def test_zoom_rejects_nonpositive(self, camera):
        with pytest.raises(RenderingError):
            camera.zoom(0.0)

    def test_pan_moves_both_points(self, camera):
        moved = camera.pan(1.0, 0.0)
        assert moved.distance == pytest.approx(camera.distance)
        delta = np.asarray(moved.focal_point) - np.asarray(camera.focal_point)
        assert np.linalg.norm(delta) == pytest.approx(1.0)

    def test_roll_preserves_view_direction(self, camera):
        rolled = camera.roll(90.0)
        _, _, f0 = camera.basis()
        _, _, f1 = rolled.basis()
        np.testing.assert_allclose(f0, f1, atol=1e-12)
        _, u0, _ = camera.basis()
        _, u1, _ = rolled.basis()
        assert abs(u0 @ u1) < 1e-9  # up rotated a quarter turn


class TestStereoAndFit:
    def test_stereo_pair_symmetric(self, camera):
        left, right = camera.stereo_pair(0.1)
        assert left.focal_point == right.focal_point == camera.focal_point
        offset = np.asarray(right.position) - np.asarray(left.position)
        assert np.linalg.norm(offset) == pytest.approx(camera.distance * 0.1)

    def test_fit_bounds_sees_whole_box(self):
        bounds = (0.0, 10.0, -5.0, 5.0, 0.0, 2.0)
        cam = Camera.fit_bounds(bounds)
        corners = np.array([
            [x, y, z]
            for x in bounds[0:2] for y in bounds[2:4] for z in bounds[4:6]
        ])
        projected = cam.project(corners, 100, 100)
        assert np.isfinite(projected).all()
        assert (projected[:, 0] >= -1).all() and (projected[:, 0] <= 100).all()
        assert (projected[:, 1] >= -1).all() and (projected[:, 1] <= 100).all()

    def test_state_roundtrip(self, camera):
        back = Camera.from_state(camera.state())
        assert back == camera
