"""PolyData geometry and the software rasterizer."""

import numpy as np
import pytest

from repro.rendering.camera import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.geometry import PolyData, box_outline, plane_quad
from repro.rendering.rasterizer import rasterize, shade_colors
from repro.util.errors import RenderingError


@pytest.fixture()
def triangle():
    return PolyData(
        np.array([[-1.0, -1.0, 0.0], [1.0, -1.0, 0.0], [0.0, 1.0, 0.0]]),
        np.array([[0, 1, 2]]),
    )


@pytest.fixture()
def camera():
    return Camera(position=(0, 0, 5), focal_point=(0, 0, 0), fov_degrees=45.0)


class TestPolyData:
    def test_index_validation(self):
        with pytest.raises(RenderingError):
            PolyData(np.zeros((2, 3)), np.array([[0, 1, 5]]))
        with pytest.raises(RenderingError):
            PolyData(np.zeros((2, 3)), lines=[np.array([0, 9])])

    def test_attribute_length_validation(self):
        with pytest.raises(RenderingError):
            PolyData(np.zeros((2, 3)), scalars=np.zeros(3))
        with pytest.raises(RenderingError):
            PolyData(np.zeros((2, 3)), colors=np.zeros((5, 3)))

    def test_bounds(self, triangle):
        assert triangle.bounds() == (-1.0, 1.0, -1.0, 1.0, 0.0, 0.0)

    def test_triangle_normals_unit(self, triangle):
        normals = triangle.triangle_normals()
        np.testing.assert_allclose(np.linalg.norm(normals, axis=1), 1.0)
        np.testing.assert_allclose(np.abs(normals[0]), [0, 0, 1], atol=1e-12)

    def test_point_normals_average(self):
        quad = plane_quad(np.zeros(3), np.array([1.0, 0, 0]), np.array([0, 1.0, 0]), 3, 3)
        normals = quad.point_normals()
        np.testing.assert_allclose(np.abs(normals[:, 2]), 1.0, atol=1e-12)

    def test_surface_area_unit_quad(self):
        quad = plane_quad(np.zeros(3), np.array([1.0, 0, 0]), np.array([0, 1.0, 0]), 4, 4)
        assert quad.surface_area() == pytest.approx(1.0)

    def test_transformed(self, triangle):
        doubled = triangle.transformed(2 * np.eye(3), translation=[1.0, 0.0, 0.0])
        assert doubled.bounds()[0] == pytest.approx(-1.0)  # -1*2 + 1
        assert doubled.bounds()[1] == pytest.approx(3.0)

    def test_merge_concatenates(self, triangle):
        merged = PolyData.merge(triangle, triangle)
        assert merged.n_points == 6
        assert merged.n_triangles == 2
        assert merged.triangles.max() == 5

    def test_merge_mixed_attributes(self, triangle):
        with_colors = triangle.with_colors(np.ones((3, 3)))
        merged = PolyData.merge(triangle, with_colors)
        assert merged.colors is not None
        assert merged.colors.shape == (6, 3)

    def test_merge_empty(self):
        merged = PolyData.merge()
        assert merged.n_points == 0

    def test_box_outline_has_12_edges(self):
        box = box_outline((0, 1, 0, 1, 0, 1))
        assert len(box.lines) == 12
        assert box.n_points == 8

    def test_plane_quad_validation(self):
        with pytest.raises(RenderingError):
            plane_quad(np.zeros(3), np.ones(3), np.ones(3), 1, 3)


class TestShading:
    def test_face_on_light_brighter_than_grazing(self):
        colors = np.ones((2, 3))
        normals = np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
        shaded = shade_colors(colors, normals, np.array([0.0, 0.0, 1.0]))
        assert shaded[0].mean() > shaded[1].mean()

    def test_double_sided(self):
        colors = np.ones((2, 3))
        normals = np.array([[0.0, 0.0, 1.0], [0.0, 0.0, -1.0]])
        shaded = shade_colors(colors, normals, np.array([0.0, 0.0, 1.0]))
        np.testing.assert_allclose(shaded[0], shaded[1])

    def test_ambient_floor(self):
        colors = np.ones((1, 3))
        normals = np.array([[1.0, 0.0, 0.0]])
        shaded = shade_colors(colors, normals, np.array([0.0, 0.0, 1.0]), ambient=0.35)
        np.testing.assert_allclose(shaded[0], 0.35, atol=1e-6)


class TestRasterizer:
    def test_triangle_fills_center(self, triangle, camera):
        fb = Framebuffer(50, 50, background=(0, 0, 0))
        drawn = rasterize(triangle, camera, fb, flat_color=(1.0, 0.0, 0.0))
        assert drawn > 50
        assert fb.color[25, 25, 0] > 0.0  # center covered
        assert fb.color[2, 2, 0] == 0.0  # corner background

    def test_depth_buffer_written(self, triangle, camera):
        fb = Framebuffer(30, 30)
        rasterize(triangle, camera, fb)
        assert np.isfinite(fb.depth[15, 15])
        assert fb.depth[15, 15] == pytest.approx(5.0, abs=0.2)

    def test_nearer_triangle_occludes(self, camera):
        far = PolyData(
            np.array([[-1, -1, -1.0], [1, -1, -1.0], [0, 1, -1.0]]), np.array([[0, 1, 2]])
        )
        near = PolyData(
            np.array([[-1, -1, 1.0], [1, -1, 1.0], [0, 1, 1.0]]), np.array([[0, 1, 2]])
        )
        fb = Framebuffer(40, 40)
        rasterize(far, camera, fb, flat_color=(1.0, 0.0, 0.0))
        rasterize(near, camera, fb, flat_color=(0.0, 1.0, 0.0))
        np.testing.assert_allclose(fb.color[20, 20], [0, 1, 0], atol=1e-5)

    def test_vertex_colors_interpolated(self, camera):
        tri = PolyData(
            np.array([[-1.0, -1.0, 0.0], [1.0, -1.0, 0.0], [0.0, 1.0, 0.0]]),
            np.array([[0, 1, 2]]),
            colors=np.array([[1.0, 0, 0], [0, 1.0, 0], [0, 0, 1.0]]),
        )
        fb = Framebuffer(51, 51, background=(0, 0, 0))
        rasterize(tri, camera, fb)
        center = fb.color[25, 25]
        assert center.min() > 0.05  # a mixture of all three vertex colors

    def test_lines_drawn(self, camera):
        line = PolyData(
            np.array([[-1.0, 0.0, 0.0], [1.0, 0.0, 0.0]]),
            lines=[np.array([0, 1])],
        )
        fb = Framebuffer(40, 40, background=(0, 0, 0))
        drawn = rasterize(line, camera, fb, line_color=(1.0, 1.0, 0.0))
        assert drawn > 10
        assert fb.color[20, 20, 0] > 0.0

    def test_offscreen_geometry_cheap_noop(self, camera):
        tri = PolyData(
            np.array([[100.0, 100.0, 0.0], [101.0, 100.0, 0.0], [100.0, 101.0, 0.0]]),
            np.array([[0, 1, 2]]),
        )
        fb = Framebuffer(20, 20)
        assert rasterize(tri, camera, fb) == 0

    def test_empty_polydata(self, camera):
        fb = Framebuffer(10, 10)
        assert rasterize(PolyData(np.zeros((0, 3))), camera, fb) == 0

    def test_behind_camera_culled(self):
        cam = Camera(position=(0, 0, 5), focal_point=(0, 0, 0))
        tri = PolyData(
            np.array([[-1.0, -1.0, 10.0], [1.0, -1.0, 10.0], [0.0, 1.0, 10.0]]),
            np.array([[0, 1, 2]]),
        )
        fb = Framebuffer(20, 20)
        assert rasterize(tri, cam, fb) == 0
