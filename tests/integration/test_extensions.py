"""Integration tests for the extension features: camera tours,
macro→hyperwall replay, esg:// workflow sources, registry filters."""

import numpy as np
import pytest

from repro.app.session import Macro, MacroRecorder, MacroStep
from repro.dv3d.animation import CameraTour
from repro.dv3d.cell import DV3DCell
from repro.dv3d.slicer import SlicerPlot
from repro.hyperwall.inproc import InProcessHyperwall
from repro.spreadsheet.sheet import CellBinding, Spreadsheet
from repro.spreadsheet.sync import SyncGroup
from repro.util.errors import DV3DError
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline
from tests.conftest import build_cell_chain


class TestCameraTour:
    def test_orbit_frames_differ(self, ta):
        plot = SlicerPlot(ta, enabled_planes=("z",))
        frames = CameraTour(plot).render_orbit(n_frames=4, width=32, height=24)
        assert len(frames) == 4
        assert not np.array_equal(frames[0], frames[2])

    def test_full_orbit_returns_to_start(self, ta):
        plot = SlicerPlot(ta, enabled_planes=("z",))
        tour = CameraTour(plot)
        frames = tour.render_orbit(n_frames=4, total_azimuth_deg=360.0,
                                   width=32, height=24)
        # frame 0 at azimuth 0 equals a fresh render with the default camera
        fresh = plot.render(32, 24, camera=plot.default_camera()).to_uint8()
        np.testing.assert_array_equal(frames[0], fresh)

    def test_camera_restored(self, ta):
        plot = SlicerPlot(ta)
        plot.camera = plot.default_camera().orbit(33.0, 0.0)
        before = plot.camera
        CameraTour(plot).render_orbit(n_frames=2, width=16, height=12)
        assert plot.camera is before

    def test_save_orbit(self, ta, tmp_path):
        plot = SlicerPlot(ta, enabled_planes=("z",))
        paths = CameraTour(plot).save_orbit(tmp_path, n_frames=2,
                                            width=16, height=12)
        assert len(paths) == 2 and all(p.exists() for p in paths)

    def test_bad_frame_count(self, ta):
        with pytest.raises(DV3DError):
            CameraTour(SlicerPlot(ta)).render_orbit(n_frames=0)


class TestMacroToHyperwall:
    def test_recorded_macro_drives_the_wall(self, registry, ta):
        # record on a desktop spreadsheet
        sheet = Spreadsheet("desk", 1, 1)
        slot = sheet.place(0, 0, CellBinding("t", 0, 0))
        slot.cell = DV3DCell(SlicerPlot(ta))
        group = SyncGroup(sheet)
        recorder = MacroRecorder("tour", group)
        recorder.start()
        group.key("c")
        group.key("t")
        macro = recorder.stop()

        # replay onto a hyperwall
        p = Pipeline(registry)
        for _ in range(2):
            build_cell_chain(p, width=24, height=18)
        hw = InProcessHyperwall(p, client_resolution=(24, 18))
        hw.execute_all()
        applied = macro.replay_events(hw.propagate_event)
        assert applied == 2
        assert all(hw.consistency_check().values())
        # the wall cells now match the desktop cell's colormap/time state
        desk_state = slot.cell.plot.state()
        wall_state = hw.clients[0].cell.plot.state()
        assert wall_state["colormap"] == desk_state["colormap"]
        assert wall_state["time_index"] == desk_state["time_index"]

    def test_unknown_step_rejected(self):
        macro = Macro("bad", [MacroStep("warp", {})])
        with pytest.raises(Exception, match="warp"):
            macro.replay_events(lambda kind, **payload: None)


class TestESGWorkflowSource:
    def test_esg_uri_reader(self, registry):
        p = Pipeline(registry)
        reader = p.add_module("CDMSDatasetReader", {"source": "esg://storm_case_study"})
        ds = Executor(caching=False).execute(p).output(reader, "dataset")
        assert "wspd" in ds

    def test_esg_uri_full_chain(self, registry):
        p = Pipeline(registry)
        reader = p.add_module("CDMSDatasetReader", {"source": "esg://wave_case_study"})
        var = p.add_module("CDMSVariableReader", {"variable": "olr_anom"})
        plot = p.add_module("HovmollerSlicer")
        cell = p.add_module("DV3DCell", {"width": 32, "height": 24})
        p.add_connection(reader, "dataset", var, "dataset")
        p.add_connection(var, "variable", plot, "variable")
        p.add_connection(plot, "plot", cell, "plot")
        image = Executor(caching=False).execute(p).output(cell, "image")
        assert image.shape == (24, 32, 3)

    def test_esg_uri_unknown_dataset(self, registry):
        from repro.util.errors import ModuleExecutionError

        p = Pipeline(registry)
        p.add_module("CDMSDatasetReader", {"source": "esg://mars_weather"})
        with pytest.raises(ModuleExecutionError):
            Executor(caching=False).execute(p)


class TestRegistryFilters:
    def test_filters_registered(self):
        from repro.cdat.registry import default_registry

        reg = default_registry()
        for name in ("spatial_smooth", "detrend", "bandpass"):
            assert name in reg

    def test_calculator_can_smooth(self, reanalysis):
        from repro.app.calculator import Calculator
        from repro.app.variable_view import VariableView

        view = VariableView()
        view.load(reanalysis, "ta")
        calc = Calculator(view)
        result = calc.assign("smoothed = spatial_smooth(ta, sigma_points=1.5)")
        assert "smoothed" in view
        assert result.shape == view.get("ta").shape
