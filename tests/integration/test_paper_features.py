"""Integration tests: each test exercises one claim from the paper text,
end-to-end across subsystems."""

import numpy as np
import pytest

from repro.app.application import Application
from repro.dv3d.animation import Animator
from repro.hyperwall.inproc import InProcessHyperwall
from repro.provenance.query import diff_versions
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline
from tests.conftest import build_cell_chain

SIZE = {"nlat": 12, "nlon": 16, "nlev": 4, "ntime": 3}


@pytest.fixture()
def app(registry):
    application = Application(registry)
    application.new_project("paper")
    return application


class TestSectionIIIG_WorkflowChain:
    """§III.G: CDMS access → processing → translation → plot → cell."""

    def test_full_chain_with_cdat_processing(self, registry):
        p = Pipeline(registry)
        reader = p.add_module("CDMSDatasetReader",
                              {"source": "synthetic_reanalysis", "size": SIZE})
        var = p.add_module("CDMSVariableReader", {"variable": "ta"})
        anom = p.add_module("CDATOperation", {"operation": "anomalies"})
        plot = p.add_module("Slicer")
        cell = p.add_module("DV3DCell", {"width": 40, "height": 30})
        p.add_connection(reader, "dataset", var, "dataset")
        p.add_connection(var, "variable", anom, "variable")
        p.add_connection(anom, "variable", plot, "variable")
        p.add_connection(plot, "plot", cell, "plot")
        result = Executor(caching=True).execute(p)
        image = result.output(cell, "image")
        assert image.shape == (30, 40, 3)
        live = result.output(cell, "cell")
        # the plot shows the anomaly variable, not raw temperature
        assert "anom" in live.plot.variable.id


class TestSectionIIIF_Provenance:
    """§III.F: all configuration saved; revert; multiple branches."""

    def test_interactive_configuration_recorded_and_revertible(self, app):
        app.create_plot(
            "Volume", "main", (0, 0),
            dataset_source="synthetic_reanalysis",
            variables={"variable": "ta"}, size=SIZE,
            cell_params={"width": 32, "height": 24},
        )
        vistrail = next(iter(app.project.vistrails.values()))
        baseline = vistrail.current_version
        # an interactive leveling gesture, recorded as a parameter change
        cell_module = app.project.sheets["main"].get(0, 0).binding.sink_module_id
        live = app.project.sheets["main"].get(0, 0).cell
        delta = live.plot.handle_drag(0.1, 0.0, "leveling")
        plot_module = vistrail.pipeline.modules_of_type("dv3d:VolumeRender")[0]
        vistrail.set_parameter(plot_module, "state",
                               {"tf_center": delta["tf_center"], "tf_width": delta["tf_width"]})
        leveled = vistrail.current_version
        # branch: back up and configure differently
        vistrail.checkout(baseline)
        vistrail.set_parameter(plot_module, "state", {"tf_center": 0.2, "tf_width": 0.1})
        branched = vistrail.current_version
        diff = diff_versions(vistrail.tree, leveled, branched)
        assert diff["common_ancestor"] == [f"version {baseline}"]
        # both branches re-execute to their own configurations
        ex = Executor(caching=False)
        for version, expected_center in ((leveled, delta["tf_center"]), (branched, 0.2)):
            pipeline = vistrail.tree.materialize(version, vistrail.registry)
            out = ex.execute(pipeline, targets=[cell_module])
            live_cell = out.output(cell_module, "cell")
            assert live_cell.plot.transfer.center == pytest.approx(expected_center)

    def test_any_analysis_product_regenerable(self, app, tmp_path):
        """'enabling users to readily regenerate any analysis product'"""
        cell = app.create_plot(
            "Slicer", "main", (0, 0),
            dataset_source="synthetic_reanalysis",
            variables={"variable": "ta"}, size=SIZE,
            cell_params={"width": 40, "height": 30},
        )
        original = cell.render(40, 30).to_uint8()
        app.project.save(tmp_path / "saved")
        from repro.spreadsheet.project import Project

        reloaded = Project.load(tmp_path / "saved", app.registry)
        regenerated = reloaded.execute_cell("main", 0, 0).render(40, 30).to_uint8()
        np.testing.assert_array_equal(original, regenerated)


class TestSectionIIID_PlotFeatures:
    """§III.D: animation, stereo, synchronized spreadsheet cells."""

    def test_4d_browsing_by_animation(self, reanalysis):
        from repro.dv3d.slicer import SlicerPlot

        plot = SlicerPlot(reanalysis("ta"), enabled_planes=("z",))
        frames = Animator(plot).render_frames(width=24, height=18)
        assert len(frames) == plot.n_timesteps
        assert any(
            not np.array_equal(frames[i], frames[i + 1])
            for i in range(len(frames) - 1)
        )

    def test_stereo_rendering(self, reanalysis):
        from repro.dv3d.isosurface import IsosurfacePlot
        from repro.rendering.scene import Renderer

        plot = IsosurfacePlot(reanalysis("ta"))
        scene = plot.build_scene()
        left, right = Renderer(32, 24).render_stereo(scene, plot.default_camera())
        assert not np.array_equal(left.to_uint8(), right.to_uint8())

    def test_multiple_synchronized_plots(self, app):
        for col, template in enumerate(["Slicer", "Volume"]):
            app.create_plot(
                template, "main", (0, col),
                dataset_source="synthetic_reanalysis",
                variables={"variable": "ta"}, size=SIZE,
                cell_params={"width": 24, "height": 18},
            )
        group = app.sync_group("main")
        deltas = group.key("c")  # colormap cycles on both plot types
        assert len(deltas) == 2
        names = {c.plot.colormap.name for c in app.project.sheets["main"].live_cells()}
        assert len(names) == 1  # both cycled to the same next map


class TestSectionIIIH_Hyperwall:
    """§III.H: server reduced-res mirror + full-res clients + propagation."""

    def test_fifteen_cell_scenario_partitioned(self, registry):
        from repro.hyperwall.display import NCCS_WALL
        from repro.hyperwall.partition import partition_by_cell

        p = Pipeline(registry)
        for _ in range(15):
            build_cell_chain(p, width=32, height=24)
        partitions = partition_by_cell(p)
        assert len(partitions) == 15
        assert NCCS_WALL.n_tiles == 15
        for cell_id, sub in partitions.items():
            assert len(sub.modules) == 4  # exactly one chain each

    def test_server_mirror_low_res_clients_full_res(self, registry):
        p = Pipeline(registry)
        for _ in range(2):
            build_cell_chain(p, width=64, height=64)
        hw = InProcessHyperwall(p, reduction=4, client_resolution=(64, 64))
        out = hw.execute_all()
        server_shapes = list(out["server"]["image_shapes"].values())
        assert all(s == (16, 16, 3) for s in server_shapes)
        assert all(r.image_shape == (64, 64, 3) for r in out["clients"])

    def test_interaction_propagates_server_to_clients(self, registry):
        p = Pipeline(registry)
        for _ in range(2):
            build_cell_chain(p, width=32, height=24)
        hw = InProcessHyperwall(p, reduction=2, client_resolution=(32, 24))
        hw.execute_all()
        result = hw.propagate_event("key", key="t")  # animation step
        assert len(result["server"]) == 2 and len(result["clients"]) == 2
        assert all(hw.consistency_check().values())


class TestESGPath:
    """§III.G: data 'from ... the Earth System Grid Federation'."""

    def test_discover_fetch_visualize(self, registry):
        app = Application(registry)
        app.new_project("esg")
        hits = app.esg.search("wave")
        assert hits
        ds = app.open_esg_dataset("wave_case_study")
        from repro.dv3d.hovmoller import HovmollerSlicerPlot

        plot = HovmollerSlicerPlot(ds("olr_anom"))
        fb = plot.render(32, 24)
        assert fb.color.shape == (24, 32, 3)
        assert app.esg.transfers[0].dataset_id == "wave_case_study"
