"""Tests for the second extension wave: custom colormaps, color-window
leveling, version annotations, ESG failover."""

import numpy as np
import pytest

from repro.rendering.colormap import Colormap, colormap_names, register_colormap
from repro.rendering.transfer_function import TransferFunction
from repro.util.errors import ESGError, RenderingError


class TestCustomColormaps:
    def test_register_and_use(self):
        register_colormap(
            "test-hot", [(0.0, (0.0, 0.0, 0.0)), (0.5, (1.0, 0.0, 0.0)),
                         (1.0, (1.0, 1.0, 0.0))],
            overwrite=True,
        )
        cmap = Colormap("test-hot")
        rgb = cmap.map_scalars(np.array([0.0, 0.5, 1.0]), 0.0, 1.0)
        np.testing.assert_allclose(rgb[0], [0, 0, 0], atol=1e-6)
        np.testing.assert_allclose(rgb[1], [1, 0, 0], atol=0.02)
        assert "test-hot" in colormap_names()

    def test_registered_map_cycles_and_serializes(self):
        register_colormap("test-cyc", [(0.0, (0, 0, 1)), (1.0, (1, 0, 0))],
                          overwrite=True)
        cmap = Colormap("test-cyc")
        back = Colormap.from_state(cmap.state())
        np.testing.assert_allclose(cmap.table, back.table)
        assert cmap.next_map().name in colormap_names()

    def test_duplicate_rejected(self):
        with pytest.raises(RenderingError):
            register_colormap("jet", [(0.0, (0, 0, 0)), (1.0, (1, 1, 1))])

    def test_must_cover_full_range(self):
        with pytest.raises(RenderingError):
            register_colormap("partial", [(0.1, (0, 0, 0)), (1.0, (1, 1, 1))],
                              overwrite=True)

    def test_bad_rgb_rejected(self):
        with pytest.raises(RenderingError):
            register_colormap("badrgb", [(0.0, (0, 0, 2.0)), (1.0, (1, 1, 1))],
                              overwrite=True)


class TestColorLeveling:
    def test_level_color_shifts_window(self):
        tf = TransferFunction((0.0, 1.0), color_window=(0.2, 0.6))
        moved = tf.level_color(0.1, 0.0)
        assert moved.color_window[0] == pytest.approx(0.3)
        assert moved.color_window[1] == pytest.approx(0.7)
        # opacity side untouched
        assert moved.center == tf.center

    def test_level_color_scales_window(self):
        tf = TransferFunction((0.0, 1.0), color_window=(0.4, 0.6))
        widened = tf.level_color(0.0, 1.0)
        lo, hi = widened.color_window
        assert hi - lo == pytest.approx(0.4, rel=1e-6)

    def test_color_window_changes_mapping(self):
        tf_full = TransferFunction((0.0, 100.0))
        tf_narrow = TransferFunction((0.0, 100.0), color_window=(0.45, 0.55))
        rgb_full, _ = tf_full.evaluate(np.array([30.0]))
        rgb_narrow, _ = tf_narrow.evaluate(np.array([30.0]))
        assert not np.allclose(rgb_full, rgb_narrow)

    def test_state_roundtrip_includes_color_window(self):
        tf = TransferFunction((0.0, 1.0), color_window=(0.25, 0.75))
        back = TransferFunction.from_state(tf.state())
        assert back.color_window == tf.color_window

    def test_volume_plot_color_leveling_drag(self, ta):
        from repro.dv3d.volume import VolumePlot

        plot = VolumePlot(ta)
        delta = plot.handle_drag(0.1, 0.0, "leveling:color")
        assert "color_window" in delta
        # the render reflects the new color mapping
        state = plot.state()
        other = VolumePlot(ta)
        other.apply_state(state)
        assert tuple(other.transfer.color_window) == tuple(plot.transfer.color_window)

    def test_color_leveling_rejected_on_slicer(self, ta):
        from repro.dv3d.slicer import SlicerPlot
        from repro.util.errors import DV3DError

        with pytest.raises(DV3DError):
            SlicerPlot(ta).handle_drag(0.1, 0.0, "leveling:color")


class TestVersionAnnotations:
    def test_annotate_and_search(self, registry):
        from repro.provenance.vistrail import Vistrail

        vt = Vistrail("notes", registry)
        vt.add_module("basic:Constant", {"value": 1})
        v1 = vt.current_version
        vt.add_module("basic:Constant", {"value": 2})
        v2 = vt.current_version
        vt.tree.annotate(v1, "good baseline for the storm case")
        vt.tree.annotate(v2, "experimental colormap treatment")
        assert vt.tree.find_annotated("storm") == [v1]
        assert set(vt.tree.find_annotated()) == {v1, v2}

    def test_annotations_persist(self, registry, tmp_path):
        from repro.provenance.vistrail import Vistrail

        vt = Vistrail("notes", registry)
        vt.add_module("basic:Constant", {"value": 1})
        vt.tree.annotate(vt.current_version, "keep this one")
        vt.save(tmp_path / "t.json")
        loaded = Vistrail.load(tmp_path / "t.json", registry)
        assert loaded.tree.find_annotated("keep") == [vt.current_version]


class TestESGFailover:
    def test_replica_takes_over(self):
        from repro.esg.federation import default_federation

        fed = default_federation()
        # waves are on pcmdi (primary by cost? check) and dkrz-replica
        primary, _ = fed.locate("wave_case_study")
        fed.set_node_available(primary, False)
        fallback, _ = fed.locate("wave_case_study")
        assert fallback != primary
        ds = fed.fetch("wave_case_study")
        assert "olr_anom" in ds
        assert fed.transfers[0].node_name == fallback

    def test_all_publishers_down(self):
        from repro.esg.federation import default_federation

        fed = default_federation()
        fed.set_node_available("nccs", False)
        # storm only lives on nccs
        with pytest.raises(ESGError, match="unavailable"):
            fed.locate("storm_case_study")

    def test_explicit_fetch_from_down_node(self):
        from repro.esg.federation import default_federation

        fed = default_federation()
        fed.set_node_available("pcmdi", False)
        with pytest.raises(ESGError, match="unavailable"):
            fed.fetch("wave_case_study", node_name="pcmdi")

    def test_unknown_node(self):
        from repro.esg.federation import default_federation

        with pytest.raises(ESGError):
            default_federation().set_node_available("mars", True)

    def test_recovery(self):
        from repro.esg.federation import default_federation

        fed = default_federation()
        fed.set_node_available("nccs", False)
        fed.set_node_available("nccs", True)
        node, _ = fed.locate("storm_case_study")
        assert node == "nccs"
