"""Render regression windows.

Exact golden images are brittle across numpy/scipy versions; instead
each plot type renders a fixed, seeded scene and the frame's aggregate
statistics must stay inside recorded windows.  A broken shader, culling
bug, or transfer-function regression moves these numbers far outside
the windows while legitimate numerical drift does not.
"""

import numpy as np

from repro.dv3d.cell import DV3DCell
from repro.dv3d.combined import CombinedPlot
from repro.dv3d.hovmoller import HovmollerSlicerPlot
from repro.dv3d.isosurface import IsosurfacePlot
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.vector_slicer import VectorSlicerPlot
from repro.dv3d.volume import VolumePlot

SIZE = (96, 72)


def stats(frame: np.ndarray) -> dict:
    return {
        "mean": float(frame.mean()),
        "std": float(frame.std()),
        "nonbg": float((frame.std(axis=2) > 1).mean() + (frame.mean(axis=2) > 40).mean()),
    }


def check(frame: np.ndarray, mean_window, min_std) -> None:
    s = stats(frame)
    assert mean_window[0] <= s["mean"] <= mean_window[1], s
    assert s["std"] >= min_std, s


class TestRenderWindows:
    def test_slicer_window(self, ta):
        frame = SlicerPlot(ta).render(*SIZE).to_uint8()
        # background ~ (20,20,31); slices add bright structure
        check(frame, (20, 120), 10.0)

    def test_volume_window(self, ta):
        frame = VolumePlot(ta, center=0.8, width=0.3).render(*SIZE).to_uint8()
        check(frame, (15, 120), 5.0)

    def test_isosurface_window(self, storm):
        plot = IsosurfacePlot(storm("wspd"), color_variable=storm("tcore"))
        plot.set_time_index(2)
        frame = plot.render(*SIZE).to_uint8()
        check(frame, (15, 120), 5.0)

    def test_hovmoller_window(self, waves):
        frame = HovmollerSlicerPlot(waves("olr_anom")).render(*SIZE).to_uint8()
        check(frame, (20, 140), 10.0)

    def test_vector_window(self, reanalysis):
        plot = VectorSlicerPlot(reanalysis("ua"), reanalysis("va"), glyph_stride=4)
        frame = plot.render(*SIZE).to_uint8()
        check(frame, (15, 100), 3.0)

    def test_combined_window(self, ta):
        combo = CombinedPlot([
            VolumePlot(ta, center=0.8, width=0.3),
            SlicerPlot(ta, enabled_planes=("z",)),
        ])
        frame = combo.render(*SIZE).to_uint8()
        check(frame, (15, 130), 8.0)

    def test_dressed_cell_window(self, ta):
        cell = DV3DCell(SlicerPlot(ta), dataset_label="TA", show_axes=True)
        frame = cell.render(*SIZE).to_uint8()
        check(frame, (25, 130), 12.0)

    def test_renders_deterministic(self, ta):
        """The same scene renders bit-identically twice."""
        a = SlicerPlot(ta).render(*SIZE).to_uint8()
        b = SlicerPlot(ta).render(*SIZE).to_uint8()
        np.testing.assert_array_equal(a, b)


class TestExecutorProgress:
    def test_progress_callback_fires_per_module(self, registry):
        from repro.workflow.executor import Executor
        from repro.workflow.pipeline import Pipeline
        from tests.conftest import build_cell_chain

        pipeline = Pipeline(registry)
        build_cell_chain(pipeline, width=24, height=18)
        events = []
        ex = Executor(
            caching=False,
            on_module_complete=lambda run, done, total: events.append(
                (run.module_name, done, total)
            ),
        )
        ex.execute(pipeline)
        assert len(events) == 4
        assert events[-1][1] == events[-1][2] == 4
        assert events[0][2] == 4
