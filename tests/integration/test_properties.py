"""Cross-cutting property-based tests (hypothesis) on system invariants."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.cdms.axis import latitude_axis, longitude_axis
from repro.cdms.variable import Variable
from repro.rendering.colormap import Colormap, colormap_names
from repro.rendering.ppm import read_ppm, write_ppm
from repro.rendering.transfer_function import TransferFunction
from repro.workflow.pipeline import Pipeline
from repro.workflow.registry import global_registry


# ---------------------------------------------------------------------------
# CDMS: coordinate selection ≡ manual index selection
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    lo=st.floats(min_value=-90, max_value=90),
    hi=st.floats(min_value=-90, max_value=90),
)
def test_latitude_selection_matches_manual_mask(lo, hi):
    assume(abs(hi - lo) > 12.0)  # guarantee at least one point inside
    lat = latitude_axis(np.linspace(-84, 84, 15))
    lon = longitude_axis(np.arange(0, 360, 45.0))
    data = np.arange(15 * 8, dtype=float).reshape(15, 8)
    var = Variable(data, (lat, lon), id="v")
    sub = var(latitude=(lo, hi))
    a, b = min(lo, hi), max(lo, hi)
    # the library admits boundary points within 1e-12 (float tolerance)
    inside = (lat.values >= a - 1e-12) & (lat.values <= b + 1e-12)
    np.testing.assert_allclose(sub.filled(), data[inside])


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=-100, max_value=100))
def test_scalar_selection_picks_nearest(target):
    lat = latitude_axis(np.linspace(-80, 80, 9))
    var = Variable(np.arange(9.0), (lat,), id="v")
    sub = var(latitude=float(target))
    manual = int(np.argmin(np.abs(lat.values - np.clip(target, -90, 90))))
    assert float(sub.data[0]) == float(manual)


# ---------------------------------------------------------------------------
# Rendering: colormap and transfer-function invariants
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(colormap_names()),
    values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=30),
)
def test_colormap_output_always_valid_rgb(name, values):
    cmap = Colormap(name)
    rgb = cmap.map_scalars(np.array(values), -10.0, 10.0)
    assert rgb.shape == (len(values), 3)
    assert np.all(rgb >= 0.0) and np.all(rgb <= 1.0)


@settings(max_examples=25, deadline=None)
@given(
    center=st.floats(min_value=0.0, max_value=1.0),
    width=st.floats(min_value=1e-3, max_value=2.0),
    d_center=st.floats(min_value=-2.0, max_value=2.0),
    d_width=st.floats(min_value=-0.99, max_value=3.0),
)
def test_leveling_always_yields_valid_window(center, width, d_center, d_width):
    tf = TransferFunction((0.0, 1.0), center=center, width=width)
    leveled = tf.level(d_center, d_width)
    assert 0.0 <= leveled.center <= 1.0
    assert 1e-3 <= leveled.width <= 2.0
    _, alpha = leveled.evaluate(np.linspace(0, 1, 11))
    assert np.all(alpha >= 0.0) and np.all(alpha <= 1.0)


@settings(max_examples=10, deadline=None)
@given(
    h=st.integers(min_value=1, max_value=12),
    w=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_ppm_roundtrip_arbitrary_images(h, w, seed, tmp_path_factory):
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)
    path = tmp_path_factory.mktemp("ppm") / "img.ppm"
    write_ppm(path, image)
    np.testing.assert_array_equal(read_ppm(path), image)


# ---------------------------------------------------------------------------
# Workflow: serialization round-trips preserve signatures
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    n_chains=st.integers(min_value=1, max_value=3),
    widths=st.integers(min_value=16, max_value=64),
)
def test_pipeline_roundtrip_preserves_signatures(n_chains, widths):
    from repro.workflow.executor import Executor

    registry = global_registry()
    pipeline = Pipeline(registry)
    for _ in range(n_chains):
        reader = pipeline.add_module(
            "CDMSDatasetReader",
            {"source": "synthetic_reanalysis", "size": {"nlat": 8, "nlon": 8, "nlev": 3, "ntime": 2}},
        )
        var = pipeline.add_module("CDMSVariableReader", {"variable": "ta"})
        plot = pipeline.add_module("Slicer")
        cell = pipeline.add_module("DV3DCell", {"width": int(widths), "height": 16})
        pipeline.add_connection(reader, "dataset", var, "dataset")
        pipeline.add_connection(var, "variable", plot, "variable")
        pipeline.add_connection(plot, "plot", cell, "plot")
    restored = Pipeline.from_dict(pipeline.to_dict(), registry)
    ex = Executor()
    assert ex.signatures(pipeline) == ex.signatures(restored)


# ---------------------------------------------------------------------------
# Provenance: checkout(v) after arbitrary edit/checkout sequences is stable
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=10))
def test_vistrail_checkout_is_idempotent(edits):
    from repro.provenance.vistrail import Vistrail

    vistrail = Vistrail("prop", global_registry())
    module = vistrail.add_module("basic:Constant", {"value": -1})
    snapshots = {}
    for value in edits:
        vistrail.set_parameter(module, "value", int(value))
        snapshots[vistrail.current_version] = int(value)
    for version, expected in snapshots.items():
        pipeline = vistrail.checkout(version)
        assert pipeline.modules[module].parameters["value"] == expected
        # checking out twice yields the same structure
        again = vistrail.checkout(version)
        assert again.structurally_equal(pipeline)


# ---------------------------------------------------------------------------
# Spreadsheet: move/swap conserve occupancy
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["move", "swap"]),
            st.integers(0, 2), st.integers(0, 2),
            st.integers(0, 2), st.integers(0, 2),
        ),
        max_size=12,
    )
)
def test_spreadsheet_rearranging_conserves_cells(ops):
    from repro.spreadsheet.sheet import CellBinding, Spreadsheet
    from repro.util.errors import SpreadsheetError

    sheet = Spreadsheet("prop", 3, 3)
    for i, slot in enumerate([(0, 0), (1, 1), (2, 2)]):
        sheet.place(slot[0], slot[1], CellBinding("t", i, i))
    original_versions = sorted(
        slot.binding.version for _, slot in sheet.cells()
    )
    for op, r1, c1, r2, c2 in ops:
        try:
            if op == "move":
                sheet.move((r1, c1), (r2, c2))
            else:
                sheet.swap((r1, c1), (r2, c2))
        except SpreadsheetError:
            pass  # invalid ops rejected atomically
    # exactly the same three cells exist, wherever they ended up
    assert sorted(slot.binding.version for _, slot in sheet.cells()) == original_versions
