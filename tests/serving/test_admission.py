"""Admission control and graceful degradation under injected overload.

Overload is *manufactured*, never waited for: queues fill because the
workers have not started yet, deadlines expire because the fake clock
jumped, and the kernel path fails because a ``serving.execute`` fault
is armed — the event-loop clock plays no role in any assertion.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.resilience import faults
from repro.serving import (
    AdmissionController,
    Request,
    ServingConfig,
    ServingServer,
)

from tests.serving.conftest import memory_cache, submit_deferred


@pytest.fixture(autouse=True)
def clean_faults():
    faults.disarm()
    yield
    faults.disarm()


class TestAdmissionController:
    def test_queue_limit(self, fake_clock):
        ctrl = AdmissionController(ServingConfig(queue_limit=2), clock=fake_clock)
        assert ctrl.admit(Request(), 0) == (True, "")
        assert ctrl.admit(Request(), 1) == (True, "")
        assert ctrl.admit(Request(), 2) == (False, "queue_full")

    def test_ewma_tracks_service_time(self, fake_clock):
        ctrl = AdmissionController(
            ServingConfig(ewma_alpha=0.5), clock=fake_clock
        )
        assert ctrl.estimated_wait_s(10) == 0.0  # optimistic until observed
        ctrl.observe_service(2.0)
        assert ctrl.ewma_service_s == 2.0  # first observation seeds directly
        ctrl.observe_service(4.0)
        assert ctrl.ewma_service_s == pytest.approx(3.0)

    def test_predicted_deadline_miss_is_shed(self, fake_clock):
        ctrl = AdmissionController(
            ServingConfig(workers=1, queue_limit=64), clock=fake_clock
        )
        ctrl.observe_service(10.0)
        # 1 queued + the newcomer at 10s each on one worker: wait = 20s
        request = Request(deadline_s=5.0)
        assert ctrl.admit(request, 1) == (False, "deadline")
        # a patient request is admitted
        assert ctrl.admit(Request(deadline_s=30.0), 1) == (True, "")
        # and so is a deadline-less one
        assert ctrl.admit(Request(), 1) == (True, "")

    def test_predicted_miss_check_can_be_disabled(self, fake_clock):
        ctrl = AdmissionController(
            ServingConfig(workers=1, shed_on_predicted_miss=False),
            clock=fake_clock,
        )
        ctrl.observe_service(10.0)
        assert ctrl.admit(Request(deadline_s=0.1), 5) == (True, "")

    def test_default_deadline_applies(self, fake_clock):
        ctrl = AdmissionController(
            ServingConfig(workers=1, default_deadline_s=5.0), clock=fake_clock
        )
        ctrl.observe_service(10.0)
        admitted, reason = ctrl.admit(Request(), 1)
        assert (admitted, reason) == (False, "deadline")
        assert ctrl.deadline_of(Request()) == fake_clock() + 5.0

    def test_deadline_of_uses_injected_clock(self, fake_clock):
        ctrl = AdmissionController(ServingConfig(), clock=fake_clock)
        assert ctrl.deadline_of(Request()) is None
        fake_clock.advance(7.0)
        assert ctrl.deadline_of(Request(deadline_s=3.0)) == fake_clock.now + 3.0


class TestQueueOverload:
    def test_queue_full_sheds_excess_requests(self, backend):
        """Distinct requests beyond queue_limit are shed, not queued."""

        async def scenario():
            server = ServingServer(
                backend,
                config=ServingConfig(workers=1, queue_limit=2),
                cache=memory_cache(),
            )
            requests = [Request(params={"scene": i}) for i in range(5)]
            return await submit_deferred(server, requests)

        recorder = obs.enable(obs.Recorder())
        try:
            responses = asyncio.run(scenario())
        finally:
            obs.disable()

        shed = [r for r in responses if r.status == "shed"]
        served = [r for r in responses if r.status == "ok"]
        assert len(served) == 2 and len(shed) == 3
        assert {r.reason for r in shed} == {"queue_full"}
        assert recorder.counter_value(
            "serving.shed", reason="queue_full", tenant="default"
        ) == 3
        assert backend.full_calls == 2  # shed requests never execute

    def test_coalesced_requests_bypass_admission(self, backend):
        """Waiters attach to in-flight work even when the queue is full."""

        async def scenario():
            server = ServingServer(
                backend,
                config=ServingConfig(workers=1, queue_limit=1),
                cache=memory_cache(),
            )
            # 1 leader fills the queue; 5 identical followers coalesce;
            # 1 distinct request is shed
            requests = [Request(params={"scene": 0})] * 6 + [
                Request(params={"scene": 1})
            ]
            return await submit_deferred(server, requests)

        responses = asyncio.run(scenario())
        assert [r.status for r in responses[:6]] == ["ok"] * 6
        assert responses[6].status == "shed"
        assert backend.full_calls == 1


class TestDeadlineExpiry:
    def test_expired_request_shed_at_dispatch(self, backend, fake_clock):
        """Time passes (on the fake clock) while the request is queued."""

        async def scenario():
            server = ServingServer(
                backend,
                config=ServingConfig(workers=1),
                cache=memory_cache(),
                clock=fake_clock,
            )
            task = asyncio.create_task(
                server.submit(Request(params={"scene": 0}, deadline_s=1.0))
            )
            await asyncio.sleep(0)  # queued, workers not started
            fake_clock.advance(2.0)  # deadline passes in the queue
            await server.start()
            response = await task
            await server.aclose()
            return response

        recorder = obs.enable(obs.Recorder())
        try:
            response = asyncio.run(scenario())
        finally:
            obs.disable()

        assert response.status == "shed"
        assert response.reason == "expired"
        assert backend.full_calls == 0  # dead work is never executed
        assert recorder.counter_value(
            "serving.shed", reason="expired", tenant="default"
        ) == 1

    def test_unexpired_request_still_served(self, backend, fake_clock):
        async def scenario():
            server = ServingServer(
                backend,
                config=ServingConfig(workers=1),
                cache=memory_cache(),
                clock=fake_clock,
            )
            task = asyncio.create_task(
                server.submit(Request(params={"scene": 0}, deadline_s=5.0))
            )
            await asyncio.sleep(0)
            fake_clock.advance(2.0)  # within budget
            await server.start()
            response = await task
            await server.aclose()
            return response

        assert asyncio.run(scenario()).status == "ok"


class TestGracefulDegradation:
    """Breaker-open behaviour: cached-stale, degraded render, saturated."""

    def _failing_then_open(self, backend, fake_clock, cache, **cfg):
        """A server whose breaker opens after 2 injected failures."""
        return ServingServer(
            backend,
            config=ServingConfig(
                workers=1, breaker_failures=2, breaker_reset_s=10.0, **cfg
            ),
            cache=cache,
            clock=fake_clock,
        )

    def test_injected_failures_open_breaker_then_degraded_render(
        self, backend, fake_clock
    ):
        faults.arm("serving.execute", "raise", times=2)

        async def scenario():
            server = self._failing_then_open(backend, fake_clock, memory_cache())
            async with server:
                errors = [
                    await server.submit(Request(params={"scene": i}))
                    for i in range(2)
                ]
                degraded = await server.submit(Request(params={"scene": 99}))
            return errors, degraded

        recorder = obs.enable(obs.Recorder())
        try:
            errors, degraded = asyncio.run(scenario())
        finally:
            obs.disable()

        assert [r.status for r in errors] == ["error", "error"]
        assert degraded.status == "degraded"
        assert degraded.source == "render"
        assert backend.degraded_calls == 1
        assert recorder.counter_value("serving.degraded", source="render") == 1
        assert recorder.counter_total("serving.executions") == 0

    def test_open_breaker_serves_cached_stale_first(self, backend, fake_clock):
        async def scenario():
            cache = memory_cache()
            server = self._failing_then_open(backend, fake_clock, cache)
            async with server:
                hot = Request(params={"scene": 0})
                first = await server.submit(hot)  # cached while healthy
                faults.arm("serving.execute", "raise", times=2)
                for i in range(2):  # open the breaker
                    await server.submit(Request(params={"scene": i + 1}))
                # same digest again: cache beats degraded render
                stale = await server.submit(hot.with_params())
            return first, stale

        first, stale = asyncio.run(scenario())
        assert stale.status == "ok"  # still in the serving cache: a plain hit
        assert stale.source == "cache"
        assert stale.payload == first.payload
        assert backend.degraded_calls == 0

    def test_open_breaker_without_degraded_sheds_saturated(
        self, backend, fake_clock
    ):
        faults.arm("serving.execute", "raise", times=2)

        async def scenario():
            server = self._failing_then_open(
                backend, fake_clock, None, allow_degraded=False
            )
            async with server:
                for i in range(2):
                    await server.submit(Request(params={"scene": i}))
                return await server.submit(Request(params={"scene": 99}))

        response = asyncio.run(scenario())
        assert response.status == "shed"
        assert response.reason == "saturated"
        assert backend.degraded_calls == 0

    def test_breaker_recovers_after_reset_timeout(self, backend, fake_clock):
        faults.arm("serving.execute", "raise", times=2)

        async def scenario():
            server = self._failing_then_open(backend, fake_clock, memory_cache())
            async with server:
                for i in range(2):
                    await server.submit(Request(params={"scene": i}))
                assert server.breaker.state == "open"
                fake_clock.advance(11.0)  # past breaker_reset_s
                recovered = await server.submit(Request(params={"scene": 5}))
            return recovered

        recovered = asyncio.run(scenario())
        assert recovered.status == "ok"
        assert recovered.source == "render"
        assert backend.full_calls == 1  # the half-open probe that succeeded
