"""Per-tenant quota accounting and eviction isolation.

The ledger is exercised directly (pure bookkeeping) and through the
server (real evictions from the shared serving cache).  The isolation
property under test: a tenant exceeding its quota evicts its *own*
least-recent entries and never another tenant's.
"""

from __future__ import annotations

import asyncio

from repro.serving import QuotaLedger, Request, ServingConfig, ServingServer, request_key

from tests.serving.conftest import memory_cache, submit_deferred


class TestQuotaLedger:
    def test_entry_bound_evicts_lru(self):
        ledger = QuotaLedger(max_entries=2)
        assert ledger.charge("a", "k1", 10) == []
        assert ledger.charge("a", "k2", 10) == []
        assert ledger.charge("a", "k3", 10) == ["k1"]
        assert ledger.holdings("a") == ["k2", "k3"]

    def test_byte_bound_evicts_until_under(self):
        ledger = QuotaLedger(max_bytes=100)
        ledger.charge("a", "k1", 40)
        ledger.charge("a", "k2", 40)
        assert ledger.charge("a", "k3", 60) == ["k1"]  # 40+60 fits again
        assert ledger.stats()["a"]["bytes"] == 100
        assert ledger.charge("a", "k4", 90) == ["k2", "k3"]  # both must go
        assert ledger.stats()["a"]["bytes"] == 90

    def test_touch_refreshes_recency(self):
        ledger = QuotaLedger(max_entries=2)
        ledger.charge("a", "k1", 1)
        ledger.charge("a", "k2", 1)
        ledger.touch("a", "k1")  # k2 is now the oldest
        assert ledger.charge("a", "k3", 1) == ["k2"]

    def test_recharge_same_key_no_double_count(self):
        ledger = QuotaLedger(max_entries=2)
        ledger.charge("a", "k1", 10)
        ledger.charge("a", "k1", 30)  # size update, not a second entry
        stats = ledger.stats()["a"]
        assert stats["entries"] == 1
        assert stats["bytes"] == 30

    def test_tenants_are_independent(self):
        ledger = QuotaLedger(max_entries=1)
        ledger.charge("a", "ka", 1)
        assert ledger.charge("b", "kb", 1) == []  # b's quota is b's own
        assert ledger.charge("a", "ka2", 1) == ["ka"]
        assert ledger.holdings("b") == ["kb"]

    def test_unlimited_by_default(self):
        ledger = QuotaLedger()
        assert not ledger.enforcing
        for i in range(100):
            assert ledger.charge("a", f"k{i}", 10**6) == []
        assert ledger.totals() == (100, 100 * 10**6)


class TestQuotaThroughServer:
    def test_noisy_tenant_evicts_only_its_own_entries(self, backend):
        """Tenant A overflows its quota; tenant B's cache entries survive."""

        async def scenario():
            cache = memory_cache()
            server = ServingServer(
                backend,
                config=ServingConfig(workers=2, tenant_max_entries=2),
                cache=cache,
            )
            b_requests = [
                Request(params={"scene": f"b{i}"}, tenant="B") for i in range(2)
            ]
            a_requests = [
                Request(params={"scene": f"a{i}"}, tenant="A") for i in range(4)
            ]
            async with server:
                for request in b_requests + a_requests:
                    await server.submit(request)
            return cache, server, a_requests, b_requests

        cache, server, a_requests, b_requests = asyncio.run(scenario())

        # B's working set is intact
        for request in b_requests:
            found, _ = cache.get(request_key(request))
            assert found, "tenant B lost an entry to tenant A's overflow"
        # A holds only its 2 most recent; the 2 oldest were evicted
        assert [cache.get(request_key(r))[0] for r in a_requests] == [
            False, False, True, True,
        ]
        stats = server.quota.stats()
        assert stats["A"] == {
            "entries": 2, "bytes": stats["A"]["bytes"], "charged": 4, "evicted": 2,
        }
        assert stats["B"]["evicted"] == 0

    def test_evicted_entry_reexecutes_on_next_request(self, backend):
        async def scenario():
            server = ServingServer(
                backend,
                config=ServingConfig(workers=1, tenant_max_entries=1),
                cache=memory_cache(),
            )
            first = Request(params={"scene": 0}, tenant="A")
            async with server:
                await server.submit(first)
                await server.submit(Request(params={"scene": 1}, tenant="A"))
                again = await server.submit(first)
            return again

        again = asyncio.run(scenario())
        assert again.status == "ok"
        assert again.source == "render"  # scene 0 was evicted, re-rendered
        assert backend.full_calls == 3

    def test_cache_hits_refresh_quota_recency(self, backend):
        """A hot entry served from cache is not the one evicted."""

        async def scenario():
            cache = memory_cache()
            server = ServingServer(
                backend,
                config=ServingConfig(workers=1, tenant_max_entries=2),
                cache=cache,
            )
            hot = Request(params={"scene": "hot"}, tenant="A")
            cold = Request(params={"scene": "cold"}, tenant="A")
            async with server:
                await server.submit(hot)
                await server.submit(cold)
                await server.submit(hot)  # cache hit; refreshes recency
                await server.submit(Request(params={"scene": "new"}, tenant="A"))
            return cache, hot, cold

        cache, hot, cold = asyncio.run(scenario())
        assert cache.get(request_key(hot))[0], "hot entry was wrongly evicted"
        assert not cache.get(request_key(cold))[0]

    def test_coalesced_fanout_charges_the_leader_tenant_once(self, backend):
        async def scenario():
            server = ServingServer(
                backend,
                config=ServingConfig(workers=2, tenant_max_entries=8),
                cache=memory_cache(),
            )
            requests = [
                Request(params={"scene": 0}, tenant=f"T{i}") for i in range(4)
            ]
            await submit_deferred(server, requests, close=False)
            stats = server.quota.stats()
            await server.aclose()
            return stats

        stats = asyncio.run(scenario())
        # exactly one tenant was charged, exactly once
        assert sum(s["charged"] for s in stats.values()) == 1
        assert sum(s["entries"] for s in stats.values()) == 1
