"""Chaos suite for sticky session serving.

Backend slots die mid-session — through the armed ``serving.slot``
fault site or the :meth:`SlotPool.kill` hook — and the contract is:

* the in-flight request still completes, **byte-identical** to what the
  dead slot would have produced (backends are deterministic pure
  functions of the request);
* the dead slot's sessions re-pin to survivors (``serving.sessions.
  repinned``), other sessions' pins never move;
* every frame a session was ever served is accounted in its
  FrameRecord-style log — sequence numbers are gapless, digests match
  the returned payloads, and the slot column records where each frame
  actually ran.
"""

from __future__ import annotations

import asyncio
import hashlib

import pytest

from repro import obs
from repro.resilience import faults
from repro.serving import Request, ServingConfig, ServingServer
from repro.util.errors import ServingError

from tests.serving.conftest import CountingBackend, memory_cache


@pytest.fixture(autouse=True)
def clean_faults():
    faults.disarm()
    yield
    faults.disarm()


def run(coro):
    return asyncio.run(coro)


def make_session_server(backend, slots=3, **overrides):
    config = ServingConfig(workers=2, slots=slots, **overrides)
    return ServingServer(backend, config=config, cache=memory_cache())


def test_slot_death_mid_session_replays_byte_identical():
    """An armed slot fault kills the pinned slot; the frame still lands."""
    backend = CountingBackend()

    async def scenario():
        async with make_session_server(backend) as server:
            request = Request(params={"scene": "a", "timestep": 0},
                              session="sess-1", tenant="t1")
            first = await server.submit(request)
            assert first.status == "ok"
            home = server.sessions.get("sess-1").slot
            assert home in server.slot_pool.live_slots

            # the session's next frame triggers the fault on its slot
            faults.arm("serving.slot", "raise", match={"session": "sess-1"},
                       times=1)
            recorder = obs.enable(obs.Recorder())
            try:
                request2 = request.with_params(timestep=1)
                survived = await server.submit(request2)
                assert survived.status == "ok"
                # byte identity: the retried render equals a pure demand
                # render of the same request on any deterministic backend
                assert survived.payload == backend.payload_for(request2)
                assert recorder.counter_total("serving.sessions.repinned") == 1
            finally:
                obs.disable()

            state = server.sessions.get("sess-1")
            assert home not in server.slot_pool.live_slots
            assert state.slot != home
            assert state.slot in server.slot_pool.live_slots
            assert state.slot_history[0] == home
    run(scenario())


def test_killed_slot_moves_only_its_sessions():
    """kill() + next request: victims re-pin, bystanders do not move."""
    backend = CountingBackend()

    async def scenario():
        async with make_session_server(backend, slots=4) as server:
            sessions = [f"sess-{i}" for i in range(12)]
            for i, session in enumerate(sessions):
                response = await server.submit(Request(
                    params={"scene": session, "timestep": 0},
                    session=session))
                assert response.status == "ok"
            pins = {s: server.sessions.get(s).slot for s in sessions}
            victim = pins[sessions[0]]
            victims = {s for s, slot in pins.items() if slot == victim}
            server.slot_pool.kill(victim)

            for i, session in enumerate(sessions):
                request = Request(params={"scene": session, "timestep": 1},
                                  session=session)
                response = await server.submit(request)
                assert response.status == "ok"
                assert response.payload == backend.payload_for(request)

            for session in sessions:
                now = server.sessions.get(session).slot
                if session in victims:
                    assert now != victim
                    assert now in server.slot_pool.live_slots
                else:
                    assert now == pins[session]
    run(scenario())


def test_every_frame_is_accounted_in_the_session_log():
    """The FrameRecord-style log covers the whole session, chaos included."""
    backend = CountingBackend()

    async def scenario():
        async with make_session_server(backend) as server:
            payloads = {}
            for t in range(6):
                if t == 3:  # kill the pinned slot mid-animation
                    faults.arm("serving.slot", "raise",
                               match={"session": "sess-log"}, times=1)
                request = Request(params={"scene": "log", "timestep": t},
                                  session="sess-log")
                response = await server.submit(request)
                assert response.status == "ok"
                payloads[t] = response.payload

            state = server.sessions.get("sess-log")
            assert [frame.seq for frame in state.frames] == list(range(6))
            for t, frame in enumerate(state.frames):
                assert frame.status == "ok"
                assert frame.digest == hashlib.sha256(payloads[t]).hexdigest()
                assert frame.slot in {s for s in state.slot_history}
                assert frame.source in ("render", "cache", "speculative")
            # the re-pin is visible in the log: frames 0-2 ran on the
            # first slot, frames 3+ on the survivor
            slots_used = [frame.slot for frame in state.frames]
            assert slots_used[0] == slots_used[2]
            assert slots_used[3] != slots_used[0]
            assert len(set(slots_used)) == 2
    run(scenario())


def test_cache_hits_and_renders_both_logged():
    """Cache-served frames are session frames too (provenance recorded)."""
    backend = CountingBackend()

    async def scenario():
        async with make_session_server(backend, slots=2) as server:
            request = Request(params={"scene": "c", "timestep": 0},
                              session="sess-c")
            first = await server.submit(request)
            second = await server.submit(request)
            assert first.status == second.status == "ok"
            assert first.payload == second.payload
            state = server.sessions.get("sess-c")
            assert [f.source for f in state.frames] == ["render", "cache"]
            assert state.frames[0].digest == state.frames[1].digest
    run(scenario())


def test_session_log_ring_is_bounded():
    backend = CountingBackend()

    async def scenario():
        async with make_session_server(backend, slots=2,
                                       session_log_frames=4) as server:
            for t in range(10):
                await server.submit(Request(
                    params={"scene": "ring", "timestep": t},
                    session="sess-ring"))
            state = server.sessions.get("sess-ring")
            assert len(state.frames) == 4
            assert [f.seq for f in state.frames] == [6, 7, 8, 9]
    run(scenario())


def test_all_slots_dead_is_a_served_error_not_a_hang():
    """Total slot loss degrades to an error response, never a deadlock."""
    backend = CountingBackend()

    async def scenario():
        async with make_session_server(backend, slots=2) as server:
            faults.arm("serving.slot", "raise", times=10)
            response = await server.submit(Request(
                params={"scene": "doom"}, session="sess-doom"))
            assert response.status == "error"
            assert "slot" in response.reason
            assert server.slot_pool.live_slots == []
            # a later request cannot be routed at all; still an error
            response2 = await server.submit(Request(
                params={"scene": "doom2"}, session="sess-doom"))
            assert response2.status == "error"
    run(scenario())


def test_sessionless_requests_route_by_request_key():
    """No session id: requests still run on slots, keyed by digest."""
    backend = CountingBackend()

    async def scenario():
        async with make_session_server(backend, slots=3) as server:
            request = Request(params={"scene": "anon"})
            response = await server.submit(request)
            assert response.status == "ok"
            assert response.payload == backend.payload_for(request)
            stats = server.stats()
            assert sum(s["frames"] for s in stats["slots"].values()) == 1
    run(scenario())


def test_slot_backends_must_match_slot_count():
    backend = CountingBackend()
    with pytest.raises(ServingError):
        ServingServer(
            backend,
            config=ServingConfig(slots=3),
            slot_backends=[backend, backend],
        )
    with pytest.raises(ServingError):
        ServingServer(backend, config=ServingConfig(), slot_backends=[backend])
