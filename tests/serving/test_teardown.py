"""Process/thread/shm hygiene when serving tests fail.

A failed serving test must not leak: no executor threads after
``aclose()``, no ``repro-parallel-`` worker processes or shared-memory
segments when a kernel-pool-backed render dies mid-request, and no
``repro-hyperwall-client-`` processes when a cluster fails during
startup.  These are the leaks that turn one red test into a cascade of
unrelated failures (ports held, cores busy, /dev/shm full).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.parallel import ParallelConfig, run_tiles, shared_ndarray
from repro.resilience import faults
from repro.serving import Request, ServingConfig, ServingServer

from tests.serving.conftest import CountingBackend, memory_cache

POOL_AVAILABLE = ParallelConfig(workers=2).enabled


def _no_children(prefix: str, wait_s: float = 10.0) -> bool:
    """True when no live child process name starts with *prefix*."""
    deadline = time.monotonic() + wait_s
    while time.monotonic() < deadline:
        if not any(
            p.name.startswith(prefix) for p in multiprocessing.active_children()
        ):
            return True
        time.sleep(0.05)
    return False


def _serving_threads() -> list:
    return [
        t for t in threading.enumerate() if t.name.startswith("repro-serving")
    ]


# -- module-level tile function (must be importable in forked workers) --------

def _kernel_tile(shm_name, band):
    from repro.parallel.pool import attach_ndarray

    b0, b1 = band
    with attach_ndarray(shm_name, (8,), np.float64) as out:
        out[b0:b1] = 1.0
    return b1 - b0


class TestServerTeardown:
    def test_aclose_leaves_no_executor_threads(self, backend):
        async def scenario():
            server = ServingServer(
                backend, config=ServingConfig(workers=3), cache=None
            )
            async with server:
                await server.submit(Request(params={"scene": 1}))
                assert _serving_threads()  # pool is alive mid-session
            return True

        asyncio.run(scenario())
        assert _serving_threads() == []

    def test_aclose_after_backend_failure_leaves_no_threads(self):
        class Exploding(CountingBackend):
            def __call__(self, request, degraded):
                raise RuntimeError("boom")

        async def scenario():
            server = ServingServer(Exploding(), cache=None)
            try:
                async with server:
                    response = await server.submit(Request(params={"s": 1}))
                    assert response.status == "error"
            finally:
                await server.aclose()  # double close: must be safe

        asyncio.run(scenario())
        assert _serving_threads() == []

    def test_aclose_is_idempotent_and_reentrant_from_finally(self, backend):
        async def scenario():
            server = ServingServer(backend, cache=None)
            await server.start()
            await server.aclose()
            await server.aclose()
            return server.stats()

        stats = asyncio.run(scenario())
        assert stats["closed"] and stats["inflight"] == 0


@pytest.mark.skipif(not POOL_AVAILABLE, reason="POSIX shared memory unavailable")
class TestKernelPoolThroughServing:
    """The serving path on top of :mod:`repro.parallel` must clean up
    even when the pool dies mid-request."""

    @pytest.fixture(autouse=True)
    def clean_registry(self):
        faults.disarm()
        yield
        faults.disarm()

    def test_pool_backed_render_completes_and_cleans_up(self):
        def pool_backend(request: Request, degraded: bool) -> bytes:
            with shared_ndarray((8,), np.float64) as (name, out):
                run_tiles(
                    ParallelConfig(workers=2, min_items=1, timeout=30.0),
                    _kernel_tile, [(0, 4), (4, 8)], payload=name,
                )
                return out.tobytes()

        async def scenario():
            server = ServingServer(pool_backend, cache=memory_cache())
            async with server:
                return await server.submit(Request(params={"scene": 1}))

        response = asyncio.run(scenario())
        assert response.status == "ok"
        assert np.frombuffer(response.payload).tolist() == [1.0] * 8
        assert _no_children("repro-parallel-")

    def test_worker_death_mid_request_leaks_nothing(self):
        """A SIGKILLed pool worker inside a serving request: the request
        errors, the shm segment is unlinked, no processes survive."""
        from multiprocessing import shared_memory

        faults.arm("parallel.tile", "exit", match={"tile": 1}, times=0)
        leaked: dict = {}

        def doomed_backend(request: Request, degraded: bool) -> bytes:
            with shared_ndarray((8,), np.float64) as (name, _out):
                leaked["shm"] = name
                run_tiles(
                    ParallelConfig(
                        workers=2, min_items=1, timeout=30.0, respawn_budget=2
                    ),
                    _kernel_tile, [(0, 4), (4, 8)], payload=name,
                )
            raise AssertionError("the injected kill never fired")

        async def scenario():
            server = ServingServer(
                doomed_backend,
                config=ServingConfig(workers=2, breaker_failures=10),
                cache=memory_cache(),
            )
            async with server:
                return await server.submit(Request(params={"scene": 1}))

        response = asyncio.run(scenario())
        assert response.status == "error"
        assert "died with exit code" in response.reason
        # the failed request tore its own resources down
        assert _no_children("repro-parallel-")
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=leaked["shm"])
        assert _serving_threads() == []


class TestHyperwallStartupTeardown:
    """``LocalCluster.start()`` failure must not orphan client processes
    (``__exit__`` never runs when ``__enter__`` raises)."""

    def test_failed_accept_tears_down_spawned_clients(self, registry):
        from repro.hyperwall.cluster import LocalCluster
        from repro.util.errors import HyperwallError
        from repro.workflow.pipeline import Pipeline

        from tests.conftest import build_cell_chain

        pipeline = Pipeline(registry)
        build_cell_chain(pipeline, width=24, height=18)
        cluster = LocalCluster(pipeline, n_clients=2)

        def failing_accept(count, timeout=30.0):
            raise HyperwallError("injected accept failure")

        cluster.server.accept_clients = failing_accept
        with pytest.raises(HyperwallError, match="injected accept"):
            cluster.start()
        assert _no_children("repro-hyperwall-client-")
        assert cluster._processes == []
