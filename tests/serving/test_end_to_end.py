"""End-to-end: two worker threads serving real spreadsheet renders.

The full stack — ServingServer → AppBackend → Application →
spreadsheet cell → DV3D plot → software renderer → PPM bytes — driven
by concurrent multi-tenant sessions.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.serving import AppBackend, Request, ServingConfig, ServingServer

from tests.serving.conftest import memory_cache, submit_deferred

#: tiny workflow grid so the whole stack renders in well under a second
SIZE = {"nlat": 12, "nlon": 18, "nlev": 4, "ntime": 2}


def scene_params(scene: str = "ta", width: int = 32, height: int = 24) -> dict:
    return {
        "template": "Slicer",
        "source": "synthetic_reanalysis",
        "variables": {"variable": scene},
        "size": dict(SIZE),
        "width": width,
        "height": height,
    }


@pytest.fixture()
def app_server():
    config = ServingConfig(workers=2, queue_limit=32)
    return ServingServer(AppBackend(config=config), config=config, cache=memory_cache())


class TestEndToEnd:
    def test_two_worker_session_multi_tenant(self, app_server):
        """Concurrent sessions from two tenants get real, identical frames."""

        async def scenario():
            requests = [
                Request(params=scene_params(), tenant="alice", session="a1"),
                Request(params=scene_params(), tenant="bob", session="b1"),
                Request(params=scene_params(), tenant="alice", session="a2"),
                Request(params=scene_params("zg"), tenant="bob", session="b2"),
            ]
            return await submit_deferred(app_server, requests)

        recorder = obs.enable(obs.Recorder())
        try:
            responses = asyncio.run(scenario())
        finally:
            obs.disable()

        assert all(r.status == "ok" for r in responses)
        # real frames: deterministic binary PPM at the requested size
        for response in responses:
            assert response.payload.startswith(b"P6\n32 24\n255\n")
            assert len(response.payload) == len(b"P6\n32 24\n255\n") + 32 * 24 * 3
        # the three identical 'ta' scenes produced one execution
        ta_payloads = {r.payload for r in responses[:3]}
        assert len(ta_payloads) == 1
        assert responses[3].payload not in ta_payloads  # different variable
        assert recorder.counter_total("serving.executions") == 2
        assert recorder.counter_total("serving.coalesced") == 2

    def test_repeat_session_serves_from_cache(self, app_server):
        async def scenario():
            request = Request(params=scene_params(), tenant="alice")
            async with app_server:
                first = await app_server.submit(request)
                second = await app_server.submit(request)
            return first, second

        first, second = asyncio.run(scenario())
        assert first.source == "render"
        assert second.source == "cache"
        assert first.payload == second.payload

    def test_backend_reuses_scene_slots(self):
        backend = AppBackend(config=ServingConfig(workers=2))

        async def scenario():
            server = ServingServer(
                backend, config=ServingConfig(workers=2), cache=None
            )
            async with server:
                for _ in range(3):
                    await server.submit(Request(params=scene_params()))
                await server.submit(Request(params=scene_params("zg")))

        asyncio.run(scenario())
        # 2 distinct scenes -> 2 sheets, however many renders
        assert backend.scene_count == 2
        assert len(backend.app.project.sheets) == 2

    def test_degraded_render_is_smaller_but_real(self):
        backend = AppBackend(config=ServingConfig(degraded_scale=4))
        frame = backend(Request(params=scene_params(width=64, height=48)), True)
        assert frame.startswith(b"P6\n16 12\n255\n")

    def test_unknown_kind_surfaces_as_error_response(self, app_server):
        async def scenario():
            async with app_server:
                return await app_server.submit(
                    Request(kind="workflow", params={"x": 1})
                )

        response = asyncio.run(scenario())
        assert response.status == "error"
        assert "render" in response.reason
