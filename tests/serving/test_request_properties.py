"""Property tests for request-key canonicalization (hypothesis).

The coalescing key must satisfy two laws:

* **coalescing** — requests that specify the same product get the same
  key, whatever the params dict ordering and whatever the routing
  metadata (tenant, session, deadline) says;
* **sensitivity** — perturbing any single tenant-visible parameter
  (scene, camera, size, ...) changes the key, so no client can be
  served another product's bytes.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.keys import digest
from repro.serving import Request, request_key

#: tenant-visible parameter names a request might carry
PARAM_NAMES = st.sampled_from(
    ["scene", "camera", "width", "height", "timestep", "variable", "tf", "level"]
)

scalars = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
)

#: values may also be small lists/dicts (cameras, sizes, selectors)
values = st.one_of(
    scalars,
    st.lists(scalars, max_size=4),
    st.dictionaries(st.text(min_size=1, max_size=6), scalars, max_size=4),
)

params = st.dictionaries(PARAM_NAMES, values, min_size=1, max_size=6)

tenants = st.text(min_size=1, max_size=10)
sessions = st.text(max_size=10)
deadlines = st.one_of(st.none(), st.floats(min_value=0.001, max_value=100.0))


@settings(max_examples=120, deadline=None)
@given(p=params, t1=tenants, t2=tenants, s1=sessions, s2=sessions,
       d1=deadlines, d2=deadlines)
def test_equal_products_coalesce_across_metadata(p, t1, t2, s1, s2, d1, d2):
    """Tenant, session and deadline never enter the key; dict order
    never matters."""
    a = Request(params=dict(p), tenant=t1, session=s1, deadline_s=d1)
    shuffled = dict(reversed(list(p.items())))
    b = Request(params=shuffled, tenant=t2, session=s2, deadline_s=d2)
    assert request_key(a) == request_key(b)


@settings(max_examples=120, deadline=None)
@given(p=params, data=st.data())
def test_single_param_perturbation_changes_key(p, data):
    """Changing any one parameter to a canonically-different value
    changes the key."""
    base = Request(params=dict(p))
    name = data.draw(st.sampled_from(sorted(p)))
    replacement = data.draw(values)
    if digest(replacement) == digest(p[name]):
        return  # canonically identical value: not a perturbation
    perturbed = base.with_params(**{name: replacement})
    assert request_key(base) != request_key(perturbed)


@settings(max_examples=80, deadline=None)
@given(p=params, name=PARAM_NAMES, value=values)
def test_adding_a_param_changes_key(p, name, value):
    base = Request(params=dict(p))
    if name in p:
        return
    assert request_key(base) != request_key(base.with_params(**{name: value}))


@settings(max_examples=80, deadline=None)
@given(p=params)
def test_kind_is_part_of_the_key(p):
    render = Request(kind="render", params=dict(p))
    workflow = Request(kind="workflow", params=dict(p))
    assert request_key(render) != request_key(workflow)


@settings(max_examples=60, deadline=None)
@given(p=params, salt=st.text(min_size=1, max_size=8))
def test_salt_partitions_the_keyspace(p, salt):
    """Different deployment salts never share keys (no cross-version
    fan-out)."""
    request = Request(params=dict(p))
    assert request_key(request) != request_key(request, salt=salt)


@settings(max_examples=60, deadline=None)
@given(p=params)
def test_key_is_stable_across_calls(p):
    request = Request(params=dict(p))
    assert request_key(request) == request_key(request)
