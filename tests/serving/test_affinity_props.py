"""Property tests of the rendezvous affinity router.

The router's contract is what makes sticky sessions safe to operate:

* the session→slot mapping is a **pure function of the live membership
  set** — any interleaving of joins and leaves reaching the same
  membership routes every session identically;
* retiring a slot is **minimally disruptive** — only the sessions that
  were pinned to the dead slot move, and they all land on survivors.

Hypothesis drives both over arbitrary membership sets, session-id
alphabets and join/leave interleavings.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.sessions import AffinityRouter, SessionState, SlotPool
from repro.util.errors import ServingError

slot_ids = st.text(
    alphabet="abcdefghij0123456789-", min_size=1, max_size=12
).map(lambda s: f"slot:{s}")

session_ids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=16
)

slot_sets = st.sets(slot_ids, min_size=1, max_size=8)


@given(slots=slot_sets, session=session_ids)
@settings(max_examples=200, deadline=None)
def test_mapping_is_deterministic_per_membership(slots, session):
    """Two routers with the same membership agree on every session."""
    a = AffinityRouter(sorted(slots))
    b = AffinityRouter(sorted(slots, reverse=True))
    assert a.slot_for(session) == b.slot_for(session)
    assert a.slot_for(session) in slots


@given(
    slots=slot_sets,
    extra=slot_ids,
    sessions=st.lists(session_ids, min_size=1, max_size=20),
    interleave=st.lists(st.booleans(), min_size=0, max_size=16),
)
@settings(max_examples=100, deadline=None)
def test_any_join_leave_interleaving_converges(slots, extra, sessions, interleave):
    """Joins/leaves in any order reach the same routing table.

    The router takes churn — an extra slot joining and leaving any
    number of times, re-joins of existing members — and as long as the
    final membership equals *slots*, every session routes exactly as a
    fresh router over *slots* would.
    """
    reference = AffinityRouter(sorted(slots))
    churned = AffinityRouter(sorted(slots))
    for join in interleave:
        if join:
            churned.join(extra)
        else:
            churned.leave(extra)
    churned.leave(extra)  # force final membership back to *slots*
    for slot in slots:
        churned.join(slot)  # idempotent re-joins must not matter
    assert churned.slots == reference.slots
    for session in sessions:
        assert churned.slot_for(session) == reference.slot_for(session)


@given(slots=st.sets(slot_ids, min_size=2, max_size=8),
       sessions=st.lists(session_ids, min_size=1, max_size=30, unique=True))
@settings(max_examples=100, deadline=None)
def test_slot_death_moves_only_its_sessions(slots, sessions):
    """Removing one slot re-routes exactly the sessions pinned to it."""
    router = AffinityRouter(sorted(slots))
    before = {s: router.slot_for(s) for s in sessions}
    victim = router.slot_for(sessions[0])  # a slot that owns >= 1 session
    router.leave(victim)
    for session in sessions:
        after = router.slot_for(session)
        if before[session] == victim:
            assert after != victim  # moved, and to a live slot
            assert after in slots
        else:
            assert after == before[session]  # untouched


@given(slots=st.sets(slot_ids, min_size=2, max_size=8),
       sessions=st.lists(session_ids, min_size=1, max_size=30, unique=True))
@settings(max_examples=50, deadline=None)
def test_rejoin_restores_the_original_mapping(slots, sessions):
    """Membership is all that matters: leave + rejoin round-trips."""
    router = AffinityRouter(sorted(slots))
    before = {s: router.slot_for(s) for s in sessions}
    victim = sorted(slots)[0]
    router.leave(victim)
    router.join(victim)
    assert {s: router.slot_for(s) for s in sessions} == before


def test_empty_router_raises():
    router = AffinityRouter()
    with pytest.raises(ServingError):
        router.slot_for("anyone")
    router.join("slot-a")
    assert router.slot_for("anyone") == "slot-a"
    router.leave("slot-a")
    with pytest.raises(ServingError):
        router.slot_for("anyone")


@given(sessions=st.lists(session_ids, min_size=1, max_size=20, unique=True))
@settings(max_examples=50, deadline=None)
def test_slotpool_retire_reports_exactly_the_moved_sessions(sessions):
    """SlotPool.retire re-pins the dead slot's sessions and no others."""
    backend = lambda request, degraded: b""  # noqa: E731 - never called here
    pool = SlotPool([backend] * 3)
    try:
        states = []
        for session in sessions:
            state = SessionState(session, tenant="t")
            state.pin(pool.slot_for(session).id)
            states.append(state)
        victim = pool.slot_for(sessions[0]).id
        pinned_to_victim = {s.id for s in states if s.slot == victim}
        others_before = {s.id: s.slot for s in states if s.slot != victim}
        moved = pool.retire(victim, states)
        assert set(moved) == pinned_to_victim
        for state in states:
            if state.id in moved:
                assert state.slot == moved[state.id]
                assert state.slot != victim
                assert state.slot in pool.live_slots
            else:
                assert state.slot == others_before[state.id]
    finally:
        pool.shutdown()
