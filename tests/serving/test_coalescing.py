"""Coalescing correctness: N identical digests, one execution, N frames.

The acceptance contract of the serving layer: 64 concurrent requests
for the same product from 8 different tenants must execute the backend
exactly once (asserted through the ``serving.executions`` obs counter
*and* the backend's own call log) and every requester must receive
byte-identical payload.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.serving import Request, ServingConfig, ServingServer
from repro.util.errors import ServingError

from tests.serving.conftest import (
    CountingBackend,
    memory_cache,
    submit_deferred,
)


class TestAcceptance:
    def test_64_identical_requests_8_tenants_one_execution(self):
        """The headline contract, end to end with obs counters."""

        async def scenario():
            backend = CountingBackend()
            server = ServingServer(
                backend,
                config=ServingConfig(workers=4, queue_limit=128),
                cache=memory_cache(),
            )
            params = {"scene": 7, "width": 64, "height": 48}
            requests = [
                Request(
                    params=dict(params),
                    tenant=f"tenant-{i % 8}",
                    session=f"session-{i}",
                )
                for i in range(64)
            ]
            responses = await submit_deferred(server, requests)
            return backend, responses

        recorder = obs.enable(obs.Recorder())
        try:
            backend, responses = asyncio.run(scenario())
        finally:
            obs.disable()

        # exactly one kernel execution, by both accounts
        assert backend.full_calls == 1
        assert recorder.counter_total("serving.executions") == 1
        assert recorder.counter_total("serving.coalesced") == 63
        assert recorder.counter_total("serving.requests") == 64

        # all 64 responses completed, byte-identical, correctly routed
        assert len(responses) == 64
        assert all(r.status == "ok" for r in responses)
        payloads = {r.payload for r in responses}
        assert payloads == {backend.payload_for(Request(params={"scene": 7, "width": 64, "height": 48}))}
        assert {r.tenant for r in responses} == {f"tenant-{i}" for i in range(8)}
        # one leader executed, the rest are marked coalesced
        assert sum(1 for r in responses if r.coalesced) == 63


class TestCoalescing:
    def test_distinct_params_do_not_coalesce(self, backend):
        async def scenario():
            server = ServingServer(
                backend, config=ServingConfig(workers=2), cache=memory_cache()
            )
            requests = [Request(params={"scene": i}) for i in range(5)]
            return await submit_deferred(server, requests)

        responses = asyncio.run(scenario())
        assert backend.full_calls == 5
        assert len({r.payload for r in responses}) == 5
        assert all(not r.coalesced for r in responses)

    def test_same_params_different_order_coalesce(self, backend):
        async def scenario():
            server = ServingServer(
                backend, config=ServingConfig(workers=2), cache=memory_cache()
            )
            requests = [
                Request(params={"a": 1, "b": 2.5, "c": "x"}),
                Request(params={"c": "x", "a": 1, "b": 2.5}),
                Request(params={"b": 2.5, "c": "x", "a": 1}),
            ]
            return await submit_deferred(server, requests)

        responses = asyncio.run(scenario())
        assert backend.full_calls == 1
        assert len({r.payload for r in responses}) == 1

    def test_sequential_repeat_served_from_cache_not_reexecuted(self, backend):
        async def scenario():
            server = ServingServer(
                backend, config=ServingConfig(workers=2), cache=memory_cache()
            )
            request = Request(params={"scene": 3})
            async with server:
                first = await server.submit(request)
                second = await server.submit(request)
            return first, second

        first, second = asyncio.run(scenario())
        assert backend.full_calls == 1
        assert first.source == "render" and second.source == "cache"
        assert first.payload == second.payload

    def test_no_cache_still_coalesces_but_reexecutes_sequentially(self, backend):
        async def scenario():
            server = ServingServer(
                backend, config=ServingConfig(workers=2), cache=None
            )
            request = Request(params={"scene": 1})
            burst = await submit_deferred(server, [request] * 6, close=False)
            again = await server.submit(request)
            await server.aclose()
            return burst, again

        burst, again = asyncio.run(scenario())
        # the burst coalesced to one call; the later repeat re-executed
        assert backend.full_calls == 2
        assert len({r.payload for r in burst}) == 1
        assert again.payload == burst[0].payload

    def test_waiters_inherit_leader_error(self, serving_cache):
        class Exploding(CountingBackend):
            def __call__(self, request, degraded):
                super().__call__(request, degraded)
                raise RuntimeError("kernel exploded")

        backend = Exploding()

        async def scenario():
            server = ServingServer(
                backend,
                config=ServingConfig(workers=2, breaker_failures=5),
                cache=serving_cache,
            )
            return await submit_deferred(server, [Request(params={"s": 1})] * 4)

        responses = asyncio.run(scenario())
        assert backend.full_calls == 1  # the failure is also coalesced
        assert all(r.status == "error" for r in responses)
        assert all("kernel exploded" in r.reason for r in responses)

    def test_submit_after_close_raises(self, backend):
        async def scenario():
            server = ServingServer(backend, cache=None)
            async with server:
                pass
            with pytest.raises(ServingError, match="closed"):
                await server.submit(Request(params={"s": 1}))

        asyncio.run(scenario())

    def test_close_resolves_pending_submissions_as_shed(self, backend):
        async def scenario():
            server = ServingServer(backend, cache=None)
            # submitted but never started: close must not strand the waiter
            task = asyncio.create_task(server.submit(Request(params={"s": 9})))
            await asyncio.sleep(0)
            await server.aclose()
            return await task

        response = asyncio.run(scenario())
        assert response.status == "shed"
        assert response.reason == "closed"
        assert backend.full_calls == 0
