"""The wire corruption matrix: every mangled frame fails with a typed error.

Each damage mode — a truncated frame, a bit flip against the content
digest, an unknown protocol version, garbage magic, oversized length
fields, a malformed header — must raise the matching
:class:`~repro.util.errors.WireError` subclass (all of them
:class:`~repro.util.errors.ServingError`s), never a bare
``struct.error``, ``KeyError`` or ``json.JSONDecodeError``.  The
endpoint half covers the live-socket modes: mid-stream disconnect is a
:class:`WireTruncatedError` on the reading side, and
reconnect-with-resume replays the missed frames byte-identically.
"""

from __future__ import annotations

import struct

import pytest

from repro.resilience import faults
from repro.serving import ServingConfig
from repro.serving.endpoint import WireSessionClient, WireSessionServer
from repro.serving.wire import (
    MAX_HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    WIRE_VERSION,
    WireFrame,
    decode_frame,
    encode_frame,
)
from repro.util.errors import (
    ServingError,
    WireCorruptionError,
    WireError,
    WireFormatError,
    WireTruncatedError,
    WireVersionError,
)

from tests.serving.conftest import CountingBackend, memory_cache


@pytest.fixture(autouse=True)
def clean_faults():
    faults.disarm()
    yield
    faults.disarm()


def sample_frame() -> bytes:
    return encode_frame(
        WireFrame("frame", {"seq": 7, "status": "ok"}, b"pixels" * 100)
    )


class TestRoundTrip:
    def test_encode_decode_round_trip(self):
        frame = WireFrame("frame", {"seq": 3, "digest": "abc"}, b"\x00\x01\x02")
        decoded, consumed = decode_frame(encode_frame(frame))
        assert decoded == frame
        assert consumed == len(encode_frame(frame))

    def test_empty_payload_and_meta(self):
        decoded, _ = decode_frame(encode_frame(WireFrame("hello")))
        assert decoded.kind == "hello"
        assert decoded.meta == {}
        assert decoded.payload == b""

    def test_back_to_back_frames_consume_exactly(self):
        a, b = encode_frame(WireFrame("open")), encode_frame(WireFrame("close"))
        first, consumed = decode_frame(a + b)
        assert first.kind == "open"
        second, _ = decode_frame((a + b)[consumed:])
        assert second.kind == "close"


class TestCorruptionMatrix:
    def test_truncated_at_every_boundary(self):
        """Any prefix of a valid frame is typed truncation."""
        data = sample_frame()
        for cut in (0, 3, 16, 17, 30, len(data) - 33, len(data) - 1):
            with pytest.raises(WireTruncatedError):
                decode_frame(data[:cut])

    def test_bit_flip_in_payload_vs_digest(self):
        """A single flipped payload bit violates the content digest."""
        data = bytearray(sample_frame())
        data[len(data) - 40] ^= 0x01  # inside the payload, before digest
        with pytest.raises(WireCorruptionError):
            decode_frame(bytes(data))

    def test_bit_flip_in_header_vs_digest(self):
        data = bytearray(sample_frame())
        data[20] ^= 0x01  # inside the JSON header
        with pytest.raises(WireCorruptionError):
            decode_frame(bytes(data))

    def test_bit_flip_in_digest_itself(self):
        data = bytearray(sample_frame())
        data[-1] ^= 0xFF
        with pytest.raises(WireCorruptionError):
            decode_frame(bytes(data))

    def test_bad_version(self):
        data = bytearray(sample_frame())
        data[4] = WIRE_VERSION + 9
        with pytest.raises(WireVersionError):
            decode_frame(bytes(data))

    def test_bad_magic(self):
        data = bytearray(sample_frame())
        data[:4] = b"ZZZZ"
        with pytest.raises(WireFormatError):
            decode_frame(bytes(data))

    def test_absurd_header_length(self):
        prefix = struct.pack(">4sBIQ", b"RSWP", WIRE_VERSION,
                             MAX_HEADER_BYTES + 1, 0)
        with pytest.raises(WireFormatError):
            decode_frame(prefix + b"\x00" * 64)

    def test_absurd_payload_length(self):
        prefix = struct.pack(">4sBIQ", b"RSWP", WIRE_VERSION,
                             2, MAX_PAYLOAD_BYTES + 1)
        with pytest.raises(WireFormatError):
            decode_frame(prefix + b"\x00" * 64)

    def test_header_not_json(self):
        """Digest-valid frame whose header is garbage: format error."""
        import hashlib
        header, payload = b"not json at all", b""
        digest = hashlib.sha256(header + payload).digest()
        data = (struct.pack(">4sBIQ", b"RSWP", WIRE_VERSION,
                            len(header), len(payload))
                + header + payload + digest)
        with pytest.raises(WireFormatError):
            decode_frame(data)

    def test_header_json_without_kind(self):
        import hashlib
        header = b'{"meta": {}}'
        digest = hashlib.sha256(header).digest()
        data = (struct.pack(">4sBIQ", b"RSWP", WIRE_VERSION, len(header), 0)
                + header + digest)
        with pytest.raises(WireFormatError):
            decode_frame(data)

    def test_every_wire_error_is_a_serving_error(self):
        for exc_type in (WireError, WireFormatError, WireVersionError,
                         WireTruncatedError, WireCorruptionError):
            assert issubclass(exc_type, ServingError)

    def test_oversized_encode_refused(self):
        with pytest.raises(WireFormatError):
            encode_frame(WireFrame("frame", {"pad": "x" * (MAX_HEADER_BYTES)}))


class TestEndpoint:
    """Live-socket modes: the dialogue, disconnects, and resume."""

    @staticmethod
    def make_server():
        backend = CountingBackend()
        config = ServingConfig(workers=2, slots=2, speculation_budget=1)
        return backend, WireSessionServer(backend, config, cache=memory_cache())

    def test_session_stream_end_to_end(self):
        from repro.serving.request import Request

        backend, server = self.make_server()
        with server:
            with WireSessionClient(server.host, server.port) as client:
                assert client.open("wire-1", tenant="t1") == []
                for t in range(4):
                    params = {"scene": "w", "timestep": t}
                    frame = client.render(params)
                    assert frame.meta["status"] == "ok"
                    assert frame.meta["seq"] == t
                    assert frame.payload == backend.payload_for(
                        Request(params=params))

    def test_mid_stream_disconnect_is_typed_and_resumable(self):
        """The armed send fault drops the connection mid-stream; the
        client sees a typed error, resumes, and receives the lost frame
        byte-identically from the replay ring."""
        backend, server = self.make_server()
        with server:
            client = WireSessionClient(server.host, server.port).connect()
            client.open("wire-2")
            served = [client.render({"scene": "r", "timestep": t})
                      for t in range(3)]

            faults.arm("serving.wire.send", "drop",
                       match={"kind": "frame"}, times=1)
            with pytest.raises(WireError):
                client.render({"scene": "r", "timestep": 3})

            replayed = client.reconnect()
            assert [f.meta["seq"] for f in replayed] == [3]
            assert replayed[0].meta["replayed"] is True
            from repro.serving.request import Request
            expected = backend.payload_for(
                Request(params={"scene": "r", "timestep": 3}))
            assert replayed[0].payload == expected

            cont = client.render({"scene": "r", "timestep": 4})
            assert cont.meta["seq"] == 4
            assert [f.meta["seq"] for f in served] == [0, 1, 2]
            client.close()

    def test_resume_replays_nothing_when_nothing_was_missed(self):
        _backend, server = self.make_server()
        with server:
            client = WireSessionClient(server.host, server.port).connect()
            client.open("wire-3")
            client.render({"scene": "q", "timestep": 0})
            assert client.reconnect() == []
            client.close()

    def test_server_rejects_render_before_open(self):
        _backend, server = self.make_server()
        with server:
            client = WireSessionClient(server.host, server.port).connect()
            with pytest.raises(WireError):
                client.render({"scene": "x"})
            client.close_socket()

    def test_server_refuses_unknown_version_frames(self):
        """A frame stamped with a future version is refused, typed."""
        import socket as socket_module

        _backend, server = self.make_server()
        with server:
            sock = socket_module.create_connection(
                (server.host, server.port), timeout=10.0)
            try:
                bad = bytearray(encode_frame(WireFrame("hello")))
                bad[4] = WIRE_VERSION + 1
                sock.sendall(bytes(bad))
                from repro.serving.wire import read_frame
                reply = read_frame(sock)
                assert reply is not None
                assert reply.kind == "error"
                assert reply.meta["error"] == "WireVersionError"
            finally:
                sock.close()

    def test_wire_frames_byte_identical_to_direct_serving(self):
        """The wire adds framing, never changes pixels: a frame served
        over the socket equals one served through ServingServer.submit."""
        import asyncio

        from repro.serving.request import Request
        from repro.serving.server import ServingServer

        backend, server = self.make_server()
        params = {"scene": "ident", "timestep": 5}
        with server:
            with WireSessionClient(server.host, server.port) as client:
                client.open("wire-4")
                over_wire = client.render(params).payload

        async def direct():
            config = ServingConfig(workers=2, slots=2)
            async with ServingServer(CountingBackend(), config=config,
                                     cache=memory_cache()) as srv:
                response = await srv.submit(Request(params=params,
                                                    session="other"))
                return response.payload

        assert over_wire == asyncio.run(direct())
