"""Serving-suite fixtures: fake clocks, counting backends, cache tiers.

Every test here is deterministic by construction:

* the **fake clock** drives deadlines and the circuit breaker — no
  test ever sleeps to make time pass;
* the **deferred-start pattern** makes coalescing assertions exact —
  ``submit()`` registers its in-flight entry synchronously (the first
  ``await`` is on the shared future), so a test can submit N requests,
  yield once, *then* start the workers and know all N coalesced;
* faults are injected at named :mod:`repro.resilience.faults` sites,
  never by killing things from another thread.

There is no pytest-asyncio in the toolchain; async scenarios run under
plain ``asyncio.run()``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import List, Optional, Sequence

import pytest

from repro.cache.config import CacheConfig
from repro.cache.keys import digest
from repro.cache.store import ResultCache
from repro.serving import Request, Response, ServingConfig, ServingServer


class FakeClock:
    """A monotonic clock tests advance by hand (breaker + deadlines)."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


class CountingBackend:
    """Backend double: records calls, returns deterministic bytes.

    The payload is a pure function of (params, degraded), so two
    executions of the same request are byte-identical — and *one*
    execution fanned out to N waiters trivially is.
    """

    def __init__(self, delay_s: float = 0.0) -> None:
        self.delay_s = delay_s
        self.calls: List[tuple] = []
        self._lock = threading.Lock()

    def __call__(self, request: Request, degraded: bool) -> bytes:
        with self._lock:
            self.calls.append((dict(request.params), degraded))
        if self.delay_s:
            time.sleep(self.delay_s)
        return f"frame/{digest(dict(request.params))}/{degraded}".encode()

    def payload_for(self, request: Request, degraded: bool = False) -> bytes:
        return f"frame/{digest(dict(request.params))}/{degraded}".encode()

    @property
    def full_calls(self) -> int:
        with self._lock:
            return sum(1 for _, degraded in self.calls if not degraded)

    @property
    def degraded_calls(self) -> int:
        with self._lock:
            return sum(1 for _, degraded in self.calls if degraded)


def memory_cache(entries: int = 256) -> ResultCache:
    """A fresh memory-only serving cache (no disk, no ambient state)."""
    return ResultCache(
        CacheConfig(enabled=True, memory_entries=entries, use_disk=False)
    )


async def submit_deferred(
    server: ServingServer,
    requests: Sequence[Request],
    close: bool = True,
) -> List[Response]:
    """Submit all *requests* before any worker runs, then serve them.

    The deferred start guarantees every identical-digest request is
    in-flight simultaneously: coalescing counts become exact equalities
    instead of races.
    """
    tasks = [asyncio.create_task(server.submit(r)) for r in requests]
    await asyncio.sleep(0)  # run every submit to its first await
    await server.start()
    responses = await asyncio.gather(*tasks)
    if close:
        await server.aclose()
    return list(responses)


@pytest.fixture()
def fake_clock() -> FakeClock:
    return FakeClock()


@pytest.fixture()
def backend() -> CountingBackend:
    return CountingBackend()


@pytest.fixture()
def serving_cache() -> ResultCache:
    return memory_cache()


def make_server(
    backend,
    cache: Optional[ResultCache] = None,
    clock=time.monotonic,
    **overrides,
) -> ServingServer:
    config = ServingConfig(**overrides)
    return ServingServer(backend, config=config, cache=cache, clock=clock)
