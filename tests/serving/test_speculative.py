"""Speculative rendering: prediction, byte identity, cache hygiene.

The load-bearing guarantee is **differential**: a frame served from a
speculative pre-render must be byte-identical to what a demand render
of the same request would have produced — across every DV3D plot type
the palette serves.  Speculation is an optimization, never an
observable behavior change.

The misprediction cases pin the other half of the contract: wrong
guesses are cancelled or audited out of the cache (``serving.
speculative.waste``), so speculation cannot pollute the serving cache
with frames nobody asked for.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.serving import (
    AppBackend,
    NextFramePredictor,
    Request,
    ServingConfig,
    ServingServer,
    request_key,
)

from tests.serving.conftest import CountingBackend, memory_cache

#: all five DV3D plot families the palette serves, with their variables
PLOT_TYPES = [
    ("Slicer", {"variable": "ta"}),
    ("Volume", {"variable": "ta"}),
    ("Isosurface", {"variable": "ta", "color_variable": "hus"}),
    ("HovmollerSlicer", {"variable": "ta"}),
    ("VectorSlicer", {"u": "ua", "v": "va"}),
]

SIZE = {"nlat": 10, "nlon": 14, "nlev": 3, "ntime": 5}


def run(coro):
    return asyncio.run(coro)


def speculative_config(**overrides):
    overrides.setdefault("workers", 2)
    overrides.setdefault("slots", 2)
    overrides.setdefault("speculation_budget", 1)
    return ServingConfig(**overrides)


class TestPredictor:
    def test_constant_stride_timestep(self):
        predictor = NextFramePredictor()
        history = [{"scene": "a", "timestep": t} for t in (3, 4, 5)]
        assert predictor.predict(history) == {"scene": "a", "timestep": 6}

    def test_orbit_stride(self):
        predictor = NextFramePredictor()
        history = [{"scene": "a", "azimuth": a} for a in (0.0, 15.0, 30.0)]
        assert predictor.predict(history) == {"scene": "a", "azimuth": 45.0}

    def test_negative_stride(self):
        predictor = NextFramePredictor()
        history = [{"timestep": t} for t in (9, 7, 5)]
        assert predictor.predict(history) == {"timestep": 3}

    def test_short_history_predicts_nothing(self):
        predictor = NextFramePredictor()
        assert predictor.predict([{"timestep": 0}, {"timestep": 1}]) is None

    def test_teleport_predicts_nothing(self):
        predictor = NextFramePredictor()
        assert predictor.predict(
            [{"timestep": 0}, {"timestep": 1}, {"timestep": 9}]) is None

    def test_two_axes_moving_predicts_nothing(self):
        predictor = NextFramePredictor()
        history = [{"timestep": t, "azimuth": t * 10.0} for t in (0, 1, 2)]
        assert predictor.predict(history) is None

    def test_scene_switch_predicts_nothing(self):
        predictor = NextFramePredictor()
        history = [{"scene": "a", "timestep": 0},
                   {"scene": "b", "timestep": 1},
                   {"scene": "a", "timestep": 2}]
        assert predictor.predict(history) is None

    def test_non_numeric_axis_predicts_nothing(self):
        predictor = NextFramePredictor()
        history = [{"level": name} for name in ("a", "b", "c")]
        assert predictor.predict(history) is None

    def test_only_the_trailing_window_counts(self):
        predictor = NextFramePredictor()
        history = [{"timestep": 99}] + [{"timestep": t} for t in (4, 5, 6)]
        assert predictor.predict(history) == {"timestep": 7}

    def test_window_below_three_rejected(self):
        with pytest.raises(ValueError):
            NextFramePredictor(window=2)


class TestDifferentialByteIdentity:
    @pytest.mark.parametrize("template,variables",
                             PLOT_TYPES, ids=[t for t, _ in PLOT_TYPES])
    def test_speculative_equals_demand_over_animation(self, template, variables):
        """A 20-frame animating session; every served frame must equal a
        demand render, whether it came from speculation or not."""
        backend = AppBackend()
        frame_params = [
            {
                "template": template,
                "variables": variables,
                "size": SIZE,
                "width": 32,
                "height": 24,
                "timestep": t,
            }
            for t in range(20)
        ]

        async def scenario():
            cache = memory_cache()
            config = speculative_config()
            recorder = obs.enable(obs.Recorder())
            try:
                async with ServingServer(backend, config=config,
                                         cache=cache) as server:
                    served = []
                    for params in frame_params:
                        response = await server.submit(Request(
                            params=params, session=f"anim-{template}"))
                        assert response.status == "ok"
                        served.append(response.payload)
                        # let the pre-render land before the next demand
                        await server.drain_speculation()
                    hits = recorder.counter_total("serving.speculative.hit")
                    waste = recorder.counter_total("serving.speculative.waste")
                return served, hits, waste
            finally:
                obs.disable()

        served, hits, waste = run(scenario())
        # a steady animation is maximally predictable: the first three
        # frames train the predictor, everything after is speculated
        assert hits >= len(frame_params) // 2
        assert waste == 0
        for params, payload in zip(frame_params, served):
            demand = backend(Request(params=params), False)
            assert payload == demand

    def test_orbit_session_speculates_on_azimuth(self):
        """Camera orbits speculate exactly like timestep animation."""
        backend = AppBackend()
        frame_params = [
            {"template": "Slicer", "size": SIZE,
             "width": 32, "height": 24, "azimuth": 15.0 * k}
            for k in range(8)
        ]

        async def scenario():
            recorder = obs.enable(obs.Recorder())
            try:
                async with ServingServer(backend, config=speculative_config(),
                                         cache=memory_cache()) as server:
                    served = []
                    for params in frame_params:
                        response = await server.submit(Request(
                            params=params, session="orbit"))
                        assert response.status == "ok"
                        served.append(response.payload)
                        await server.drain_speculation()
                    return served, recorder.counter_total(
                        "serving.speculative.hit")
            finally:
                obs.disable()

        served, hits = run(scenario())
        assert hits >= len(frame_params) // 2
        for params, payload in zip(frame_params, served):
            assert payload == backend(Request(params=params), False)


class TestMisprediction:
    def test_stored_misprediction_is_audited_out_of_the_cache(self):
        """A wrong guess that already landed in the cache is removed."""
        backend = CountingBackend()

        async def scenario():
            cache = memory_cache()
            recorder = obs.enable(obs.Recorder())
            try:
                async with ServingServer(backend, config=speculative_config(),
                                         cache=cache) as server:
                    for t in range(3):
                        await server.submit(Request(
                            params={"scene": "m", "timestep": t},
                            session="sess-m"))
                    await server.drain_speculation()  # timestep 3 pre-rendered
                    spec_key = request_key(
                        Request(params={"scene": "m", "timestep": 3}))
                    assert cache.get(spec_key, site="test")[0]

                    # the session teleports: the guess was wrong
                    response = await server.submit(Request(
                        params={"scene": "m", "timestep": 11},
                        session="sess-m"))
                    assert response.status == "ok"
                    assert recorder.counter_total(
                        "serving.speculative.waste") == 1
                    assert recorder.counter_total(
                        "serving.speculative.hit") == 0
                    # cache key audit: the speculative entry is gone
                    assert not cache.get(spec_key, site="test")[0]
            finally:
                obs.disable()
        run(scenario())

    def test_inflight_misprediction_is_cancelled_not_stored(self):
        """A wrong guess still rendering is cancelled; nothing is stored."""
        backend = CountingBackend(delay_s=0.2)

        async def scenario():
            cache = memory_cache()
            recorder = obs.enable(obs.Recorder())
            try:
                async with ServingServer(backend, config=speculative_config(),
                                         cache=cache) as server:
                    for t in range(3):
                        await server.submit(Request(
                            params={"scene": "c", "timestep": t},
                            session="sess-c"))
                    # speculation for timestep 3 is in flight; teleport now
                    response = await server.submit(Request(
                        params={"scene": "c", "timestep": 40},
                        session="sess-c"))
                    assert response.status == "ok"
                    await server.drain_speculation()
                    assert recorder.counter_total(
                        "serving.speculative.waste") == 1
                    spec_key = request_key(
                        Request(params={"scene": "c", "timestep": 3}))
                    assert not cache.get(spec_key, site="test")[0]
            finally:
                obs.disable()
        run(scenario())

    def test_demand_coalesces_onto_inflight_speculation(self):
        """The predicted request arriving mid-render attaches, not cancels."""
        backend = CountingBackend(delay_s=0.1)

        async def scenario():
            recorder = obs.enable(obs.Recorder())
            try:
                async with ServingServer(backend, config=speculative_config(),
                                         cache=memory_cache()) as server:
                    for t in range(3):
                        await server.submit(Request(
                            params={"scene": "j", "timestep": t},
                            session="sess-j"))
                    # speculation for timestep 3 is rendering right now;
                    # the demand request must coalesce onto it
                    request = Request(params={"scene": "j", "timestep": 3},
                                      session="sess-j")
                    response = await server.submit(request)
                    assert response.status == "ok"
                    assert response.payload == backend.payload_for(request)
                    assert recorder.counter_total(
                        "serving.speculative.hit") == 1
                    assert recorder.counter_total(
                        "serving.speculative.waste") == 0
                    # exactly one render of timestep 3 ever happened
                    t3_calls = [c for c, _ in backend.calls
                                if c.get("timestep") == 3]
                    assert len(t3_calls) == 1
            finally:
                obs.disable()
        run(scenario())

    def test_speculation_respects_budget(self):
        """budget=0 disables speculation entirely."""
        backend = CountingBackend()

        async def scenario():
            recorder = obs.enable(obs.Recorder())
            try:
                async with ServingServer(
                    backend,
                    config=ServingConfig(workers=2, slots=2,
                                         speculation_budget=0),
                    cache=memory_cache(),
                ) as server:
                    for t in range(6):
                        await server.submit(Request(
                            params={"scene": "b", "timestep": t},
                            session="sess-b"))
                    await server.drain_speculation()
                    assert recorder.counter_total(
                        "serving.speculative.started") == 0
                    assert len(backend.calls) == 6
            finally:
                obs.disable()
        run(scenario())
