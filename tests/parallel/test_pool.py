"""Kernel pool behavior: results, crash containment, timeouts, cleanup.

The crash tests are the reason the pool exists: a worker that is
SIGKILLed mid-tile (simulating OOM kills or segfaults in native code)
must surface a clean :class:`KernelPoolError` — never a hang — and
shared-memory segments must be unlinked regardless of how the run
ends.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro import obs
from repro.parallel import ParallelConfig, run_tiles, shared_ndarray
from repro.parallel.pool import attach_ndarray
from repro.resilience import faults
from repro.util.errors import KernelPoolError

pytestmark = pytest.mark.skipif(
    not ParallelConfig(workers=2).enabled,
    reason="POSIX shared memory unavailable",
)

CFG = ParallelConfig(workers=2, min_items=1, timeout=60.0)


# -- module-level tile functions (must be importable in workers) -------------

def _square(payload, task):
    start, stop = task
    return [payload * i * i for i in range(start, stop)]


def _write_band(shm_name, band):
    b0, b1 = band
    with attach_ndarray(shm_name, (16,), np.float64) as out:
        out[b0:b1] = np.arange(b0, b1)
    return b1 - b0


def _raise_on_second(payload, task):
    if task[0] >= 2:
        raise ValueError(f"tile {task} exploded")
    return task


def _sigkill_on_second(payload, task):
    if task[0] >= 2:
        os.kill(os.getpid(), signal.SIGKILL)
    return task


def _sleep_forever(payload, task):
    time.sleep(60.0)
    return task


class TestResults:
    def test_results_in_task_order(self):
        tasks = [(i, i + 1) for i in range(7)]
        results = run_tiles(ParallelConfig(workers=3), _square, tasks, payload=2)
        assert results == [[2 * i * i] for i in range(7)]

    def test_empty_task_list(self):
        assert run_tiles(CFG, _square, []) == []

    def test_shared_memory_output(self):
        with shared_ndarray((16,), np.float64) as (name, out):
            counts = run_tiles(CFG, _write_band, [(0, 7), (7, 16)], payload=name)
            assert counts == [7, 9]
            assert np.array_equal(out, np.arange(16, dtype=np.float64))


class TestFailureContainment:
    def test_worker_exception_raises_kernel_pool_error(self):
        tasks = [(i, i + 1) for i in range(4)]
        with pytest.raises(KernelPoolError, match="ValueError.*exploded"):
            run_tiles(CFG, _raise_on_second, tasks)

    def test_sigkilled_worker_raises_not_hangs(self):
        tasks = [(i, i + 1) for i in range(4)]
        t0 = time.monotonic()
        with pytest.raises(KernelPoolError, match="died with exit code"):
            run_tiles(CFG, _sigkill_on_second, tasks)
        assert time.monotonic() - t0 < 30.0

    def test_pool_timeout(self):
        cfg = ParallelConfig(workers=2, timeout=0.75)
        t0 = time.monotonic()
        with pytest.raises(KernelPoolError, match="timed out"):
            run_tiles(cfg, _sleep_forever, [(0, 1), (1, 2)])
        assert time.monotonic() - t0 < 20.0

    def test_shared_memory_unlinked_after_crash(self):
        from multiprocessing import shared_memory

        leaked_name = None
        with pytest.raises(KernelPoolError):
            with shared_ndarray((8,), np.float32) as (name, _out):
                leaked_name = name
                run_tiles(CFG, _sigkill_on_second, [(i, i + 1) for i in range(4)])
        assert leaked_name is not None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=leaked_name)

    def test_no_workers_left_behind(self):
        import multiprocessing

        with pytest.raises(KernelPoolError):
            run_tiles(ParallelConfig(workers=2, timeout=0.75), _sleep_forever, [(0, 1)])
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not any(
                p.name.startswith("repro-parallel-")
                for p in multiprocessing.active_children()
            ):
                break
            time.sleep(0.05)
        assert not any(
            p.name.startswith("repro-parallel-")
            for p in multiprocessing.active_children()
        )

    def test_no_workers_left_behind_from_executor_thread(self):
        """The serving path runs pools from ThreadPoolExecutor threads;
        a timeout there must tear down just as cleanly as on the main
        thread (the teardown runs in ``finally`` on the calling thread,
        whichever it is)."""
        import multiprocessing
        from concurrent.futures import ThreadPoolExecutor

        def doomed_run():
            run_tiles(
                ParallelConfig(workers=2, timeout=0.75), _sleep_forever, [(0, 1)]
            )

        with ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving-test"
        ) as pool:
            future = pool.submit(doomed_run)
            with pytest.raises(KernelPoolError, match="timed out"):
                future.result(timeout=30.0)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not any(
                p.name.startswith("repro-parallel-")
                for p in multiprocessing.active_children()
            ):
                break
            time.sleep(0.05)
        assert not any(
            p.name.startswith("repro-parallel-")
            for p in multiprocessing.active_children()
        )


class TestTileRetry:
    """Worker death recovery: respawn, serial fallback, poisonous tiles.

    All kills are injected deterministically through the fault
    registry: ``fork`` workers inherit the armed faults, and the
    ``attempt`` label confines each kill to one respawn generation.
    """

    @pytest.fixture(autouse=True)
    def clean_registry(self):
        faults.disarm()
        yield
        faults.disarm()

    def test_killed_worker_tiles_retried_to_completion(self):
        # kill the worker running tile 2, original generation only: the
        # replacement (attempt=1) must finish tile 2 and any collateral
        faults.arm("parallel.tile", "exit", match={"tile": 2, "attempt": 0})
        tasks = [(i, i + 1) for i in range(6)]
        results = run_tiles(
            ParallelConfig(workers=2, min_items=1, respawn_budget=2),
            _square, tasks, payload=3,
        )
        assert results == [[3 * i * i] for i in range(6)]

    def test_retry_result_bitwise_identical_via_shared_memory(self):
        faults.arm("parallel.tile", "exit", match={"tile": 1, "attempt": 0})
        with shared_ndarray((16,), np.float64) as (name, out):
            counts = run_tiles(
                ParallelConfig(workers=2, min_items=1, respawn_budget=2),
                _write_band, [(0, 7), (7, 16)], payload=name,
            )
            assert counts == [7, 9]
            assert np.array_equal(out, np.arange(16, dtype=np.float64))

    def test_serial_fallback_when_budget_exhausted(self):
        # budget 0: no replacement allowed; the parent must run the
        # dead worker's tiles itself (the injected kill targets only
        # attempt 0, so the parent-side check does not fire)
        faults.arm("parallel.tile", "exit", match={"tile": 1, "attempt": 0})
        tasks = [(i, i + 1) for i in range(4)]
        results = run_tiles(
            ParallelConfig(workers=2, min_items=1, respawn_budget=0),
            _square, tasks, payload=2,
        )
        assert results == [[2 * i * i] for i in range(4)]

    def test_poisonous_tile_fails_after_two_deaths(self):
        # the kill matches every generation: original dies, replacement
        # dies on the same tile -> poisonous, clean error, no hang
        faults.arm("parallel.tile", "exit", match={"tile": 0}, times=0)
        t0 = time.monotonic()
        with pytest.raises(KernelPoolError, match="died with exit code"):
            run_tiles(
                ParallelConfig(workers=2, min_items=1, respawn_budget=4),
                _square, [(i, i + 1) for i in range(4)], payload=1,
            )
        assert time.monotonic() - t0 < 30.0

    def test_recovery_metrics_emitted(self):
        recorder = obs.enable(obs.Recorder())
        try:
            faults.arm("parallel.tile", "exit", match={"tile": 2, "attempt": 0})
            run_tiles(
                ParallelConfig(workers=2, min_items=1, respawn_budget=2),
                _square, [(i, i + 1) for i in range(6)], payload=1, label="retry",
            )
        finally:
            obs.disable()
        assert recorder.counter_value(
            "resilience.retries", site="parallel.respawn", kernel="retry"
        ) > 0
        assert any(
            k.name == "resilience.recovery.seconds" for k in recorder.histograms
        )
        # every tile is still counted exactly once
        assert recorder.counter_value("parallel.tiles", kernel="retry") == 6

    def test_respawn_budget_validation(self):
        with pytest.raises(KernelPoolError):
            ParallelConfig(respawn_budget=-1)


class TestObservability:
    def test_tiles_counter_and_spans(self):
        recorder = obs.enable(obs.Recorder())
        try:
            tasks = [(i, i + 1) for i in range(5)]
            run_tiles(CFG, _square, tasks, payload=1, label="unit")
        finally:
            obs.disable()
        assert recorder.counter_value("parallel.tiles", kernel="unit") == 5
        runs = [s for s in recorder.spans if s.name == "parallel.run"]
        tile_spans = [s for s in recorder.spans if s.name == "parallel.tile"]
        assert len(runs) == 1
        assert runs[0].attrs["kernel"] == "unit"
        assert runs[0].attrs["tiles"] == 5
        assert len(tile_spans) == 5
        assert all(s.parent_id == runs[0].span_id for s in tile_spans)
        assert all(s.duration >= 0.0 for s in tile_spans)
        hist = recorder.histograms
        assert any(k.name == "parallel.tile.seconds" for k in hist)


class TestConfig:
    def test_validation(self):
        with pytest.raises(KernelPoolError):
            ParallelConfig(workers=0)
        with pytest.raises(KernelPoolError):
            ParallelConfig(timeout=0.0)
        with pytest.raises(KernelPoolError):
            ParallelConfig(tile_rows=-1)

    def test_wants_floor(self):
        cfg = ParallelConfig(workers=4, min_items=100)
        assert cfg.enabled
        assert not cfg.wants(99)
        assert cfg.wants(100)
        assert not cfg.serial().enabled
        assert not ParallelConfig(workers=1).wants(10**9)

    def test_ambient_config_roundtrip(self):
        from repro.parallel import get_config, use_config

        base = get_config()
        with use_config(ParallelConfig(workers=3)) as cfg:
            assert get_config() is cfg
            assert get_config().workers == 3
        assert get_config() is base
        with use_config(None):
            assert get_config() is base
