"""Serial vs parallel kernel equivalence, with real worker processes.

The render kernels promise *bitwise identical* output at any worker
count; the regrid kernel promises near-exact agreement (einsum
reassociation only).  Fallback behavior (worker floor, ``min_items``)
and the ambient-config wiring through ``Renderer`` / ``Plot3D`` /
``Executor`` are covered here too.
"""

import numpy as np
import pytest

from repro.parallel import ParallelConfig, use_config
from repro.parallel.kernels import (
    parallel_integrate_streamlines,
    parallel_marching_tetrahedra,
    parallel_rasterize,
    parallel_raycast,
)
from repro.rendering.camera import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.image_data import ImageData
from repro.rendering.isosurface import marching_tetrahedra
from repro.rendering.rasterizer import rasterize
from repro.rendering.raycast import raycast_rows, raycast_volume
from repro.rendering.streamline import integrate_streamlines, plane_seed_grid
from repro.rendering.transfer_function import TransferFunction

pytestmark = pytest.mark.skipif(
    not ParallelConfig(workers=2).enabled,
    reason="POSIX shared memory unavailable",
)

CFG = ParallelConfig(workers=4, min_items=1, timeout=120.0)


@pytest.fixture(scope="module")
def volume():
    rng = np.random.default_rng(11)
    vol = ImageData((12, 13, 9), spacing=(1.0, 1.2, 0.8))
    vol.add_array("f", rng.normal(size=(12, 13, 9)))
    vol.add_array("wind", rng.normal(size=(12, 13, 9, 3)), set_active=False)
    return vol


@pytest.fixture(scope="module")
def camera(volume):
    return Camera.fit_bounds(volume.bounds())


@pytest.fixture(scope="module")
def transfer():
    return TransferFunction((-2.5, 2.5), center=0.6, width=0.5)


class TestRaycast:
    def test_bitwise_identical(self, volume, camera, transfer):
        serial = raycast_volume(volume, transfer, camera, 48, 36, array_name="f")
        par = parallel_raycast(volume, transfer, camera, 48, 36, array_name="f", config=CFG)
        assert par.dtype == serial.dtype and par.shape == serial.shape
        assert np.array_equal(serial, par)

    def test_row_band_equals_full_frame_slice(self, volume, camera, transfer):
        """The tiling invariant, without processes: any band is a slice."""
        full = raycast_volume(volume, transfer, camera, 40, 30, array_name="f")
        for row0, row1 in [(0, 7), (7, 19), (19, 30)]:
            band = raycast_rows(
                volume, transfer, camera, 40, 30, row0, row1, array_name="f"
            )
            assert np.array_equal(band, full[row0:row1])

    def test_with_depth_limit(self, volume, camera, transfer):
        depth = np.full((36, 48), np.inf, dtype=np.float32)
        depth[10:20, 15:35] = 4.0
        serial = raycast_volume(
            volume, transfer, camera, 48, 36, array_name="f", depth_limit=depth
        )
        par = parallel_raycast(
            volume, transfer, camera, 48, 36, array_name="f", depth_limit=depth, config=CFG
        )
        assert np.array_equal(serial, par)

    def test_min_items_floor_falls_back(self, volume, camera, transfer):
        cfg = ParallelConfig(workers=4, min_items=10**9)
        out = parallel_raycast(volume, transfer, camera, 16, 12, array_name="f", config=cfg)
        assert np.array_equal(
            out, raycast_volume(volume, transfer, camera, 16, 12, array_name="f")
        )


class TestRasterize:
    def test_bitwise_identical(self, volume, camera):
        surf = marching_tetrahedra(volume, 0.1, "f")
        assert surf.n_triangles > 0
        light = np.array([0.3, -0.4, 0.8])
        fb_serial = Framebuffer(64, 48)
        n_serial = rasterize(surf, camera, fb_serial, light_direction=light)
        fb_par = Framebuffer(64, 48)
        n_par = parallel_rasterize(surf, camera, fb_par, light_direction=light, config=CFG)
        assert n_par == n_serial
        assert np.array_equal(fb_serial.color, fb_par.color)
        assert np.array_equal(fb_serial.depth, fb_par.depth)

    def test_lines_and_tile_rows(self, volume, camera):
        """Polylines across many small row tiles (exercises the band filter)."""
        from repro.rendering.geometry import PolyData

        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 8, size=(60, 3))
        lines = [np.arange(i * 6, (i + 1) * 6) for i in range(10)]
        poly = PolyData(pts, lines=lines)
        cfg = ParallelConfig(workers=4, min_items=1, tile_rows=7, timeout=120.0)
        fb_serial = Framebuffer(48, 40)
        rasterize(poly, camera, fb_serial, line_color=(1.0, 0.5, 0.2), point_size=2)
        fb_par = Framebuffer(48, 40)
        parallel_rasterize(
            poly, camera, fb_par, line_color=(1.0, 0.5, 0.2), point_size=2, config=cfg
        )
        assert np.array_equal(fb_serial.color, fb_par.color)
        assert np.array_equal(fb_serial.depth, fb_par.depth)

    def test_row_range_validation(self, volume, camera):
        surf = marching_tetrahedra(volume, 0.1, "f")
        with pytest.raises(ValueError):
            rasterize(surf, camera, Framebuffer(32, 24), row_range=(10, 5))


class TestIsosurface:
    def test_identical_surface(self, volume):
        serial = marching_tetrahedra(volume, 0.2, "f")
        par = parallel_marching_tetrahedra(volume, 0.2, "f", config=CFG)
        assert par.n_triangles == serial.n_triangles
        assert np.array_equal(serial.points, par.points)
        assert np.array_equal(serial.triangles, par.triangles)
        assert np.array_equal(serial.scalars, par.scalars)

    def test_slab_cells_override(self, volume):
        cfg = ParallelConfig(workers=3, min_items=1, slab_cells=2, timeout=120.0)
        serial = marching_tetrahedra(volume, -0.3, "f")
        par = parallel_marching_tetrahedra(volume, -0.3, "f", config=cfg)
        assert np.array_equal(serial.points, par.points)
        assert np.array_equal(serial.triangles, par.triangles)

    def test_empty_surface(self, volume):
        par = parallel_marching_tetrahedra(volume, 1e9, "f", config=CFG)
        assert par.n_points == 0 and par.n_triangles == 0

    def test_ambient_config_dispatch(self, volume):
        """marching_tetrahedra() itself picks up the ambient config."""
        serial = marching_tetrahedra(volume, 0.0, "f")
        with use_config(CFG):
            ambient = marching_tetrahedra(volume, 0.0, "f")
        assert np.array_equal(serial.points, ambient.points)
        assert np.array_equal(serial.triangles, ambient.triangles)


class TestStreamlines:
    def test_identical_lines(self, volume):
        seeds = plane_seed_grid(volume, 2, 3.0, 6, 6)
        serial = integrate_streamlines(volume, "wind", seeds, max_steps=40)
        par = parallel_integrate_streamlines(
            volume, "wind", seeds, max_steps=40, config=CFG
        )
        assert len(par) == len(serial)
        for a, b in zip(serial, par):
            assert np.array_equal(a, b)

    def test_bidirectional(self, volume):
        seeds = plane_seed_grid(volume, 2, 3.0, 4, 4)
        serial = integrate_streamlines(
            volume, "wind", seeds, max_steps=25, bidirectional=True
        )
        par = parallel_integrate_streamlines(
            volume, "wind", seeds, max_steps=25, bidirectional=True, config=CFG
        )
        assert len(par) == len(serial)
        for a, b in zip(serial, par):
            assert np.array_equal(a, b)


class TestRegrid:
    def _field(self, nlat=36, nlon=72):
        from repro.cdms.grid import uniform_grid
        from repro.cdms.variable import Variable

        grid = uniform_grid(nlat, nlon)
        lat = np.radians(grid.latitude.values)
        lon = np.radians(grid.longitude.values)
        data = (
            280.0
            + 20.0 * np.outer(np.cos(lat), np.ones(nlon))
            + 3.0 * np.outer(np.ones(nlat), np.sin(2 * lon))
        )
        arr = np.ma.MaskedArray(data)
        arr[5:9, 10:20] = np.ma.masked
        return Variable(arr, (grid.latitude, grid.longitude), id="f", units="K")

    def test_conservative_near_exact(self):
        from repro.cdms.grid import uniform_grid
        from repro.cdms.regrid import regrid_conservative

        src = self._field()
        target = uniform_grid(46, 72)
        serial = regrid_conservative(src, target)
        par = regrid_conservative(src, target, parallel=CFG)
        assert np.array_equal(
            np.ma.getmaskarray(serial.data), np.ma.getmaskarray(par.data)
        )
        np.testing.assert_allclose(
            serial.filled(0.0), par.filled(0.0), rtol=1e-12, atol=1e-12
        )

    def test_conservation_holds_in_parallel(self):
        from repro.cdms.grid import uniform_grid
        from repro.cdms.regrid import regrid_conservative

        grid = uniform_grid(36, 72)
        lat = np.radians(grid.latitude.values)
        from repro.cdms.variable import Variable

        data = 280.0 + 20.0 * np.outer(np.cos(lat), np.ones(72))
        src = Variable(
            np.ma.MaskedArray(data), (grid.latitude, grid.longitude), id="f", units="K"
        )

        def area_mean(var):
            g = var.get_grid()
            w = g.area_weights()
            valid = ~np.ma.getmaskarray(var.data)
            ww = np.where(valid, w, 0.0)
            return float((var.filled(0.0) * ww).sum() / ww.sum())

        out = regrid_conservative(src, uniform_grid(18, 36), parallel=CFG)
        assert area_mean(out) == pytest.approx(area_mean(src), rel=1e-10)


class TestWiring:
    def test_renderer_ambient_config(self, volume, camera, transfer):
        """Renderer picks parallelism from the ambient config — no API change."""
        from repro.rendering.scene import Renderer, Scene, VolumeActor

        scene = Scene()
        scene.add_volume(VolumeActor(volume=volume, transfer=transfer, array_name="f"))
        serial_fb = Renderer(40, 30).render(scene, camera)
        with use_config(CFG):
            ambient_fb = Renderer(40, 30).render(scene, camera)
        explicit_fb = Renderer(40, 30, parallel=CFG).render(scene, camera)
        assert np.array_equal(serial_fb.color, ambient_fb.color)
        assert np.array_equal(serial_fb.color, explicit_fb.color)
        assert np.array_equal(serial_fb.depth, explicit_fb.depth)

    def test_executor_parallel_config(self, cell_pipeline):
        """Executor(parallel=...) installs the config around execution."""
        from repro.workflow.executor import Executor

        pipeline, ids = cell_pipeline
        serial_result = Executor(caching=False).execute(pipeline)
        par_result = Executor(
            caching=False, parallel=ParallelConfig(workers=2, min_items=1, timeout=300.0)
        ).execute(pipeline)
        serial_img = serial_result.output(ids["cell"], "image")
        par_img = par_result.output(ids["cell"], "image")
        assert np.array_equal(serial_img, par_img)
