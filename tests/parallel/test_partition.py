"""Property tests for domain partitioning and slab merging.

The partition functions carry the pool's correctness: every parallel
kernel assumes its bands exactly cover the domain with no overlap.
Hypothesis sweeps random sizes; the slab-merge test checks the
isosurface invariant end to end (without processes — the merge logic
is pure).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.partition import index_bands, row_bands, sized_bands, z_slabs
from repro.rendering.image_data import ImageData
from repro.rendering.isosurface import (
    _prepared_values,
    _slab_triangle_points,
    marching_tetrahedra,
)
from repro.util.errors import KernelPoolError


def _assert_exact_cover(bands, n):
    """Bands are ascending, non-empty, disjoint and cover [0, n)."""
    if n == 0:
        assert bands == []
        return
    assert bands[0][0] == 0
    assert bands[-1][1] == n
    for start, stop in bands:
        assert start < stop
    for (_, prev_stop), (next_start, _) in zip(bands, bands[1:]):
        assert next_start == prev_stop


class TestIndexBands:
    @given(n=st.integers(0, 700), k=st.integers(1, 24))
    @settings(max_examples=200)
    def test_exact_cover_no_overlap(self, n, k):
        bands = index_bands(n, k)
        _assert_exact_cover(bands, n)
        assert len(bands) == min(k, n) if n else bands == []

    @given(n=st.integers(1, 700), k=st.integers(1, 24))
    @settings(max_examples=200)
    def test_near_equal_sizes(self, n, k):
        sizes = [stop - start for start, stop in index_bands(n, k)]
        assert max(sizes) - min(sizes) <= 1
        # longer bands come first (deterministic tile → worker mapping)
        assert sizes == sorted(sizes, reverse=True)

    def test_bad_args(self):
        with pytest.raises(KernelPoolError):
            index_bands(-1, 2)
        with pytest.raises(KernelPoolError):
            index_bands(10, 0)


class TestSizedBands:
    @given(n=st.integers(0, 700), size=st.integers(1, 64))
    @settings(max_examples=200)
    def test_exact_cover(self, n, size):
        bands = sized_bands(n, size)
        _assert_exact_cover(bands, n)
        assert all(stop - start <= size for start, stop in bands)
        # all but the last band are full-size
        assert all(stop - start == size for start, stop in bands[:-1])

    def test_bad_args(self):
        with pytest.raises(KernelPoolError):
            sized_bands(5, 0)


class TestKernelPartitions:
    @given(h=st.integers(1, 400), w=st.integers(1, 8), rows=st.integers(0, 32))
    @settings(max_examples=100)
    def test_row_bands_cover(self, h, w, rows):
        _assert_exact_cover(row_bands(h, w, rows), h)

    @given(n=st.integers(1, 400), w=st.integers(1, 8), cells=st.integers(0, 32))
    @settings(max_examples=100)
    def test_z_slabs_cover(self, n, w, cells):
        _assert_exact_cover(z_slabs(n, w, cells), n)


class TestSlabMerge:
    """Isosurface z-slab decomposition (no worker processes involved)."""

    @given(
        nx=st.integers(2, 7),
        ny=st.integers(2, 7),
        nz=st.integers(3, 9),
        workers=st.integers(2, 5),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_slab_merge_matches_serial(self, nx, ny, nz, workers, seed):
        rng = np.random.default_rng(seed)
        volume = ImageData((nx, ny, nz))
        volume.add_array("f", rng.normal(size=(nx, ny, nz)))
        values = _prepared_values(volume.get_array("f"))

        full = _slab_triangle_points(values, 0.0, 0, nz - 1)
        slabs = z_slabs(nz - 1, workers)
        parts = [_slab_triangle_points(values, 0.0, z0, z1) for z0, z1 in slabs]

        # raw triangle count is conserved by the partition
        assert sum(p.shape[0] for p in parts) == full.shape[0]
        merged = (
            np.concatenate([p for p in parts if p.shape[0]])
            if any(p.shape[0] for p in parts)
            else np.zeros((0, 3, 3))
        )
        # the slab-major merge is a permutation of the serial tet-major
        # output: identical multisets of triangle rows
        key = lambda arr: arr.reshape(arr.shape[0], -1)  # noqa: E731
        assert np.array_equal(
            np.unique(key(full), axis=0), np.unique(key(merged), axis=0)
        )
        if full.shape[0]:
            assert np.array_equal(
                np.sort(key(full), axis=0), np.sort(key(merged), axis=0)
            )

    @given(
        nx=st.integers(2, 6),
        ny=st.integers(2, 6),
        nz=st.integers(3, 8),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_finalized_surface_triangle_count(self, nx, ny, nz, seed):
        """Dedup + canonical ordering makes the serial surface equal the
        merged one, triangle for triangle."""
        from repro.parallel import ParallelConfig
        from repro.parallel.kernels import parallel_marching_tetrahedra

        rng = np.random.default_rng(seed)
        volume = ImageData((nx, ny, nz))
        volume.add_array("f", rng.normal(size=(nx, ny, nz)))
        serial = marching_tetrahedra(volume, 0.0, "f")
        # workers=1 → serial fallback inside the kernel; the slab path is
        # exercised (with real processes) in test_kernels.py
        merged = parallel_marching_tetrahedra(
            volume, 0.0, "f", config=ParallelConfig(workers=1)
        )
        assert merged.n_triangles == serial.n_triangles
        assert np.array_equal(merged.points, serial.points)
        assert np.array_equal(merged.triangles, serial.triangles)

    def test_bad_slab_bounds(self):
        values = np.zeros((3, 3, 3))
        from repro.util.errors import RenderingError

        with pytest.raises(RenderingError):
            _slab_triangle_points(values, 0.0, 1, 1)
        with pytest.raises(RenderingError):
            _slab_triangle_points(values, 0.0, 0, 3)
