"""The operation registry and the arithmetic wrappers."""

import numpy as np
import pytest

from repro.cdat import arithmetic
from repro.cdat.registry import OperationRegistry, default_registry
from repro.util.errors import CDATError


class TestRegistry:
    def test_default_registry_is_populated(self):
        reg = default_registry()
        for name in ("add", "area_average", "anomalies", "correlation",
                     "mask_where", "interpolate_to_level", "running_mean"):
            assert name in reg

    def test_default_registry_is_singleton(self):
        assert default_registry() is default_registry()

    def test_unknown_operation_lists_available(self):
        with pytest.raises(CDATError, match="available"):
            default_registry().get("frobnicate")

    def test_duplicate_registration_rejected(self):
        reg = OperationRegistry()
        reg.register("op", lambda v: v)
        with pytest.raises(CDATError):
            reg.register("op", lambda v: v)

    def test_overwrite_flag(self):
        reg = OperationRegistry()
        reg.register("op", lambda v: 1)
        reg.register("op", lambda v: 2, overwrite=True)
        assert reg.get("op")(None) == 2

    def test_description_from_docstring(self):
        reg = OperationRegistry()

        def myop(v):
            """One-line summary.

            More detail here.
            """
            return v

        op = reg.register("myop", myop)
        assert op.description == "One-line summary."

    def test_apply(self, ta):
        out = default_registry().apply("scale", ta, factor=2.0)
        np.testing.assert_allclose(out.filled(0), ta.filled(0) * 2)

    def test_two_variable_arity_recorded(self):
        assert default_registry().get("correlation").n_variables == 2
        assert default_registry().get("sqrt").n_variables == 1

    def test_describe_covers_all(self):
        reg = default_registry()
        assert set(reg.describe()) == set(reg.names())


class TestArithmetic:
    def test_add_subtract_inverse(self, ta):
        back = arithmetic.subtract(arithmetic.add(ta, ta), ta)
        np.testing.assert_allclose(back.filled(0), ta.filled(0), rtol=1e-12)

    def test_sqrt_masks_negatives(self, ta):
        centered = ta - float(ta.mean())
        out = arithmetic.sqrt(centered)
        negatives = np.asarray(centered.data.filled(1.0)) < 0
        assert np.ma.getmaskarray(out.data)[negatives].all()

    def test_log_exp_roundtrip(self, ta):
        out = arithmetic.log(arithmetic.exp(ta * 0.01))
        np.testing.assert_allclose(out.filled(0), (ta * 0.01).filled(0), rtol=1e-5)

    def test_log_masks_nonpositive(self, ta):
        out = arithmetic.log(ta - float(ta.max()))  # all <= 0
        assert np.ma.getmaskarray(out.data).all()

    def test_scale_offset_unit_conversion(self, ta):
        celsius = arithmetic.offset(ta, -273.15)
        assert float(celsius.max()) == pytest.approx(float(ta.max()) - 273.15)
        doubled = arithmetic.scale(ta, 2.0)
        assert float(doubled.max()) == pytest.approx(float(ta.max()) * 2)

    def test_power_default_squares(self, ta):
        out = arithmetic.power(ta)
        np.testing.assert_allclose(out.filled(0), ta.filled(0) ** 2, rtol=1e-6)

    def test_divide_masks_zero(self, ta):
        out = arithmetic.divide(ta, ta * 0.0)
        assert np.ma.getmaskarray(out.data).all()
