"""Weighted averages: correctness against closed forms, mask handling."""

import numpy as np
import pytest

from repro.cdat.averages import (
    area_average,
    axis_average,
    meridional_mean,
    running_mean,
    zonal_mean,
)
from repro.cdms.axis import time_axis
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


def constant_field(value=3.5, nlat=8, nlon=12):
    from repro.cdms.grid import uniform_grid

    grid = uniform_grid(nlat, nlon)
    return Variable(np.full((nlat, nlon), value), (grid.latitude, grid.longitude), id="c")


class TestAreaAverage:
    def test_constant_field(self):
        assert area_average(constant_field(3.5)) == pytest.approx(3.5)

    def test_pure_zonal_structure(self):
        # f = sin(lat): area average over the sphere is 0 by symmetry
        from repro.cdms.grid import uniform_grid

        grid = uniform_grid(32, 8)
        lat = np.radians(grid.latitude.values)
        data = np.sin(lat)[:, None] * np.ones((32, 8))
        var = Variable(data, (grid.latitude, grid.longitude), id="s")
        assert area_average(var) == pytest.approx(0.0, abs=1e-10)

    def test_mask_excluded(self):
        var = constant_field(1.0)
        data = np.ma.MaskedArray(var.filled(0))
        data[0:4] = np.ma.masked  # southern half
        data[4:] = 2.0
        masked = Variable(data, var.axes, id="m")
        assert area_average(masked) == pytest.approx(2.0)

    def test_reduces_extra_dims(self, ta):
        out = area_average(ta)
        assert out.shape == (4, 5)  # (time, level)
        assert out.get_latitude() is None

    def test_requires_grid(self):
        var = Variable(np.zeros(3), (time_axis([0.0, 1.0, 2.0]),))
        with pytest.raises(CDATError):
            area_average(var)

    def test_joint_vs_sequential_masked(self):
        # one masked cell in a row: joint weighting must differ from
        # naive equal-latitude averaging of row means
        from repro.cdms.grid import uniform_grid

        grid = uniform_grid(4, 4)
        data = np.ma.MaskedArray(np.ones((4, 4)))
        data[0, :3] = np.ma.masked
        data[0, 3] = 100.0
        var = Variable(data, (grid.latitude, grid.longitude), id="j")
        joint = area_average(var)
        # the surviving hot cell is downweighted by its single-cell area,
        # not by a whole latitude row
        assert 1.0 < joint < 100.0
        hot_weight = grid.area_weights()[0, 3]
        valid_weight = grid.area_weights().sum() - 3 * hot_weight
        expected = (100.0 * hot_weight + 1.0 * (valid_weight - hot_weight)) / valid_weight
        assert joint == pytest.approx(expected)


class TestAxisAverages:
    def test_zonal_mean_drops_longitude(self, ta):
        out = zonal_mean(ta)
        assert out.get_longitude() is None
        assert out.shape == (4, 5, 16)

    def test_meridional_weighted(self):
        from repro.cdms.grid import uniform_grid

        grid = uniform_grid(16, 4)
        lat = np.radians(grid.latitude.values)
        data = np.sin(lat)[:, None] * np.ones((16, 4))
        var = Variable(data, (grid.latitude, grid.longitude), id="s")
        out = meridional_mean(var)
        np.testing.assert_allclose(np.asarray(out.data), 0.0, atol=1e-10)

    def test_axis_average_time(self, ta):
        out = axis_average(ta, "time")
        assert out.get_time() is None

    def test_all_masked_scalar_raises(self):
        var = Variable(
            np.ma.masked_all((3,)), (time_axis([0.0, 1.0, 2.0]),), id="m"
        )
        with pytest.raises(CDATError):
            axis_average(var, "time")


class TestRunningMean:
    def test_window_must_be_odd(self, ta):
        with pytest.raises(CDATError):
            running_mean(ta, window=4)

    def test_window_longer_than_axis(self, ta):
        with pytest.raises(CDATError):
            running_mean(ta, window=99)

    def test_edges_masked(self, ta):
        out = running_mean(ta, window=3)
        mask = np.ma.getmaskarray(out.data)
        assert mask[0].all() and mask[-1].all()
        assert not mask[1].any()

    def test_constant_series_unchanged_in_core(self):
        t = time_axis(np.arange(10.0))
        var = Variable(np.full(10, 7.0), (t,), id="c")
        out = running_mean(var, window=5)
        np.testing.assert_allclose(np.asarray(out.data[2:8]), 7.0)

    def test_matches_manual_window(self):
        t = time_axis(np.arange(7.0))
        values = np.array([1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0])
        var = Variable(values, (t,), id="x")
        out = running_mean(var, window=3)
        assert float(out.data[1]) == pytest.approx((1 + 2 + 4) / 3)
        assert float(out.data[5]) == pytest.approx((16 + 32 + 64) / 3)

    def test_masked_point_excluded_from_window(self):
        t = time_axis(np.arange(5.0))
        data = np.ma.MaskedArray([1.0, 2.0, 3.0, 4.0, 5.0])
        data[2] = np.ma.masked
        var = Variable(data, (t,), id="m")
        out = running_mean(var, window=3)
        assert float(out.data[1]) == pytest.approx((1 + 2) / 2)

    def test_shape_preserved(self, ta):
        assert running_mean(ta, window=3).shape == ta.shape
