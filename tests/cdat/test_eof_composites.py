"""EOF analysis and composite analysis."""

import numpy as np
import pytest

from repro.cdat.composites import composite_analysis
from repro.cdat.eof import eof_analysis
from repro.cdms.axis import latitude_axis, longitude_axis, time_axis
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


def two_mode_field(n_time=40, nlat=12, nlon=16, seed=3):
    """A field built from two known orthogonal spatial modes + noise."""
    rng = np.random.default_rng(seed)
    lat = latitude_axis(np.linspace(-60, 60, nlat))
    lon = longitude_axis(np.linspace(0, 337.5, nlon))
    glat, glon = np.meshgrid(np.radians(lat.values), np.radians(lon.values),
                             indexing="ij")
    mode1 = np.cos(glon)  # zonal wave 1
    mode2 = np.sin(2 * glat)  # meridional dipole
    pc1 = 3.0 * np.sin(2 * np.pi * np.arange(n_time) / 10.0)
    pc2 = 1.0 * np.cos(2 * np.pi * np.arange(n_time) / 7.0)
    data = (
        pc1[:, None, None] * mode1[None]
        + pc2[:, None, None] * mode2[None]
        + 0.05 * rng.standard_normal((n_time, nlat, nlon))
    )
    t = time_axis(np.arange(n_time) * 30.0)
    return Variable(data, (t, lat, lon), id="field", units="K"), mode1, pc1


class TestEOF:
    def test_requires_time_axis(self):
        var = Variable(np.zeros((2, 2)),
                       (latitude_axis([0.0, 10.0]), longitude_axis([0.0, 10.0])))
        with pytest.raises(CDATError):
            eof_analysis(var)

    def test_leading_mode_recovers_pattern(self):
        var, mode1, pc1 = two_mode_field()
        result = eof_analysis(var, n_modes=2, weighted=False)
        eof1 = result.eofs[0].filled(0.0)
        # pattern correlation with the planted mode (up to scale)
        corr = np.corrcoef(eof1.reshape(-1), mode1.reshape(-1))[0, 1]
        assert abs(corr) > 0.99

    def test_pc_tracks_planted_time_series(self):
        var, _mode1, pc1 = two_mode_field()
        result = eof_analysis(var, n_modes=1, weighted=False)
        pc = np.asarray(result.pcs.data)[0]
        corr = np.corrcoef(pc, pc1)[0, 1]
        assert abs(corr) > 0.99

    def test_variance_fractions_ordered_and_bounded(self):
        var, _, _ = two_mode_field()
        result = eof_analysis(var, n_modes=3)
        vf = result.variance_fraction
        assert np.all(np.diff(vf) <= 1e-12)
        assert 0 < vf.sum() <= 1.0 + 1e-9
        # mode 1 dominates by construction (amplitude 3 vs 1)
        assert vf[0] > 0.7

    def test_sign_convention(self):
        var, _, _ = two_mode_field()
        result = eof_analysis(var, n_modes=2)
        for eof in result.eofs:
            values = eof.filled(0.0)
            peak = np.unravel_index(np.argmax(np.abs(values)), values.shape)
            assert values[peak] > 0

    def test_reconstruction_completeness(self):
        var, _, _ = two_mode_field()
        full = eof_analysis(var, n_modes=40, weighted=False)
        recon = full.reconstruct()
        anomaly = var.filled(0.0) - var.filled(0.0).mean(axis=0, keepdims=True)
        np.testing.assert_allclose(recon, anomaly, atol=1e-8)

    def test_masked_points_stay_masked(self):
        var, _, _ = two_mode_field()
        data = np.ma.MaskedArray(var.filled(0.0))
        data[:, 0, 0] = np.ma.masked
        masked_var = Variable(data, var.axes, id="m")
        result = eof_analysis(masked_var, n_modes=1)
        assert bool(np.ma.getmaskarray(result.eofs[0].data)[0, 0])

    def test_pcs_orthogonal(self):
        var, _, _ = two_mode_field()
        result = eof_analysis(var, n_modes=2, weighted=False)
        pcs = np.asarray(result.pcs.data)
        dot = float(pcs[0] @ pcs[1])
        norms = float(np.linalg.norm(pcs[0]) * np.linalg.norm(pcs[1]))
        assert abs(dot / norms) < 1e-8

    def test_eof_attributes(self):
        var, _, _ = two_mode_field()
        result = eof_analysis(var, n_modes=1)
        assert 0 < result.eofs[0].attributes["variance_fraction"] <= 1


class TestComposites:
    def test_recovers_planted_signal(self):
        var, mode1, pc1 = two_mode_field()
        t = var.get_time()
        index = Variable(pc1, (t,), id="index")
        result = composite_analysis(var, index)
        # high-minus-low composite of a field = pc1*mode1 (+small) is
        # proportional to mode1
        diff = result.difference.filled(0.0)
        corr = np.corrcoef(diff.reshape(-1), mode1.reshape(-1))[0, 1]
        assert corr > 0.99
        assert result.n_high >= 2 and result.n_low >= 2

    def test_significance_marks_signal_regions(self):
        var, mode1, pc1 = two_mode_field()
        index = Variable(pc1, (var.get_time(),), id="index")
        result = composite_analysis(var, index)
        p = result.p_value.filled(1.0)
        # nodes of mode1 (pattern ~ 0) should be less significant than antinodes
        strong = np.abs(mode1) > 0.8
        weak = np.abs(mode1) < 0.1
        assert np.median(p[strong]) < np.median(p[weak])

    def test_significant_difference_masks(self):
        var, _mode1, pc1 = two_mode_field()
        index = Variable(pc1, (var.get_time(),), id="index")
        result = composite_analysis(var, index)
        masked = result.significant_difference(alpha=0.05)
        assert 0.0 < masked.valid_fraction() < 1.0

    def test_time_length_mismatch(self):
        var, _m, pc1 = two_mode_field()
        short = Variable(pc1[:10], (time_axis(np.arange(10.0)),), id="idx")
        with pytest.raises(CDATError):
            composite_analysis(var, short)

    def test_bad_quantiles(self):
        var, _m, pc1 = two_mode_field()
        index = Variable(pc1, (var.get_time(),), id="idx")
        with pytest.raises(CDATError):
            composite_analysis(var, index, high_quantile=0.2, low_quantile=0.8)

    def test_eof_to_composite_pipeline(self):
        """The natural chain: EOF → leading PC → composite on it."""
        var, mode1, _pc1 = two_mode_field()
        eof = eof_analysis(var, n_modes=1)
        pc = Variable(np.asarray(eof.pcs.data)[0], (var.get_time(),), id="pc1")
        result = composite_analysis(var, pc)
        diff = result.difference.filled(0.0)
        corr = np.corrcoef(diff.reshape(-1), mode1.reshape(-1))[0, 1]
        assert abs(corr) > 0.98
