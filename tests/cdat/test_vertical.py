"""Vertical operations: mass weighting, level interpolation, integrals."""

import numpy as np
import pytest

from repro.cdat.vertical import interpolate_to_level, pressure_weighted_mean, vertical_integral
from repro.cdms.axis import latitude_axis, level_axis
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


@pytest.fixture()
def column():
    """A (level, lat) variable linear in pressure: v = p / 100."""
    lev = level_axis([1000.0, 850.0, 500.0, 250.0, 100.0])
    lat = latitude_axis([0.0, 10.0])
    data = (lev.values / 100.0)[:, None] * np.ones((5, 2))
    return Variable(data, (lev, lat), id="col", units="K")


class TestPressureWeightedMean:
    def test_constant_profile(self):
        lev = level_axis([1000.0, 500.0, 100.0])
        lat = latitude_axis([0.0])
        var = Variable(np.full((3, 1), 7.0), (lev, lat), id="c")
        out = pressure_weighted_mean(var)
        assert float(out.data[0]) == pytest.approx(7.0)

    def test_weights_favor_thick_layers(self, column):
        out = pressure_weighted_mean(column)
        # thickness-weighted mean of p/100 = mean pressure / 100, which
        # is larger than the unweighted level mean for this spacing
        unweighted = float(np.mean(column.filled(0)[:, 0]))
        assert float(out.data[0]) > unweighted

    def test_requires_level_axis(self, ta):
        flat = ta(level=500).squeeze()
        with pytest.raises(CDATError):
            pressure_weighted_mean(flat)

    def test_drops_level_axis(self, ta):
        out = pressure_weighted_mean(ta)
        assert out.get_level() is None


class TestInterpolateToLevel:
    def test_exact_level_passthrough(self, column):
        out = interpolate_to_level(column, 500.0)
        assert float(out.data[0]) == pytest.approx(5.0)

    def test_linear_between_levels(self, column):
        out = interpolate_to_level(column, 675.0)  # midway 850 ↔ 500
        assert float(out.data[0]) == pytest.approx(6.75)

    def test_out_of_range_raises(self, column):
        with pytest.raises(CDATError):
            interpolate_to_level(column, 50.0)

    def test_level_axis_consumed(self, ta):
        out = interpolate_to_level(ta, 500.0)
        assert out.ndim == ta.ndim - 1
        assert out.get_level() is None

    def test_matches_direct_selection(self, ta):
        interp = interpolate_to_level(ta, 500.0)
        selected = ta(level=500.0).squeeze()
        np.testing.assert_allclose(interp.filled(0), selected.filled(0), rtol=1e-6)


class TestVerticalIntegral:
    def test_constant_profile_integrates_thickness(self):
        lev = level_axis([1000.0, 800.0, 600.0])
        lat = latitude_axis([0.0])
        var = Variable(np.full((3, 1), 2.0), (lev, lat), id="c")
        out = vertical_integral(var)
        total_thickness = lev.cell_widths().sum()
        assert float(out.data[0]) == pytest.approx(2.0 * total_thickness)

    def test_annotates_integrated_axis(self, ta):
        out = vertical_integral(ta)
        assert out.attributes["integrated_over"] == "level"

    def test_fully_masked_column_masked(self):
        lev = level_axis([1000.0, 500.0])
        lat = latitude_axis([0.0, 10.0])
        data = np.ma.MaskedArray(np.ones((2, 2)))
        data[:, 1] = np.ma.masked
        var = Variable(data, (lev, lat), id="m")
        out = vertical_integral(var)
        mask = np.ma.getmaskarray(out.data)
        assert not mask[0] and mask[1]
