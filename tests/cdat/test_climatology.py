"""Climatologies and anomalies: grouping by calendar month, identities."""

import numpy as np
import pytest

from repro.cdat.climatology import (
    annual_mean,
    anomalies,
    monthly_climatology,
    seasonal_climatology,
)
from repro.cdms.axis import latitude_axis, longitude_axis, time_axis
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


def monthly_series(n_years=3, base=10.0, cycle_amp=5.0):
    """A variable whose value is base + amp*cos(month phase), exactly periodic."""
    n = 12 * n_years
    # 365-day calendar with mid-month sampling keeps months aligned
    t = time_axis(np.arange(n) * (365.0 / 12) + 15.0, calendar="noleap")
    months = np.arange(n) % 12
    data = base + cycle_amp * np.cos(2 * np.pi * months / 12)
    lat = latitude_axis([0.0])
    lon = longitude_axis([0.0])
    return Variable(
        data.reshape(n, 1, 1), (t, lat, lon), id="cyc", units="K"
    ), months


class TestMonthlyClimatology:
    def test_shape_and_axis(self, ta):
        clim = monthly_climatology(ta)
        assert clim.shape[0] == 12
        assert clim.axes[0].id == "month"

    def test_periodic_series_recovered(self):
        var, months = monthly_series()
        clim = monthly_climatology(var)
        # the climatology of an exactly periodic series is the cycle itself
        expected = 10.0 + 5.0 * np.cos(2 * np.pi * np.arange(12) / 12)
        got = np.asarray(clim.data).reshape(12)
        # month grouping is calendar-based; verify each value appears
        np.testing.assert_allclose(sorted(got), sorted(expected), atol=1e-6)

    def test_missing_months_masked(self):
        # 4 time steps spanning Jan-Apr only → Aug bucket empty
        t = time_axis(np.arange(4) * 30.0 + 15.0, calendar="noleap")
        var = Variable(
            np.ones((4, 1)), (t, latitude_axis([0.0])), id="x"
        )
        clim = monthly_climatology(var)
        mask = np.ma.getmaskarray(clim.data)
        assert mask.any() and not mask.all()

    def test_requires_time_axis(self):
        var = Variable(np.zeros(2), (latitude_axis([0.0, 1.0]),))
        with pytest.raises(CDATError):
            monthly_climatology(var)


class TestAnomalies:
    def test_shape_preserved(self, ta):
        assert anomalies(ta).shape == ta.shape

    def test_periodic_series_anomaly_zero(self):
        var, _ = monthly_series()
        anom = anomalies(var)
        np.testing.assert_allclose(np.asarray(anom.data), 0.0, atol=1e-6)

    def test_trend_survives_anomaly(self):
        var, _ = monthly_series()
        trended = var + Variable(
            np.linspace(0, 6, 36).reshape(36, 1, 1), var.axes, id="tr"
        )
        anom = anomalies(trended)
        data = np.asarray(anom.data).reshape(-1)
        # anomalies of a rising series rise within each month bucket
        assert data[-1] > data[0]

    def test_monthly_mean_of_anomalies_is_zero(self, ta):
        anom = anomalies(ta)
        clim_of_anom = monthly_climatology(anom)
        valid = ~np.ma.getmaskarray(clim_of_anom.data)
        np.testing.assert_allclose(
            np.asarray(clim_of_anom.data)[valid], 0.0, atol=1e-5
        )


class TestSeasonalAndAnnual:
    def test_seasonal_shape(self):
        var, _ = monthly_series()
        seas = seasonal_climatology(var)
        assert seas.shape[0] == 4
        assert seas.attributes["season_order"] == ["DJF", "MAM", "JJA", "SON"]

    def test_seasonal_values_average_member_months(self):
        var, months = monthly_series()
        seas = seasonal_climatology(var)
        jja = float(np.asarray(seas.data)[2, 0, 0])
        member = 10.0 + 5.0 * np.cos(2 * np.pi * np.array([5, 6, 7]) / 12)
        assert jja == pytest.approx(member.mean(), abs=1e-6)

    def test_annual_mean_axis_is_years(self):
        var, _ = monthly_series(n_years=3)
        annual = annual_mean(var)
        assert annual.shape[0] == 3
        assert annual.axes[0].id == "year"

    def test_annual_mean_of_periodic_series_constant(self):
        var, _ = monthly_series(n_years=3)
        annual = annual_mean(var)
        values = np.asarray(annual.data).reshape(-1)
        np.testing.assert_allclose(values, values[0], atol=1e-6)
