"""Conditioned comparisons: masking semantics, region summaries."""

import numpy as np
import pytest

from repro.cdat.conditioned import compare_where, keep_where, mask_where, masked_fraction
from repro.util.errors import CDATError


class TestMaskWhere:
    def test_masks_condition_true(self, ta):
        cond = ta > float(ta.mean())
        out = mask_where(ta, cond)
        truth = np.asarray(cond.data.filled(0)) != 0
        assert np.ma.getmaskarray(out.data)[truth].all()

    def test_keeps_condition_false(self, ta):
        cond = ta > float(ta.max()) + 1.0  # nowhere true
        out = mask_where(ta, cond)
        np.testing.assert_array_equal(
            np.ma.getmaskarray(out.data), np.ma.getmaskarray(ta.data)
        )

    def test_keep_is_complement(self, ta):
        cond = ta > float(ta.mean())
        masked = mask_where(ta, cond)
        kept = keep_where(ta, cond)
        overlap = ~np.ma.getmaskarray(masked.data) & ~np.ma.getmaskarray(kept.data)
        assert not overlap.any()

    def test_shape_mismatch(self, ta):
        with pytest.raises(CDATError):
            mask_where(ta, (ta > 0)[0:1])

    def test_original_untouched(self, ta):
        before = ta.valid_fraction()
        mask_where(ta, ta > float(ta.mean()))
        assert ta.valid_fraction() == before


class TestCompareWhere:
    def test_identical_fields(self, ta):
        cond = ta > float(ta.mean())
        result = compare_where(ta, ta, cond)
        assert result["mean_difference"] == pytest.approx(0.0)
        assert result["rms_difference"] == pytest.approx(0.0, abs=1e-9)
        assert result["count"] > 0

    def test_offset_detected(self, ta):
        cond = ta > float(ta.mean())
        result = compare_where(ta, ta + 1.5, cond)
        assert result["mean_difference"] == pytest.approx(-1.5)
        assert result["rms_difference"] == pytest.approx(1.5)

    def test_correlation_in_summary(self, ta):
        cond = ta > float(ta.mean())
        result = compare_where(ta, ta * 1.1, cond)
        assert result["correlation"] == pytest.approx(1.0)

    def test_empty_region_raises(self, ta):
        cond = ta > float(ta.max()) + 1.0
        with pytest.raises(CDATError):
            compare_where(ta, ta, cond)


def test_masked_fraction(simple_variable):
    assert masked_fraction(simple_variable) == pytest.approx(1.0 / simple_variable.size)
