"""Spectral analysis: wavenumber recovery, propagation direction."""

import numpy as np
import pytest

from repro.cdat.spectral import dominant_wave, space_time_power, zonal_power_spectrum
from repro.cdms.axis import latitude_axis, uniform_longitude
from repro.cdms.variable import Variable
from repro.data.fields import equatorial_wave
from repro.util.errors import CDATError


def single_mode_field(wavenumber=3, nlon=48):
    lon = uniform_longitude(nlon)
    lat = latitude_axis([0.0])
    data = np.cos(wavenumber * np.radians(lon.values))[None, :]
    return Variable(data, (lat, lon), id="mode")


class TestZonalSpectrum:
    def test_single_mode_peak(self):
        spectrum = zonal_power_spectrum(single_mode_field(wavenumber=3))
        power = np.asarray(spectrum.data)
        assert int(np.argmax(power)) == 3

    def test_parseval_like_normalization(self):
        var = single_mode_field(wavenumber=5)
        spectrum = zonal_power_spectrum(var)
        # cos wave of amplitude 1 → variance 1/2 concentrated at k=5
        assert float(np.asarray(spectrum.data)[5]) == pytest.approx(0.5, rel=1e-6)

    def test_axis_is_wavenumber(self):
        spectrum = zonal_power_spectrum(single_mode_field())
        assert spectrum.axes[0].id == "wavenumber"

    def test_mean_goes_to_wavenumber_zero(self):
        var = single_mode_field(wavenumber=2) + 10.0
        spectrum = zonal_power_spectrum(var)
        assert float(np.asarray(spectrum.data)[0]) == pytest.approx(100.0, rel=1e-6)


class TestSpaceTimePower:
    def test_requires_2d(self, ta):
        with pytest.raises(CDATError):
            space_time_power(ta)

    def test_power_shape(self):
        wave = equatorial_wave(nlon=36, nlat=8, ntime=30, seed="st")
        eq = wave(latitude=0.0).squeeze()
        power, wavenumbers, freqs = space_time_power(eq)
        assert power.shape == (30, 36)
        assert wavenumbers.shape == (36,)
        assert freqs.shape == (30,)


class TestDominantWave:
    @pytest.mark.parametrize("wavenumber,period", [(3, 10.0), (5, 20.0)])
    def test_recovers_wavenumber(self, wavenumber, period):
        wave = equatorial_wave(
            nlon=48, nlat=8, ntime=60, wavenumber=wavenumber,
            period_steps=period, seed="dom",
        )
        eq = wave(latitude=0.0).squeeze()
        result = dominant_wave(eq)
        assert result["wavenumber"] == wavenumber
        assert result["frequency"] == pytest.approx(1.0 / period, rel=0.2)

    def test_eastward_direction(self):
        wave = equatorial_wave(nlon=48, nlat=8, ntime=60, eastward=True, seed="e")
        result = dominant_wave(wave(latitude=0.0).squeeze())
        assert result["direction"] == 1.0

    def test_westward_direction(self):
        wave = equatorial_wave(nlon=48, nlat=8, ntime=60, eastward=False, seed="w")
        result = dominant_wave(wave(latitude=0.0).squeeze())
        assert result["direction"] == -1.0

    def test_phase_speed_matches_construction(self):
        wavenumber, period = 4, 30.0
        wave = equatorial_wave(
            nlon=72, nlat=8, ntime=90, wavenumber=wavenumber,
            period_steps=period, eastward=True, seed="ps",
        )
        result = dominant_wave(wave(latitude=0.0).squeeze())
        expected = 360.0 / wavenumber / period  # deg/step eastward
        assert result["phase_speed_deg_per_step"] == pytest.approx(expected, rel=0.25)
