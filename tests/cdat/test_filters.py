"""Filters: spatial smoothing, detrending, lag correlation, band-pass."""

import numpy as np
import pytest

from repro.cdat.filters import bandpass_running_mean, detrend, lag_correlation, spatial_smooth
from repro.cdms.axis import latitude_axis, time_axis, uniform_latitude, uniform_longitude
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


class TestSpatialSmooth:
    def make_noisy(self, nlat=24, nlon=36, seed=0):
        rng = np.random.default_rng(seed)
        lat = uniform_latitude(nlat)
        lon = uniform_longitude(nlon)
        smooth_part = np.outer(np.cos(np.radians(lat.values)),
                               np.sin(2 * np.radians(lon.values)))
        noise = rng.standard_normal((nlat, nlon))
        return Variable(smooth_part + noise, (lat, lon), id="f"), smooth_part, noise

    def test_reduces_noise_variance(self):
        var, smooth_part, _ = self.make_noisy()
        out = spatial_smooth(var, sigma_points=2.0)
        residual_before = float(np.var(var.filled(0) - smooth_part))
        residual_after = float(np.var(out.filled(0) - smooth_part))
        assert residual_after < residual_before * 0.5

    def test_constant_field_unchanged(self):
        lat = uniform_latitude(8)
        lon = uniform_longitude(12)
        var = Variable(np.full((8, 12), 5.0), (lat, lon), id="c")
        out = spatial_smooth(var, 1.5)
        np.testing.assert_allclose(out.filled(0), 5.0, rtol=1e-9)

    def test_mask_not_smeared(self):
        var, _, _ = self.make_noisy()
        data = np.ma.MaskedArray(var.filled(0))
        data[10:14, 10:20] = np.ma.masked
        masked = Variable(data, var.axes, id="m")
        out = spatial_smooth(masked, 1.0)
        # the hole stays masked at its center
        assert bool(np.ma.getmaskarray(out.data)[12, 15])
        # far-away values are finite and close to the unmasked smooth
        assert np.isfinite(out.filled(np.nan)[0]).all()

    def test_longitude_periodicity(self):
        # a spike at lon index 0 must leak to the last column (wrap)
        lat = uniform_latitude(6)
        lon = uniform_longitude(24)
        data = np.zeros((6, 24))
        data[3, 0] = 100.0
        var = Variable(data, (lat, lon), id="s")
        out = spatial_smooth(var, sigma_points=1.5)
        assert out.filled(0)[3, -1] > 0.5

    def test_bad_sigma(self, ta):
        with pytest.raises(CDATError):
            spatial_smooth(ta, 0.0)

    def test_requires_grid(self):
        var = Variable(np.zeros(4), (time_axis(np.arange(4.0)),), id="t")
        with pytest.raises(CDATError):
            spatial_smooth(var)


class TestDetrend:
    def test_removes_linear_trend_exactly(self):
        t = time_axis(np.arange(30.0))
        lat = latitude_axis([0.0, 10.0])
        trend = np.array([0.5, -0.2])
        data = trend[None, :] * np.arange(30.0)[:, None] + 7.0
        var = Variable(data, (t, lat), id="x")
        out = detrend(var)
        np.testing.assert_allclose(np.asarray(out.data), 0.0, atol=1e-10)

    def test_preserves_oscillation(self):
        t = time_axis(np.arange(60.0))
        lat = latitude_axis([0.0])
        wave = np.sin(2 * np.pi * np.arange(60.0) / 12)
        data = (wave + 0.1 * np.arange(60.0)).reshape(60, 1)
        var = Variable(data, (t, lat), id="x")
        out = detrend(var)
        recovered = np.asarray(out.data).reshape(-1)
        corr = np.corrcoef(recovered, wave)[0, 1]
        # the removed straight line slightly leaks into an incomplete
        # number of wave cycles; > 0.95 still means the wave survived
        assert corr > 0.95


class TestLagCorrelation:
    def series(self, values):
        t = time_axis(np.arange(len(values), dtype=float))
        return Variable(np.asarray(values, dtype=float), (t,), id="s")

    def test_self_correlation_peaks_at_zero(self):
        rng = np.random.default_rng(1)
        s = self.series(rng.standard_normal(50))
        lags, corr = lag_correlation(s, s, max_lag=5)
        assert corr[5] == pytest.approx(1.0)
        assert np.nanargmax(corr) == 5

    def test_shifted_series_peak_at_shift(self):
        rng = np.random.default_rng(2)
        base = rng.standard_normal(80)
        a = self.series(base)
        b = self.series(np.roll(base, 4))  # b lags a by 4
        lags, corr = lag_correlation(a, b, max_lag=8)
        assert lags[int(np.nanargmax(corr))] == 4

    def test_length_mismatch(self):
        with pytest.raises(CDATError):
            lag_correlation(self.series([1, 2, 3]), self.series([1, 2]))

    def test_bad_max_lag(self):
        s = self.series([1.0, 2.0, 3.0])
        with pytest.raises(CDATError):
            lag_correlation(s, s, max_lag=10)

    def test_constant_series_nan(self):
        s = self.series(np.ones(20))
        _, corr = lag_correlation(s, s, max_lag=2)
        assert np.isnan(corr).all()


class TestBandpass:
    def test_isolates_mid_frequency(self):
        t = time_axis(np.arange(120.0))
        lat = latitude_axis([0.0])
        slow = np.sin(2 * np.pi * np.arange(120.0) / 60)  # period 60
        mid = np.sin(2 * np.pi * np.arange(120.0) / 12)  # period 12
        fast = np.sin(2 * np.pi * np.arange(120.0) / 2.5)  # period 2.5
        var = Variable((slow + mid + fast).reshape(120, 1), (t, lat), id="x")
        out = bandpass_running_mean(var, short_window=3, long_window=31)
        valid = ~np.ma.getmaskarray(out.data).reshape(-1)
        recovered = np.asarray(out.data).reshape(-1)[valid]
        target = mid[valid]
        corr = np.corrcoef(recovered, target)[0, 1]
        # running-mean differences are leaky filters; 0.8 already means
        # the mid band dominates the slow and fast bands
        assert corr > 0.8

    def test_window_order_enforced(self, ta):
        with pytest.raises(CDATError):
            bandpass_running_mean(ta, short_window=11, long_window=3)
