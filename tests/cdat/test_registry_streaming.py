"""Registry metadata, error hygiene, and cross-plane result caching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.config import CacheConfig, use_config
from repro.cache.store import get_cache
from repro.cdat.registry import OperationRegistry, default_registry
from repro.cdms.axis import latitude_axis, longitude_axis, time_axis
from repro.cdms.dataset import open_dataset
from repro.cdms.storage import write_cdz
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


def make_variable(seed=9):
    rng = np.random.default_rng(seed)
    data = np.ma.MaskedArray(rng.normal(280.0, 5.0, size=(6, 3, 4)))
    axes = (
        time_axis(np.arange(6) * 30.0 + 15.0, calendar="noleap"),
        latitude_axis([-10.0, 0.0, 10.0]),
        longitude_axis([0.0, 90.0, 180.0, 270.0]),
    )
    return Variable(data, axes, id="ta", units="K")


class TestErrorHygiene:
    def test_unknown_operation_raises_without_chained_context(self):
        """The KeyError lookup must not leak into the user-facing error."""
        with pytest.raises(CDATError) as excinfo:
            default_registry().get("no_such_operation")
        assert excinfo.value.__cause__ is None
        assert excinfo.value.__suppress_context__

    def test_unknown_operation_lists_available_names(self):
        with pytest.raises(CDATError, match="available"):
            default_registry().get("no_such_operation")


class TestStreamingMetadata:
    def test_reductions_are_marked_streaming(self):
        reg = default_registry()
        streaming = set(reg.streaming_names())
        assert {"monthly_climatology", "zonal_mean", "running_mean",
                "variance", "compare_where"} <= streaming
        # the documented exceptions stay unmarked
        assert "percentile" not in streaming
        assert "add" not in streaming

    def test_register_default_is_not_streaming(self):
        reg = OperationRegistry()
        op = reg.register("f", lambda v: v)
        assert op.streaming is False
        op2 = reg.register("g", lambda v: v, streaming=True)
        assert op2.streaming is True
        assert reg.streaming_names() == ["g"]


class TestApplyCached:
    def test_disabled_cache_is_passthrough(self):
        calls = []
        reg = OperationRegistry()
        reg.register("probe", lambda v: calls.append(1) or v)
        var = make_variable()
        with use_config(CacheConfig(enabled=False)):
            reg.apply_cached("probe", var)
            reg.apply_cached("probe", var)
        assert len(calls) == 2  # nothing memoised, nothing digested

    def test_repeat_call_hits_and_result_is_mutation_immune(self):
        reg = default_registry()
        var = make_variable()
        with use_config(CacheConfig(enabled=True, use_disk=False)):
            first = reg.apply_cached("zonal_mean", var)
            first.id = "mutated"
            first.data[:] = np.ma.masked
            second = reg.apply_cached("zonal_mean", var)
        assert second.id != "mutated"
        assert not np.ma.getmaskarray(second.data).all()

    def test_kwargs_distinguish_entries(self):
        reg = default_registry()
        var = make_variable()
        with use_config(CacheConfig(enabled=True, use_disk=False)):
            p25 = reg.apply_cached("percentile", var, q=25.0)
            p75 = reg.apply_cached("percentile", var, q=75.0)
        assert not np.array_equal(
            np.asarray(p25.data.filled(0)), np.asarray(p75.data.filled(0))
        )

    def test_eager_and_streamed_runs_share_one_entry(self, tmp_path):
        path = tmp_path / "share.cdz"
        write_cdz(path, [make_variable()], dataset_id="share", version=2,
                  chunk_timesteps=2)
        eager = open_dataset(path, streaming="off").get_variable("ta")
        lazy = open_dataset(path, streaming="on").get_variable("ta")
        reg = default_registry()
        with use_config(CacheConfig(enabled=True, use_disk=False)) as config:
            cache = get_cache(config)
            before = cache.hits
            from_eager = reg.apply_cached("monthly_climatology", eager)
            from_lazy = reg.apply_cached("monthly_climatology", lazy)
            assert cache.hits > before  # the streamed run reused the entry
        np.testing.assert_array_equal(
            np.asarray(from_eager.data.filled(0)),
            np.asarray(from_lazy.data.filled(0)),
        )

    def test_uncacheable_results_pass_through(self):
        reg = OperationRegistry()
        reg.register("weird", lambda v: object())
        var = make_variable()
        with use_config(CacheConfig(enabled=True, use_disk=False)):
            assert reg.apply_cached("weird", var) is not None
            assert reg.apply_cached("weird", var) is not None
