"""Differential byte-identity suite for out-of-core reductions.

Every registered (non-arithmetic) operation runs twice over the same
saved v2 container — once on the eagerly loaded variable, once on the
lazy streaming twin — and the results must digest identically
(:func:`repro.cache.keys.digest` hashes filled payload bytes, mask
bytes, axes and metadata, so equal digests mean byte-identical
results).  A coverage guard fails the suite when a newly registered
operation has no differential case.

Edge cases ride alongside: a masked region, a fully masked time step,
a single-timestep container, an all-masked variable, and running means
whose windows straddle slab seams.  The capstone pins the memory side:
a monthly climatology over a container ~4x the streaming budget
completes under budget without ever materializing the input.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cache.keys import digest
from repro.cdat.registry import default_registry
from repro.cdms.axis import level_axis, time_axis, uniform_latitude, uniform_longitude
from repro.cdms.dataset import open_dataset
from repro.cdms.storage import write_cdz
from repro.cdms.variable import Variable
from repro.streaming.config import StreamingConfig
from repro.util.errors import CDATError

NTIME, NLEV, NLAT, NLON = 24, 4, 6, 8

#: registry entries that are elementwise arithmetic, not reductions —
#: exempt from the differential sweep
ARITHMETIC = {
    "add", "subtract", "multiply", "divide", "power", "sqrt", "log",
    "exp", "abs", "scale", "offset",
}


def make_fields(ntime=NTIME, nlev=NLEV, nlat=NLAT, nlon=NLON, seed=3, mask="region"):
    """Two same-shape (time, lev, lat, lon) fields with controlled masking."""
    rng = np.random.default_rng(seed)
    axes = (
        time_axis(np.arange(ntime) * (365.0 / 12) + 15.0, calendar="noleap"),
        level_axis(np.linspace(1000.0, 250.0, nlev).tolist()),
        uniform_latitude(nlat),
        uniform_longitude(nlon),
    )

    def field(var_id, offset):
        data = np.ma.MaskedArray(
            rng.normal(280.0 + offset, 10.0, size=(ntime, nlev, nlat, nlon))
        )
        if mask == "region":
            data[1, 0, :2, :3] = np.ma.masked
            data[ntime - 2, nlev - 1, nlat - 1, :] = np.ma.masked
        elif mask == "step":
            data[2] = np.ma.masked  # one fully masked time step
        elif mask == "all":
            data[:] = np.ma.masked
        return Variable(data, axes, id=var_id, units="K")

    return field("ta", 0.0), field("tb", 5.0)


def open_planes(tmp_path, variables, chunk_timesteps=None):
    """Save once, open twice: (eager dataset, lazy streaming dataset)."""
    path = tmp_path / "redux.cdz"
    write_cdz(
        path, list(variables), dataset_id="redux", version=2,
        chunk_timesteps=chunk_timesteps,
    )
    return open_dataset(path, streaming="off"), open_dataset(path, streaming="on")


#: operation name -> (extra kwargs, condition needed as trailing arg)
CASES = {
    "area_average": ({}, False),
    "zonal_mean": ({}, False),
    "meridional_mean": ({}, False),
    "axis_average": ({"axis": "time"}, False),
    "running_mean": ({"axis": "time", "window": 5}, False),
    "monthly_climatology": ({}, False),
    "seasonal_climatology": ({}, False),
    "anomalies": ({}, False),
    "annual_mean": ({}, False),
    "correlation": ({}, False),
    "covariance": ({}, False),
    "rms_difference": ({}, False),
    "linear_trend": ({"axis": "time"}, False),
    "standardize": ({"axis": "time"}, False),
    "variance": ({"axis": "time"}, False),
    "percentile": ({"q": 75.0, "axis": "time"}, False),
    "mask_where": ({}, False),
    "compare_where": ({}, True),
    "pressure_weighted_mean": ({}, False),
    "interpolate_to_level": ({"level": 500.0}, False),
    "vertical_integral": ({}, False),
    "spatial_smooth": ({"sigma_points": 1.0}, False),
    "detrend": ({"axis": "time"}, False),
    "bandpass": ({"short_window": 3, "long_window": 7}, False),
}


def test_every_registered_reduction_has_a_case():
    names = set(default_registry().names()) - ARITHMETIC
    missing = names - set(CASES)
    assert not missing, f"reductions without a differential case: {sorted(missing)}"


def run_case(name, dataset):
    reg = default_registry()
    op = reg.get(name)
    ta = dataset.get_variable("ta")
    args = [ta]
    if op.n_variables >= 2:
        if name in ("mask_where",):
            # the condition is a (tiny to build) eager truth variable
            args.append(_condition(dataset))
        else:
            args.append(dataset.get_variable("tb"))
    kwargs, wants_condition = CASES[name]
    if wants_condition:
        args.append(_condition(dataset))
    return reg.apply(name, *args, **kwargs)


def _condition(dataset):
    # an eager condition shared by both planes: warm in the first field
    eager = dataset.get_variable("ta")
    truth = (np.arange(NTIME * NLEV * NLAT * NLON) % 3 == 0).astype(np.float64)
    return Variable(
        truth.reshape(NTIME, NLEV, NLAT, NLON), eager.axes, id="cond"
    )


@pytest.fixture(scope="module")
def planes(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("redux")
    return open_planes(tmp, make_fields(), chunk_timesteps=5)


@pytest.mark.parametrize("name", sorted(CASES))
def test_reduction_byte_identical_eager_vs_streamed(name, planes):
    eager_ds, lazy_ds = planes
    obs.set_recorder(obs.Recorder())
    obs.enable()
    try:
        expected = run_case(name, eager_ds)
        streamed = run_case(name, lazy_ds)
        recorder = obs.get_recorder()
        full = recorder.counter_total("streaming.materialize.full")
    finally:
        obs.disable()
        obs.set_recorder(obs.Recorder())
    assert digest(expected) == digest(streamed)
    # no reduction may fall through the whole-array escape hatch; the
    # explicit gathers (percentile) go through the counted materialize()
    assert full == 0, f"{name} materialized a streamed input via ._data"


def test_kernel_reductions_account_slabs_and_peak_resident(planes):
    _eager_ds, lazy_ds = planes
    obs.set_recorder(obs.Recorder())
    obs.enable()
    try:
        run_case("monthly_climatology", lazy_ds)
        run_case("variance", lazy_ds)
        recorder = obs.get_recorder()
        slabs = recorder.counter_total("cdat.slabs")
        peaks = [
            v for k, v in recorder.gauges.items()
            if k.name == "cdat.peak_resident.bytes"
        ]
    finally:
        obs.disable()
        obs.set_recorder(obs.Recorder())
    assert slabs >= lazy_ds.get_variable("ta").slab_count()
    assert peaks and all(v > 0 for v in peaks)


# -- edge cases --------------------------------------------------------------


EDGE_OPS = (
    "monthly_climatology", "annual_mean", "running_mean", "zonal_mean",
    "variance", "linear_trend", "standardize",
)


@pytest.mark.parametrize("name", EDGE_OPS)
def test_fully_masked_time_step_matches(tmp_path, name):
    eager_ds, lazy_ds = open_planes(
        tmp_path, make_fields(mask="step"), chunk_timesteps=5
    )
    assert digest(run_case(name, eager_ds)) == digest(run_case(name, lazy_ds))


def test_all_masked_variable_matches_or_raises_identically(tmp_path):
    eager_ds, lazy_ds = open_planes(
        tmp_path, make_fields(mask="all"), chunk_timesteps=5
    )
    # per-point reductions produce identically all-masked outputs
    assert digest(run_case("zonal_mean", eager_ds)) == digest(
        run_case("zonal_mean", lazy_ds)
    )
    # scalar statistics refuse on both planes with the same error
    for ds in (eager_ds, lazy_ds):
        with pytest.raises(CDATError):
            run_case("covariance", ds)


def test_single_timestep_container_matches(tmp_path):
    eager_ds, lazy_ds = open_planes(
        tmp_path, make_fields(ntime=1, mask="none"), chunk_timesteps=1
    )
    for name in ("monthly_climatology", "annual_mean", "zonal_mean",
                 "vertical_integral"):
        assert digest(run_case(name, eager_ds)) == digest(run_case(name, lazy_ds))
    # a 1-step running mean is the identity and must survive streaming
    reg = default_registry()
    e = reg.apply("running_mean", eager_ds.get_variable("ta"), window=1)
    s = reg.apply("running_mean", lazy_ds.get_variable("ta"), window=1)
    assert digest(e) == digest(s)


@pytest.mark.parametrize("chunk_timesteps,window", [(2, 5), (3, 7), (5, 11)])
def test_running_mean_windows_straddle_slab_seams(tmp_path, chunk_timesteps, window):
    """The carry across slab boundaries reproduces the eager cumsum exactly."""
    eager_ds, lazy_ds = open_planes(
        tmp_path, make_fields(), chunk_timesteps=chunk_timesteps
    )
    reg = default_registry()
    lazy_ta = lazy_ds.get_variable("ta")
    assert lazy_ta.slab_count() > window // chunk_timesteps  # seams exist
    e = reg.apply("running_mean", eager_ds.get_variable("ta"), window=window)
    s = reg.apply("running_mean", lazy_ta, window=window)
    assert digest(e) == digest(s)


# -- the memory capstone -----------------------------------------------------


def test_monthly_climatology_under_budget_on_4x_dataset(tmp_path):
    path = tmp_path / "big.cdz"
    ta, _tb = make_fields(ntime=48, nlev=4, nlat=10, nlon=16)
    write_cdz(path, [ta], dataset_id="big", version=2, chunk_timesteps=2)

    probe = open_dataset(path, streaming="on")
    layout = probe.streaming_source.layout("ta")
    dataset_bytes = layout.total_nbytes()
    budget = max(layout.max_chunk_nbytes(), dataset_bytes // 4)
    probe.close()
    assert dataset_bytes >= 4 * layout.max_chunk_nbytes()

    eager = open_dataset(path, streaming="off").get_variable("ta")
    expected = default_registry().apply("monthly_climatology", eager)

    config = StreamingConfig(memory_budget_bytes=budget, prefetch_depth=2)
    obs.set_recorder(obs.Recorder())
    obs.enable()
    try:
        with open_dataset(path, streaming="on", streaming_config=config) as ds:
            streamed = default_registry().apply(
                "monthly_climatology", ds.get_variable("ta")
            )
            prefetcher = ds.streaming_source.prefetcher("ta")
            assert prefetcher.peak_resident_bytes <= budget
        full = obs.get_recorder().counter_total("streaming.materialize.full")
    finally:
        obs.disable()
        obs.set_recorder(obs.Recorder())
    assert full == 0
    assert digest(expected) == digest(streamed)
