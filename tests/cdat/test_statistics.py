"""Statistics: correlation/covariance identities, trends, standardization."""

import numpy as np
import pytest

from repro.cdat.statistics import (
    correlation,
    covariance,
    linear_trend,
    percentile,
    rms_difference,
    standardize,
    variance,
)
from repro.cdms.axis import latitude_axis, time_axis
from repro.cdms.grid import uniform_grid
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


def gridded(data, nlat=8, nlon=12, extra_axes=()):
    grid = uniform_grid(nlat, nlon)
    return Variable(data, tuple(extra_axes) + (grid.latitude, grid.longitude), id="g")


@pytest.fixture()
def field_pair():
    rng = np.random.default_rng(11)
    a = gridded(rng.normal(0, 1, (8, 12)))
    b = gridded(rng.normal(0, 1, (8, 12)))
    return a, b


class TestCorrelation:
    def test_self_correlation_is_one(self, field_pair):
        a, _ = field_pair
        assert correlation(a, a) == pytest.approx(1.0)

    def test_anticorrelation(self, field_pair):
        a, _ = field_pair
        assert correlation(a, -a) == pytest.approx(-1.0)

    def test_bounded(self, field_pair):
        a, b = field_pair
        assert -1.0 <= correlation(a, b) <= 1.0

    def test_invariant_to_affine_transform(self, field_pair):
        a, b = field_pair
        assert correlation(a, b * 3.0 + 7.0) == pytest.approx(correlation(a, b))

    def test_zero_variance_rejected(self):
        const = gridded(np.full((8, 12), 2.0))
        with pytest.raises(CDATError):
            correlation(const, const)

    def test_shape_mismatch(self, field_pair, ta):
        a, _ = field_pair
        with pytest.raises(CDATError):
            correlation(a, ta)


class TestCovarianceVariance:
    def test_covariance_symmetry(self, field_pair):
        a, b = field_pair
        assert covariance(a, b) == pytest.approx(covariance(b, a))

    def test_variance_is_self_covariance(self, field_pair):
        a, _ = field_pair
        assert variance(a) == pytest.approx(covariance(a, a))

    def test_variance_along_axis(self, ta):
        out = variance(ta, axis="time")
        assert out.get_time() is None
        assert float(out.min()) >= 0.0

    def test_masked_points_excluded(self):
        data = np.ma.MaskedArray(np.ones((8, 12)))
        data[0, 0] = 1000.0
        data[0, 0] = np.ma.masked
        var = gridded(data)
        other = gridded(np.random.default_rng(0).normal(size=(8, 12)))
        # the masked extreme value must not blow up the covariance
        assert abs(covariance(var, other)) < 10.0


class TestRMS:
    def test_identical_fields_zero(self, field_pair):
        a, _ = field_pair
        assert rms_difference(a, a) == pytest.approx(0.0)

    def test_constant_offset(self, field_pair):
        a, _ = field_pair
        assert rms_difference(a, a + 2.0) == pytest.approx(2.0)

    def test_nonnegative(self, field_pair):
        a, b = field_pair
        assert rms_difference(a, b) >= 0.0


class TestLinearTrend:
    def test_recovers_synthetic_trend(self):
        t = time_axis(np.arange(20.0))
        lat = latitude_axis([0.0, 10.0])
        slope_true = np.array([0.5, -1.25])
        data = slope_true[None, :] * np.arange(20.0)[:, None] + 3.0
        var = Variable(data, (t, lat), id="x")
        slope, intercept = linear_trend(var)
        np.testing.assert_allclose(np.asarray(slope.data), slope_true, rtol=1e-10)
        np.testing.assert_allclose(np.asarray(intercept.data), 3.0, atol=1e-10)

    def test_slope_units_per_axis_coordinate(self):
        # doubling the time spacing halves the slope per coordinate unit
        data = np.arange(10.0)
        v1 = Variable(data.reshape(10, 1), (time_axis(np.arange(10.0)), latitude_axis([0.0])), id="a")
        v2 = Variable(data.reshape(10, 1), (time_axis(np.arange(10.0) * 2), latitude_axis([0.0])), id="b")
        s1, _ = linear_trend(v1)
        s2, _ = linear_trend(v2)
        assert float(s1.data[0]) == pytest.approx(2 * float(s2.data[0]))

    def test_insufficient_points_masked(self):
        t = time_axis([0.0, 1.0, 2.0])
        lat = latitude_axis([0.0])
        data = np.ma.MaskedArray(np.ones((3, 1)))
        data[1:, 0] = np.ma.masked  # only one valid sample
        var = Variable(data, (t, lat), id="x")
        slope, _ = linear_trend(var)
        assert np.ma.getmaskarray(slope.data).all()


class TestStandardize:
    def test_zero_mean_unit_std(self, ta):
        z = standardize(ta, axis="time")
        mean = np.ma.mean(z.data, axis=0)
        std = np.ma.std(z.data, axis=0)
        np.testing.assert_allclose(np.asarray(mean), 0.0, atol=1e-6)
        np.testing.assert_allclose(np.asarray(std[~np.ma.getmaskarray(std)]), 1.0, atol=1e-5)

    def test_constant_series_masked(self):
        t = time_axis(np.arange(5.0))
        var = Variable(np.full((5, 1), 3.0), (t, latitude_axis([0.0])), id="c")
        z = standardize(var)
        assert np.ma.getmaskarray(z.data).all()


class TestPercentile:
    def test_median_of_known_values(self):
        t = time_axis(np.arange(5.0))
        var = Variable(
            np.array([5.0, 1.0, 3.0, 2.0, 4.0]).reshape(5, 1),
            (t, latitude_axis([0.0])), id="p",
        )
        out = percentile(var, 50.0, axis="time")
        assert float(out.data[0]) == pytest.approx(3.0)

    def test_extremes(self, ta):
        p0 = percentile(ta, 0.0)
        p100 = percentile(ta, 100.0)
        assert float(p0.min()) == pytest.approx(float(ta.min()))
        assert float(p100.max()) == pytest.approx(float(ta.max()))

    def test_out_of_range_rejected(self, ta):
        with pytest.raises(CDATError):
            percentile(ta, 150.0)
