"""The simulated ESG federation: search, locate, fetch, transfer model."""

import pytest

from repro.cdms.dataset import Dataset
from repro.esg.federation import (
    DatasetRecord,
    ESGFederation,
    ESGNode,
    default_federation,
)
from repro.resilience import faults
from repro.util.errors import ESGError


def make_record(dataset_id="ds1", size=1000):
    return DatasetRecord(
        dataset_id, ("ta",), "a test dataset", size,
        lambda: Dataset(dataset_id),
    )


class TestNode:
    def test_publish_and_get(self):
        node = ESGNode("n")
        node.publish(make_record())
        assert node.get("ds1").dataset_id == "ds1"

    def test_duplicate_publish_rejected(self):
        node = ESGNode("n")
        node.publish(make_record())
        with pytest.raises(ESGError):
            node.publish(make_record())

    def test_transfer_time_model(self):
        node = ESGNode("n", latency_seconds=0.1, bandwidth_bytes_per_s=1000.0)
        assert node.transfer_time(500) == pytest.approx(0.1 + 0.5)

    def test_bad_parameters(self):
        with pytest.raises(ESGError):
            ESGNode("n", latency_seconds=-1)


class TestFederation:
    def test_search_by_variable(self):
        fed = default_federation()
        hits = fed.search("wspd")
        assert any(rec.dataset_id == "storm_case_study" for _, rec in hits)

    def test_search_empty_query_lists_all(self):
        fed = default_federation()
        assert len(fed.search()) >= 4  # includes the replicas

    def test_locate_prefers_faster_node(self):
        fed = default_federation()
        node, _record = fed.locate("nccs_synthetic_reanalysis")
        assert node == "nccs"  # published on nccs (fast) and pcmdi (slow)

    def test_locate_missing_dataset(self):
        with pytest.raises(ESGError):
            default_federation().locate("nonexistent")

    def test_fetch_materializes_dataset(self):
        fed = default_federation()
        ds = fed.fetch("storm_case_study")
        assert isinstance(ds, Dataset)
        assert "wspd" in ds

    def test_fetch_idempotent_no_double_transfer(self):
        fed = default_federation()
        fed.fetch("storm_case_study")
        clock_after_first = fed.simulated_clock
        fed.fetch("storm_case_study")
        assert fed.simulated_clock == clock_after_first
        assert len(fed.transfers) == 1

    def test_fetch_records_provenance(self):
        fed = default_federation()
        fed.fetch("wave_case_study")
        record = fed.transfers[0]
        assert record.dataset_id == "wave_case_study"
        assert record.modelled_seconds > 0.0

    def test_fetch_from_named_node(self):
        fed = default_federation()
        fed.fetch("wave_case_study", node_name="pcmdi")
        assert fed.transfers[0].node_name == "pcmdi"

    def test_fetch_from_wrong_node(self):
        fed = default_federation()
        with pytest.raises(ESGError):
            fed.fetch("storm_case_study", node_name="pcmdi")

    def test_clock_accumulates(self):
        fed = default_federation()
        fed.fetch("storm_case_study")
        fed.fetch("wave_case_study")
        assert fed.simulated_clock == pytest.approx(
            sum(t.modelled_seconds for t in fed.transfers)
        )

    def test_duplicate_node_rejected(self):
        fed = ESGFederation()
        fed.add_node(ESGNode("x"))
        with pytest.raises(ESGError):
            fed.add_node(ESGNode("x"))


class TestFailover:
    """Replica failover: nodes go down (cleanly or mid-fetch) and recover."""

    @pytest.fixture(autouse=True)
    def clean_registry(self):
        faults.disarm()
        yield
        faults.disarm()

    def test_locate_fails_over_when_fast_node_down(self):
        fed = default_federation()
        fed.set_node_available("nccs", False)
        node, _record = fed.locate("nccs_synthetic_reanalysis")
        assert node == "pcmdi"  # the slow replica carries the load

    def test_node_down_mid_fetch_fails_over_to_replica(self):
        fed = default_federation()
        faults.arm("esg.fetch", "raise", match={"node": "nccs"})
        ds = fed.fetch("nccs_synthetic_reanalysis")
        assert isinstance(ds, Dataset)
        # the fetch completed on the replica; the dead node is marked down
        assert fed.transfers[0].node_name == "pcmdi"
        assert not fed._nodes["nccs"].available
        # the aborted transfer's modelled time was still paid
        assert fed.simulated_clock > fed.transfers[0].modelled_seconds

    def test_all_replicas_down_raises(self):
        fed = default_federation()
        fed.set_node_available("nccs", False)
        fed.set_node_available("pcmdi", False)
        with pytest.raises(ESGError, match="unavailable"):
            fed.fetch("nccs_synthetic_reanalysis")

    def test_all_replicas_dying_mid_fetch_raises(self):
        fed = default_federation()
        faults.arm("esg.fetch", "raise", times=0)  # every transfer dies
        with pytest.raises(ESGError, match="unavailable"):
            fed.fetch("nccs_synthetic_reanalysis")
        assert not fed._nodes["nccs"].available
        assert not fed._nodes["pcmdi"].available

    def test_pinned_fetch_does_not_fail_over(self):
        fed = default_federation()
        faults.arm("esg.fetch", "raise", match={"node": "nccs"})
        with pytest.raises(ESGError, match="mid-fetch"):
            fed.fetch("nccs_synthetic_reanalysis", node_name="nccs")
        assert fed.transfers == []

    def test_node_recovery_restores_preference(self):
        fed = default_federation()
        fed.set_node_available("nccs", False)
        assert fed.locate("nccs_synthetic_reanalysis")[0] == "pcmdi"
        fed.set_node_available("nccs", True)
        assert fed.locate("nccs_synthetic_reanalysis")[0] == "nccs"
        # a fetch after recovery uses the fast node again
        fed.fetch("nccs_synthetic_reanalysis")
        assert fed.transfers[0].node_name == "nccs"
