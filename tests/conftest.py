"""Shared fixtures: small, deterministic datasets and pipelines.

Sizes are deliberately tiny (tens of points per axis) so the full suite
runs in seconds; every generator is seeded, so failures reproduce.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.cdms.axis import level_axis, time_axis, uniform_latitude, uniform_longitude
from repro.cdms.variable import Variable
from repro.data.catalog import storm_case_study, synthetic_reanalysis, wave_case_study
from repro.workflow.pipeline import Pipeline
from repro.workflow.registry import global_registry

SMALL = {"nlat": 16, "nlon": 24, "nlev": 5, "ntime": 4}

#: the shared per-user cache location no test may ever write to
_SHARED_CACHE = Path.home() / ".cache" / "repro"


def _shared_cache_entries() -> set:
    if not _SHARED_CACHE.exists():
        return set()
    return set(_SHARED_CACHE.rglob("*"))


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Isolate the result cache per test.

    The default disk-tier path is redirected into this test's
    ``tmp_path`` (forked subprocesses inherit the environment
    variable), the ambient config is pinned to disabled, and the
    process-wide cache instance is dropped on both sides — so no test
    observes another's entries, and none can leak into the shared
    per-user location.
    """
    from repro.cache import config as cache_config
    from repro.cache.store import reset_cache

    monkeypatch.setenv(cache_config.CACHE_DIR_ENV, str(tmp_path / "repro-cache"))
    previous = cache_config.set_config(cache_config.CacheConfig(enabled=False))
    reset_cache()
    shared_before = _shared_cache_entries()
    yield
    cache_config.set_config(previous)
    reset_cache()
    leaked = _shared_cache_entries() - shared_before
    assert not leaked, f"test leaked cache entries into {_SHARED_CACHE}: {sorted(leaked)}"


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        nargs="?",
        const="all",
        default=None,
        metavar="PLOTS",
        help=(
            "rewrite golden images under tests/goldens/ instead of comparing. "
            "Bare flag regenerates every plot type; pass a comma-separated "
            "subset (e.g. --regen-goldens=volume,isosurface) to regenerate "
            "only those.  Each rewrite prints a changed-pixel summary vs the "
            "previous golden."
        ),
    )


@pytest.fixture(scope="session")
def registry():
    return global_registry()


@pytest.fixture(scope="session")
def reanalysis():
    """A small multi-variable global dataset (session-cached)."""
    return synthetic_reanalysis(**SMALL, seed="test-reanalysis")


@pytest.fixture(scope="session")
def storm():
    return storm_case_study(nlat=24, nlon=24, nlev=8, ntime=4, seed="test-storm")


@pytest.fixture(scope="session")
def waves():
    return wave_case_study(nlon=48, nlat=12, ntime=40, seed="test-waves")


@pytest.fixture()
def ta(reanalysis):
    """The temperature variable of the small reanalysis."""
    return reanalysis("ta")


@pytest.fixture()
def simple_variable():
    """A tiny fully-deterministic 4-D variable with a masked corner."""
    lat = uniform_latitude(8)
    lon = uniform_longitude(12)
    lev = level_axis([1000.0, 500.0, 100.0])
    t = time_axis(np.arange(3) * 30.0)
    rng = np.random.default_rng(7)
    data = np.ma.MaskedArray(rng.normal(280.0, 10.0, size=(3, 3, 8, 12)))
    data[0, 0, 0, 0] = np.ma.masked
    return Variable(data, (t, lev, lat, lon), id="tvar", units="K")


def build_cell_chain(pipeline: Pipeline, width: int = 96, height: int = 72,
                     plot: str = "Slicer", variable: str = "ta") -> dict:
    """Append one reader→variable→plot→cell chain; returns the module ids."""
    reader = pipeline.add_module(
        "CDMSDatasetReader", {"source": "synthetic_reanalysis", "size": dict(SMALL)}
    )
    var = pipeline.add_module("CDMSVariableReader", {"variable": variable})
    plot_id = pipeline.add_module(plot)
    cell = pipeline.add_module("DV3DCell", {"width": width, "height": height})
    pipeline.add_connection(reader, "dataset", var, "dataset")
    pipeline.add_connection(var, "variable", plot_id, "variable")
    pipeline.add_connection(plot_id, "plot", cell, "plot")
    return {"reader": reader, "variable": var, "plot": plot_id, "cell": cell}


@pytest.fixture()
def cell_pipeline(registry):
    """A single-cell DV3D workflow ready to execute."""
    pipeline = Pipeline(registry)
    ids = build_cell_chain(pipeline)
    return pipeline, ids
