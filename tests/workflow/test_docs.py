"""Module documentation generation and coverage."""


from repro.workflow.docs import document_module, document_registry, undocumented_modules
from repro.workflow.registry import global_registry


class TestDocumentation:
    def test_every_builtin_module_documented(self):
        assert undocumented_modules(global_registry()) == []

    def test_registry_reference_covers_all_packages(self):
        registry = global_registry()
        reference = document_registry(registry)
        for package in registry.packages():
            assert f"## Package `{package}`" in reference
        for qualified in registry.all_modules():
            name = qualified.split(":", 1)[1]
            assert f"### `{name}`" in reference

    def test_module_section_structure(self):
        registry = global_registry()
        section = document_module(registry.resolve("dv3d:DV3DCell"))
        assert "### `DV3DCell`" in section
        assert "| input port |" in section
        assert "`plot`" in section
        assert "| parameter |" in section
        assert "`width`" in section

    def test_generated_file_up_to_date(self):
        """docs/MODULES.md must match the live registry (regenerate with
        tools/generate_module_docs.py when modules change)."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "docs" / "MODULES.md"
        assert path.exists(), "run tools/generate_module_docs.py"
        assert path.read_text() == document_registry(global_registry())
