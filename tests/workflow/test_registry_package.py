"""Module registry, packages, and the basic module suite."""

import numpy as np
import pytest

from repro.util.errors import WorkflowError
from repro.workflow.executor import Executor
from repro.workflow.module import Module
from repro.workflow.package import Constant, ExternalToolAdapter, PythonSource, Tee, basic_package
from repro.workflow.pipeline import Pipeline
from repro.workflow.ports import PortSpec
from repro.workflow.registry import ModuleRegistry, global_registry


class Widget(Module):
    name = "Widget"
    output_ports = (PortSpec("out"),)

    def compute(self, inputs):
        return {"out": 1}


class TestRegistry:
    def test_register_and_resolve_qualified(self):
        reg = ModuleRegistry()
        qualified = reg.register("pkg", Widget)
        assert qualified == "pkg:Widget"
        assert reg.resolve("pkg:Widget") is Widget

    def test_bare_name_resolves_when_unique(self):
        reg = ModuleRegistry()
        reg.register("pkg", Widget)
        assert reg.resolve("Widget") is Widget
        assert reg.qualified_name("Widget") == "pkg:Widget"

    def test_ambiguous_bare_name(self):
        reg = ModuleRegistry()
        reg.register("a", Widget)
        reg.register("b", Widget)
        with pytest.raises(WorkflowError, match="ambiguous"):
            reg.resolve("Widget")

    def test_duplicate_registration(self):
        reg = ModuleRegistry()
        reg.register("pkg", Widget)
        with pytest.raises(WorkflowError):
            reg.register("pkg", Widget)

    def test_non_module_rejected(self):
        reg = ModuleRegistry()
        with pytest.raises(WorkflowError):
            reg.register("pkg", dict)  # type: ignore[arg-type]

    def test_contains(self):
        reg = ModuleRegistry()
        reg.register("pkg", Widget)
        assert "Widget" in reg
        assert "Gadget" not in reg

    def test_global_registry_has_builtin_packages(self):
        reg = global_registry()
        assert set(reg.packages()) >= {"basic", "cdms", "cdat", "dv3d"}
        assert "DV3DCell" in reg.modules_in("dv3d")
        assert "CDMSDatasetReader" in reg.modules_in("cdms")

    def test_module_describe(self):
        desc = Widget.describe()
        assert desc["name"] == "Widget"
        assert desc["outputs"] == [("out", "any")]


class TestBasicModules:
    def exec_single(self, module_name, params, registry=None):
        reg = registry or ModuleRegistry()
        if registry is None:
            basic_package().register_all(reg)
        p = Pipeline(reg)
        mid = p.add_module(module_name, params)
        return Executor(caching=False).execute(p), mid

    def test_constant(self):
        result, mid = self.exec_single("Constant", {"value": 42})
        assert result.output(mid, "value") == 42

    def test_tee_passthrough(self):
        reg = ModuleRegistry()
        basic_package().register_all(reg)
        p = Pipeline(reg)
        const = p.add_module("Constant", {"value": "hello"})
        tee = p.add_module("Tee")
        p.add_connection(const, "value", tee, "value")
        result = Executor(caching=False).execute(p)
        assert result.output(tee, "value") == "hello"

    def test_python_source(self):
        reg = ModuleRegistry()
        basic_package().register_all(reg)
        p = Pipeline(reg)
        const = p.add_module("Constant", {"value": 10})
        script = p.add_module(
            "PythonSource", {"source": "outputs = {'result': a * 3}"}
        )
        p.add_connection(const, "value", script, "a")
        result = Executor(caching=False).execute(p)
        assert result.output(script, "result") == 30

    def test_python_source_must_set_outputs(self):
        from repro.util.errors import ModuleExecutionError

        reg = ModuleRegistry()
        basic_package().register_all(reg)
        p = Pipeline(reg)
        p.add_module("PythonSource", {"source": "x = 1"})
        with pytest.raises(ModuleExecutionError):
            Executor(caching=False).execute(p)

    def test_external_tool_json_boundary(self):
        ExternalToolAdapter.register_tool("sum_list", lambda payload: sum(payload))
        reg = ModuleRegistry()
        basic_package().register_all(reg)
        p = Pipeline(reg)
        const = p.add_module("Constant", {"value": [1, 2, 3]})
        tool = p.add_module("ExternalToolAdapter", {"tool": "sum_list"})
        p.add_connection(const, "value", tool, "payload")
        result = Executor(caching=False).execute(p)
        assert result.output(tool, "payload") == 6

    def test_external_tool_numpy_coerced(self):
        ExternalToolAdapter.register_tool("identity2", lambda payload: payload)
        reg = ModuleRegistry()
        basic_package().register_all(reg)
        p = Pipeline(reg)
        const = p.add_module("Constant", {"value": None})
        tool = p.add_module("ExternalToolAdapter", {"tool": "identity2"})
        p.add_connection(const, "value", tool, "payload")
        # numpy arrays cross as lists
        p.set_parameter(const, "value", np.arange(3).tolist())
        result = Executor(caching=False).execute(p)
        assert result.output(tool, "payload") == [0, 1, 2]

    def test_external_tool_unknown(self):
        from repro.util.errors import ModuleExecutionError

        reg = ModuleRegistry()
        basic_package().register_all(reg)
        p = Pipeline(reg)
        const = p.add_module("Constant", {"value": 1})
        tool = p.add_module("ExternalToolAdapter", {"tool": "missing-tool"})
        p.add_connection(const, "value", tool, "payload")
        with pytest.raises(ModuleExecutionError):
            Executor(caching=False).execute(p)


class TestPorts:
    def test_wildcard_compatibility(self):
        any_port = PortSpec("x", "any")
        typed = PortSpec("y", "variable")
        assert any_port.compatible_with(typed)
        assert typed.compatible_with(any_port)
        assert typed.compatible_with(PortSpec("z", "variable"))
        assert not typed.compatible_with(PortSpec("z", "image"))

    def test_module_unknown_parameter_rejected(self):
        with pytest.raises(WorkflowError):
            Constant({"nope": 1})

    def test_parameter_defaults_applied(self):
        const = Constant()
        assert const.parameter_values == {"value": None}

    def test_parameter_signature_deterministic(self):
        a = Constant({"value": {"b": 1, "a": 2}})
        b = Constant({"value": {"a": 2, "b": 1}})
        assert a.parameter_signature() == b.parameter_signature()
