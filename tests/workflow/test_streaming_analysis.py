"""Lazy variables flow through CDATOperation and the calculator
without being materialized whole.

The analysis modules receive the streaming handle itself — not a
gathered copy — and the reduction kernels walk its slabs, so a full
pipeline (read → reduce → visualize) stays within the streaming memory
budget end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.app.application import Application
from repro.cdms.dataset import open_dataset
from repro.cdms.lazy import LazyVariable
from repro.data import catalog
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline

SIZE = dict(nlat=12, nlon=16, nlev=3, ntime=6)


@pytest.fixture(scope="module")
def v2_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("wf-analysis") / "r2.cdz"
    catalog.synthetic_reanalysis(**SIZE, seed="wf-analysis").save(path, version=2)
    return path


@pytest.fixture()
def recorder():
    obs.set_recorder(obs.Recorder())
    obs.enable()
    yield obs.get_recorder()
    obs.disable()
    obs.set_recorder(obs.Recorder())


def analysis_pipeline(registry, source, operation, streaming="on", args=None):
    p = Pipeline(registry)
    reader = p.add_module(
        "CDMSDatasetReader", {"source": str(source), "streaming": streaming}
    )
    var = p.add_module("CDMSVariableReader", {"variable": "ta"})
    op = p.add_module("CDATOperation", {"operation": operation, "args": args or {}})
    p.add_connection(reader, "dataset", var, "dataset")
    p.add_connection(var, "variable", op, "variable")
    return p, var, op


class TestCDATOperationStreaming:
    def test_operation_receives_the_lazy_variable(self, registry, v2_file):
        p, var, _op = analysis_pipeline(registry, v2_file, "monthly_climatology")
        result = Executor(caching=False).execute(p)
        assert isinstance(result.output(var, "variable"), LazyVariable)

    def test_reduction_streams_without_full_materialization(
        self, registry, v2_file, recorder
    ):
        p, _var, op = analysis_pipeline(registry, v2_file, "monthly_climatology")
        result = Executor(caching=False).execute(p)
        clim = result.output(op, "variable")
        assert clim.shape[0] == 12
        assert recorder.counter_total("streaming.materialize.full") == 0
        assert recorder.counter_total("cdat.slabs") > 0

    def test_streamed_result_matches_eager_pipeline(self, registry, v2_file):
        outputs = {}
        for mode in ("off", "on"):
            p, _var, op = analysis_pipeline(
                registry, v2_file, "zonal_mean", streaming=mode
            )
            outputs[mode] = Executor(caching=False).execute(p).output(op, "variable")
        np.testing.assert_array_equal(
            np.asarray(outputs["off"].data.filled(0)),
            np.asarray(outputs["on"].data.filled(0)),
        )


class TestCalculatorStreaming:
    def test_workspace_holds_lazy_variables_unmaterialized(self, v2_file, recorder):
        app = Application()
        with open_dataset(v2_file, streaming="on") as ds:
            app.variables.define("ta", ds.get_variable("ta"))
            assert isinstance(app.variables.get("ta"), LazyVariable)
            anom = app.calculator.assign("a = anomalies(ta)")
            assert anom.shape == ds.get_variable("ta").shape
        assert recorder.counter_total("streaming.materialize.full") == 0

    def test_calculator_matches_eager_result(self, v2_file):
        eager = open_dataset(v2_file, streaming="off").get_variable("ta")
        app_e = Application()
        app_e.variables.define("ta", eager)
        expected = app_e.calculator.evaluate("axis_average(ta, axis='time')")
        with open_dataset(v2_file, streaming="on") as ds:
            app_s = Application()
            app_s.variables.define("ta", ds.get_variable("ta"))
            streamed = app_s.calculator.evaluate("axis_average(ta, axis='time')")
        np.testing.assert_array_equal(
            np.asarray(expected.data.filled(0)),
            np.asarray(streamed.data.filled(0)),
        )
