"""Group modules: pipelines encapsulated as single modules."""

import pytest

from repro.util.errors import WorkflowError
from repro.workflow.executor import Executor
from repro.workflow.group import create_group, register_group
from repro.workflow.module import Module, ParameterSpec
from repro.workflow.package import basic_package
from repro.workflow.pipeline import Pipeline
from repro.workflow.ports import PortSpec
from repro.workflow.registry import ModuleRegistry


class Scale(Module):
    name = "Scale"
    input_ports = (PortSpec("in", "number"),)
    output_ports = (PortSpec("out", "number"),)
    parameters = (ParameterSpec("factor", 2.0),)

    def compute(self, inputs):
        return {"out": inputs["in"] * float(self.parameter_values["factor"])}


class Offset(Module):
    name = "Offset"
    input_ports = (PortSpec("in", "number"),)
    output_ports = (PortSpec("out", "number"),)
    parameters = (ParameterSpec("amount", 1.0),)

    def compute(self, inputs):
        return {"out": inputs["in"] + float(self.parameter_values["amount"])}


@pytest.fixture()
def registry():
    reg = ModuleRegistry()
    basic_package().register_all(reg)
    reg.register("t", Scale)
    reg.register("t", Offset)
    return reg


@pytest.fixture()
def affine_pipeline(registry):
    """An inner pipeline computing 3x + 10 with an open input."""
    p = Pipeline(registry)
    scale = p.add_module("Scale", {"factor": 3.0})
    offset = p.add_module("Offset", {"amount": 10.0})
    p.add_connection(scale, "out", offset, "in")
    return p, scale, offset


class TestCreateGroup:
    def test_group_computes_inner_pipeline(self, registry, affine_pipeline):
        p, scale, offset = affine_pipeline
        Group = create_group(
            "Affine", p,
            inputs=[("x", scale, "in")],
            outputs=[("y", offset, "out")],
        )
        registry.register("t", Group)
        outer = Pipeline(registry)
        const = outer.add_module("basic:Constant", {"value": 5.0})
        group = outer.add_module("Affine")
        outer.add_connection(const, "value", group, "x")
        result = Executor(caching=False).execute(outer)
        assert result.output(group, "y") == 3.0 * 5.0 + 10.0

    def test_default_outputs_from_sinks(self, registry, affine_pipeline):
        p, scale, _offset = affine_pipeline
        Group = create_group("Affine2", p, inputs=[("x", scale, "in")])
        assert [port.name for port in Group.output_ports] == ["out"]

    def test_overrides_reach_inner_modules(self, registry, affine_pipeline):
        p, scale, offset = affine_pipeline
        Group = create_group("Affine3", p, inputs=[("x", scale, "in")],
                             outputs=[("y", offset, "out")])
        registry.register("t", Group)
        outer = Pipeline(registry)
        const = outer.add_module("basic:Constant", {"value": 1.0})
        group = outer.add_module("Affine3",
                                 {"overrides": {str(scale): {"factor": 100.0}}})
        outer.add_connection(const, "value", group, "x")
        result = Executor(caching=False).execute(outer)
        assert result.output(group, "y") == 110.0

    def test_groups_compose(self, registry, affine_pipeline):
        """A group of groups: (3x + 10) applied twice."""
        p, scale, offset = affine_pipeline
        Inner = create_group("AffineInner", p, inputs=[("x", scale, "in")],
                             outputs=[("y", offset, "out")])
        registry.register("t", Inner)
        chain = Pipeline(registry)
        g1 = chain.add_module("AffineInner")
        g2 = chain.add_module("AffineInner")
        chain.add_connection(g1, "y", g2, "x")
        Outer = create_group("AffineTwice", chain, inputs=[("x", g1, "x")],
                             outputs=[("y", g2, "y")])
        registry.register("t", Outer)
        final = Pipeline(registry)
        const = final.add_module("basic:Constant", {"value": 2.0})
        group = final.add_module("AffineTwice")
        final.add_connection(const, "value", group, "x")
        result = Executor(caching=False).execute(final)
        assert result.output(group, "y") == 3.0 * (3.0 * 2.0 + 10.0) + 10.0

    def test_group_isolated_from_source_edits(self, registry, affine_pipeline):
        p, scale, offset = affine_pipeline
        Group = create_group("Frozen", p, inputs=[("x", scale, "in")],
                             outputs=[("y", offset, "out")])
        registry.register("t", Group)
        p.set_parameter(scale, "factor", 999.0)  # edit AFTER grouping
        outer = Pipeline(registry)
        const = outer.add_module("basic:Constant", {"value": 1.0})
        group = outer.add_module("Frozen")
        outer.add_connection(const, "value", group, "x")
        result = Executor(caching=False).execute(outer)
        assert result.output(group, "y") == 13.0  # still 3x + 10


class TestValidation:
    def test_unknown_inner_module(self, registry, affine_pipeline):
        p, _scale, _offset = affine_pipeline
        with pytest.raises(WorkflowError):
            create_group("Bad", p, inputs=[("x", 99, "in")])

    def test_already_connected_port_rejected(self, registry, affine_pipeline):
        p, _scale, offset = affine_pipeline
        with pytest.raises(WorkflowError, match="already"):
            create_group("Bad", p, inputs=[("x", offset, "in")])

    def test_unknown_inner_port(self, registry, affine_pipeline):
        p, scale, _ = affine_pipeline
        with pytest.raises(WorkflowError):
            create_group("Bad", p, inputs=[("x", scale, "nope")])

    def test_register_group_helper(self, registry, affine_pipeline):
        p, scale, offset = affine_pipeline
        qualified = register_group(
            registry, "groups", "AffineReg", p,
            inputs=[("x", scale, "in")], outputs=[("y", offset, "out")],
        )
        assert qualified == "groups:AffineReg"
        assert "AffineReg" in registry


class TestDV3DGroup:
    def test_group_wrapping_a_visualization_chain(self):
        """The real use: a reusable 'temperature slicer' group."""
        from repro.workflow.registry import global_registry
        from tests.conftest import SMALL

        registry = global_registry()
        inner = Pipeline(registry)
        reader = inner.add_module(
            "CDMSDatasetReader", {"source": "synthetic_reanalysis", "size": dict(SMALL)}
        )
        var = inner.add_module("CDMSVariableReader", {"variable": "ta"})
        plot = inner.add_module("Slicer")
        cell = inner.add_module("DV3DCell", {"width": 32, "height": 24})
        inner.add_connection(reader, "dataset", var, "dataset")
        inner.add_connection(var, "variable", plot, "variable")
        inner.add_connection(plot, "plot", cell, "plot")
        Group = create_group(
            "TemperatureSlicerCell", inner,
            outputs=[("image", cell, "image"), ("cell", cell, "cell")],
        )
        registry.register("groups", Group, overwrite=True)
        outer = Pipeline(registry)
        gid = outer.add_module("TemperatureSlicerCell")
        result = Executor(caching=False).execute(outer)
        assert result.output(gid, "image").shape == (24, 32, 3)
