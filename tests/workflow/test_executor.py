"""Executor: dataflow, caching, parallelism, failure attribution."""

import threading
import time

import pytest

from repro.util.errors import ModuleExecutionError, WorkflowError
from repro.workflow.executor import Executor
from repro.workflow.module import Module, ParameterSpec
from repro.workflow.pipeline import Pipeline
from repro.workflow.ports import PortSpec
from repro.workflow.registry import ModuleRegistry

CALL_COUNTS = {}
CALL_LOCK = threading.Lock()


class Source(Module):
    name = "Source"
    output_ports = (PortSpec("out", "number"),)
    parameters = (ParameterSpec("value", 1.0),)

    def compute(self, inputs):
        with CALL_LOCK:
            CALL_COUNTS["Source"] = CALL_COUNTS.get("Source", 0) + 1
        return {"out": float(self.parameter_values["value"])}


class Double(Module):
    name = "Double"
    input_ports = (PortSpec("in", "number"),)
    output_ports = (PortSpec("out", "number"),)

    def compute(self, inputs):
        with CALL_LOCK:
            CALL_COUNTS["Double"] = CALL_COUNTS.get("Double", 0) + 1
        return {"out": inputs["in"] * 2}


class Add(Module):
    name = "Add"
    input_ports = (PortSpec("a", "number"), PortSpec("b", "number"))
    output_ports = (PortSpec("out", "number"),)

    def compute(self, inputs):
        return {"out": inputs["a"] + inputs["b"]}


class Sleeper(Module):
    name = "Sleeper"
    input_ports = (PortSpec("in", "number", optional=True),)
    output_ports = (PortSpec("out", "number"),)
    parameters = (ParameterSpec("seconds", 0.05), ParameterSpec("tag", ""))
    cacheable = False

    def compute(self, inputs):
        time.sleep(float(self.parameter_values["seconds"]))
        return {"out": 1.0}


class Exploder(Module):
    name = "Exploder"
    input_ports = (PortSpec("in", "number", optional=True),)
    output_ports = (PortSpec("out", "number"),)

    def compute(self, inputs):
        raise ValueError("kaboom")


class Incomplete(Module):
    name = "Incomplete"
    output_ports = (PortSpec("out", "number"), PortSpec("missing", "number"))

    def compute(self, inputs):
        return {"out": 1.0}


class Stateful(Module):
    name = "Stateful"
    output_ports = (PortSpec("out", "any"),)
    cacheable = False

    def compute(self, inputs):
        return {"out": object()}


@pytest.fixture()
def registry():
    reg = ModuleRegistry()
    for cls in (Source, Double, Add, Sleeper, Exploder, Incomplete, Stateful):
        reg.register("test", cls)
    return reg


@pytest.fixture(autouse=True)
def reset_counts():
    CALL_COUNTS.clear()


def make_chain(registry, value=3.0):
    p = Pipeline(registry)
    source = p.add_module("Source", {"value": value})
    double = p.add_module("Double")
    p.add_connection(source, "out", double, "in")
    return p, source, double


class TestBasicExecution:
    def test_dataflow(self, registry):
        p, _source, double = make_chain(registry, 3.0)
        result = Executor(caching=False).execute(p)
        assert result.output(double, "out") == 6.0

    def test_output_without_port_when_unique(self, registry):
        p, _s, double = make_chain(registry)
        result = Executor(caching=False).execute(p)
        assert result.output(double) == result.output(double, "out")

    def test_missing_output_raises(self, registry):
        p, _s, double = make_chain(registry)
        result = Executor(caching=False).execute(p)
        with pytest.raises(WorkflowError):
            result.output(double, "bogus")

    def test_diamond(self, registry):
        p = Pipeline(registry)
        source = p.add_module("Source", {"value": 2.0})
        left = p.add_module("Double")
        right = p.add_module("Double")
        add = p.add_module("Add")
        p.add_connection(source, "out", left, "in")
        p.add_connection(source, "out", right, "in")
        p.add_connection(left, "out", add, "a")
        p.add_connection(right, "out", add, "b")
        result = Executor(caching=False).execute(p)
        assert result.output(add, "out") == 8.0

    def test_targets_execute_only_upstream(self, registry):
        p, source, double = make_chain(registry)
        extra = p.add_module("Source", {"value": 99.0})
        result = Executor(caching=False).execute(p, targets=[double])
        assert (extra, "out") not in result.outputs
        assert result.output(double, "out") == 6.0

    def test_runs_recorded(self, registry):
        p, _s, _d = make_chain(registry)
        result = Executor(caching=False).execute(p)
        assert len(result.runs) == 2
        assert all(r.status == "ok" for r in result.runs)
        assert all(r.duration >= 0 for r in result.runs)


class TestCaching:
    def test_second_execution_all_cached(self, registry):
        p, _s, _d = make_chain(registry)
        ex = Executor(caching=True)
        ex.execute(p)
        result = ex.execute(p)
        assert result.cache_hits == 2 and result.cache_misses == 0
        assert CALL_COUNTS == {"Source": 1, "Double": 1}

    def test_parameter_edit_invalidates_downstream(self, registry):
        p, source, double = make_chain(registry)
        ex = Executor(caching=True)
        ex.execute(p)
        p.set_parameter(source, "value", 10.0)
        result = ex.execute(p)
        assert result.cache_misses == 2  # both recomputed
        assert result.output(double, "out") == 20.0

    def test_independent_branch_stays_cached(self, registry):
        p = Pipeline(registry)
        s1 = p.add_module("Source", {"value": 1.0})
        s2 = p.add_module("Source", {"value": 2.0})
        d1 = p.add_module("Double")
        d2 = p.add_module("Double")
        p.add_connection(s1, "out", d1, "in")
        p.add_connection(s2, "out", d2, "in")
        ex = Executor(caching=True)
        ex.execute(p)
        p.set_parameter(s1, "value", 5.0)
        result = ex.execute(p)
        assert result.status_of(d2) == "cached"
        assert result.status_of(d1) == "ok"

    def test_caching_disabled(self, registry):
        p, _s, _d = make_chain(registry)
        ex = Executor(caching=False)
        ex.execute(p)
        result = ex.execute(p)
        assert result.cache_hits == 0

    def test_non_cacheable_always_recomputes(self, registry):
        p = Pipeline(registry)
        stateful = p.add_module("Stateful")
        ex = Executor(caching=True)
        first = ex.execute(p).output(stateful, "out")
        second = ex.execute(p).output(stateful, "out")
        assert first is not second

    def test_clear_cache(self, registry):
        p, _s, _d = make_chain(registry)
        ex = Executor(caching=True)
        ex.execute(p)
        assert ex.cache_size == 2
        ex.clear_cache()
        assert ex.cache_size == 0


class TestParallel:
    def test_parallel_faster_than_serial(self, registry):
        p = Pipeline(registry)
        for tag in range(4):
            p.add_module("Sleeper", {"seconds": 0.08, "tag": str(tag)})
        serial = Executor(caching=False, max_workers=1)
        parallel = Executor(caching=False, max_workers=4)
        t0 = time.perf_counter()
        serial.execute(p)
        serial_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel.execute(p)
        parallel_time = time.perf_counter() - t0
        assert parallel_time < serial_time * 0.7

    def test_parallel_correctness(self, registry):
        p = Pipeline(registry)
        source = p.add_module("Source", {"value": 2.0})
        doubles = []
        for _ in range(6):
            d = p.add_module("Double")
            p.add_connection(source, "out", d, "in")
            doubles.append(d)
        result = Executor(caching=False, max_workers=3).execute(p)
        assert all(result.output(d, "out") == 4.0 for d in doubles)

    def test_bad_worker_count(self):
        with pytest.raises(WorkflowError):
            Executor(max_workers=0)


class TestFailures:
    def test_error_attributed_to_module(self, registry):
        p = Pipeline(registry)
        p.add_module("Exploder")
        with pytest.raises(ModuleExecutionError, match="Exploder"):
            Executor(caching=False).execute(p)

    def test_error_in_parallel_mode(self, registry):
        p = Pipeline(registry)
        p.add_module("Exploder")
        p.add_module("Sleeper", {"seconds": 0.01})
        with pytest.raises(ModuleExecutionError):
            Executor(caching=False, max_workers=2).execute(p)

    def test_incomplete_outputs_detected(self, registry):
        p = Pipeline(registry)
        p.add_module("Incomplete")
        with pytest.raises(ModuleExecutionError, match="omitted"):
            Executor(caching=False).execute(p)

    def test_invalid_pipeline_rejected_before_run(self, registry):
        p = Pipeline(registry)
        p.add_module("Double")  # required input unconnected
        with pytest.raises(WorkflowError, match="unconnected"):
            Executor(caching=False).execute(p)


def make_two_branch(registry):
    """One healthy chain and one exploding chain, independent of each other."""
    p = Pipeline(registry)
    good_src = p.add_module("Source", {"value": 3.0})
    good_dbl = p.add_module("Double")
    p.add_connection(good_src, "out", good_dbl, "in")
    bad = p.add_module("Exploder")
    bad_dbl = p.add_module("Double")
    p.add_connection(bad, "out", bad_dbl, "in")
    return p, {"good_src": good_src, "good_dbl": good_dbl,
               "bad": bad, "bad_dbl": bad_dbl}


class TestFailurePolicy:
    def test_invalid_policy_rejected(self):
        with pytest.raises(WorkflowError, match="failure_policy"):
            Executor(failure_policy="retry_forever")

    def test_continue_independent_serial(self, registry):
        p, ids = make_two_branch(registry)
        result = Executor(caching=False,
                          failure_policy="continue_independent").execute(p)
        assert not result.ok
        assert result.status_of(ids["good_dbl"]) == "ok"
        assert result.output(ids["good_dbl"], "out") == 6.0
        assert result.status_of(ids["bad"]) == "error"
        assert result.status_of(ids["bad_dbl"]) == "skipped"
        assert len(result.runs) == 4  # every module accounted for

    def test_continue_independent_parallel(self, registry):
        p, ids = make_two_branch(registry)
        result = Executor(caching=False, max_workers=3,
                          failure_policy="continue_independent").execute(p)
        assert result.status_of(ids["good_dbl"]) == "ok"
        assert result.status_of(ids["bad"]) == "error"
        assert result.status_of(ids["bad_dbl"]) == "skipped"
        assert len(result.runs) == 4

    def test_failure_recorded_with_module_name(self, registry):
        p, _ids = make_two_branch(registry)
        result = Executor(caching=False,
                          failure_policy="continue_independent").execute(p)
        (failure,) = result.failures()
        assert "Exploder" in failure.error and "kaboom" in failure.error
        (skipped,) = result.skipped()
        assert skipped.error == "upstream module failed"

    def test_transitive_skip(self, registry):
        # bad -> double -> double: the whole downstream closure skips
        p = Pipeline(registry)
        bad = p.add_module("Exploder")
        d1 = p.add_module("Double")
        d2 = p.add_module("Double")
        p.add_connection(bad, "out", d1, "in")
        p.add_connection(d1, "out", d2, "in")
        result = Executor(caching=False,
                          failure_policy="continue_independent").execute(p)
        assert result.status_of(d1) == "skipped"
        assert result.status_of(d2) == "skipped"

    def test_partial_result_missing_outputs_raise_cleanly(self, registry):
        p, ids = make_two_branch(registry)
        result = Executor(caching=False,
                          failure_policy="continue_independent").execute(p)
        with pytest.raises(WorkflowError):
            result.output(ids["bad_dbl"], "out")

    def test_fail_fast_remains_default(self, registry):
        p, _ids = make_two_branch(registry)
        with pytest.raises(ModuleExecutionError, match="Exploder"):
            Executor(caching=False).execute(p)

    def test_failed_module_not_cached(self, registry):
        from repro.resilience import faults

        p, source = Pipeline(registry), None
        source = p.add_module("Source", {"value": 2.0})
        executor = Executor(caching=True, failure_policy="continue_independent")
        with faults.injected("executor.module", "raise", match={"module": "test:Source"}):
            first = executor.execute(p)
        assert first.status_of(source) == "error"
        # fault exhausted: the module recomputes (no poisoned cache entry)
        second = executor.execute(p)
        assert second.status_of(source) == "ok"
        assert second.output(source, "out") == 2.0

    def test_injected_fault_counts_metrics(self, registry):
        from repro import obs
        from repro.resilience import faults

        p = Pipeline(registry)
        p.add_module("Source", {"value": 1.0})
        recorder = obs.enable(obs.Recorder())
        try:
            with faults.injected("executor.module", "raise",
                                 match={"module": "test:Source"}):
                Executor(caching=False,
                         failure_policy="continue_independent").execute(p)
        finally:
            obs.disable()
        assert recorder.counter_total("executor.module.failed") == 1
        assert recorder.counter_total("resilience.faults.fired") == 1
