"""Pipeline graph: mutation, validation, topology, sub-workflows."""

import pytest

from repro.util.errors import WorkflowError
from repro.workflow.module import Module, ParameterSpec
from repro.workflow.pipeline import Pipeline
from repro.workflow.ports import PortSpec
from repro.workflow.registry import ModuleRegistry


class Source(Module):
    name = "Source"
    output_ports = (PortSpec("out", "number"),)
    parameters = (ParameterSpec("value", 1.0),)

    def compute(self, inputs):
        return {"out": float(self.parameter_values["value"])}


class Double(Module):
    name = "Double"
    input_ports = (PortSpec("in", "number"),)
    output_ports = (PortSpec("out", "number"),)

    def compute(self, inputs):
        return {"out": inputs["in"] * 2}


class Add(Module):
    name = "Add"
    input_ports = (PortSpec("a", "number"), PortSpec("b", "number"))
    output_ports = (PortSpec("out", "number"),)

    def compute(self, inputs):
        return {"out": inputs["a"] + inputs["b"]}


class TextSink(Module):
    name = "TextSink"
    input_ports = (PortSpec("text", "string"),)
    output_ports = (PortSpec("out", "string"),)

    def compute(self, inputs):
        return {"out": str(inputs["text"])}


@pytest.fixture()
def registry():
    reg = ModuleRegistry()
    for cls in (Source, Double, Add, TextSink):
        reg.register("test", cls)
    return reg


@pytest.fixture()
def pipeline(registry):
    return Pipeline(registry)


class TestMutation:
    def test_add_module_returns_increasing_ids(self, pipeline):
        a = pipeline.add_module("Source")
        b = pipeline.add_module("Double")
        assert b == a + 1

    def test_add_module_unknown_name(self, pipeline):
        with pytest.raises(WorkflowError):
            pipeline.add_module("Nonexistent")

    def test_add_module_unknown_parameter(self, pipeline):
        with pytest.raises(WorkflowError):
            pipeline.add_module("Source", {"bogus": 1})

    def test_explicit_module_id_reserved(self, pipeline):
        pipeline.add_module("Source", module_id=10)
        assert pipeline.add_module("Source") == 11

    def test_duplicate_module_id(self, pipeline):
        pipeline.add_module("Source", module_id=5)
        with pytest.raises(WorkflowError):
            pipeline.add_module("Source", module_id=5)

    def test_set_parameter_validates_name(self, pipeline):
        source = pipeline.add_module("Source")
        pipeline.set_parameter(source, "value", 9.0)
        assert pipeline.modules[source].parameters["value"] == 9.0
        with pytest.raises(WorkflowError):
            pipeline.set_parameter(source, "volume", 9.0)

    def test_delete_module_cascades_connections(self, pipeline):
        source = pipeline.add_module("Source")
        double = pipeline.add_module("Double")
        pipeline.add_connection(source, "out", double, "in")
        pipeline.delete_module(source)
        assert not pipeline.connections
        assert double in pipeline.modules

    def test_delete_missing_module(self, pipeline):
        with pytest.raises(WorkflowError):
            pipeline.delete_module(99)


class TestConnections:
    def test_type_mismatch_rejected(self, pipeline):
        source = pipeline.add_module("Source")
        sink = pipeline.add_module("TextSink")
        with pytest.raises(WorkflowError, match="type mismatch"):
            pipeline.add_connection(source, "out", sink, "text")

    def test_unknown_port_rejected(self, pipeline):
        source = pipeline.add_module("Source")
        double = pipeline.add_module("Double")
        with pytest.raises(WorkflowError):
            pipeline.add_connection(source, "nope", double, "in")

    def test_input_port_single_writer(self, pipeline):
        a = pipeline.add_module("Source")
        b = pipeline.add_module("Source")
        double = pipeline.add_module("Double")
        pipeline.add_connection(a, "out", double, "in")
        with pytest.raises(WorkflowError, match="already connected"):
            pipeline.add_connection(b, "out", double, "in")

    def test_self_loop_rejected(self, pipeline):
        double = pipeline.add_module("Double")
        with pytest.raises(WorkflowError, match="cycle"):
            pipeline.add_connection(double, "out", double, "in")

    def test_cycle_rejected(self, pipeline):
        d1 = pipeline.add_module("Double")
        d2 = pipeline.add_module("Double")
        pipeline.add_connection(d1, "out", d2, "in")
        with pytest.raises(WorkflowError, match="cycle"):
            pipeline.add_connection(d2, "out", d1, "in")

    def test_delete_connection(self, pipeline):
        source = pipeline.add_module("Source")
        double = pipeline.add_module("Double")
        conn = pipeline.add_connection(source, "out", double, "in")
        pipeline.delete_connection(conn)
        assert not pipeline.connections
        with pytest.raises(WorkflowError):
            pipeline.delete_connection(conn)


class TestTopology:
    def make_diamond(self, pipeline):
        source = pipeline.add_module("Source", {"value": 3.0})
        left = pipeline.add_module("Double")
        right = pipeline.add_module("Double")
        add = pipeline.add_module("Add")
        pipeline.add_connection(source, "out", left, "in")
        pipeline.add_connection(source, "out", right, "in")
        pipeline.add_connection(left, "out", add, "a")
        pipeline.add_connection(right, "out", add, "b")
        return source, left, right, add

    def test_topological_order_respects_edges(self, pipeline):
        source, left, right, add = self.make_diamond(pipeline)
        order = pipeline.topological_order()
        assert order.index(source) < order.index(left)
        assert order.index(left) < order.index(add)
        assert order.index(right) < order.index(add)

    def test_sinks(self, pipeline):
        _, _, _, add = self.make_diamond(pipeline)
        assert pipeline.sinks() == [add]

    def test_upstream_closure(self, pipeline):
        source, left, right, add = self.make_diamond(pipeline)
        assert pipeline.upstream_closure([left]) == {source, left}
        assert pipeline.upstream_closure([add]) == {source, left, right, add}

    def test_subpipeline_preserves_ids(self, pipeline):
        source, left, _, _ = self.make_diamond(pipeline)
        sub = pipeline.subpipeline([left])
        assert set(sub.modules) == {source, left}
        assert all(c.source_id == source for c in sub.connections.values())

    def test_validate_unconnected_required_input(self, pipeline):
        pipeline.add_module("Double")
        with pytest.raises(WorkflowError, match="unconnected"):
            pipeline.validate()

    def test_modules_of_type(self, pipeline):
        self.make_diamond(pipeline)
        assert len(pipeline.modules_of_type("Double")) == 2
        assert len(pipeline.modules_of_type("test:Source")) == 1


class TestSerialization:
    def test_roundtrip(self, pipeline, registry):
        source = pipeline.add_module("Source", {"value": 5.0})
        double = pipeline.add_module("Double")
        pipeline.add_connection(source, "out", double, "in")
        restored = Pipeline.from_dict(pipeline.to_dict(), registry)
        assert restored.structurally_equal(pipeline)

    def test_copy_independent(self, pipeline):
        source = pipeline.add_module("Source")
        clone = pipeline.copy()
        clone.set_parameter(source, "value", 42.0)
        assert pipeline.modules[source].parameters.get("value") != 42.0

    def test_copy_continues_id_sequence(self, pipeline):
        pipeline.add_module("Source", module_id=7)
        clone = pipeline.copy()
        assert clone.add_module("Source") == 8
