"""Metric primitives: keys, buckets, histogram merge, series codecs."""

import math

from repro.obs import HistogramData, MetricKey, bucket_bounds
from repro.obs.metrics import bucket_index, decode_series, encode_series


class TestMetricKey:
    def test_label_order_is_canonical(self):
        a = MetricKey.make("m", {"x": 1, "y": 2})
        b = MetricKey.make("m", {"y": 2, "x": 1})
        assert a == b
        assert hash(a) == hash(b)

    def test_values_are_stringified(self):
        key = MetricKey.make("m", {"n": 3})
        assert key.label_dict() == {"n": "3"}

    def test_no_labels(self):
        assert MetricKey.make("m", {}) == MetricKey("m")


class TestBuckets:
    def test_powers_of_two(self):
        assert bucket_index(1.0) == 0
        assert bucket_index(1.5) == 1
        assert bucket_index(2.0) == 1
        assert bucket_index(0.25) == -2

    def test_nonpositive_and_nonfinite_clamp_low(self):
        """Invalid samples (<= 0, nan, inf) all land in the floor bucket."""
        floor = bucket_index(0.0)
        assert bucket_index(-5.0) == floor
        assert bucket_index(math.nan) == floor
        assert bucket_index(math.inf) == floor

    def test_bounds_bracket_their_values(self):
        for value in (0.001, 0.7, 1.0, 3.0, 1000.0):
            lo, hi = bucket_bounds(bucket_index(value))
            assert lo < value <= hi


class TestHistogramData:
    def test_merge_matches_combined_observation(self):
        separate_a, separate_b, combined = HistogramData(), HistogramData(), HistogramData()
        for v in (0.5, 1.5, 4.0):
            separate_a.observe(v)
            combined.observe(v)
        for v in (0.1, 8.0):
            separate_b.observe(v)
            combined.observe(v)
        separate_a.merge(separate_b)
        assert separate_a == combined

    def test_dict_round_trip(self):
        hist = HistogramData()
        for v in (0.02, 0.5, 0.5, 9.0):
            hist.observe(v)
        assert HistogramData.from_dict(hist.to_dict()) == hist

    def test_empty_histogram_exports_null_extrema(self):
        data = HistogramData().to_dict()
        assert data["count"] == 0
        assert data["min"] is None and data["max"] is None
        assert HistogramData.from_dict(data).count == 0


class TestSeriesCodec:
    def test_counter_series_round_trip(self):
        series = {
            MetricKey.make("hits", {"module": "a"}): 4.0,
            MetricKey.make("hits", {"module": "b"}): 1.0,
            MetricKey.make("misses", {}): 2.0,
        }
        rows = encode_series(series, "counter")
        assert [r["name"] for r in rows] == ["hits", "hits", "misses"]  # sorted
        assert decode_series(rows, "counter") == series

    def test_histogram_series_round_trip(self):
        hist = HistogramData()
        hist.observe(0.25)
        series = {MetricKey.make("lat", {"op": "x"}): hist}
        assert decode_series(encode_series(series, "histogram"), "histogram") == series
