"""End-to-end: executor runs surface spans and cache counters in obs."""

import pytest

from repro import obs
from repro.workflow.executor import Executor
from repro.workflow.module import Module, ParameterSpec
from repro.workflow.pipeline import Pipeline
from repro.workflow.ports import PortSpec
from repro.workflow.registry import ModuleRegistry


class Source(Module):
    name = "Source"
    output_ports = (PortSpec("out", "number"),)
    parameters = (ParameterSpec("value", 1.0),)

    def compute(self, inputs):
        return {"out": float(self.parameter_values["value"])}


class Double(Module):
    name = "Double"
    input_ports = (PortSpec("in", "number"),)
    output_ports = (PortSpec("out", "number"),)

    def compute(self, inputs):
        return {"out": inputs["in"] * 2}


@pytest.fixture()
def pipeline():
    reg = ModuleRegistry()
    reg.register("test", Source)
    reg.register("test", Double)
    p = Pipeline(reg)
    source = p.add_module("Source", {"value": 3.0})
    double = p.add_module("Double")
    p.add_connection(source, "out", double, "in")
    return p


class TestExecutorInstrumentation:
    def test_cache_counters_in_exported_metrics(self, pipeline):
        executor = Executor(caching=True, max_workers=2)
        with obs.recording() as rec:
            executor.execute(pipeline)  # cold: all misses
            executor.execute(pipeline)  # warm: all hits
        assert rec.counter_total("executor.cache.miss") == 2.0
        assert rec.counter_total("executor.cache.hit") == 2.0
        # per-module label breakdown
        assert rec.counter_value("executor.cache.miss", module="test:Source") == 1.0
        assert rec.counter_value("executor.cache.hit", module="test:Double") == 1.0
        # and the same series survive JSON export
        exported = rec.to_dict()
        names = {row["name"] for row in exported["counters"]}
        assert {"executor.cache.hit", "executor.cache.miss"} <= names

    def test_module_spans_parented_under_execute(self, pipeline):
        with obs.recording() as rec:
            Executor(caching=False, max_workers=2).execute(pipeline)
        execute = [s for s in rec.spans if s.name == "executor.execute"]
        modules = [s for s in rec.spans if s.name == "executor.module"]
        assert len(execute) == 1
        assert len(modules) == 2
        assert all(m.parent_id == execute[0].span_id for m in modules)
        assert {m.attrs["module"] for m in modules} == {"test:Source", "test:Double"}
        assert {m.attrs["status"] for m in modules} == {"ok"}

    def test_cached_runs_marked_in_span_attrs(self, pipeline):
        executor = Executor(caching=True)
        with obs.recording() as rec:
            executor.execute(pipeline)
            executor.execute(pipeline)
        statuses = [s.attrs["status"] for s in rec.spans if s.name == "executor.module"]
        assert statuses.count("ok") == 2
        assert statuses.count("cached") == 2

    def test_module_duration_histograms_recorded(self, pipeline):
        with obs.recording() as rec:
            Executor(caching=False).execute(pipeline)
        series = {k.name: v for k, v in rec.histograms.items()}
        assert "executor.module.duration" in series

    def test_result_cache_fields_match_counters(self, pipeline):
        executor = Executor(caching=True)
        with obs.recording() as rec:
            cold = executor.execute(pipeline)
            warm = executor.execute(pipeline)
        assert cold.cache_hits == 0 and cold.cache_misses == 2
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert rec.counter_total("executor.cache.hit") == warm.cache_hits
        assert rec.counter_total("executor.cache.miss") == cold.cache_misses

    def test_executor_untraced_when_disabled(self, pipeline):
        assert not obs.enabled()
        before = len(obs.get_recorder().spans)
        result = Executor(caching=True).execute(pipeline)
        assert result.cache_misses == 2
        assert len(obs.get_recorder().spans) == before
