"""Recorder export: JSON round-trip and the human-readable summary tree."""

import json

from repro import obs
from repro.obs import Recorder, render_summary_tree


def populate():
    with obs.recording() as rec:
        with obs.span("render", frame=1):
            with obs.span("raycast", rays=100):
                obs.counter("raycast.samples", 4200)
            with obs.span("raycast", rays=100):
                pass
        obs.gauge("workers", 4.0)
        obs.histogram("module.duration", 0.25, module="Slicer")
        obs.histogram("module.duration", 0.5, module="Slicer")
    return rec


class TestJsonRoundTrip:
    def test_to_json_is_valid_sorted_json(self):
        payload = populate().to_json()
        data = json.loads(payload)
        assert set(data) == {"spans", "counters", "gauges", "histograms"}
        assert payload == json.dumps(data, sort_keys=True)

    def test_round_trip_preserves_everything(self):
        rec = populate()
        clone = Recorder.from_json(rec.to_json())
        assert clone.spans == rec.spans
        assert clone.counters == rec.counters
        assert clone.gauges == rec.gauges
        assert clone.histograms == rec.histograms
        # and the round trip is a fixed point
        assert clone.to_json() == rec.to_json()

    def test_restored_recorder_continues_id_sequence(self):
        rec = populate()
        clone = Recorder.from_dict(rec.to_dict())
        top = clone.span("later")
        assert top.id > max(s.span_id for s in rec.spans)


class TestSummaryTree:
    def test_tree_aggregates_repeated_spans(self):
        text = populate().summary_tree()
        lines = text.splitlines()
        render_line = next(line for line in lines if "render" in line)
        raycast_line = next(line for line in lines if "raycast" in line)
        assert "1" in render_line  # one render span
        assert "2" in raycast_line  # two raycast spans aggregated
        # children are indented under their parent
        assert lines.index(raycast_line) > lines.index(render_line)
        assert len(raycast_line) - len(raycast_line.lstrip()) > (
            len(render_line) - len(render_line.lstrip())
        )

    def test_tree_lists_metrics(self):
        text = render_summary_tree(populate())
        assert "raycast.samples" in text
        assert "workers" in text
        assert "module.duration" in text
        assert "module=Slicer" in text

    def test_empty_recorder_renders(self):
        assert isinstance(render_summary_tree(Recorder()), str)
