"""Recorder: span nesting (including across threads) and metric series."""

from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.obs import NULL_SPAN, Recorder


def span_by_name(recorder, name):
    matches = [s for s in recorder.spans if s.name == name]
    assert len(matches) == 1, f"expected one {name!r} span, got {len(matches)}"
    return matches[0]


class TestSpanNesting:
    def test_parent_child_same_thread(self):
        with obs.recording() as rec:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        outer = span_by_name(rec, "outer")
        inner = span_by_name(rec, "inner")
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id

    def test_sibling_spans_share_parent(self):
        with obs.recording() as rec:
            with obs.span("root"):
                with obs.span("a"):
                    pass
                with obs.span("b"):
                    pass
        root = span_by_name(rec, "root")
        assert span_by_name(rec, "a").parent_id == root.span_id
        assert span_by_name(rec, "b").parent_id == root.span_id

    def test_cross_thread_parenting_via_parent_id(self):
        """Worker threads have empty stacks; the dispatching thread passes
        its span id explicitly (the executor's pattern)."""
        with obs.recording() as rec:
            with obs.span("dispatch") as dispatch:
                def work(i):
                    with obs.span("worker", parent_id=dispatch.id, index=i):
                        pass

                with ThreadPoolExecutor(max_workers=4) as pool:
                    list(pool.map(work, range(8)))
        dispatch_record = span_by_name(rec, "dispatch")
        workers = [s for s in rec.spans if s.name == "worker"]
        assert len(workers) == 8
        assert all(w.parent_id == dispatch_record.span_id for w in workers)
        assert sorted(w.attrs["index"] for w in workers) == list(range(8))

    def test_thread_stacks_are_independent(self):
        """A span opened on one thread must not become the implicit parent
        of spans opened on another."""
        with obs.recording() as rec:
            with obs.span("main-only"):
                def work():
                    with obs.span("detached"):
                        pass

                with ThreadPoolExecutor(max_workers=1) as pool:
                    pool.submit(work).result()
        assert span_by_name(rec, "detached").parent_id is None

    def test_span_records_duration_and_attrs(self):
        with obs.recording() as rec:
            with obs.span("timed", rows=3) as sp:
                sp.set(cols=4)
        record = span_by_name(rec, "timed")
        assert record.duration >= 0.0
        assert record.attrs == {"rows": 3, "cols": 4}

    def test_exception_sets_error_attr_and_pops_stack(self):
        with obs.recording() as rec:
            try:
                with obs.span("doomed"):
                    raise ValueError("boom")
            except ValueError:
                pass
            assert rec.current_span_id() is None
        assert span_by_name(rec, "doomed").attrs["error"] == "ValueError"

    def test_current_span_id_tracks_innermost(self):
        with obs.recording() as rec:
            assert rec.current_span_id() is None
            with obs.span("outer") as outer:
                assert obs.current_span_id() == outer.id
                with obs.span("inner") as inner:
                    assert obs.current_span_id() == inner.id
                assert obs.current_span_id() == outer.id


class TestDisabledIsFree:
    def test_span_returns_shared_null_span(self):
        assert not obs.enabled()
        sp = obs.span("anything", huge=list(range(3)))
        assert sp is NULL_SPAN
        assert sp.set(more=1) is NULL_SPAN
        with sp:
            pass

    def test_metrics_are_dropped_when_disabled(self):
        baseline = obs.get_recorder().to_dict()
        obs.counter("nope")
        obs.gauge("nope", 1.0)
        obs.histogram("nope", 1.0)
        assert obs.get_recorder().to_dict() == baseline

    def test_recording_restores_previous_state(self):
        before = obs.get_recorder()
        assert not obs.enabled()
        with obs.recording() as rec:
            assert obs.enabled()
            assert obs.get_recorder() is rec
        assert not obs.enabled()
        assert obs.get_recorder() is before


class TestMetricAggregation:
    def test_counter_accumulates_per_label_series(self):
        with obs.recording() as rec:
            obs.counter("cache", module="a")
            obs.counter("cache", module="a")
            obs.counter("cache", 3, module="b")
        assert rec.counter_value("cache", module="a") == 2.0
        assert rec.counter_value("cache", module="b") == 3.0
        assert rec.counter_total("cache") == 5.0
        assert rec.counter_value("cache", module="zzz") == 0.0

    def test_gauge_keeps_last_value(self):
        with obs.recording() as rec:
            obs.gauge("depth", 4.0)
            obs.gauge("depth", 7.0)
        assert len(rec.gauges) == 1
        assert next(iter(rec.gauges.values())) == 7.0

    def test_histogram_streams_summary_statistics(self):
        with obs.recording() as rec:
            for value in (1.0, 2.0, 3.0):
                obs.histogram("latency", value, op="render")
        hist = next(iter(rec.histograms.values()))
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == 2.0

    def test_counters_are_thread_safe(self):
        with obs.recording() as rec:
            def bump():
                for _ in range(200):
                    obs.counter("hits")

            with ThreadPoolExecutor(max_workers=8) as pool:
                for future in [pool.submit(bump) for _ in range(8)]:
                    future.result()
        assert rec.counter_value("hits") == 8 * 200

    def test_reset_clears_everything(self):
        rec = Recorder()
        with obs.recording(rec):
            with obs.span("s"):
                obs.counter("c")
                obs.gauge("g", 1.0)
                obs.histogram("h", 1.0)
        rec.reset()
        assert rec.spans == []
        assert rec.counters == {}
        assert rec.gauges == {}
        assert rec.histograms == {}
