"""CircuitBreaker: state machine, half-open probing, metrics."""

import pytest

from repro import obs
from repro.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, CircuitOpenError
from repro.util.errors import ResilienceError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(threshold=3, reset=10.0, **kwargs):
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=threshold, reset_timeout=reset, clock=clock, **kwargs
    )
    return breaker, clock


def boom():
    raise OSError("dependency down")


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _clock = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _clock = make_breaker(threshold=3)
        for _ in range(3):
            with pytest.raises(OSError):
                breaker.call(boom)
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker, _clock = make_breaker(threshold=3)
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(boom)
        breaker.call(lambda: "ok")
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(boom)
        assert breaker.state == CLOSED  # never hit 3 consecutive

    def test_open_short_circuits_with_error_or_fallback(self):
        breaker, _clock = make_breaker(threshold=1)
        with pytest.raises(OSError):
            breaker.call(boom)
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")
        assert breaker.call(lambda: "never runs", fallback=lambda: "mirror") == "mirror"

    def test_half_open_after_reset_timeout(self):
        breaker, clock = make_breaker(threshold=1, reset=10.0)
        with pytest.raises(OSError):
            breaker.call(boom)
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN

    def test_half_open_probe_success_closes(self):
        breaker, clock = make_breaker(threshold=1, reset=10.0)
        with pytest.raises(OSError):
            breaker.call(boom)
        clock.advance(10.0)
        assert breaker.call(lambda: "recovered") == "recovered"
        assert breaker.state == CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = make_breaker(threshold=1, reset=10.0)
        with pytest.raises(OSError):
            breaker.call(boom)
        clock.advance(10.0)
        with pytest.raises(OSError):
            breaker.call(boom)
        assert breaker.state == OPEN
        # and the open window restarted at the probe failure
        clock.advance(5.0)
        assert breaker.state == OPEN

    def test_half_open_limits_concurrent_probes(self):
        breaker, clock = make_breaker(threshold=1, reset=10.0, half_open_max=1)
        with pytest.raises(OSError):
            breaker.call(boom)
        clock.advance(10.0)
        assert breaker.allow()  # the single probe slot
        assert not breaker.allow()  # everyone else still short-circuits

    def test_validation(self):
        with pytest.raises(ResilienceError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ResilienceError):
            CircuitBreaker(reset_timeout=0.0)
        with pytest.raises(ResilienceError):
            CircuitBreaker(half_open_max=0)


class TestMetrics:
    def test_state_gauge_and_transition_counter(self):
        recorder = obs.enable(obs.Recorder())
        try:
            breaker, clock = make_breaker(threshold=1, reset=10.0)
            breaker.name = "unit"
            with pytest.raises(OSError):
                breaker.call(boom)
            clock.advance(10.0)
            breaker.call(lambda: "ok")
        finally:
            obs.disable()
        assert any(k.name == "resilience.breaker.state" for k in recorder.gauges)
        # closed -> open -> half_open -> closed: three transitions
        total = recorder.counter_total("resilience.breaker.transitions")
        assert total == 3
