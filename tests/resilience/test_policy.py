"""RetryPolicy: deterministic backoff, attempt/deadline budgets, metrics."""

import pytest

from repro import obs
from repro.resilience import FAIL_FAST, RetryPolicy
from repro.util.errors import ResilienceError


class TestBackoffSchedule:
    def test_delays_are_deterministic(self):
        a = RetryPolicy(max_attempts=5, seed="x")
        b = RetryPolicy(max_attempts=5, seed="x")
        assert a.delays() == b.delays()

    def test_seed_decorrelates_jitter(self):
        a = RetryPolicy(max_attempts=5, seed="x")
        b = RetryPolicy(max_attempts=5, seed="y")
        assert a.delays() != b.delays()
        assert a.with_seed("y").delays() == b.delays()

    def test_exponential_growth_and_ceiling(self):
        p = RetryPolicy(
            max_attempts=6, base_delay=0.1, multiplier=2.0, max_delay=0.4, jitter=0.0
        )
        assert p.delays() == (0.1, 0.2, 0.4, 0.4, 0.4)

    def test_jitter_bounded(self):
        p = RetryPolicy(max_attempts=10, base_delay=1.0, multiplier=1.0, jitter=0.25)
        for delay in p.delays():
            assert 0.75 <= delay <= 1.25

    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ResilienceError):
            RetryPolicy(deadline=0.0)


class TestRun:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0)
        assert policy.run(flaky, retry_on=(OSError,), sleep=lambda s: None) == "ok"
        assert calls["n"] == 3

    def test_attempt_budget_exhausted_reraises(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise OSError("permanent")

        with pytest.raises(OSError, match="permanent"):
            policy.run(always_fails, retry_on=(OSError,), sleep=lambda s: None)
        assert calls["n"] == 3

    def test_non_retryable_exception_escapes_immediately(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)
        calls = {"n": 0}

        def wrong_kind():
            calls["n"] += 1
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            policy.run(wrong_kind, retry_on=(OSError,), sleep=lambda s: None)
        assert calls["n"] == 1

    def test_deadline_stops_retrying(self):
        # backoff of 10s exceeds the 0.05s budget: exactly one attempt
        policy = RetryPolicy(
            max_attempts=10, base_delay=10.0, jitter=0.0, deadline=0.05
        )
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise OSError("x")

        with pytest.raises(OSError):
            policy.run(always_fails, retry_on=(OSError,), sleep=lambda s: None)
        assert calls["n"] == 1

    def test_on_retry_hook_sees_schedule(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.0)
        seen = []

        def always_fails():
            raise OSError("x")

        with pytest.raises(OSError):
            policy.run(
                always_fails,
                retry_on=(OSError,),
                sleep=lambda s: None,
                on_retry=lambda attempt, exc, delay: seen.append((attempt, delay)),
            )
        assert seen == [(0, 0.5), (1, 1.0)]

    def test_fail_fast_policy_never_retries(self):
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise OSError("x")

        with pytest.raises(OSError):
            FAIL_FAST.run(always_fails, retry_on=(OSError,), sleep=lambda s: None)
        assert calls["n"] == 1


class TestMetrics:
    def test_retry_counters_and_recovery_histogram(self):
        recorder = obs.enable(obs.Recorder())
        try:
            calls = {"n": 0}

            def flaky():
                calls["n"] += 1
                if calls["n"] < 3:
                    raise OSError("transient")
                return "ok"

            policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)
            policy.run(flaky, retry_on=(OSError,), label="unit", sleep=lambda s: None)
        finally:
            obs.disable()
        assert recorder.counter_value("resilience.retries", site="unit") == 2
        names = {k.name for k in recorder.histograms}
        assert "resilience.retry.delay" in names
        assert "resilience.recovery.seconds" in names
