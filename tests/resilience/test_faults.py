"""The fault-injection registry: matching, budgets, actions, scoping."""

import pytest

from repro import obs
from repro.resilience import faults
from repro.util.errors import InjectedFault, ResilienceError


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm()
    yield
    faults.disarm()


class TestArming:
    def test_unarmed_site_is_noop(self):
        assert faults.check("nowhere", anything=1) is None
        assert not faults.armed("nowhere")

    def test_unknown_action_rejected(self):
        with pytest.raises(ResilienceError, match="unknown fault action"):
            faults.arm("site", "explode")

    def test_disarm_site_and_all(self):
        faults.arm("a", "drop")
        faults.arm("b", "drop")
        assert faults.armed("a") and faults.armed("b")
        faults.disarm("a")
        assert not faults.armed("a") and faults.armed("b")
        faults.disarm()
        assert not faults.armed()


class TestFiring:
    def test_raise_action_raises_injected_fault(self):
        faults.arm("site", "raise", message="boom")
        with pytest.raises(InjectedFault, match="boom"):
            faults.check("site")

    def test_times_budget(self):
        fault = faults.arm("site", "raise", times=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                faults.check("site")
        assert faults.check("site") is None  # exhausted
        assert fault.fired == 2

    def test_after_skips_initial_visits(self):
        faults.arm("site", "raise", after=2)
        assert faults.check("site") is None
        assert faults.check("site") is None
        with pytest.raises(InjectedFault):
            faults.check("site")

    def test_match_predicate_filters_labels(self):
        fault = faults.arm("site", "drop", match={"client": 1})
        assert faults.check("site", client=0) is None
        assert faults.check("site", client=1) is fault
        # missing label does not match either
        assert faults.check("site") is None

    def test_drop_and_corrupt_are_returned_not_acted(self):
        faults.arm("site", "drop")
        fired = faults.check("site")
        assert fired is not None and fired.action == "drop"

    def test_delay_action_sleeps_then_continues(self):
        import time

        faults.arm("site", "delay", delay_seconds=0.01)
        t0 = time.perf_counter()
        fired = faults.check("site")
        assert fired is not None and fired.action == "delay"
        assert time.perf_counter() - t0 >= 0.01

    def test_unlimited_times(self):
        faults.arm("site", "drop", times=0)
        for _ in range(5):
            assert faults.check("site") is not None


class TestScoping:
    def test_injected_context_manager_restores(self):
        outer = faults.arm("site", "drop", match={"k": 1})
        with faults.injected("site", "drop", match={"k": 2}):
            assert faults.check("site", k=2) is not None
        assert faults.check("site", k=2) is None
        assert faults.check("site", k=1) is outer

    def test_fired_counter_metric(self):
        recorder = obs.enable(obs.Recorder())
        try:
            faults.arm("site", "drop")
            faults.check("site")
        finally:
            obs.disable()
        assert (
            recorder.counter_value(
                "resilience.faults.fired", site="site", action="drop"
            )
            == 1
        )

    def test_iter_faults_snapshot(self):
        faults.arm("a", "drop")
        faults.arm("b", "raise")
        assert sorted(f.site for f in faults.iter_faults()) == ["a", "b"]
