"""Setup shim.

The primary build configuration lives in ``pyproject.toml``.  This file
exists so that ``pip install -e . --no-build-isolation`` (and the legacy
``python setup.py develop``) work in offline environments that lack the
``wheel`` package required by the PEP 660 editable-install path.
"""

from setuptools import setup

setup()
