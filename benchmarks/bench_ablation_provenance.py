"""Ablation — the cost of transparent provenance capture.

Every workflow edit through a :class:`Vistrail` records a change action
and grows the version tree; the ablation measures that overhead against
editing a bare :class:`Pipeline`, plus the cost of materializing (re-
playing) deep histories — the operation behind "users can easily back
up to earlier stages".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.provenance.vistrail import Vistrail
from repro.workflow.pipeline import Pipeline

N_EDITS = 200


def run_edit_script_bare(registry) -> Pipeline:
    pipeline = Pipeline(registry)
    module = pipeline.add_module("basic:Constant", {"value": 0})
    for i in range(N_EDITS):
        pipeline.set_parameter(module, "value", i)
    return pipeline


def run_edit_script_tracked(registry) -> Vistrail:
    vistrail = Vistrail("bench", registry)
    module = vistrail.add_module("basic:Constant", {"value": 0})
    for i in range(N_EDITS):
        vistrail.set_parameter(module, "value", i)
    return vistrail


def test_ablation_edits_bare_pipeline(benchmark, registry):
    benchmark.group = "ablation-provenance-edits"
    pipeline = benchmark(lambda: run_edit_script_bare(registry))
    assert pipeline.modules[0].parameters["value"] == N_EDITS - 1


def test_ablation_edits_with_provenance(benchmark, registry):
    benchmark.group = "ablation-provenance-edits"
    vistrail = benchmark(lambda: run_edit_script_tracked(registry))
    assert len(vistrail.tree) == N_EDITS + 2  # root + add + edits


@pytest.mark.parametrize("depth", [50, 200])
def test_ablation_materialize_history(benchmark, registry, depth):
    """Replaying a version at the end of a deep linear history."""
    vistrail = Vistrail("bench", registry)
    module = vistrail.add_module("basic:Constant", {"value": 0})
    for i in range(depth):
        vistrail.set_parameter(module, "value", i)
    target = vistrail.current_version
    benchmark.group = "ablation-provenance-materialize"
    pipeline = benchmark(lambda: vistrail.tree.materialize(target, registry))
    assert pipeline.modules[module].parameters["value"] == depth - 1


def test_ablation_provenance_report(registry):
    import time

    t0 = time.perf_counter()
    run_edit_script_bare(registry)
    bare = time.perf_counter() - t0
    t0 = time.perf_counter()
    vistrail = run_edit_script_tracked(registry)
    tracked = time.perf_counter() - t0
    per_edit_us = (tracked - bare) / N_EDITS * 1e6
    report("Ablation: provenance capture overhead",
           [("bare edits", f"{bare * 1e3:.2f} ms / {N_EDITS}"),
            ("tracked edits", f"{tracked * 1e3:.2f} ms / {N_EDITS}"),
            ("overhead per edit", f"{per_edit_us:.1f} µs")])
    # capture must stay cheap relative to any real module execution
    assert per_edit_us < 5000
