"""Ablation — vectorized ray casting vs a naive per-ray Python loop.

The session coding guides demand vectorized inner loops; this ablation
quantifies why.  The production ray caster marches all active rays in
lock-step with one ``map_coordinates`` call per step; the reference
implementation below is the textbook per-ray loop.  Both produce the
same image (asserted), at wildly different cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.rendering.camera import Camera
from repro.rendering.image_data import ImageData
from repro.rendering.raycast import _ray_box_intersection, raycast_volume
from repro.rendering.transfer_function import TransferFunction


def make_volume(n: int = 28) -> ImageData:
    x = np.linspace(-1, 1, n)
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    vol = ImageData((n, n, n), origin=(-1, -1, -1), spacing=(2 / (n - 1),) * 3)
    vol.add_array("d", np.exp(-3 * (X**2 + Y**2 + Z**2)))
    return vol


def naive_raycast(volume, transfer, camera, width, height, step):
    """Per-ray Python loop (the ablated implementation)."""
    origins, dirs = camera.pixel_rays(width, height)
    t_enter, t_exit = _ray_box_intersection(origins, dirs, volume.bounds())
    t_enter = np.maximum(t_enter, camera.near)
    out = np.zeros((width * height, 4), dtype=np.float64)
    reference_step = float(min(volume.spacing))
    for ray in range(origins.shape[0]):
        if t_enter[ray] >= t_exit[ray]:
            continue
        color = np.zeros(3)
        transmittance = 1.0
        t = t_enter[ray]
        while t < t_exit[ray] and transmittance > 5e-3:
            point = origins[ray] + dirs[ray] * t
            sample = volume.sample(point.reshape(1, 3))
            rgb, alpha = transfer.evaluate(sample)
            alpha = 1.0 - (1.0 - np.clip(alpha[0], 0.0, 0.999)) ** (step / reference_step)
            color += transmittance * alpha * rgb[0]
            transmittance *= 1.0 - alpha
            t += step
        out[ray, :3] = color
        out[ray, 3] = 1.0 - transmittance
    return out.reshape(height, width, 4).astype(np.float32)


@pytest.fixture(scope="module")
def setup():
    volume = make_volume()
    transfer = TransferFunction(volume.scalar_range(), center=0.8, width=0.4)
    camera = Camera.fit_bounds(volume.bounds())
    return volume, transfer, camera


def test_ablation_raycast_vectorized(benchmark, setup):
    volume, transfer, camera = setup
    benchmark.group = "ablation-raycast"
    rgba = benchmark(lambda: raycast_volume(volume, transfer, camera, 48, 36,
                                            step_size=0.05, lighting=False))
    assert rgba[18, 24, 3] > 0.1


def test_ablation_raycast_naive(benchmark, setup):
    volume, transfer, camera = setup
    benchmark.group = "ablation-raycast"
    rgba = benchmark.pedantic(
        lambda: naive_raycast(volume, transfer, camera, 48, 36, step=0.05),
        rounds=1, iterations=1,
    )
    assert rgba[18, 24, 3] > 0.1


def test_ablation_raycast_equivalence(setup):
    """Both implementations composite to (nearly) the same image."""
    volume, transfer, camera = setup
    fast = raycast_volume(volume, transfer, camera, 24, 18, step_size=0.05,
                          lighting=False)
    slow = naive_raycast(volume, transfer, camera, 24, 18, step=0.05)
    max_diff = float(np.abs(fast - slow).max())
    report("Ablation: raycast implementations agree",
           [("max |vectorized - naive|", f"{max_diff:.4f}")])
    assert max_diff < 0.06
