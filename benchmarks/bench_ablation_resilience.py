"""Ablation — hyperwall frame latency under injected client failures.

A 2×2 wall (four cells, four real client processes) executes one frame
while 0, 1 or 2 clients are killed mid-execution through the fault
registry.  The recovery policies are compared:

* **fail_fast** — the pre-resilience behavior: any lost client aborts
  the frame (measured only at 0 failures; with failures it raises);
* **reassign** — lost cells are re-executed at full resolution on
  surviving clients: the frame stays complete and full-quality, at the
  cost of the survivors doing extra serial work;
* **degrade** — lost cells are served from the server's
  reduced-resolution mirror: cheapest recovery, reduced quality.

The measured deltas quantify the paper-scale trade-off: how much frame
latency a wall operator pays per lost node under each policy.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import build_cell_chain, report
from repro.hyperwall.cluster import LocalCluster
from repro.hyperwall.display import WallGeometry
from repro.resilience import faults
from repro.util.errors import HyperwallError
from repro.workflow.pipeline import Pipeline

WALL = WallGeometry(columns=2, rows=2, tile_width=64, tile_height=48)
SIZE = {"nlat": 23, "nlon": 36, "nlev": 6, "ntime": 2}
N_CELLS = 4


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm()
    yield
    faults.disarm()


def wall_pipeline(registry) -> Pipeline:
    pipeline = Pipeline(registry)
    for _ in range(N_CELLS):
        build_cell_chain(pipeline, width=64, height=48, size=SIZE)
    return pipeline


def run_frame(registry, failover: str, kill: int):
    """One full cluster session with *kill* clients dying mid-execution."""
    for client_id in range(kill):
        # kill the highest-numbered clients so survivor 0 always exists
        faults.arm(
            "hyperwall.client.execute", "exit",
            match={"client": N_CELLS - 1 - client_id},
        )
    cluster = LocalCluster(
        wall_pipeline(registry), n_clients=N_CELLS, wall=WALL,
        reduction=4, io_timeout=60.0, failover=failover,
    )
    t0 = time.perf_counter()
    with cluster:
        out = cluster.run_session()
    elapsed = time.perf_counter() - t0
    faults.disarm()
    return elapsed, out


@pytest.mark.parametrize("kill", [0, 1, 2], ids=["0-failures", "1-failure", "2-failures"])
def test_ablation_resilience_reassign(benchmark, registry, kill):
    benchmark.group = "ablation-resilience-reassign"
    _, out = benchmark(lambda: run_frame(registry, "reassign", kill))
    statuses = list(out["cell_status"].values())
    assert len(statuses) == N_CELLS  # the frame is always complete
    assert statuses.count("live") == N_CELLS - kill


@pytest.mark.parametrize("kill", [0, 1, 2], ids=["0-failures", "1-failure", "2-failures"])
def test_ablation_resilience_degrade(benchmark, registry, kill):
    benchmark.group = "ablation-resilience-degrade"
    _, out = benchmark(lambda: run_frame(registry, "degrade", kill))
    statuses = list(out["cell_status"].values())
    assert len(statuses) == N_CELLS
    assert statuses.count("degraded") == kill


def test_fail_fast_aborts_the_frame(registry):
    """The baseline policy cannot survive even one lost client."""
    with pytest.raises(HyperwallError, match="disconnected"):
        run_frame(registry, "fail_fast", kill=1)


def test_ablation_resilience_report(registry):
    """The summary table: frame latency by policy and failure count."""
    rows = [("policy", "0 failures (s)", "1 failure (s)", "2 failures (s)")]
    timings = {}
    for policy in ("reassign", "degrade"):
        per_kill = {}
        for kill in (0, 1, 2):
            elapsed, out = run_frame(registry, policy, kill)
            per_kill[kill] = elapsed
            assert len(out["cell_status"]) == N_CELLS
            assert len(out["dead_clients"]) == kill
        timings[policy] = per_kill
        rows.append(
            (policy,) + tuple(f"{per_kill[k]:.2f}" for k in (0, 1, 2))
        )
    fail_fast_clean, _ = run_frame(registry, "fail_fast", kill=0)
    rows.append(("fail_fast", f"{fail_fast_clean:.2f}", "aborts", "aborts"))
    report("Ablation: frame latency under injected client failures", rows)
    # recovery must cost something but never hang the frame
    for policy in ("reassign", "degrade"):
        assert timings[policy][2] < 60.0
