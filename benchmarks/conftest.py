"""Shared benchmark fixtures and reporting helpers.

Each ``bench_fig*.py`` file regenerates the content of one paper figure
(the paper is a tool paper — its figures are screenshots and
architecture diagrams, so "regenerating" one means executing the
pipeline the figure depicts and reporting its quantitative
characteristics).  EXPERIMENTS.md records the measured numbers next to
the paper's qualitative claims.
"""

from __future__ import annotations

import pytest

from repro.workflow.pipeline import Pipeline
from repro.workflow.registry import global_registry

#: moderate workload: big enough to be meaningful, small enough to sweep
BENCH_SIZE = {"nlat": 46, "nlon": 72, "nlev": 12, "ntime": 4}


@pytest.fixture(scope="session")
def registry():
    return global_registry()


def build_cell_chain(
    pipeline: Pipeline,
    plot: str = "Slicer",
    variable: str = "ta",
    width: int = 128,
    height: int = 96,
    size: dict | None = None,
) -> dict:
    """One reader → variable → plot → cell chain; returns module ids."""
    reader = pipeline.add_module(
        "CDMSDatasetReader",
        {"source": "synthetic_reanalysis", "size": dict(size or BENCH_SIZE)},
    )
    var = pipeline.add_module("CDMSVariableReader", {"variable": variable})
    plot_id = pipeline.add_module(plot)
    cell = pipeline.add_module("DV3DCell", {"width": width, "height": height})
    pipeline.add_connection(reader, "dataset", var, "dataset")
    pipeline.add_connection(var, "variable", plot_id, "variable")
    pipeline.add_connection(plot_id, "plot", cell, "plot")
    return {"reader": reader, "variable": var, "plot": plot_id, "cell": cell}


def report(title: str, rows: list[tuple]) -> None:
    """Print a small aligned table into the benchmark output."""
    print(f"\n--- {title} ---")
    for row in rows:
        print("   ", " | ".join(str(item) for item in row))
