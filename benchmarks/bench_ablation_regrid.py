"""Ablation — regridding schemes: bilinear vs first-order conservative.

The paper's CDAT list includes "regridding".  The two schemes trade
cost against conservation: bilinear is cheaper but does not preserve
area means; conservative preserves the global mean to machine precision.
The ablation quantifies both sides of that trade.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.cdms.grid import uniform_grid
from repro.cdms.regrid import regrid_bilinear, regrid_conservative
from repro.data.fields import global_temperature

SOURCE = (72, 144)
TARGETS = [(46, 72), (91, 180)]


@pytest.fixture(scope="module")
def field():
    return global_temperature(nlat=SOURCE[0], nlon=SOURCE[1], nlev=4, ntime=2,
                              seed="regrid-bench")


def area_mean(var) -> float:
    grid = var.get_grid()
    w = grid.area_weights()
    data = var.filled(0.0)[0, 0]
    return float((data * w).sum())


@pytest.mark.parametrize("target", TARGETS, ids=["coarsen", "refine"])
@pytest.mark.parametrize("method", ["bilinear", "conservative"])
def test_ablation_regrid_cost(benchmark, field, method, target):
    func = regrid_bilinear if method == "bilinear" else regrid_conservative
    grid = uniform_grid(*target)
    benchmark.group = f"ablation-regrid-{target[0]}x{target[1]}"
    out = benchmark(lambda: func(field, grid))
    assert out.get_grid().shape == target


def test_ablation_regrid_accuracy(field):
    """Conservation error: conservative ≈ 0, bilinear measurably nonzero."""
    source_mean = area_mean(field)
    rows = [("method", "target", "global-mean error (K)")]
    errors = {}
    for method, func in (("bilinear", regrid_bilinear),
                         ("conservative", regrid_conservative)):
        out = func(field, uniform_grid(24, 36))
        error = abs(area_mean(out) - source_mean)
        errors[method] = error
        rows.append((method, "24x36", f"{error:.2e}"))
    report("Ablation: regrid conservation", rows)
    assert errors["conservative"] < 1e-9
    assert errors["bilinear"] > errors["conservative"]
