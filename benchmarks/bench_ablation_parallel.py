"""Ablation — "parallel task execution" (paper abstract).

Independent workflow branches execute concurrently on the executor's
thread pool.  The ablation separates the two workload regimes that
matter in practice:

* **latency-bound** stages (remote/ESG data access, external tools) —
  threads overlap their waiting, so the fan of branches speeds up by
  nearly the worker count;
* **CPU-bound** pure-Python stages (software rendering) — the GIL
  serializes them, so thread-level parallelism does not help; that
  regime is what the hyperwall's *process-level* distribution (Fig. 5,
  benchmarked separately) exists for.

Both regimes are measured and reported; the speedup assertion applies
to the latency-bound case, where the design actually claims a win.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_cell_chain, report
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline

SIZE = {"nlat": 23, "nlon": 36, "nlev": 6, "ntime": 2}
N_BRANCHES = 6
STAGE_SECONDS = 0.05

_SLEEPER_SOURCE = (
    "import time\n"
    f"time.sleep({STAGE_SECONDS})\n"
    "outputs = {'result': 1}\n"
)


def latency_fan(registry) -> Pipeline:
    """N independent simulated remote-access stages."""
    pipeline = Pipeline(registry)
    for _ in range(N_BRANCHES):
        pipeline.add_module("basic:PythonSource", {"source": _SLEEPER_SOURCE})
    return pipeline


def render_fan(registry) -> Pipeline:
    """N independent CPU-bound render chains."""
    pipeline = Pipeline(registry)
    variables = ["ta", "zg", "ua", "va", "hus", "ta"]
    for index in range(N_BRANCHES):
        build_cell_chain(pipeline, variable=variables[index], width=64,
                         height=48, size=SIZE)
    return pipeline


@pytest.mark.parametrize("workers", [1, 4], ids=["serial", "parallel-4"])
def test_ablation_parallel_latency_bound(benchmark, registry, workers):
    pipeline = latency_fan(registry)
    benchmark.group = "ablation-parallel-latency"
    result = benchmark(
        lambda: Executor(caching=False, max_workers=workers).execute(pipeline)
    )
    assert len(result.runs) == N_BRANCHES


@pytest.mark.parametrize("workers", [1, 4], ids=["serial", "parallel-4"])
def test_ablation_parallel_cpu_bound(benchmark, registry, workers):
    pipeline = render_fan(registry)
    benchmark.group = "ablation-parallel-cpu"
    result = benchmark(
        lambda: Executor(caching=False, max_workers=workers).execute(pipeline)
    )
    assert len([r for r in result.runs if r.module_name == "dv3d:DV3DCell"]) == N_BRANCHES


def test_ablation_parallel_report(registry):
    import time

    rows = [("workload", "serial (s)", "4 workers (s)", "speedup")]
    speedups = {}
    for name, builder in (("latency-bound", latency_fan), ("cpu-bound", render_fan)):
        timings = {}
        for workers in (1, 4):
            executor = Executor(caching=False, max_workers=workers)
            executor.execute(builder(registry))  # warm-up
            t0 = time.perf_counter()
            executor.execute(builder(registry))
            timings[workers] = time.perf_counter() - t0
        speedups[name] = timings[1] / timings[4]
        rows.append((name, f"{timings[1]:.2f}", f"{timings[4]:.2f}",
                     f"{speedups[name]:.2f}x"))
    report("Ablation: parallel task execution (thread pool) by workload regime", rows)
    # threads must overlap latency-bound stages nearly perfectly
    assert speedups["latency-bound"] > 2.0
    # CPU-bound pure-Python work is GIL-serialized: no claim beyond "runs"
    assert speedups["cpu-bound"] > 0.0
