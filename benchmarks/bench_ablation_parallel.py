"""Ablation — "parallel task execution" (paper abstract).

Independent workflow branches execute concurrently on the executor's
thread pool.  The ablation separates the two workload regimes that
matter in practice:

* **latency-bound** stages (remote/ESG data access, external tools) —
  threads overlap their waiting, so the fan of branches speeds up by
  nearly the worker count;
* **CPU-bound** pure-Python stages (software rendering) — the GIL
  serializes them, so thread-level parallelism does not help; that
  regime is what *process-level* parallelism exists for, in two forms:
  the hyperwall's per-cell distribution (benchmarked separately) and
  the tiled kernel pool (:mod:`repro.parallel`), parametrized here by
  process count on the same render fan.

All regimes are measured and reported.  The speedup assertions apply
to the latency-bound case (threads overlap waiting) and — on machines
with enough cores — to the process-pool CPU-bound case, where the
tiled kernels claim a >= 2x win at 4 workers.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import build_cell_chain, report
from repro.parallel import ParallelConfig
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _process_config(workers: int) -> ParallelConfig | None:
    """Kernel-pool config for *workers* processes (None = serial path)."""
    if workers <= 1:
        return None
    return ParallelConfig(workers=workers, min_items=1, timeout=600.0)

SIZE = {"nlat": 23, "nlon": 36, "nlev": 6, "ntime": 2}
N_BRANCHES = 6
STAGE_SECONDS = 0.05

_SLEEPER_SOURCE = (
    "import time\n"
    f"time.sleep({STAGE_SECONDS})\n"
    "outputs = {'result': 1}\n"
)


def latency_fan(registry) -> Pipeline:
    """N independent simulated remote-access stages."""
    pipeline = Pipeline(registry)
    for _ in range(N_BRANCHES):
        pipeline.add_module("basic:PythonSource", {"source": _SLEEPER_SOURCE})
    return pipeline


def render_fan(registry) -> Pipeline:
    """N independent CPU-bound render chains."""
    pipeline = Pipeline(registry)
    variables = ["ta", "zg", "ua", "va", "hus", "ta"]
    for index in range(N_BRANCHES):
        build_cell_chain(pipeline, variable=variables[index], width=64,
                         height=48, size=SIZE)
    return pipeline


@pytest.mark.parametrize("workers", [1, 4], ids=["serial", "parallel-4"])
def test_ablation_parallel_latency_bound(benchmark, registry, workers):
    pipeline = latency_fan(registry)
    benchmark.group = "ablation-parallel-latency"
    result = benchmark(
        lambda: Executor(caching=False, max_workers=workers).execute(pipeline)
    )
    assert len(result.runs) == N_BRANCHES


@pytest.mark.parametrize("workers", [1, 4], ids=["serial", "parallel-4"])
def test_ablation_parallel_cpu_bound(benchmark, registry, workers):
    pipeline = render_fan(registry)
    benchmark.group = "ablation-parallel-cpu"
    result = benchmark(
        lambda: Executor(caching=False, max_workers=workers).execute(pipeline)
    )
    assert len([r for r in result.runs if r.module_name == "dv3d:DV3DCell"]) == N_BRANCHES


@pytest.mark.parametrize("workers", [1, 4], ids=["serial", "processes-4"])
def test_ablation_parallel_cpu_bound_processes(benchmark, registry, workers):
    """The same CPU-bound render fan, but with the tiled kernel pool:
    rendering inside each module fans out to worker processes."""
    pipeline = render_fan(registry)
    benchmark.group = "ablation-parallel-cpu-processes"
    result = benchmark(
        lambda: Executor(
            caching=False, parallel=_process_config(workers)
        ).execute(pipeline)
    )
    assert len([r for r in result.runs if r.module_name == "dv3d:DV3DCell"]) == N_BRANCHES


def test_ablation_parallel_report(registry):
    import time

    def timed(make_executor):
        timings = {}
        for workers in (1, 4):
            executor = make_executor(workers)
            executor.execute(builder(registry))  # warm-up
            t0 = time.perf_counter()
            executor.execute(builder(registry))
            timings[workers] = time.perf_counter() - t0
        return timings

    rows = [("workload", "serial (s)", "4 workers (s)", "speedup")]
    speedups = {}
    regimes = [
        ("latency-bound (threads)", latency_fan,
         lambda w=1: Executor(caching=False, max_workers=w)),
        ("cpu-bound (threads)", render_fan,
         lambda w=1: Executor(caching=False, max_workers=w)),
        ("cpu-bound (process pool)", render_fan,
         lambda w=1: Executor(caching=False, parallel=_process_config(w))),
    ]
    for name, builder, make_executor in regimes:
        timings = timed(make_executor)
        speedups[name] = timings[1] / timings[4]
        rows.append((name, f"{timings[1]:.2f}", f"{timings[4]:.2f}",
                     f"{speedups[name]:.2f}x"))
    report("Ablation: parallel task execution by workload regime", rows)
    # threads must overlap latency-bound stages nearly perfectly
    assert speedups["latency-bound (threads)"] > 2.0
    # CPU-bound pure-Python work is GIL-serialized: no claim beyond "runs"
    assert speedups["cpu-bound (threads)"] > 0.0
    # the tiled kernel pool is where the CPU-bound win lives — but only
    # when the machine actually has the cores to back it up
    if _usable_cores() >= 4:
        assert speedups["cpu-bound (process pool)"] > 1.2
    else:
        assert speedups["cpu-bound (process pool)"] > 0.0
