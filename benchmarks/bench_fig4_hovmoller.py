"""Figure 4 — the Hovmöller slicer and volume render plots.

The screenshot shows slice/volume views of a data volume with time as
the vertical dimension.  The benchmark regenerates both views over the
equatorial-wave case study, measures the time-spatialization translate
and render stages across series lengths, and verifies the scientific
content: the propagating waves' phase speeds recovered from the
Hovmöller volume match their construction parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.cdat.spectral import dominant_wave
from repro.data.catalog import wave_case_study
from repro.data.fields import equatorial_wave
from repro.dv3d.cell import DV3DCell
from repro.dv3d.hovmoller import HovmollerSlicerPlot, HovmollerVolumePlot
from repro.dv3d.translation import translate_hovmoller

SERIES_LENGTHS = [60, 120, 240]


def wave_variable(ntime: int):
    return equatorial_wave(nlon=144, nlat=32, ntime=ntime, wavenumber=4,
                           period_steps=30.0, eastward=True, seed="fig4")


@pytest.mark.parametrize("ntime", SERIES_LENGTHS)
def test_fig4_translate_time_as_z(benchmark, ntime):
    """Cost of restructuring a time series into a (lon, lat, time) volume."""
    wave = wave_variable(ntime)
    benchmark.group = "fig4-translate"
    volume = benchmark(lambda: translate_hovmoller(wave))
    assert volume.dimensions == (144, 32, ntime)


@pytest.mark.parametrize("ntime", [60, 120])
def test_fig4_slicer_render(benchmark, ntime):
    """Render the Hovmöller slicer cell (the figure's left view)."""
    plot = HovmollerSlicerPlot(wave_variable(ntime), colormap="coolwarm")
    cell = DV3DCell(plot, show_basemap=False, dataset_label="WAVES")
    benchmark.group = "fig4-render"
    fb = benchmark(lambda: cell.render(200, 150))
    assert fb.coverage() > 0.02


def test_fig4_volume_render(benchmark):
    """Render the Hovmöller volume cell (the figure's right view)."""
    plot = HovmollerVolumePlot(wave_variable(60), center=0.85, width=0.2,
                               colormap="coolwarm")
    benchmark.group = "fig4-render"
    fb = benchmark(lambda: plot.render(160, 120))
    assert fb.color.shape == (120, 160, 3)


def test_fig4_wave_content_verified():
    """The visual claim, checked numerically: both case-study modes recover
    their constructed wavenumber/period/direction from the diagram data."""
    dataset = wave_case_study(nlon=144, nlat=32, ntime=120, seed="fig4-check")
    rows = [("variable", "built (k, T, dir)", "recovered (k, T, dir)", "c (deg/step)")]
    for variable_id in ("olr_anom", "olr_west"):
        wave = dataset(variable_id)
        built = (
            wave.attributes["wavenumber"],
            wave.attributes["period_steps"],
            "E" if wave.attributes["eastward"] else "W",
        )
        result = dominant_wave(wave(latitude=0.0).squeeze())
        recovered = (
            int(result["wavenumber"]),
            round(1.0 / max(result["frequency"], 1e-9), 1),
            "E" if result["direction"] > 0 else "W",
        )
        rows.append((variable_id, built, recovered,
                     f"{result['phase_speed_deg_per_step']:+.2f}"))
        assert recovered[0] == built[0]
        assert recovered[2] == built[2]
        assert recovered[1] == pytest.approx(built[1], rel=0.25)
    report("Fig.4: Hovmöller wave content, constructed vs recovered", rows)


def test_fig4_diagram_extraction(benchmark):
    """Extracting the classic 2-D longitude×time diagram from the volume."""
    plot = HovmollerSlicerPlot(wave_variable(120))
    _ = plot.volume  # pre-translate
    benchmark.group = "fig4-translate"
    values, lons, times = benchmark(lambda: plot.diagram(latitude=0.0))
    assert values.shape == (144, 120)
    # wavenumber 4 ⇒ crests repeat every 36 grid points; over 5 steps the
    # pattern drifts east by 3 deg/step * 5 / 2.5 deg-per-point = 6 points
    crest0 = int(np.argmax(values[:, 0]))
    crest1 = int(np.argmax(values[:, 5]))
    shift = (crest1 - crest0) % 36
    assert abs(shift - 6) <= 2
