"""Figure 5 — the hyperwall distributed visualization framework.

The figure shows the NCCS deployment: a 5×3 wall (15 displays, 15.7
Mpixel), one control node, 15 client nodes; the server runs a reduced-
resolution 15-cell mirror while each client runs its own full-resolution
1-cell sub-workflow, and interactions propagate server → clients.

The benchmark reproduces that execution pattern with the in-process
cluster (deterministic) at reduced tile sizes, and reports the numbers
that make the architecture worthwhile: the server-mirror speedup from
resolution reduction, the client-side parallel scaling, and the cost of
interaction propagation.
"""

from __future__ import annotations

import time


from benchmarks.conftest import build_cell_chain, report
from repro.hyperwall.display import NCCS_WALL, WallGeometry
from repro.hyperwall.inproc import InProcessHyperwall
from repro.workflow.pipeline import Pipeline

SIZE = {"nlat": 23, "nlon": 36, "nlev": 6, "ntime": 2}
TILE = (96, 96)
N_CELLS = 15


def wall_workflow(registry, n_cells: int = N_CELLS) -> Pipeline:
    pipeline = Pipeline(registry)
    plots = ["Slicer", "VolumeRender", "Isosurface"]
    variables = ["ta", "zg", "ua", "va", "hus"]
    for index in range(n_cells):
        build_cell_chain(
            pipeline,
            plot=plots[index % len(plots)],
            variable=variables[index % len(variables)],
            width=TILE[0], height=TILE[1], size=SIZE,
        )
    return pipeline


def make_wall(n_cells: int) -> WallGeometry:
    return WallGeometry(columns=5, rows=(n_cells + 4) // 5,
                        tile_width=TILE[0], tile_height=TILE[1])


def test_fig5_server_reduced_mirror(benchmark, registry):
    """The server's 15-cell reduced-resolution execution."""
    hw = InProcessHyperwall(wall_workflow(registry), wall=make_wall(N_CELLS),
                            reduction=4)
    benchmark.group = "fig5-hyperwall"

    def run():
        hw.server_executor.clear_cache()
        return hw.execute_server()

    result = benchmark(run)
    assert result["n_cells"] == N_CELLS
    for shape in result["image_shapes"].values():
        assert shape == (TILE[1] // 4, TILE[0] // 4, 3)


def test_fig5_clients_full_resolution(benchmark, registry):
    """All 15 clients' full-resolution sub-workflow executions (parallel)."""
    hw = InProcessHyperwall(wall_workflow(registry), wall=make_wall(N_CELLS),
                            reduction=4, max_workers=8)
    benchmark.group = "fig5-hyperwall"

    def run():
        for client in hw.clients:
            client.executor.clear_cache()
        return hw.execute_clients()

    reports = benchmark(run)
    assert len(reports) == N_CELLS
    assert all(r.image_shape == (TILE[1], TILE[0], 3) for r in reports)


def test_fig5_interaction_propagation(benchmark, registry):
    """Propagating one navigation event to server mirror + all clients."""
    hw = InProcessHyperwall(wall_workflow(registry), wall=make_wall(N_CELLS),
                            reduction=4)
    hw.execute_all()
    benchmark.group = "fig5-hyperwall"
    result = benchmark(lambda: hw.propagate_event("drag", dx=0.02, dy=0.01,
                                                  mode="camera"))
    assert len(result["clients"]) == N_CELLS
    assert all(hw.consistency_check().values())


def test_fig5_scaling_report(registry):
    """The architecture's quantitative story, as a table:

    * reduced-resolution mirror vs full-resolution work (the server's
      reason to run a low-res mirror);
    * **process-level** distribution (the real cluster pattern: one
      process per display node, as on the physical wall) vs executing
      every tile serially in one process.

    Thread-level parallelism is deliberately *not* used here — the
    render stages are GIL-bound pure Python; see the parallel ablation.
    The process speedup is bounded by the host's cores (the physical
    wall has one node per tile).
    """
    import os

    from repro.hyperwall.cluster import LocalCluster

    n_cells = 6
    workflow = wall_workflow(registry, n_cells)
    wall = make_wall(n_cells)

    # serial baseline: all tiles in one process (best of two runs,
    # fresh caches each time, to tame scheduler noise on small hosts)
    serial_times = []
    for _ in range(2):
        hw_serial = InProcessHyperwall(workflow, wall=wall, reduction=4, max_workers=1)
        t0 = time.perf_counter()
        hw_serial.execute_clients()
        serial_times.append(time.perf_counter() - t0)
    serial = min(serial_times)

    # distributed: one client process per tile over the socket protocol
    cluster = LocalCluster(workflow, n_clients=n_cells, wall=wall, reduction=4)
    try:
        cluster.start()
        cluster.server.distribute_workflows()
        t0 = time.perf_counter()
        cluster.server.execute_clients()
        distributed = time.perf_counter() - t0
    finally:
        cluster.stop()

    # server mirror at increasing reduction
    mirror_times = {}
    for reduction in (1, 2, 4):
        hw = InProcessHyperwall(workflow, wall=wall, reduction=reduction)
        t0 = time.perf_counter()
        hw.execute_server()
        mirror_times[reduction] = time.perf_counter() - t0

    speedup = serial / distributed
    cores = len(os.sched_getaffinity(0))
    rows = [
        ("metric", "value"),
        ("paper wall", f"{NCCS_WALL.n_tiles} tiles, {NCCS_WALL.total_pixels/1e6:.1f} Mpixel"),
        ("host cores available", cores),
        (f"tiles serial, 1 process ({n_cells} tiles)", f"{serial:.2f} s"),
        (f"tiles distributed, {n_cells} processes", f"{distributed:.2f} s  ({speedup:.2f}x)"),
        ("server mirror, reduction 1", f"{mirror_times[1]:.2f} s"),
        ("server mirror, reduction 2", f"{mirror_times[2]:.2f} s"),
        ("server mirror, reduction 4", f"{mirror_times[4]:.2f} s"),
    ]
    report("Fig.5: hyperwall execution pattern", rows)
    if cores >= 2:
        # even with socket/report overhead, distributing across processes
        # must not be slower than serial on a multi-core host; genuine
        # speedup is typically 1.1-1.9x on 2 cores (and ~n_tiles on the
        # real wall, which has one node per tile)
        assert speedup > 0.95, "process distribution must not lose to serial"
    assert mirror_times[4] < mirror_times[1], "reduction must cut mirror cost"
