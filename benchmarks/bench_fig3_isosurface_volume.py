"""Figure 3 — isosurface plot + combined volume render and slicer plot.

The screenshot shows (bottom) an isosurface of one variable colored by
a second, and (top) a volume render combined with a slice plane.  The
benchmark regenerates both over the storm case study and sweeps the
grid resolution, reporting extraction/render costs and the geometric
scaling (triangle count grows ~quadratically with linear resolution —
surfaces are 2-D).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.data.catalog import storm_case_study
from repro.dv3d.isosurface import IsosurfacePlot
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.volume import VolumePlot
from repro.rendering.scene import Renderer

GRID_SIZES = [24, 40, 56]
PEAK_TIME = 2


def storm_plot(n: int, with_color: bool = True) -> IsosurfacePlot:
    dataset = storm_case_study(nlat=n, nlon=n, nlev=max(n // 3, 6), ntime=4,
                               seed="fig3")
    plot = IsosurfacePlot(
        dataset("wspd"),
        color_variable=dataset("tcore") if with_color else None,
        colormap="coolwarm",
    )
    plot.set_time_index(PEAK_TIME)
    lo, hi = plot.scalar_range
    plot.set_isovalue(lo + 0.55 * (hi - lo))
    return plot


@pytest.mark.parametrize("n", GRID_SIZES)
def test_fig3_isosurface_extraction(benchmark, n):
    """Marching-tetrahedra cost across the resolution sweep."""
    plot = storm_plot(n)
    volume = plot.volume  # pre-translate so we time extraction alone
    benchmark.group = "fig3-isosurface-extract"
    surface = benchmark(plot.extract_surface)
    assert surface.n_triangles > 0
    assert surface.colors is not None  # colored by the second variable


def test_fig3_triangle_scaling():
    """Surface triangles scale ~ n² (it is a 2-D surface in a 3-D grid)."""
    counts = []
    for n in GRID_SIZES:
        plot = storm_plot(n, with_color=False)
        counts.append(plot.extract_surface().n_triangles)
    rows = [("grid n", "triangles")] + list(zip(GRID_SIZES, counts))
    exponent = np.polyfit(np.log(GRID_SIZES), np.log(counts), 1)[0]
    rows.append(("scaling exponent", f"{exponent:.2f} (expect ~2)"))
    report("Fig.3: isosurface complexity vs resolution", rows)
    assert 1.5 < exponent < 2.6


@pytest.mark.parametrize("n", [24, 40])
def test_fig3_isosurface_render(benchmark, n):
    """Full cell render of the colored isosurface."""
    plot = storm_plot(n)
    benchmark.group = "fig3-render"
    fb = benchmark(lambda: plot.render(200, 150))
    assert fb.coverage() > 0.005


@pytest.mark.parametrize("n", [24, 40])
def test_fig3_volume_plus_slicer_combo(benchmark, n):
    """The Fig. 3 top cell: volume raycast composited with a slice plane."""
    dataset = storm_case_study(nlat=n, nlon=n, nlev=max(n // 3, 6), ntime=4,
                               seed="fig3")
    volume_plot = VolumePlot(dataset("wspd"), center=0.8, width=0.3, colormap="jet")
    volume_plot.set_time_index(PEAK_TIME)
    slicer = SlicerPlot(dataset("wspd"), enabled_planes=("z",), colormap="jet")
    slicer.set_time_index(PEAK_TIME)

    def render_combo():
        scene = volume_plot.build_scene()
        for actor in slicer.build_scene().actors:
            if actor.name.startswith("slice"):
                scene.add_actor(actor)
        return Renderer(200, 150).render(scene, volume_plot.default_camera())

    benchmark.group = "fig3-render"
    fb = benchmark(render_combo)
    assert fb.color.max() > 0.1


def test_fig3_two_variable_comparison_semantics():
    """The scientific point of the plot: surface colors track variable B."""
    plot = storm_plot(40)
    surface = plot.extract_surface()
    # tcore = 0.35*wspd + 250 on an isosurface of wspd ⇒ sampled tcore is
    # nearly constant; its spread must be far below the full field spread
    sampled_spread = float(np.ptp(surface.scalars))
    full_spread = float(np.ptp(plot.color_variable.filled(250.0)))
    report(
        "Fig.3: isosurface-of-A colored-by-B consistency",
        [("tcore spread on wspd isosurface", f"{sampled_spread:.2f} K"),
         ("tcore spread over the full field", f"{full_spread:.2f} K")],
    )
    assert sampled_spread < 0.35 * full_spread
