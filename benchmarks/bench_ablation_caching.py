"""Ablation — executor result caching (the VisTrails iteration loop).

DESIGN.md calls out upstream-result caching as the mechanism that makes
iterative exploration cheap: when the user edits one module's
parameter, only that module and its downstream re-execute.  The
ablation compares re-execution after a leaf edit with caching on vs
off, over a chain with an expensive upstream (dataset generation +
regridding).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline

SIZE = {"nlat": 46, "nlon": 72, "nlev": 10, "ntime": 6}


def analysis_chain(registry) -> tuple:
    p = Pipeline(registry)
    reader = p.add_module("CDMSDatasetReader",
                          {"source": "synthetic_reanalysis", "size": SIZE})
    var = p.add_module("CDMSVariableReader", {"variable": "ta"})
    regrid = p.add_module("CDMSRegrid", {"nlat": 23, "nlon": 36,
                                         "method": "conservative"})
    anom = p.add_module("CDATOperation", {"operation": "anomalies"})
    scale = p.add_module("CDATOperation", {"operation": "scale",
                                           "args": {"factor": 1.0}})
    p.add_connection(reader, "dataset", var, "dataset")
    p.add_connection(var, "variable", regrid, "variable")
    p.add_connection(regrid, "variable", anom, "variable")
    p.add_connection(anom, "variable", scale, "variable")
    return p, scale


@pytest.mark.parametrize("caching", [True, False], ids=["cached", "uncached"])
def test_ablation_reexecute_after_leaf_edit(benchmark, registry, caching):
    """Re-execution cost after editing only the final module's parameter."""
    pipeline, leaf = analysis_chain(registry)
    executor = Executor(caching=caching)
    executor.execute(pipeline)  # populate the cache (if enabled)
    state = {"factor": 1.0}

    def edit_and_rerun():
        state["factor"] += 0.01  # a leaf-only edit every round
        pipeline.set_parameter(leaf, "args", {"factor": state["factor"]})
        return executor.execute(pipeline)

    benchmark.group = "ablation-caching"
    result = benchmark(edit_and_rerun)
    if caching:
        assert result.cache_hits >= 3  # everything upstream of the leaf


def test_ablation_caching_report(registry):
    import time

    timings = {}
    for caching in (True, False):
        pipeline, leaf = analysis_chain(registry)
        executor = Executor(caching=caching)
        executor.execute(pipeline)
        t0 = time.perf_counter()
        for i in range(3):
            pipeline.set_parameter(leaf, "args", {"factor": 1.0 + i * 0.01})
            executor.execute(pipeline)
        timings[caching] = (time.perf_counter() - t0) / 3
    speedup = timings[False] / timings[True]
    report("Ablation: executor caching on leaf-edit re-execution",
           [("uncached", f"{timings[False]:.3f} s"),
            ("cached", f"{timings[True]:.3f} s"),
            ("speedup", f"{speedup:.1f}x")])
    assert speedup > 2.0
