"""Ablation — isosurface extraction design choices.

Two knobs DESIGN.md calls out in the marching-tetrahedra implementation:

* **vertex deduplication** — merging shared-edge vertices costs one
  ``np.unique`` but enables smooth (area-weighted point-normal)
  shading and shrinks the mesh ~6×;
* **resolution** — extraction cost should scale with cell count (n³),
  while output size scales with surface area (n²).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.rendering.image_data import ImageData
from repro.rendering.isosurface import marching_tetrahedra


def blob_volume(n: int) -> ImageData:
    x = np.linspace(-1, 1, n)
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    vol = ImageData((n, n, n), origin=(-1, -1, -1), spacing=(2 / (n - 1),) * 3)
    # two overlapping blobs: a non-trivial, non-spherical surface
    field = np.exp(-4 * ((X - 0.25) ** 2 + Y**2 + Z**2))
    field += np.exp(-4 * ((X + 0.25) ** 2 + (Y - 0.2) ** 2 + Z**2))
    vol.add_array("d", field)
    return vol


@pytest.mark.parametrize("dedup", [True, False], ids=["dedup", "no-dedup"])
def test_ablation_isosurface_dedup_cost(benchmark, dedup):
    volume = blob_volume(40)
    benchmark.group = "ablation-isosurface-dedup"
    surface = benchmark(
        lambda: marching_tetrahedra(volume, 0.5, deduplicate=dedup)
    )
    assert surface.n_triangles > 0


@pytest.mark.parametrize("n", [24, 40, 56])
def test_ablation_isosurface_resolution(benchmark, n):
    volume = blob_volume(n)
    benchmark.group = "ablation-isosurface-resolution"
    surface = benchmark(lambda: marching_tetrahedra(volume, 0.5))
    assert surface.n_triangles > 0


def test_ablation_isosurface_dedup_report():
    volume = blob_volume(40)
    dedup = marching_tetrahedra(volume, 0.5, deduplicate=True)
    raw = marching_tetrahedra(volume, 0.5, deduplicate=False)
    sharing = raw.n_points / max(dedup.n_points, 1)
    report(
        "Ablation: isosurface vertex deduplication",
        [("points (dedup)", dedup.n_points),
         ("points (raw)", raw.n_points),
         ("sharing factor", f"{sharing:.1f}x"),
         ("area identical", f"{abs(dedup.surface_area() - raw.surface_area()):.2e}")],
    )
    # each interior vertex is shared by ~6 triangles in a tetra mesh
    assert sharing > 3.0
    assert dedup.surface_area() == pytest.approx(raw.surface_area(), rel=1e-5)
