"""Baseline — the traditional 2-D toolkit vs the DV3D views (§II.A).

The paper's motivation section positions DV3D against the 2-D plots
scientists traditionally use.  This bench puts both on the same storm
data: the cost of producing the full traditional suite (time series,
histogram, scatter, contour, pseudocolor, plus one map *per level* to
see vertical structure) against one interactive 3-D cell that browses
the same structure by dragging.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.cdat import area_average
from repro.data.catalog import storm_case_study
from repro.dv3d.isosurface import IsosurfacePlot
from repro.plots2d import contour_plot, histogram_plot, line_plot, pseudocolor_plot, scatter_plot

PEAK = 2


@pytest.fixture(scope="module")
def storm():
    return storm_case_study(nlat=32, nlon=32, nlev=8, ntime=4, seed="bench2d")


def traditional_suite(dataset) -> int:
    """Render the full 2-D exploration of the storm; returns view count."""
    wspd = dataset("wspd")
    tcore = dataset("tcore")
    views = 0
    series = area_average(wspd)(level=1000.0).squeeze()
    line_plot(series, width=200, height=150).to_uint8()
    views += 1
    histogram_plot(wspd, bins=16, width=200, height=150).to_uint8()
    views += 1
    surf_w = wspd[PEAK].squeeze()(level=1000.0).squeeze()
    surf_t = tcore[PEAK].squeeze()(level=1000.0).squeeze()
    scatter_plot(surf_w, surf_t, width=200, height=150).to_uint8()
    views += 1
    # per-level maps: how the vertical structure is browsed traditionally
    for level in wspd.get_level().values:
        field = wspd[PEAK].squeeze()(level=float(level)).squeeze()
        pseudocolor_plot(field, colormap="jet", width=200, height=150).to_uint8()
        views += 1
    contour_plot(surf_w, n_levels=6, width=200, height=150).to_uint8()
    views += 1
    return views


def dv3d_view(dataset):
    plot = IsosurfacePlot(dataset("wspd"), color_variable=dataset("tcore"),
                          colormap="coolwarm")
    plot.set_time_index(PEAK)
    lo, hi = plot.scalar_range
    plot.set_isovalue(lo + 0.6 * (hi - lo))
    return plot.render(200, 150)


def test_baseline_traditional_suite(benchmark, storm):
    benchmark.group = "baseline-2d-vs-3d"
    views = benchmark(lambda: traditional_suite(storm))
    assert views == 4 + 8  # fixed suite + one map per level


def test_baseline_dv3d_cell(benchmark, storm):
    benchmark.group = "baseline-2d-vs-3d"
    fb = benchmark(lambda: dv3d_view(storm))
    assert fb.coverage() > 0.005


def test_baseline_report(storm):
    import time

    t0 = time.perf_counter()
    views = traditional_suite(storm)
    traditional = time.perf_counter() - t0
    t0 = time.perf_counter()
    dv3d_view(storm)
    single_3d = time.perf_counter() - t0
    report(
        "Baseline: traditional 2-D suite vs one DV3D cell (same storm data)",
        [("traditional views rendered", views),
         ("traditional suite time", f"{traditional:.2f} s"),
         ("one 3-D cell render", f"{single_3d:.2f} s"),
         ("note", "the 3-D cell additionally browses all levels/steps interactively")],
    )
    assert views > 10
