"""Figure 1 — the UV-CDAT architecture: tight vs loose coupling.

The architecture diagram shows two integration paths: CDAT/DV3D are
*tightly coupled* (VisTrails packages sharing Python objects in
process) while VisIt/ParaView/R/MatLab are *loosely coupled* (data
crosses a serialization boundary to an external tool).

The benchmark executes the same 6-stage analysis chain through both
paths and measures the integration overhead — the cost the architecture
diagram's design choice trades away for flexibility.  Expected shape:
the loose path is strictly slower, with overhead growing with payload
size (it pays JSON serialization both ways per stage).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.workflow.executor import Executor
from repro.workflow.package import ExternalToolAdapter
from repro.workflow.pipeline import Pipeline

N_STAGES = 6


def _analysis(payload: list) -> list:
    """The per-stage 'analysis': a cheap elementwise transform."""
    arr = np.asarray(payload)
    return (arr * 1.01 + 0.5).tolist()


ExternalToolAdapter.register_tool("bench_analysis", _analysis)


def tight_pipeline(registry, n_values: int) -> Pipeline:
    """Six tightly-coupled stages passing Python lists in process."""
    p = Pipeline(registry)
    source = p.add_module(
        "basic:Constant", {"value": list(np.linspace(0.0, 1.0, n_values))}
    )
    previous, port = source, "value"
    for _ in range(N_STAGES):
        stage = p.add_module(
            "basic:PythonSource",
            {"source": "import numpy as np\n"
                       "outputs = {'result': (np.asarray(a) * 1.01 + 0.5).tolist()}"},
        )
        p.add_connection(previous, port, stage, "a")
        previous, port = stage, "result"
    return p


def loose_pipeline(registry, n_values: int) -> Pipeline:
    """Six loosely-coupled stages crossing the JSON wire per stage."""
    p = Pipeline(registry)
    source = p.add_module(
        "basic:Constant", {"value": list(np.linspace(0.0, 1.0, n_values))}
    )
    previous, port = source, "value"
    for _ in range(N_STAGES):
        stage = p.add_module("basic:ExternalToolAdapter", {"tool": "bench_analysis"})
        p.add_connection(previous, port, stage, "payload")
        previous, port = stage, "payload"
    return p


@pytest.mark.parametrize("n_values", [1_000, 50_000])
@pytest.mark.parametrize("coupling", ["tight", "loose"])
def test_fig1_integration_coupling(benchmark, registry, coupling, n_values):
    builder = tight_pipeline if coupling == "tight" else loose_pipeline
    pipeline = builder(registry, n_values)
    executor = Executor(caching=False)
    benchmark.group = f"fig1-coupling-{n_values}"
    result = benchmark(lambda: executor.execute(pipeline))
    assert len(result.runs) == N_STAGES + 1


def test_fig1_report(registry):
    """Non-benchmark summary: the overhead ratio of loose coupling."""
    import time

    rows = [("payload", "tight (s)", "loose (s)", "loose/tight")]
    for n_values in (1_000, 50_000):
        timings = {}
        for name, builder in (("tight", tight_pipeline), ("loose", loose_pipeline)):
            pipeline = builder(registry, n_values)
            executor = Executor(caching=False)
            executor.execute(pipeline)  # warm-up
            t0 = time.perf_counter()
            for _ in range(3):
                executor.execute(pipeline)
            timings[name] = (time.perf_counter() - t0) / 3
        ratio = timings["loose"] / timings["tight"]
        rows.append((n_values, f"{timings['tight']:.4f}", f"{timings['loose']:.4f}",
                     f"{ratio:.1f}x"))
        assert ratio > 1.0, "loose coupling must cost more than tight coupling"
    report("Fig.1: tight (VisTrails package) vs loose (external tool) integration", rows)
