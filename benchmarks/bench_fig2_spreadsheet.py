"""Figure 2 — DV3D within the UV-CDAT GUI.

The screenshot shows the application with a populated spreadsheet
(slicer and volume cells over a global temperature field) surrounded by
the project / plot / variable / calculator panels.  The benchmark
regenerates that session through the application facade and measures
its stages: palette-driven workflow construction (with provenance),
first execution, cached re-execution, and frame rendering.
"""

from __future__ import annotations


from benchmarks.conftest import BENCH_SIZE, report
from repro.app.application import Application

CELLS = [("Slicer", (0, 0)), ("Volume", (0, 1))]


def build_session(registry) -> Application:
    app = Application(registry)
    app.new_project("fig2")
    for template, slot in CELLS:
        app.create_plot(
            template, "sheet", slot,
            dataset_source="synthetic_reanalysis",
            variables={"variable": "ta"},
            size=dict(BENCH_SIZE),
            cell_params={"width": 200, "height": 150, "dataset_label": "TA"},
            execute=False,
        )
    return app


def test_fig2_build_workflows(benchmark, registry):
    """Construction cost of the two palette workflows (provenance included)."""
    benchmark.group = "fig2-spreadsheet"
    app = benchmark(lambda: build_session(registry))
    assert len(app.project.vistrails) == 2
    # every construction step was recorded
    total_versions = sum(len(v.tree) for v in app.project.vistrails.values())
    assert total_versions > 10


def test_fig2_execute_sheet(benchmark, registry):
    """First execution of both cells (data generation + translation + render)."""
    app = build_session(registry)
    benchmark.group = "fig2-spreadsheet"

    def run():
        app.project.executor.clear_cache()
        return app.project.execute_sheet("sheet")

    cells = benchmark(run)
    assert len(cells) == 2


def test_fig2_reexecute_cached(benchmark, registry):
    """Re-execution with a warm cache (the interactive iteration loop)."""
    app = build_session(registry)
    app.project.execute_sheet("sheet")
    benchmark.group = "fig2-spreadsheet"
    cells = benchmark(lambda: app.project.execute_sheet("sheet"))
    assert len(cells) == 2
    last = app.project.log.entries[-1]
    assert last.cache_hits > 0


def test_fig2_render_frames(benchmark, registry):
    """Pure render cost of the populated spreadsheet (both cells)."""
    app = build_session(registry)
    cells = app.project.execute_sheet("sheet")
    benchmark.group = "fig2-spreadsheet"
    frames = benchmark(lambda: [cell.render(200, 150) for cell in cells])
    assert all(f.color.shape == (150, 200, 3) for f in frames)


def test_fig2_report(registry):
    """Summary: the four GUI panels are all live in the session."""
    app = build_session(registry)
    app.project.execute_sheet("sheet")
    ds = app.open_esg_dataset("nccs_synthetic_reanalysis")
    app.variables.load(ds, "ta")
    app.calculator.assign("tanom = anomalies(ta)")
    rows = [
        ("panel", "contents"),
        ("project view", app.project_view()["fig2"]),
        ("plot view", f"{len(app.plot_view())} plot templates"),
        ("variable view", list(app.variable_view())),
        ("spreadsheet", f"{len(app.project.sheets['sheet'].occupied())} cells"),
        ("calculator", app.calculator.transcript[-1][0]),
    ]
    report("Fig.2: the UV-CDAT session reconstructed", rows)
    assert "tanom" in app.variables
