#!/usr/bin/env python
"""Replay the benchmark scenarios with the obs recorder on.

Produces ``BENCH_obs.json`` — the observability artifact CI uploads on
every build so per-kernel span timings, executor cache behaviour and
hyperwall traffic can be compared across PRs.  The artifact contains:

* ``aggregates.spans`` — per-span-name count/total/mean/max seconds for
  every instrumented kernel (``raycast.render``,
  ``isosurface.marching_tetrahedra``, ``streamline.integrate``,
  ``rasterizer.rasterize``, ``regrid.*``, ``executor.*``,
  ``hyperwall.*``);
* ``aggregates.counters`` — cache hits/misses, voxel/triangle/pixel
  throughput, hyperwall message and byte counts, summed over labels
  (the labelled breakdown stays in ``recorder.counters``);
* ``recorder`` — the full span/metric dump (``Recorder.to_dict()``).

``--parallel`` switches to the kernel-pool ablation instead: the
raycast and isosurface hot paths are timed serial vs 4 worker
processes on the CPU-bound scenario sizes, the outputs are checked for
bitwise identity (the :mod:`repro.parallel` determinism contract), and
the result — timings, speedups, ``parallel.tiles`` counters and tile
spans — is written to ``BENCH_parallel.json``.  Speedup floors are
only enforced when the machine actually has >= 4 usable cores.

``--resilience`` runs the fault-tolerance scenarios instead: a kernel
pool losing a worker mid-run (tiles retried on a replacement), and a
hyperwall frame losing a client (cell reassigned to a survivor, or
served degraded from the mirror).  Recovery latencies, retry/degraded
counters and the injected-fault counts are written to
``BENCH_resilience.json``, with the recovery signals validated the
same way the other artifacts are.

``--cache`` runs the provenance-keyed result-cache ablation: the
render, regrid and executor scenarios each run cold (empty cache) and
warm (served from the shared disk tier) against one temporary cache
directory.  Warm outputs are checked for byte identity with the cold
pass, the cold/warm timings and the cache counters/histograms are
written to ``BENCH_cache.json``, and the overall warm speedup must
clear a 5x floor.

Usage::

    PYTHONPATH=src python tools/perf_report.py            # full sizes
    PYTHONPATH=src python tools/perf_report.py --quick    # CI sizes
    PYTHONPATH=src python tools/perf_report.py --out path.json --summary
    PYTHONPATH=src python tools/perf_report.py --parallel # BENCH_parallel.json
    PYTHONPATH=src python tools/perf_report.py --resilience
    PYTHONPATH=src python tools/perf_report.py --cache    # BENCH_cache.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.cdms.grid import uniform_grid  # noqa: E402
from repro.cdms.regrid import regrid_bilinear, regrid_conservative  # noqa: E402
from repro.data.fields import global_temperature  # noqa: E402
from repro.hyperwall.inproc import InProcessHyperwall  # noqa: E402
from repro.parallel import ParallelConfig  # noqa: E402
from repro.parallel.kernels import (  # noqa: E402
    parallel_marching_tetrahedra,
    parallel_raycast,
)
from repro.rendering.camera import Camera  # noqa: E402
from repro.rendering.framebuffer import Framebuffer  # noqa: E402
from repro.rendering.image_data import ImageData  # noqa: E402
from repro.rendering.isosurface import marching_tetrahedra  # noqa: E402
from repro.rendering.rasterizer import rasterize  # noqa: E402
from repro.rendering.raycast import raycast_volume  # noqa: E402
from repro.rendering.streamline import (  # noqa: E402
    integrate_streamlines,
    plane_seed_grid,
)
from repro.rendering.transfer_function import TransferFunction  # noqa: E402
from repro.workflow.executor import Executor  # noqa: E402
from repro.workflow.pipeline import Pipeline  # noqa: E402
from repro.workflow.registry import global_registry  # noqa: E402

#: scenario workload sizes; --quick is what CI runs on every build
SIZES = {
    "full": {
        "volume_n": 40,
        "image": (96, 72),
        "seeds": (12, 12),
        "regrid_src": (72, 144),
        "regrid_dst": (46, 72),
        "dataset": {"nlat": 46, "nlon": 72, "nlev": 8, "ntime": 3},
        "cells": 4,
        "cell_size": (128, 96),
    },
    "quick": {
        "volume_n": 24,
        "image": (48, 36),
        "seeds": (6, 6),
        "regrid_src": (36, 72),
        "regrid_dst": (24, 36),
        "dataset": {"nlat": 24, "nlon": 36, "nlev": 4, "ntime": 2},
        "cells": 2,
        "cell_size": (64, 48),
    },
}


def make_volume(n: int) -> ImageData:
    """Gaussian-blob scalar + swirling vector field on one grid."""
    x = np.linspace(-1, 1, n)
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    vol = ImageData((n, n, n), origin=(-1, -1, -1), spacing=(2 / (n - 1),) * 3)
    vol.add_array("blob", np.exp(-3 * (X**2 + Y**2 + Z**2)))
    vec = np.stack([-Y, X, 0.2 * np.ones_like(Z)], axis=-1)
    vol.add_array("swirl", vec, set_active=False)
    return vol


def build_workflow(size: Dict[str, Any], cells: int, cell_size) -> Pipeline:
    """Reader → variable → plot → cell chains (one chain per wall cell)."""
    pipeline = Pipeline(registry=global_registry())
    reader = pipeline.add_module(
        "CDMSDatasetReader", {"source": "synthetic_reanalysis", "size": dict(size)}
    )
    plots = ["Slicer", "VolumeRender", "Isosurface", "HovmollerSlicer"]
    for index in range(cells):
        var = pipeline.add_module("CDMSVariableReader", {"variable": "ta"})
        plot = pipeline.add_module(plots[index % len(plots)])
        cell = pipeline.add_module(
            "DV3DCell", {"width": cell_size[0], "height": cell_size[1]}
        )
        pipeline.add_connection(reader, "dataset", var, "dataset")
        pipeline.add_connection(var, "variable", plot, "variable")
        pipeline.add_connection(plot, "plot", cell, "plot")
    return pipeline


# -- scenarios ---------------------------------------------------------------


def scenario_executor(sizes: Dict[str, Any]) -> None:
    """Cold run then warm re-run: exercises cache miss *and* hit paths."""
    with obs.span("scenario.executor"):
        pipeline = build_workflow(sizes["dataset"], 2, sizes["cell_size"])
        executor = Executor(caching=True, max_workers=2)
        executor.execute(pipeline)
        executor.execute(pipeline)  # warm: upstream modules come from cache


def scenario_rendering(sizes: Dict[str, Any]) -> None:
    """The three kernel benchmarks plus a rasterization pass."""
    volume = make_volume(sizes["volume_n"])
    camera = Camera.fit_bounds(volume.bounds())
    width, height = sizes["image"]
    with obs.span("scenario.raycast"):
        transfer = TransferFunction(volume.scalar_range(), center=0.8, width=0.4)
        raycast_volume(volume, transfer, camera, width, height, lighting=True)
    with obs.span("scenario.isosurface"):
        surface = marching_tetrahedra(volume, 0.5)
    with obs.span("scenario.rasterize"):
        framebuffer = Framebuffer(width, height)
        rasterize(surface, camera, framebuffer, light_direction=np.array([0.3, -0.4, 0.8]))
    with obs.span("scenario.streamline"):
        seeds = plane_seed_grid(volume, 2, 0.0, *sizes["seeds"])
        integrate_streamlines(volume, "swirl", seeds, max_steps=100)


def scenario_regrid(sizes: Dict[str, Any]) -> None:
    nlat, nlon = sizes["regrid_src"]
    field = global_temperature(
        nlat=nlat, nlon=nlon, nlev=2, ntime=2, seed="perf-report"
    )
    target = uniform_grid(*sizes["regrid_dst"])
    with obs.span("scenario.regrid"):
        regrid_bilinear(field, target)
        regrid_conservative(field, target)


def scenario_hyperwall(sizes: Dict[str, Any]) -> None:
    """In-process wall: server mirror + full-res clients + an event."""
    with obs.span("scenario.hyperwall"):
        workflow = build_workflow(sizes["dataset"], sizes["cells"], sizes["cell_size"])
        wall = InProcessHyperwall(
            workflow,
            reduction=4,
            client_resolution=sizes["cell_size"],
            max_workers=2,
        )
        wall.execute_all()
        wall.propagate_event("key", key="c")


SCENARIOS = [
    ("executor", scenario_executor),
    ("rendering", scenario_rendering),
    ("regrid", scenario_regrid),
    ("hyperwall", scenario_hyperwall),
]


# -- kernel-pool ablation (--parallel) ---------------------------------------

#: workers for the parallel side of the ablation (matches the golden suite)
PARALLEL_WORKERS = 4
#: enforced speedup floor per kernel — only on machines with >= 4 cores
PARALLEL_SPEEDUP_FLOOR = 2.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def calibrate(repeats: int = 5) -> float:
    """Best-of-N seconds for a fixed, deterministic numpy workload.

    Recorded in every artifact's ``meta.calibration_s`` so timings can
    be compared across machines of different speeds: dividing a
    scenario time by the calibration time yields a unitless cost that
    is stable across hardware generations (same memory/ALU mix as the
    render kernels).  ``tools/bench_compare.py`` normalizes with this
    before applying its regression threshold.
    """
    rng = np.random.default_rng(20260808)
    volume = rng.standard_normal((64, 64, 48))
    coords = rng.uniform(0, 47, size=(3, 20000))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        from scipy import ndimage

        sampled = ndimage.map_coordinates(volume, coords, order=1, prefilter=False)
        np.sort(volume, axis=0)
        np.exp(np.clip(volume, -1.0, 1.0)).sum()
        float(sampled.sum())
        best = min(best, time.perf_counter() - t0)
    return best


def _best_of(fn, repeats: int):
    """Best-of-N wall time plus the final return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def parallel_report(sizes: Dict[str, Any], repeats: int = 5) -> Dict[str, Any]:
    """Serial vs 4-worker timings for the tiled render kernels.

    Returns the ``kernels``/``aggregates`` payload sections; raises
    ``RuntimeError`` if a parallel kernel is not bitwise identical to
    its serial counterpart (the contract golden tests also enforce).
    """
    volume = make_volume(sizes["volume_n"])
    camera = Camera.fit_bounds(volume.bounds())
    width, height = sizes["image"]
    transfer = TransferFunction(volume.scalar_range(), center=0.8, width=0.4)
    config = ParallelConfig(workers=PARALLEL_WORKERS, min_items=1, timeout=600.0)
    if not config.enabled:
        raise RuntimeError("POSIX shared memory unavailable; cannot run --parallel")

    cases = {
        "raycast": (
            lambda: raycast_volume(volume, transfer, camera, width, height),
            lambda: parallel_raycast(
                volume, transfer, camera, width, height, config=config
            ),
            lambda a, b: bool(np.array_equal(a, b)),
        ),
        "isosurface": (
            lambda: marching_tetrahedra(volume, 0.5),
            lambda: parallel_marching_tetrahedra(volume, 0.5, config=config),
            lambda a, b: bool(
                np.array_equal(a.points, b.points)
                and np.array_equal(a.triangles, b.triangles)
            ),
        ),
    }

    kernels: Dict[str, Any] = {}
    recorder = obs.Recorder()
    for name, (serial_fn, parallel_fn, same) in cases.items():
        serial_s, serial_out = _best_of(serial_fn, repeats)
        with obs.recording(recorder):
            parallel_s, parallel_out = _best_of(parallel_fn, repeats)
        identical = same(serial_out, parallel_out)
        kernels[name] = {
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "workers": PARALLEL_WORKERS,
            "speedup": serial_s / parallel_s,
            "identical": identical,
        }
        print(
            f"  kernel {name:<11} serial {serial_s:7.3f}s   "
            f"{PARALLEL_WORKERS} workers {parallel_s:7.3f}s   "
            f"{serial_s / parallel_s:5.2f}x   identical={identical}"
        )
        if not identical:
            raise RuntimeError(f"parallel {name} output differs from serial")
    return {"kernels": kernels, "aggregates": aggregate(recorder),
            "recorder": recorder.to_dict()}


# -- result-cache ablation (--cache) -----------------------------------------

#: enforced cold/warm speedup floor for the whole scenario suite
CACHE_SPEEDUP_FLOOR = 5.0


def cache_report(sizes: Dict[str, Any], cache_dir: str) -> Dict[str, Any]:
    """Cold vs warm timings through the provenance-keyed result cache.

    Each scenario runs twice against one shared cache directory: the
    cold pass populates the disk tier, the warm pass must be served
    from it — and must reproduce the cold output byte for byte.
    """
    from repro.cache.config import CacheConfig, use_config
    from repro.cache.store import reset_cache
    from repro.dv3d.volume import VolumePlot

    width, height = sizes["image"]
    nlat, nlon = sizes["regrid_src"]
    field = global_temperature(nlat=nlat, nlon=nlon, nlev=2, ntime=2, seed="perf-report")
    target = uniform_grid(*sizes["regrid_dst"])
    plot = VolumePlot(field, center=0.7, width=0.3)
    camera = plot.default_camera()

    def run_render():
        fb = plot.render(width, height, camera=camera)
        return (fb.color.tobytes(), fb.depth.tobytes())

    def run_regrid():
        out = regrid_bilinear(field, target)
        out2 = regrid_conservative(field, target)
        return (
            np.ma.getdata(out.data).tobytes(),
            np.ma.getdata(out2.data).tobytes(),
        )

    def run_executor():
        pipeline = build_workflow(sizes["dataset"], 2, sizes["cell_size"])
        executor = Executor(caching=True, max_workers=2)
        result = executor.execute(pipeline)
        images = [
            result.output(mid, "image").tobytes()
            for mid, spec in pipeline.modules.items()
            if spec.name == "DV3DCell"
        ]
        return tuple(images)

    cases = [("render", run_render), ("regrid", run_regrid),
             ("executor", run_executor)]
    scenarios: Dict[str, Any] = {}
    recorder = obs.Recorder()
    config = CacheConfig(path=cache_dir)
    with obs.recording(recorder), use_config(config):
        for name, fn in cases:
            reset_cache()  # cold pass starts without the in-memory tier
            t0 = time.perf_counter()
            cold_out = fn()
            cold_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm_out = fn()
            warm_s = time.perf_counter() - t0
            identical = cold_out == warm_out
            scenarios[name] = {
                "cold_s": cold_s,
                "warm_s": warm_s,
                "speedup": cold_s / warm_s,
                "identical": identical,
            }
            print(
                f"  scenario {name:<9} cold {cold_s:7.3f}s   "
                f"warm {warm_s:7.3f}s   {cold_s / warm_s:6.2f}x   "
                f"identical={identical}"
            )
    reset_cache()
    cold_total = sum(s["cold_s"] for s in scenarios.values())
    warm_total = sum(s["warm_s"] for s in scenarios.values())
    return {
        "scenarios": scenarios,
        "overall": {
            "cold_s": cold_total,
            "warm_s": warm_total,
            "speedup": cold_total / warm_total,
        },
        "aggregates": aggregate(recorder),
        "recorder": recorder.to_dict(),
    }


def run_cache_mode(args, sizes: Dict[str, Any]) -> int:
    """``--cache``: time cold vs warm passes, write BENCH_cache.json."""
    import shutil
    import tempfile

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    start = time.perf_counter()
    try:
        sections = cache_report(sizes, cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    wall = time.perf_counter() - start
    payload = {
        "meta": {
            "tool": "perf_report",
            "mode": ("quick" if args.quick else "full") + "-cache",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cores": _usable_cores(),
            "calibration_s": calibrate(),
            "wall_s": wall,
        },
    }
    payload.update(sections)
    out = Path(args.out or "BENCH_cache.json")
    out.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print(f"wrote {out} ({out.stat().st_size} bytes, {wall:.2f}s total)")

    problems = []
    for name, stats in sections["scenarios"].items():
        if not stats["identical"]:
            problems.append(f"warm {name} output differs from cold")
    overall = sections["overall"]["speedup"]
    if overall < CACHE_SPEEDUP_FLOOR:
        problems.append(
            f"overall warm speedup {overall:.2f}x below the "
            f"{CACHE_SPEEDUP_FLOOR}x floor"
        )
    counters = sections["aggregates"]["counters"]
    for counter in ("cache.hits", "cache.misses"):
        if counters.get(counter, 0) <= 0:
            problems.append(f"missing counter {counter}")
    histograms = sections["aggregates"]["histograms"]
    for histogram in ("cache.lookup.seconds", "cache.store.seconds"):
        if histogram not in histograms:
            problems.append(f"missing histogram {histogram}")
    if problems:
        print(f"ERROR: cache artifact failed validation: {problems}")
        return 1
    return 0


# -- resilience ablation (--resilience) --------------------------------------


def _resilience_tile(payload, task):
    """Module-level tile fn (forked workers must be able to run it)."""
    start, stop = task
    return [payload * i * i for i in range(start, stop)]


def _pool_recovery_case() -> Dict[str, Any]:
    """Kernel pool losing a worker mid-run: clean vs recovered timings."""
    from repro.parallel import run_tiles
    from repro.resilience import faults

    tasks = [(i, i + 2) for i in range(8)]
    config = ParallelConfig(workers=2, min_items=1, timeout=600.0, respawn_budget=2)
    t0 = time.perf_counter()
    clean = run_tiles(config, _resilience_tile, tasks, payload=3, label="resilience")
    clean_s = time.perf_counter() - t0
    faults.arm("parallel.tile", "exit", match={"tile": 2, "attempt": 0})
    try:
        t0 = time.perf_counter()
        recovered = run_tiles(
            config, _resilience_tile, tasks, payload=3, label="resilience"
        )
        recovered_s = time.perf_counter() - t0
    finally:
        faults.disarm()
    return {
        "clean_s": clean_s,
        "worker_killed_s": recovered_s,
        "recovery_overhead_s": recovered_s - clean_s,
        "identical": clean == recovered,
    }


def _wall_failover_case(
    sizes: Dict[str, Any], failover: str, drop_client: int = None
) -> Dict[str, Any]:
    """One threaded hyperwall frame; optionally with a client dropped."""
    import threading

    from repro.hyperwall.client import HyperwallClient
    from repro.hyperwall.display import WallGeometry
    from repro.hyperwall.server import HyperwallServer
    from repro.resilience import RetryPolicy, faults

    n_cells = sizes["cells"]
    cell_w, cell_h = sizes["cell_size"]
    workflow = build_workflow(sizes["dataset"], n_cells, sizes["cell_size"])
    wall = WallGeometry(columns=n_cells, rows=1, tile_width=cell_w, tile_height=cell_h)
    if drop_client is not None:
        faults.arm("hyperwall.server.recv", "drop", match={"client": drop_client})
    server = HyperwallServer(
        workflow, wall=wall, reduction=4, failover=failover,
        retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
    )
    threads = []
    try:
        for cid in range(n_cells):
            client = HyperwallClient(server.host, server.port, cid)
            client.connect()
            thread = threading.Thread(target=client.run, daemon=True)
            thread.start()
            threads.append(thread)
        server.accept_clients(n_cells)
        server.distribute_workflows()
        server.execute_server()
        t0 = time.perf_counter()
        reports = server.execute_clients()
        frame_s = time.perf_counter() - t0
    finally:
        faults.disarm()
        server.shutdown()
        for thread in threads:
            thread.join(5.0)
    statuses = sorted(r["status"] for r in reports)
    return {"frame_s": frame_s, "cells": len(reports), "statuses": statuses}


def resilience_report(sizes: Dict[str, Any]) -> Dict[str, Any]:
    """Run the recovery scenarios under one recorder; returns sections."""
    from repro.resilience import RetryPolicy

    recorder = obs.Recorder()
    cases: Dict[str, Any] = {}
    with obs.recording(recorder):
        cases["kernel_pool"] = _pool_recovery_case()
        cases["wall_baseline"] = _wall_failover_case(sizes, "reassign")
        cases["wall_reassign"] = _wall_failover_case(sizes, "reassign", drop_client=1)
        cases["wall_degrade"] = _wall_failover_case(sizes, "degrade", drop_client=1)
    cases["retry_schedule_s"] = list(
        RetryPolicy(max_attempts=5, base_delay=0.05, seed="perf-report").delays()
    )
    for name in ("kernel_pool", "wall_baseline", "wall_reassign", "wall_degrade"):
        print(f"  case {name:<14} {cases[name]}")
    return {
        "resilience": cases,
        "aggregates": aggregate(recorder),
        "recorder": recorder.to_dict(),
    }


def run_resilience_mode(args, sizes: Dict[str, Any]) -> int:
    """``--resilience``: time recovery paths, write BENCH_resilience.json."""
    start = time.perf_counter()
    sections = resilience_report(sizes)
    wall = time.perf_counter() - start
    payload = {
        "meta": {
            "tool": "perf_report",
            "mode": ("quick" if args.quick else "full") + "-resilience",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cores": _usable_cores(),
            "calibration_s": calibrate(),
            "wall_s": wall,
        },
    }
    payload.update(sections)
    out = Path(args.out or "BENCH_resilience.json")
    out.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print(f"wrote {out} ({out.stat().st_size} bytes, {wall:.2f}s total)")

    problems = []
    cases = sections["resilience"]
    if not cases["kernel_pool"]["identical"]:
        problems.append("kernel pool recovery was not bitwise identical")
    if cases["wall_reassign"]["statuses"].count("live") != sizes["cells"] - 1:
        problems.append("reassign case did not keep the surviving cells live")
    if "degraded" not in cases["wall_degrade"]["statuses"]:
        problems.append("degrade case produced no degraded cell")
    counters = sections["aggregates"]["counters"]
    for counter in ("resilience.faults.fired", "resilience.retries",
                    "resilience.degraded", "hyperwall.clients.lost"):
        if counters.get(counter, 0) <= 0:
            problems.append(f"missing counter {counter}")
    if "resilience.recovery.seconds" not in sections["aggregates"]["histograms"]:
        problems.append("missing resilience.recovery.seconds histogram")
    if problems:
        print(f"ERROR: resilience artifact failed validation: {problems}")
        return 1
    return 0


# -- aggregation -------------------------------------------------------------


def aggregate(recorder: obs.Recorder) -> Dict[str, Any]:
    """Collapse the raw recorder dump into the stable shape CI tracks."""
    spans: Dict[str, Dict[str, float]] = {}
    for record in recorder.spans:
        agg = spans.setdefault(
            record.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        agg["count"] += 1
        agg["total_s"] += record.duration
        agg["max_s"] = max(agg["max_s"], record.duration)
    for agg in spans.values():
        agg["mean_s"] = agg["total_s"] / agg["count"]
    counters: Dict[str, float] = {}
    for key, value in recorder.counters.items():
        counters[key.name] = counters.get(key.name, 0.0) + value
    histograms: Dict[str, Dict[str, float]] = {}
    for key, data in recorder.histograms.items():
        agg = histograms.setdefault(
            key.name, {"count": 0, "total": 0.0, "max": 0.0}
        )
        agg["count"] += data.count
        agg["total"] += data.total
        agg["max"] = max(agg["max"], data.max)
    return {"spans": spans, "counters": counters, "histograms": histograms}


def run_parallel_mode(args, sizes: Dict[str, Any]) -> int:
    """``--parallel``: time the tiled kernels and write BENCH_parallel.json."""
    start = time.perf_counter()
    sections = parallel_report(sizes)
    wall = time.perf_counter() - start
    payload = {
        "meta": {
            "tool": "perf_report",
            "mode": ("quick" if args.quick else "full") + "-parallel",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cores": _usable_cores(),
            "calibration_s": calibrate(),
            "wall_s": wall,
        },
    }
    payload.update(sections)
    out = Path(args.out or "BENCH_parallel.json")
    out.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print(f"wrote {out} ({out.stat().st_size} bytes, {wall:.2f}s total)")

    counters = sections["aggregates"]["counters"]
    if counters.get("parallel.tiles", 0) <= 0:
        print("ERROR: artifact is missing the parallel.tiles counter")
        return 1
    if "parallel.tile" not in sections["aggregates"]["spans"]:
        print("ERROR: artifact is missing parallel.tile spans")
        return 1
    if _usable_cores() >= 4:
        slow = {
            name: stats["speedup"]
            for name, stats in sections["kernels"].items()
            if stats["speedup"] < PARALLEL_SPEEDUP_FLOOR
        }
        if slow:
            print(
                f"ERROR: speedup below {PARALLEL_SPEEDUP_FLOOR}x "
                f"on a {_usable_cores()}-core machine: {slow}"
            )
            return 1
    else:
        print(
            f"note: only {_usable_cores()} usable core(s); "
            f"speedup floor ({PARALLEL_SPEEDUP_FLOOR}x) not enforced"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workloads (what CI runs)"
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: BENCH_obs.json, or BENCH_parallel.json "
             "with --parallel)",
    )
    parser.add_argument(
        "--summary", action="store_true", help="also print the span summary tree"
    )
    parser.add_argument(
        "--parallel", action="store_true",
        help="run the kernel-pool ablation (serial vs 4 workers) instead",
    )
    parser.add_argument(
        "--resilience", action="store_true",
        help="run the fault-tolerance recovery scenarios instead",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="run the cold-vs-warm result-cache ablation instead",
    )
    args = parser.parse_args(argv)
    sizes = SIZES["quick" if args.quick else "full"]

    if args.parallel:
        return run_parallel_mode(args, sizes)
    if args.resilience:
        return run_resilience_mode(args, sizes)
    if args.cache:
        return run_cache_mode(args, sizes)

    args.out = args.out or "BENCH_obs.json"
    recorder = obs.Recorder()
    start = time.perf_counter()
    with obs.recording(recorder):
        for name, scenario in SCENARIOS:
            t0 = time.perf_counter()
            scenario(sizes)
            print(f"  scenario {name:<10} {time.perf_counter() - t0:8.3f}s")
    wall = time.perf_counter() - start

    payload = {
        "meta": {
            "tool": "perf_report",
            "mode": "quick" if args.quick else "full",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cores": _usable_cores(),
            "calibration_s": calibrate(),
            "wall_s": wall,
        },
        "aggregates": aggregate(recorder),
        "recorder": recorder.to_dict(),
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print(f"wrote {out} ({out.stat().st_size} bytes, {wall:.2f}s total)")
    if args.summary:
        print(recorder.summary_tree())

    # the artifact must carry the signals CI regression-tracks
    required_spans = [
        "raycast.render",
        "isosurface.marching_tetrahedra",
        "streamline.integrate",
        "rasterizer.rasterize",
        "executor.execute",
    ]
    missing = [n for n in required_spans if n not in payload["aggregates"]["spans"]]
    counters = payload["aggregates"]["counters"]
    for counter in ("executor.cache.hit", "executor.cache.miss",
                    "hyperwall.messages.sent", "hyperwall.bytes.sent"):
        if counters.get(counter, 0) <= 0:
            missing.append(counter)
    if missing:
        print(f"ERROR: artifact is missing expected signals: {missing}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
