#!/usr/bin/env python
"""Out-of-core analysis bench -> ``BENCH_cdat_streaming.json``.

Runs the canonical CDAT reductions (monthly climatology, zonal mean,
running mean, temporal variance) over a chunked v2 ``.cdz`` container
~4x the configured streaming memory budget, and reports per reduction:

* ``elapsed_s`` / ``throughput_mb_s`` — wall time and effective payload
  throughput of the streamed run (dataset bytes / elapsed);
* ``digest_match`` — whether the streamed result is byte-identical
  (:func:`repro.cache.keys.digest`) to the same reduction of the
  eagerly loaded twin — the correctness half of the gate;

plus the run-wide memory accounting:

* ``peak_resident_bytes`` — the prefetcher's chunk-slot peak, which
  must stay under ``budget_bytes``;
* ``materialize_full_count`` — how many times a reduction fell through
  the whole-array escape hatch (must be 0);
* ``peak_rss_bytes`` — ``ru_maxrss``, recorded but not gated (Python
  allocator behaviour is machine-bound).

The artifact carries ``"kind": "cdat_streaming"`` and is gated by
``validate_cdat_streaming`` in ``tools/bench_compare.py``: structural
schema plus the machine-independent invariants (container >= 4x budget,
peak resident under budget, zero full materializations, every digest
matching).

Usage::

    PYTHONPATH=src python tools/bench_cdat_streaming.py --quick --out BENCH_cdat_streaming.json
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.cache.keys import digest
from repro.cdat.registry import default_registry
from repro.cdms.dataset import open_dataset
from repro.data import catalog
from repro.streaming.config import StreamingConfig

FULL_SIZE = {"nlat": 46, "nlon": 72, "nlev": 17, "ntime": 24}
QUICK_SIZE = {"nlat": 24, "nlon": 36, "nlev": 6, "ntime": 12}

#: budget = dataset / BUDGET_DIVISOR, so the container is ~4x the budget
BUDGET_DIVISOR = 4

VARIABLE = "ta"
SEED = "bench-cdat-streaming"

#: (operation name, kwargs) — the reductions the gate pins
REDUCTIONS = (
    ("monthly_climatology", {}),
    ("zonal_mean", {}),
    ("running_mean", {"window": 5}),
    ("variance", {"axis": "time"}),
)


def peak_rss_bytes() -> int:
    # ru_maxrss is KiB on Linux, bytes on macOS; this repo's CI is Linux
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024


def build_container(directory: Path, size: dict) -> Path:
    path = directory / "bench_cdat_streaming.cdz"
    catalog.synthetic_reanalysis(**size, seed=SEED).save(
        path, version=2, chunk_timesteps=2
    )
    return path


def run(size: dict) -> dict:
    registry = default_registry()
    with tempfile.TemporaryDirectory(prefix="bench-cdat-") as tmp:
        path = build_container(Path(tmp), size)

        probe = open_dataset(path, streaming="on")
        layout = probe.streaming_source.layout(VARIABLE)
        dataset_bytes = layout.total_nbytes()
        probe.close()
        budget = max(layout.max_chunk_nbytes(), dataset_bytes // BUDGET_DIVISOR)

        # the eager twin provides the byte-identity reference results
        eager = open_dataset(path, streaming="off").get_variable(VARIABLE)
        expected = {
            name: digest(registry.apply(name, eager, **kwargs))
            for name, kwargs in REDUCTIONS
        }

        config = StreamingConfig(memory_budget_bytes=budget, prefetch_depth=2)
        obs.set_recorder(obs.Recorder())
        obs.enable()
        try:
            ops = []
            with open_dataset(path, streaming="on", streaming_config=config) as ds:
                lazy = ds.get_variable(VARIABLE)
                for name, kwargs in REDUCTIONS:
                    started = time.perf_counter()
                    result = registry.apply(name, lazy, **kwargs)
                    elapsed = time.perf_counter() - started
                    ops.append(
                        {
                            "name": name,
                            "elapsed_s": elapsed,
                            "throughput_mb_s": (
                                dataset_bytes / (1024.0 * 1024.0) / elapsed
                                if elapsed > 0 else 0.0
                            ),
                            "digest_match": digest(result) == expected[name],
                        }
                    )
                peak_resident = ds.streaming_source.prefetcher(
                    VARIABLE
                ).peak_resident_bytes
            materialize_full = obs.get_recorder().counter_total(
                "streaming.materialize.full"
            )
        finally:
            obs.disable()
            obs.set_recorder(obs.Recorder())

    return {
        "kind": "cdat_streaming",
        "meta": {"seed": SEED, "size": size, "variable": VARIABLE},
        "dataset_bytes": dataset_bytes,
        "budget_bytes": budget,
        "peak_resident_bytes": peak_resident,
        "materialize_full_count": int(materialize_full),
        "peak_rss_bytes": peak_rss_bytes(),
        "ops": ops,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_cdat_streaming.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller container for CI smoke runs",
    )
    args = parser.parse_args(argv)

    report = run(QUICK_SIZE if args.quick else FULL_SIZE)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    ok = (
        report["peak_resident_bytes"] <= report["budget_bytes"]
        and report["materialize_full_count"] == 0
        and all(op["digest_match"] for op in report["ops"])
    )
    for op in report["ops"]:
        print(
            f"{op['name']:>22}: {op['elapsed_s']:.3f}s "
            f"{op['throughput_mb_s']:8.1f} MB/s "
            f"digest_match={op['digest_match']}"
        )
    print(
        f"dataset={report['dataset_bytes']} budget={report['budget_bytes']} "
        f"peak_resident={report['peak_resident_bytes']} "
        f"materialize_full={report['materialize_full_count']}"
    )
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
