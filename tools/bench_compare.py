#!/usr/bin/env python
"""Compare a fresh ``BENCH_parallel.json`` against a committed baseline.

This is the CI perf-regression gate: the ``perf`` job runs
``perf_report --parallel``, then this tool diffs the pinned kernel
timings against ``benchmarks/baselines/BENCH_parallel.json`` and fails
the build when a kernel slowed down by more than the threshold.

Cross-machine noise is handled two ways:

* every ``perf_report`` artifact embeds ``meta.calibration_s`` — the
  best-of-N time of a fixed numpy workload on the machine that produced
  it — and all comparisons are made in *calibrated units*
  (``seconds / calibration_s``), so a slower CI runner shifts both
  sides equally;
* a regression is only reported when the slowdown clears both the
  relative threshold (default 20%) **and** an absolute floor in
  calibrated units, so micro-benchmarks jittering by fractions of a
  millisecond cannot fail a build.

``--speedup-baseline`` adds a second check, used to enforce the batched
-kernel speedup contract: the fresh run's serial timings must beat the
named (pre-optimization) baseline by ``--speedup-floor`` on every
pinned kernel.

Exit codes: 0 ok, 1 regression (or missing speedup), 2 usage/IO error.

Usage::

    PYTHONPATH=src python tools/perf_report.py --parallel --quick --out fresh.json
    python tools/bench_compare.py fresh.json \
        --baseline benchmarks/baselines/BENCH_parallel.quick.json \
        --speedup-baseline benchmarks/baselines/BENCH_parallel.pre_batching.quick.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: kernels whose serial timings gate the build
PINNED_KERNELS = ("raycast", "isosurface")

#: relative slowdown tolerated before a pinned metric is a regression
DEFAULT_THRESHOLD = 0.20

#: absolute floor, in calibrated units, below which a slowdown is noise
#: (with calibration_s ≈ 3 ms this is ≈ 1.5 ms of raw wall time)
DEFAULT_MIN_DELTA = 0.5


class CompareError(Exception):
    """Unusable input (missing file, malformed artifact, bad metric)."""


def load_report(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise CompareError(f"cannot read benchmark artifact {path!r}: {exc}") from exc


def calibration(report: Dict[str, Any]) -> float:
    value = report.get("meta", {}).get("calibration_s")
    if not isinstance(value, (int, float)) or value <= 0:
        raise CompareError(
            "artifact has no usable meta.calibration_s "
            "(regenerate it with the current perf_report)"
        )
    return float(value)


def kernel_seconds(report: Dict[str, Any], kernel: str, field: str) -> float:
    value = report.get("kernels", {}).get(kernel, {}).get(field)
    if not isinstance(value, (int, float)) or value <= 0:
        raise CompareError(f"artifact has no usable kernels.{kernel}.{field}")
    return float(value)


def compare_reports(
    fresh: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    min_delta: float = DEFAULT_MIN_DELTA,
    kernels: Tuple[str, ...] = PINNED_KERNELS,
) -> List[Dict[str, Any]]:
    """Per-kernel comparison rows; ``row["regression"]`` flags failures.

    Times are divided by each artifact's own ``meta.calibration_s``
    before comparing, so artifacts from differently-sized machines are
    commensurable.
    """
    fresh_cal = calibration(fresh)
    base_cal = calibration(baseline)
    rows: List[Dict[str, Any]] = []
    for kernel in kernels:
        fresh_units = kernel_seconds(fresh, kernel, "serial_s") / fresh_cal
        base_units = kernel_seconds(baseline, kernel, "serial_s") / base_cal
        ratio = fresh_units / base_units
        regression = (
            ratio > 1.0 + threshold and (fresh_units - base_units) > min_delta
        )
        rows.append(
            {
                "kernel": kernel,
                "metric": "serial_s",
                "fresh_s": kernel_seconds(fresh, kernel, "serial_s"),
                "baseline_s": kernel_seconds(baseline, kernel, "serial_s"),
                "fresh_units": fresh_units,
                "baseline_units": base_units,
                "ratio": ratio,
                "regression": bool(regression),
            }
        )
    return rows


def check_speedup(
    fresh: Dict[str, Any],
    reference: Dict[str, Any],
    floor: float,
    kernels: Tuple[str, ...] = PINNED_KERNELS,
) -> List[Dict[str, Any]]:
    """Calibrated speedup of *fresh* over a pre-optimization *reference*."""
    fresh_cal = calibration(fresh)
    ref_cal = calibration(reference)
    rows: List[Dict[str, Any]] = []
    for kernel in kernels:
        fresh_units = kernel_seconds(fresh, kernel, "serial_s") / fresh_cal
        ref_units = kernel_seconds(reference, kernel, "serial_s") / ref_cal
        speedup = ref_units / fresh_units
        rows.append(
            {
                "kernel": kernel,
                "metric": "serial_s",
                "speedup": speedup,
                "floor": floor,
                "ok": bool(speedup >= floor),
            }
        )
    return rows


def format_table(rows: List[Dict[str, Any]], threshold: float) -> str:
    lines = [
        "| kernel | baseline | fresh | calibrated ratio | status |",
        "|---|---|---|---|---|",
    ]
    for row in rows:
        status = "REGRESSION" if row["regression"] else "ok"
        lines.append(
            "| {kernel} | {baseline_s:.4f}s | {fresh_s:.4f}s "
            "| {ratio:.2f}x | {status} |".format(status=status, **row)
        )
    lines.append("")
    lines.append(
        f"Gate: fail when calibrated ratio > {1.0 + threshold:.2f}x "
        "and the slowdown clears the noise floor."
    )
    return "\n".join(lines)


def format_speedup_table(rows: List[Dict[str, Any]]) -> str:
    lines = [
        "| kernel | speedup vs pre-batching | floor | status |",
        "|---|---|---|---|",
    ]
    for row in rows:
        status = "ok" if row["ok"] else "TOO SLOW"
        lines.append(
            "| {kernel} | {speedup:.2f}x | {floor:.2f}x | {status} |".format(
                status=status, **row
            )
        )
    return "\n".join(lines)


def write_job_summary(markdown: str) -> None:
    """Append to the GitHub Actions job summary when running in CI."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    try:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(markdown + "\n")
    except OSError:
        pass  # a broken summary file must not mask the comparison result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="fresh BENCH_parallel.json to evaluate")
    parser.add_argument(
        "--baseline",
        default=str(
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "baselines" / "BENCH_parallel.json"
        ),
        help="committed baseline artifact to diff against",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative slowdown tolerated before failing (default 0.20)",
    )
    parser.add_argument(
        "--min-delta", type=float, default=DEFAULT_MIN_DELTA,
        help="absolute noise floor in calibrated units (default 0.5)",
    )
    parser.add_argument(
        "--speedup-baseline", default=None,
        help="pre-optimization artifact the fresh run must beat",
    )
    parser.add_argument(
        "--speedup-floor", type=float, default=3.0,
        help="required calibrated speedup over --speedup-baseline (default 3.0)",
    )
    args = parser.parse_args(argv)

    try:
        fresh = load_report(args.fresh)
        baseline = load_report(args.baseline)
        rows = compare_reports(
            fresh, baseline, threshold=args.threshold, min_delta=args.min_delta
        )
        speedup_rows: List[Dict[str, Any]] = []
        if args.speedup_baseline:
            reference = load_report(args.speedup_baseline)
            speedup_rows = check_speedup(fresh, reference, args.speedup_floor)
    except CompareError as exc:
        print(f"bench_compare: {exc}", file=sys.stderr)
        return 2

    markdown = "## Perf regression gate\n\n" + format_table(rows, args.threshold)
    if speedup_rows:
        markdown += "\n\n### Batched-kernel speedup contract\n\n"
        markdown += format_speedup_table(speedup_rows)
    print(markdown)
    write_job_summary(markdown)

    failed = [row for row in rows if row["regression"]]
    too_slow = [row for row in speedup_rows if not row["ok"]]
    if failed or too_slow:
        for row in failed:
            print(
                f"bench_compare: REGRESSION {row['kernel']}.{row['metric']}: "
                f"{row['ratio']:.2f}x calibrated baseline",
                file=sys.stderr,
            )
        for row in too_slow:
            print(
                f"bench_compare: speedup floor missed for {row['kernel']}: "
                f"{row['speedup']:.2f}x < {row['floor']:.2f}x",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
