#!/usr/bin/env python
"""Compare a fresh ``BENCH_parallel.json`` against a committed baseline.

This is the CI perf-regression gate: the ``perf`` job runs
``perf_report --parallel``, then this tool diffs the pinned kernel
timings against ``benchmarks/baselines/BENCH_parallel.json`` and fails
the build when a kernel slowed down by more than the threshold.

Cross-machine noise is handled two ways:

* every ``perf_report`` artifact embeds ``meta.calibration_s`` — the
  best-of-N time of a fixed numpy workload on the machine that produced
  it — and all comparisons are made in *calibrated units*
  (``seconds / calibration_s``), so a slower CI runner shifts both
  sides equally;
* a regression is only reported when the slowdown clears both the
  relative threshold (default 20%) **and** an absolute floor in
  calibrated units, so micro-benchmarks jittering by fractions of a
  millisecond cannot fail a build.

``--speedup-baseline`` adds a second check, used to enforce the batched
-kernel speedup contract: the fresh run's serial timings must beat the
named (pre-optimization) baseline by ``--speedup-floor`` on every
pinned kernel.

Artifacts with ``"kind": "serving"`` (from ``tools/loadgen.py``) take a
different path: there is no cross-machine baseline for open-loop
latency, so the gate is a structural schema check — trace digest
present, >= 3 offered-load points, each with counters, throughput and
p50/p99 latency — rendered as a table in the job summary.
``"kind": "serving_sessions"`` artifacts (``loadgen.py
--session-locality``) are self-relative, so they carry real gates:
zero byte-identity mismatches against the demand-render oracle, a
speculative hit-rate floor over predictable frames, and a p99
improvement of the session-aware configuration over the stateless
baseline run on the same trace.  Artifacts
with ``"kind": "streaming"`` (from ``tools/bench_streaming.py``) are
gated the same way, plus the two machine-independent invariants: the
benched container is >= 4x the memory budget and peak resident chunk
bytes stayed under it, with a completed chaos replay.  Artifacts with
``"kind": "cdat_streaming"`` (from ``tools/bench_cdat_streaming.py``)
add the analysis-plane invariants: zero whole-array materializations
and byte-identical eager/streamed digests for every benched reduction.

Exit codes: 0 ok, 1 regression (or missing speedup), 2 usage/IO error.

Usage::

    PYTHONPATH=src python tools/perf_report.py --parallel --quick --out fresh.json
    python tools/bench_compare.py fresh.json \
        --baseline benchmarks/baselines/BENCH_parallel.quick.json \
        --speedup-baseline benchmarks/baselines/BENCH_parallel.pre_batching.quick.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: kernels whose serial timings gate the build
PINNED_KERNELS = ("raycast", "isosurface")

#: relative slowdown tolerated before a pinned metric is a regression
DEFAULT_THRESHOLD = 0.20

#: absolute floor, in calibrated units, below which a slowdown is noise
#: (with calibration_s ≈ 3 ms this is ≈ 1.5 ms of raw wall time)
DEFAULT_MIN_DELTA = 0.5


class CompareError(Exception):
    """Unusable input (missing file, malformed artifact, bad metric)."""


def load_report(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise CompareError(f"cannot read benchmark artifact {path!r}: {exc}") from exc


def validate_serving(report: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Schema-check a ``kind: serving`` artifact (``tools/loadgen.py``).

    Serving runs have no committed baseline (latency under open-loop
    load is machine-bound); the gate is structural: the artifact must
    carry a deterministic trace digest and at least three offered-load
    points, each reporting completion counters, throughput and the
    p50/p99 latency percentiles.  Returns the load-point rows for
    display; raises :class:`CompareError` on any violation.
    """
    meta = report.get("meta", {})
    if not isinstance(meta.get("trace_digest"), str) or not meta["trace_digest"]:
        raise CompareError("serving artifact has no meta.trace_digest")
    if not isinstance(meta.get("seed"), (str, int)):
        raise CompareError("serving artifact has no meta.seed")
    points = report.get("load_points")
    if not isinstance(points, list) or len(points) < 3:
        raise CompareError(
            "serving artifact needs >= 3 load_points, got "
            f"{len(points) if isinstance(points, list) else type(points).__name__}"
        )
    counters = ("offered", "completed", "ok", "shed", "coalesced", "errors")
    for index, point in enumerate(points):
        if not isinstance(point, dict):
            raise CompareError(f"load_points[{index}] is not an object")
        rps = point.get("offered_rps")
        if not isinstance(rps, (int, float)) or rps <= 0:
            raise CompareError(f"load_points[{index}] has no usable offered_rps")
        for field in counters:
            value = point.get(field)
            if not isinstance(value, int) or value < 0:
                raise CompareError(
                    f"load_points[{index}].{field} must be a non-negative int"
                )
        throughput = point.get("throughput_rps")
        if not isinstance(throughput, (int, float)) or throughput < 0:
            raise CompareError(f"load_points[{index}] has no usable throughput_rps")
        latency = point.get("latency_ms")
        if not isinstance(latency, dict):
            raise CompareError(f"load_points[{index}] has no latency_ms object")
        for quantile in ("p50", "p99"):
            value = latency.get(quantile)
            if not isinstance(value, (int, float)) or value < 0:
                raise CompareError(
                    f"load_points[{index}].latency_ms.{quantile} missing or negative"
                )
        if point["completed"] > point["offered"]:
            raise CompareError(
                f"load_points[{index}]: completed exceeds offered"
            )
    return points


#: minimum aggregate speculative hit rate over predictable frames a
#: ``serving_sessions`` artifact must demonstrate
SESSIONS_MIN_HIT_RATE = 0.5


def validate_serving_sessions(report: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Gate a ``kind: serving_sessions`` artifact (``loadgen.py
    --session-locality``).

    Latency is machine-bound but the artifact is *self-relative* —
    every load point ran the same trace through a stateless baseline
    and the session-aware configuration on the same machine — so three
    machine-independent invariants gate the build:

    * **byte identity** — zero payload mismatches against the
      deterministic oracle in both configurations (a speculative or
      replayed frame must be the bytes a demand render produces);
    * **speculation works** — the aggregate speculative hit rate over
      predictable frames is >= ``SESSIONS_MIN_HIT_RATE``;
    * **sessions help** — p99 improves over the baseline at the
      highest offered load and on at least half of all load points.

    Returns the load-point rows for display; raises
    :class:`CompareError` on any violation.
    """
    meta = report.get("meta", {})
    if not isinstance(meta.get("trace_digest"), str) or not meta["trace_digest"]:
        raise CompareError("serving_sessions artifact has no meta.trace_digest")
    if not isinstance(meta.get("seed"), (str, int)):
        raise CompareError("serving_sessions artifact has no meta.seed")
    points = report.get("load_points")
    if not isinstance(points, list) or len(points) < 3:
        raise CompareError(
            "serving_sessions artifact needs >= 3 load_points, got "
            f"{len(points) if isinstance(points, list) else type(points).__name__}"
        )
    total_hits = 0
    total_predictable = 0
    p99_wins = 0
    for index, point in enumerate(points):
        if not isinstance(point, dict):
            raise CompareError(f"load_points[{index}] is not an object")
        rps = point.get("offered_rps")
        if not isinstance(rps, (int, float)) or rps <= 0:
            raise CompareError(f"load_points[{index}] has no usable offered_rps")
        predictable = point.get("predictable")
        if not isinstance(predictable, int) or predictable < 0:
            raise CompareError(
                f"load_points[{index}].predictable must be a non-negative int"
            )
        for mode in ("baseline", "sessions"):
            run = point.get(mode)
            if not isinstance(run, dict):
                raise CompareError(f"load_points[{index}].{mode} missing")
            for field in ("offered", "completed", "ok", "shed", "errors"):
                value = run.get(field)
                if not isinstance(value, int) or value < 0:
                    raise CompareError(
                        f"load_points[{index}].{mode}.{field} must be a "
                        "non-negative int"
                    )
            mismatches = run.get("payload_mismatches")
            if not isinstance(mismatches, int) or mismatches < 0:
                raise CompareError(
                    f"load_points[{index}].{mode} has no payload_mismatches "
                    "count (run the harness with its oracle)"
                )
            if mismatches != 0:
                raise CompareError(
                    f"load_points[{index}].{mode}: {mismatches} payload(s) "
                    "differ from the demand-render oracle — byte identity "
                    "is broken"
                )
            latency = run.get("latency_ms")
            if not isinstance(latency, dict):
                raise CompareError(
                    f"load_points[{index}].{mode} has no latency_ms object"
                )
            for quantile in ("p50", "p99"):
                value = latency.get(quantile)
                if not isinstance(value, (int, float)) or value < 0:
                    raise CompareError(
                        f"load_points[{index}].{mode}.latency_ms.{quantile} "
                        "missing or negative"
                    )
        speculative = point.get("speculative")
        if not isinstance(speculative, dict):
            raise CompareError(f"load_points[{index}] has no speculative object")
        for field in ("started", "rendered", "hit", "waste", "cancelled"):
            value = speculative.get(field)
            if not isinstance(value, int) or value < 0:
                raise CompareError(
                    f"load_points[{index}].speculative.{field} must be a "
                    "non-negative int"
                )
        total_hits += speculative["hit"]
        total_predictable += predictable
        if (point["sessions"]["latency_ms"]["p99"]
                < point["baseline"]["latency_ms"]["p99"]):
            p99_wins += 1
    if total_predictable <= 0:
        raise CompareError(
            "serving_sessions trace contains no predictable frames — "
            "nothing for speculation to do"
        )
    hit_rate = total_hits / total_predictable
    if hit_rate < SESSIONS_MIN_HIT_RATE:
        raise CompareError(
            f"speculative hit rate {hit_rate:.2f} is below the "
            f"{SESSIONS_MIN_HIT_RATE:.2f} floor "
            f"({total_hits}/{total_predictable} predictable frames served "
            "from speculation)"
        )
    top = max(points, key=lambda p: p["offered_rps"])
    top_sessions = top["sessions"]["latency_ms"]["p99"]
    top_baseline = top["baseline"]["latency_ms"]["p99"]
    if top_sessions >= top_baseline:
        raise CompareError(
            "session-aware p99 did not improve at the highest offered load "
            f"({top_sessions:.1f}ms >= {top_baseline:.1f}ms baseline)"
        )
    if p99_wins * 2 < len(points):
        raise CompareError(
            f"session-aware p99 improved on only {p99_wins} of "
            f"{len(points)} load points"
        )
    return points


def validate_streaming(report: Dict[str, Any]) -> Dict[str, Any]:
    """Schema-check a ``kind: streaming`` artifact (``tools/bench_streaming.py``).

    Streaming throughput is machine-bound, so like serving runs the gate
    is structural plus the two invariants the bench can check on any
    machine: the container is at least 4x the memory budget, and the
    prefetcher's peak resident chunk bytes stayed within that budget.
    The chaos replay must have completed with its counters matching the
    per-frame records.  Raises :class:`CompareError` on any violation.
    """
    meta = report.get("meta", {})
    if not isinstance(meta.get("seed"), (str, int)):
        raise CompareError("streaming artifact has no meta.seed")
    for field in ("frames", "dataset_bytes", "budget_bytes", "peak_resident_bytes"):
        value = report.get(field)
        if not isinstance(value, int) or value <= 0:
            raise CompareError(f"streaming artifact needs a positive int {field}")
    fps = report.get("frames_per_s")
    if not isinstance(fps, (int, float)) or fps <= 0:
        raise CompareError("streaming artifact has no usable frames_per_s")
    rss = report.get("peak_rss_bytes")
    if not isinstance(rss, int) or rss <= 0:
        raise CompareError("streaming artifact has no usable peak_rss_bytes")
    if report["dataset_bytes"] < 4 * report["budget_bytes"] - 3:
        # -3 absorbs the integer division when budget = dataset // 4
        raise CompareError(
            "streaming bench dataset must be >= 4x the memory budget "
            f"({report['dataset_bytes']} < 4 * {report['budget_bytes']})"
        )
    if report["peak_resident_bytes"] > report["budget_bytes"]:
        raise CompareError(
            "streaming peak resident bytes exceeded the budget "
            f"({report['peak_resident_bytes']} > {report['budget_bytes']})"
        )
    chaos = report.get("fault_pass")
    if not isinstance(chaos, dict):
        raise CompareError("streaming artifact has no fault_pass object")
    for field in ("frames", "ok_frames", "degraded_frames"):
        if not isinstance(chaos.get(field), int) or chaos[field] < 0:
            raise CompareError(f"fault_pass.{field} must be a non-negative int")
    if chaos["ok_frames"] + chaos["degraded_frames"] != chaos["frames"]:
        raise CompareError("fault_pass frames are not fully accounted")
    if not chaos.get("counters_match"):
        raise CompareError("fault_pass counters do not match frame records")
    if not chaos.get("completed"):
        raise CompareError("fault_pass did not complete")
    return report


def validate_cdat_streaming(report: Dict[str, Any]) -> Dict[str, Any]:
    """Schema-check a ``kind: cdat_streaming`` artifact
    (``tools/bench_cdat_streaming.py``).

    Reduction throughput is machine-bound, so the gate is structural
    plus the machine-independent invariants: the benched container is
    >= 4x the streaming memory budget, peak resident chunk bytes stayed
    under that budget, no reduction fell through the whole-array
    materialization escape hatch, and every streamed reduction digested
    byte-identically to its eager twin.  Raises :class:`CompareError`
    on any violation.
    """
    meta = report.get("meta", {})
    if not isinstance(meta.get("seed"), (str, int)):
        raise CompareError("cdat_streaming artifact has no meta.seed")
    for field in ("dataset_bytes", "budget_bytes", "peak_resident_bytes"):
        value = report.get(field)
        if not isinstance(value, int) or value <= 0:
            raise CompareError(
                f"cdat_streaming artifact needs a positive int {field}"
            )
    rss = report.get("peak_rss_bytes")
    if not isinstance(rss, int) or rss <= 0:
        raise CompareError("cdat_streaming artifact has no usable peak_rss_bytes")
    if report["dataset_bytes"] < 4 * report["budget_bytes"] - 3:
        # -3 absorbs the integer division when budget = dataset // 4
        raise CompareError(
            "cdat_streaming bench dataset must be >= 4x the memory budget "
            f"({report['dataset_bytes']} < 4 * {report['budget_bytes']})"
        )
    if report["peak_resident_bytes"] > report["budget_bytes"]:
        raise CompareError(
            "cdat_streaming peak resident bytes exceeded the budget "
            f"({report['peak_resident_bytes']} > {report['budget_bytes']})"
        )
    full = report.get("materialize_full_count")
    if not isinstance(full, int) or full < 0:
        raise CompareError(
            "cdat_streaming artifact needs a non-negative materialize_full_count"
        )
    if full != 0:
        raise CompareError(
            f"cdat_streaming run materialized a streamed input {full} time(s)"
        )
    ops = report.get("ops")
    if not isinstance(ops, list) or len(ops) < 3:
        raise CompareError(
            "cdat_streaming artifact needs >= 3 ops, got "
            f"{len(ops) if isinstance(ops, list) else type(ops).__name__}"
        )
    for index, op in enumerate(ops):
        if not isinstance(op, dict) or not isinstance(op.get("name"), str):
            raise CompareError(f"ops[{index}] has no name")
        for field in ("elapsed_s", "throughput_mb_s"):
            value = op.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                raise CompareError(
                    f"ops[{index}].{field} missing or non-positive"
                )
        if op.get("digest_match") is not True:
            raise CompareError(
                f"streamed reduction {op['name']!r} is not byte-identical "
                "to its eager twin"
            )
    return report


def format_cdat_streaming_table(report: Dict[str, Any]) -> str:
    lines = [
        "| reduction | elapsed | throughput | digest |",
        "|---|---|---|---|",
    ]
    for op in report["ops"]:
        lines.append(
            "| {name} | {elapsed_s:.3f}s | {throughput_mb_s:.1f} MB/s "
            "| {status} |".format(
                status="match" if op["digest_match"] else "MISMATCH", **op
            )
        )
    lines.append("")
    lines.append(
        "dataset {ds} B, budget {budget} B, peak resident {resident} B, "
        "full materializations {full}".format(
            ds=report["dataset_bytes"], budget=report["budget_bytes"],
            resident=report["peak_resident_bytes"],
            full=report["materialize_full_count"],
        )
    )
    return "\n".join(lines)


def format_streaming_table(report: Dict[str, Any]) -> str:
    chaos = report["fault_pass"]
    lines = [
        "| frames/s | dataset | budget | peak resident | peak RSS "
        "| chaos degraded |",
        "|---|---|---|---|---|---|",
        "| {fps:.2f} | {ds} | {budget} | {resident} | {rss} | {deg}/{total} |".format(
            fps=report["frames_per_s"],
            ds=report["dataset_bytes"],
            budget=report["budget_bytes"],
            resident=report["peak_resident_bytes"],
            rss=report["peak_rss_bytes"],
            deg=chaos["degraded_frames"],
            total=chaos["frames"],
        ),
    ]
    return "\n".join(lines)


def format_serving_sessions_table(points: List[Dict[str, Any]]) -> str:
    lines = [
        "| offered rps | predictable | spec hits | hit rate | waste "
        "| baseline p50/p99 | sessions p50/p99 |",
        "|---|---|---|---|---|---|---|",
    ]
    for point in points:
        speculative = point["speculative"]
        predictable = point["predictable"]
        hit_rate = speculative["hit"] / predictable if predictable else 0.0
        base = point["baseline"]["latency_ms"]
        sess = point["sessions"]["latency_ms"]
        lines.append(
            "| {rps:g} | {predictable} | {hit} | {rate:.2f} | {waste} "
            "| {bp50:.1f}/{bp99:.1f}ms | {sp50:.1f}/{sp99:.1f}ms |".format(
                rps=point["offered_rps"], predictable=predictable,
                hit=speculative["hit"], rate=hit_rate,
                waste=speculative["waste"],
                bp50=base["p50"], bp99=base["p99"],
                sp50=sess["p50"], sp99=sess["p99"],
            )
        )
    lines.append("")
    lines.append(
        "Gates: zero oracle payload mismatches in both configurations, "
        f"aggregate hit rate >= {SESSIONS_MIN_HIT_RATE:.2f}, p99 better "
        "than baseline at the top load point and on half of all points."
    )
    return "\n".join(lines)


def format_serving_table(points: List[Dict[str, Any]]) -> str:
    lines = [
        "| offered rps | offered | completed | shed | coalesced "
        "| p50 | p99 | throughput |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for point in points:
        latency = point["latency_ms"]
        lines.append(
            "| {offered_rps:g} | {offered} | {completed} | {shed} "
            "| {coalesced} | {p50:.1f}ms | {p99:.1f}ms | {tp:.1f}rps |".format(
                p50=latency["p50"], p99=latency["p99"],
                tp=point["throughput_rps"], **point,
            )
        )
    return "\n".join(lines)


def calibration(report: Dict[str, Any]) -> float:
    value = report.get("meta", {}).get("calibration_s")
    if not isinstance(value, (int, float)) or value <= 0:
        raise CompareError(
            "artifact has no usable meta.calibration_s "
            "(regenerate it with the current perf_report)"
        )
    return float(value)


def kernel_seconds(report: Dict[str, Any], kernel: str, field: str) -> float:
    value = report.get("kernels", {}).get(kernel, {}).get(field)
    if not isinstance(value, (int, float)) or value <= 0:
        raise CompareError(f"artifact has no usable kernels.{kernel}.{field}")
    return float(value)


def compare_reports(
    fresh: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    min_delta: float = DEFAULT_MIN_DELTA,
    kernels: Tuple[str, ...] = PINNED_KERNELS,
) -> List[Dict[str, Any]]:
    """Per-kernel comparison rows; ``row["regression"]`` flags failures.

    Times are divided by each artifact's own ``meta.calibration_s``
    before comparing, so artifacts from differently-sized machines are
    commensurable.
    """
    fresh_cal = calibration(fresh)
    base_cal = calibration(baseline)
    rows: List[Dict[str, Any]] = []
    for kernel in kernels:
        fresh_units = kernel_seconds(fresh, kernel, "serial_s") / fresh_cal
        base_units = kernel_seconds(baseline, kernel, "serial_s") / base_cal
        ratio = fresh_units / base_units
        regression = (
            ratio > 1.0 + threshold and (fresh_units - base_units) > min_delta
        )
        rows.append(
            {
                "kernel": kernel,
                "metric": "serial_s",
                "fresh_s": kernel_seconds(fresh, kernel, "serial_s"),
                "baseline_s": kernel_seconds(baseline, kernel, "serial_s"),
                "fresh_units": fresh_units,
                "baseline_units": base_units,
                "ratio": ratio,
                "regression": bool(regression),
            }
        )
    return rows


def check_speedup(
    fresh: Dict[str, Any],
    reference: Dict[str, Any],
    floor: float,
    kernels: Tuple[str, ...] = PINNED_KERNELS,
) -> List[Dict[str, Any]]:
    """Calibrated speedup of *fresh* over a pre-optimization *reference*."""
    fresh_cal = calibration(fresh)
    ref_cal = calibration(reference)
    rows: List[Dict[str, Any]] = []
    for kernel in kernels:
        fresh_units = kernel_seconds(fresh, kernel, "serial_s") / fresh_cal
        ref_units = kernel_seconds(reference, kernel, "serial_s") / ref_cal
        speedup = ref_units / fresh_units
        rows.append(
            {
                "kernel": kernel,
                "metric": "serial_s",
                "speedup": speedup,
                "floor": floor,
                "ok": bool(speedup >= floor),
            }
        )
    return rows


def format_table(rows: List[Dict[str, Any]], threshold: float) -> str:
    lines = [
        "| kernel | baseline | fresh | calibrated ratio | status |",
        "|---|---|---|---|---|",
    ]
    for row in rows:
        status = "REGRESSION" if row["regression"] else "ok"
        lines.append(
            "| {kernel} | {baseline_s:.4f}s | {fresh_s:.4f}s "
            "| {ratio:.2f}x | {status} |".format(status=status, **row)
        )
    lines.append("")
    lines.append(
        f"Gate: fail when calibrated ratio > {1.0 + threshold:.2f}x "
        "and the slowdown clears the noise floor."
    )
    return "\n".join(lines)


def format_speedup_table(rows: List[Dict[str, Any]]) -> str:
    lines = [
        "| kernel | speedup vs pre-batching | floor | status |",
        "|---|---|---|---|",
    ]
    for row in rows:
        status = "ok" if row["ok"] else "TOO SLOW"
        lines.append(
            "| {kernel} | {speedup:.2f}x | {floor:.2f}x | {status} |".format(
                status=status, **row
            )
        )
    return "\n".join(lines)


def write_job_summary(markdown: str) -> None:
    """Append to the GitHub Actions job summary when running in CI."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    try:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(markdown + "\n")
    except OSError:
        pass  # a broken summary file must not mask the comparison result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="fresh BENCH_parallel.json to evaluate")
    parser.add_argument(
        "--baseline",
        default=str(
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "baselines" / "BENCH_parallel.json"
        ),
        help="committed baseline artifact to diff against",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative slowdown tolerated before failing (default 0.20)",
    )
    parser.add_argument(
        "--min-delta", type=float, default=DEFAULT_MIN_DELTA,
        help="absolute noise floor in calibrated units (default 0.5)",
    )
    parser.add_argument(
        "--speedup-baseline", default=None,
        help="pre-optimization artifact the fresh run must beat",
    )
    parser.add_argument(
        "--speedup-floor", type=float, default=3.0,
        help="required calibrated speedup over --speedup-baseline (default 3.0)",
    )
    args = parser.parse_args(argv)

    try:
        fresh = load_report(args.fresh)
        if fresh.get("kind") == "serving":
            points = validate_serving(fresh)
            markdown = (
                "## Serving load harness\n\n"
                f"trace digest `{fresh['meta']['trace_digest'][:16]}…` "
                f"(seed {fresh['meta'].get('seed')!r})\n\n"
                + format_serving_table(points)
            )
            print(markdown)
            write_job_summary(markdown)
            return 0
        if fresh.get("kind") == "serving_sessions":
            points = validate_serving_sessions(fresh)
            markdown = (
                "## Session-aware serving harness\n\n"
                f"trace digest `{fresh['meta']['trace_digest'][:16]}…` "
                f"(seed {fresh['meta'].get('seed')!r})\n\n"
                + format_serving_sessions_table(points)
            )
            print(markdown)
            write_job_summary(markdown)
            return 0
        if fresh.get("kind") == "streaming":
            validate_streaming(fresh)
            markdown = (
                "## Out-of-core streaming bench\n\n"
                + format_streaming_table(fresh)
            )
            print(markdown)
            write_job_summary(markdown)
            return 0
        if fresh.get("kind") == "cdat_streaming":
            validate_cdat_streaming(fresh)
            markdown = (
                "## Out-of-core analysis bench\n\n"
                + format_cdat_streaming_table(fresh)
            )
            print(markdown)
            write_job_summary(markdown)
            return 0
        baseline = load_report(args.baseline)
        rows = compare_reports(
            fresh, baseline, threshold=args.threshold, min_delta=args.min_delta
        )
        speedup_rows: List[Dict[str, Any]] = []
        if args.speedup_baseline:
            reference = load_report(args.speedup_baseline)
            speedup_rows = check_speedup(fresh, reference, args.speedup_floor)
    except CompareError as exc:
        print(f"bench_compare: {exc}", file=sys.stderr)
        return 2

    markdown = "## Perf regression gate\n\n" + format_table(rows, args.threshold)
    if speedup_rows:
        markdown += "\n\n### Batched-kernel speedup contract\n\n"
        markdown += format_speedup_table(speedup_rows)
    print(markdown)
    write_job_summary(markdown)

    failed = [row for row in rows if row["regression"]]
    too_slow = [row for row in speedup_rows if not row["ok"]]
    if failed or too_slow:
        for row in failed:
            print(
                f"bench_compare: REGRESSION {row['kernel']}.{row['metric']}: "
                f"{row['ratio']:.2f}x calibrated baseline",
                file=sys.stderr,
            )
        for row in too_slow:
            print(
                f"bench_compare: speedup floor missed for {row['kernel']}: "
                f"{row['speedup']:.2f}x < {row['floor']:.2f}x",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
