#!/usr/bin/env python
"""Open-loop load harness for the serving layer (``BENCH_serving.json``).

Drives :class:`repro.serving.ServingServer` with deterministic seeded
traffic and measures latency/throughput at fixed offered-load points.
The generator is **open-loop**: request arrival times are drawn up
front (exponential inter-arrivals at the offered rate) and submissions
fire at those times whether or not earlier requests completed — a slow
server faces a growing queue, exactly the regime admission control and
load shedding exist for.

Traffic shape:

* **zipf scene popularity** — scene ranks are sampled with
  ``p ∝ 1 / rank^s`` (default ``s = 1.1``), so a handful of hot scenes
  dominate; the hot head is what coalescing and the serving cache
  exploit, and the cold tail is what the per-tenant quotas bound;
* **tenant/session fan-out** — each arrival is assigned a tenant and a
  session uniformly, independent of the scene, so identical scenes
  arrive from different tenants (the coalescing fan-out path).

Everything derives from ``--seed`` through
:func:`repro.util.rng.deterministic_rng`: the same seed produces the
same trace (same arrival times, scenes, tenants — ``meta.trace_digest``
asserts it), so two runs of this tool measure the same workload.

The default backend is synthetic — a fixed-iteration numpy workload
whose payload bytes are a deterministic function of the scene — so the
harness measures the *serving layer* (queueing, coalescing, shedding),
not kernel speed.  ``--app`` swaps in the real
:class:`repro.serving.AppBackend` spreadsheet path.

``--session-locality`` switches to the session-aware profile: each
session is an *animation* — a fixed scene whose ``timestep`` advances
by +1 with probability ``--p-step`` and teleports otherwise — sessions
are zipf-popular, and every event carries a ``predictable`` flag
(true iff a window-3 next-frame predictor would have guessed it).  The
harness then runs every load point **twice over the same trace**: a
stateless baseline (no slots, no speculation) and the session-aware
configuration (sticky slots + speculative next-frame rendering), and
emits ``BENCH_serving_sessions.json`` with the speculative hit rate,
byte-identity mismatch counts (every served payload is checked against
the deterministic oracle) and the p50/p99 comparison per point.

Usage::

    PYTHONPATH=src python tools/loadgen.py --quick --out BENCH_serving.json
    PYTHONPATH=src python tools/loadgen.py --rps 50 --rps 100 --rps 200
    PYTHONPATH=src python tools/loadgen.py --quick --session-locality
    python tools/bench_compare.py BENCH_serving.json   # schema gate
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.cache.config import CacheConfig  # noqa: E402
from repro.cache.keys import digest  # noqa: E402
from repro.cache.store import ResultCache  # noqa: E402
from repro.serving import (  # noqa: E402
    Request,
    ServingConfig,
    ServingServer,
)
from repro.util.rng import deterministic_rng  # noqa: E402

#: offered-load points (requests/second) of the two profiles.  The
#: serving cache absorbs the zipf head, so low rates never stress the
#: pool: measured on the 2-worker default, queueing only becomes
#: visible (p99 rising from ~15ms to ~45ms, coalescing engaging on the
#: hot scene) past ~1000 req/s — the earlier (40, 80, 160) profile
#: under-drove the server and measured nothing but the cache-hit path.
QUICK_RPS = (400.0, 1200.0, 2400.0)
FULL_RPS = (400.0, 1200.0, 2400.0, 4800.0)

#: offered-load points of the ``--session-locality`` profile.  Session
#: traffic is animation-shaped (every frame is a distinct digest, so
#: the zipf-head cache shortcut is gone) and the point of the bench is
#: the *comparison* — baseline renders every frame on demand while the
#: session config pre-renders the predictable ones during idle gaps —
#: so the points sit inside the band where idle gaps exist.  Past the
#: render capacity (~300 req/s on the CI box) the idle-depth gate
#: correctly disables speculation and the two configs converge, so
#: saturated points measure nothing about sessions.
SESSION_QUICK_RPS = (80.0, 160.0, 240.0)
SESSION_FULL_RPS = (60.0, 120.0, 180.0, 240.0)

#: timestep space of a session animation; large enough that teleports
#: land on fresh frames instead of re-walking cached ranges
SESSION_TIMESTEPS = 10_000

#: latency percentiles reported per load point
PERCENTILES = (50.0, 90.0, 99.0)


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled arrival of the open-loop trace.

    ``timestep`` is only set by the session-locality generator; when
    set, ``predictable`` records whether a window-3 constant-stride
    predictor — the exact contract of
    :class:`repro.serving.NextFramePredictor` — would have guessed this
    frame from the session's previous three.
    """

    arrival_s: float
    tenant: str
    session: str
    scene: int
    timestep: Optional[int] = None
    predictable: bool = False


def zipf_weights(scenes: int, s: float) -> np.ndarray:
    """Normalized zipf popularity over ``scenes`` ranks (p ∝ 1/rank^s)."""
    ranks = np.arange(1, scenes + 1, dtype=float)
    weights = 1.0 / np.power(ranks, s)
    return weights / weights.sum()


def generate_trace(
    seed: int | str,
    offered_rps: float,
    duration_s: float,
    tenants: int = 8,
    sessions: int = 4,
    scenes: int = 12,
    zipf_s: float = 1.1,
    herd: bool = True,
) -> List[TraceEvent]:
    """The deterministic open-loop trace for one offered-load point.

    Inter-arrival gaps are exponential at ``offered_rps`` and the trace
    is truncated at ``duration_s``.  With ``herd`` (the default) the
    trace opens with a thundering herd — every tenant requests the
    hottest scene at ``t = 0`` — the canonical coalescing fan-out
    pattern (N identical digests in flight, one execution).  Same
    arguments → same trace.
    """
    rng = deterministic_rng(f"loadgen/{seed}/rps{offered_rps:g}")
    weights = zipf_weights(scenes, zipf_s)
    events: List[TraceEvent] = []
    if herd:
        events.extend(
            TraceEvent(
                arrival_s=0.0,
                tenant=f"tenant-{tenant}",
                session=f"session-{tenant}-0",
                scene=0,
            )
            for tenant in range(tenants)
        )
    clock = 0.0
    while True:
        clock += float(rng.exponential(1.0 / offered_rps))
        if clock >= duration_s:
            return events
        scene = int(rng.choice(scenes, p=weights))
        tenant = int(rng.integers(tenants))
        session = int(rng.integers(sessions))
        events.append(
            TraceEvent(
                arrival_s=clock,
                tenant=f"tenant-{tenant}",
                session=f"session-{tenant}-{session}",
                scene=scene,
            )
        )


def generate_session_trace(
    seed: int | str,
    offered_rps: float,
    duration_s: float,
    sessions: int = 8,
    tenants: int = 4,
    zipf_s: float = 1.1,
    p_step: float = 0.9,
    timesteps: int = SESSION_TIMESTEPS,
) -> List[TraceEvent]:
    """A deterministic session-correlated animation trace.

    Each session is pinned to its own scene and walks a timestep
    cursor: with probability ``p_step`` the next frame is ``t + 1``
    (the animating gesture speculation exists for), otherwise the
    session teleports to a uniform random timestep (a scrub — the
    misprediction case).  Session popularity is zipf, so a hot session
    animates fast enough for speculation to matter while cold sessions
    exercise the re-training path.  ``predictable`` is stamped per
    event from the session's actual trailing window, so
    ``sum(e.predictable)`` is the exact number of frames a window-3
    constant-stride predictor could have pre-rendered.
    """
    rng = deterministic_rng(f"loadgen/{seed}/sessions/rps{offered_rps:g}")
    weights = zipf_weights(sessions, zipf_s)
    cursors: Dict[int, int] = {}
    history: Dict[int, List[int]] = {}
    events: List[TraceEvent] = []
    clock = 0.0
    while True:
        clock += float(rng.exponential(1.0 / offered_rps))
        if clock >= duration_s:
            return events
        index = int(rng.choice(sessions, p=weights))
        if index not in cursors:
            step = int(rng.integers(timesteps))
        elif float(rng.random()) < p_step:
            step = (cursors[index] + 1) % timesteps
        else:
            step = int(rng.integers(timesteps))
        window = history.setdefault(index, [])
        predictable = (
            len(window) == 3
            and window[1] - window[0] == window[2] - window[1] != 0
            and step == window[2] + (window[2] - window[1])
        )
        cursors[index] = step
        window.append(step)
        del window[:-3]
        events.append(
            TraceEvent(
                arrival_s=clock,
                tenant=f"tenant-{index % tenants}",
                session=f"session-{index}",
                scene=index,
                timestep=step,
                predictable=predictable,
            )
        )


def trace_digest(events: Sequence[TraceEvent]) -> str:
    """Canonical digest of a trace (same seed ⇒ same digest)."""
    rows: List[tuple] = []
    for e in events:
        row: tuple = (round(e.arrival_s, 9), e.tenant, e.session, e.scene)
        if e.timestep is not None:
            row += (e.timestep, e.predictable)
        rows.append(row)
    return digest(rows)


class SyntheticWorkload:
    """A backend with deterministic cost and deterministic payloads.

    Each call runs a fixed number of small matmul iterations (the
    "kernel"), then returns bytes derived purely from the scene id —
    so coalesced fan-out is byte-checkable and the measured latency
    distribution reflects queueing, not kernel variance.
    """

    def __init__(self, iterations: int = 60, payload_bytes: int = 4096) -> None:
        self.iterations = iterations
        self.payload_bytes = payload_bytes
        self._matrix = deterministic_rng("loadgen/workload").standard_normal((96, 96))

    def __call__(self, request: Request, degraded: bool) -> bytes:
        work = self._matrix
        iterations = 1 if degraded else self.iterations
        for _ in range(iterations):
            work = np.tanh(work @ self._matrix)
        return self.payload_for(
            request.params.get("scene", 0),
            degraded,
            timestep=request.params.get("timestep"),
        )

    def payload_for(
        self,
        scene: int,
        degraded: bool = False,
        timestep: Optional[int] = None,
    ) -> bytes:
        """The exact bytes ``__call__`` returns for *scene* (test oracle).

        Timestep-less requests keep the original token, so existing
        ``BENCH_serving`` payloads are unchanged; animation frames fold
        the timestep in so every frame of a session is distinct bytes.
        """
        token = (
            f"loadgen/payload/{scene}/{degraded}"
            if timestep is None
            else f"loadgen/payload/{scene}/{timestep}/{degraded}"
        )
        return deterministic_rng(token).bytes(self.payload_bytes)


def request_of(event: TraceEvent, width: int = 64, height: int = 48) -> Request:
    params: Dict[str, Any] = {"scene": event.scene, "width": width, "height": height}
    if event.timestep is not None:
        params["timestep"] = event.timestep
    return Request(
        kind="render",
        params=params,
        tenant=event.tenant,
        session=event.session,
    )


async def run_load_point(
    server: ServingServer,
    events: Sequence[TraceEvent],
    duration_s: float,
    oracle=None,
) -> Dict[str, Any]:
    """Fire the trace open-loop against a started server; measure.

    With *oracle* — ``oracle(event, degraded) -> bytes`` — every
    completed payload is byte-compared against the deterministic
    expectation **after** the measurement window (so the check cannot
    distort latency) and the point gains a ``payload_mismatches``
    count.  This is the harness-level byte-identity gate: a frame
    served from the speculative cache must equal a demand render.
    """

    async def fire(event: TraceEvent, t0: float) -> Dict[str, Any]:
        delay = t0 + event.arrival_s - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        started = time.perf_counter()
        response = await server.submit(request_of(event))
        return {
            "status": response.status,
            "source": response.source,
            "coalesced": response.coalesced,
            "latency_s": time.perf_counter() - started,
            "payload": response.payload if oracle is not None else b"",
            "event": event,
        }

    t0 = time.perf_counter()
    outcomes = await asyncio.gather(*(fire(e, t0) for e in events))
    wall_s = time.perf_counter() - t0

    latencies = sorted(o["latency_s"] for o in outcomes if o["status"] != "shed")
    completed = [o for o in outcomes if o["status"] in ("ok", "degraded")]
    point: Dict[str, Any] = {
        "duration_s": duration_s,
        "wall_s": wall_s,
        "offered": len(events),
        "completed": len(completed),
        "ok": sum(1 for o in outcomes if o["status"] == "ok"),
        "degraded": sum(1 for o in outcomes if o["status"] == "degraded"),
        "shed": sum(1 for o in outcomes if o["status"] == "shed"),
        "errors": sum(1 for o in outcomes if o["status"] == "error"),
        "coalesced": sum(1 for o in outcomes if o["coalesced"]),
        "cached": sum(
            1 for o in outcomes if o["status"] == "ok" and o["source"] == "cache"
        ),
        "throughput_rps": len(completed) / wall_s if wall_s > 0 else 0.0,
    }
    if oracle is not None:
        point["payload_mismatches"] = sum(
            1
            for o in outcomes
            if o["status"] in ("ok", "degraded")
            and o["payload"] != oracle(o["event"], o["status"] == "degraded")
        )
    if latencies:
        values = np.array(latencies)
        quantiles = np.percentile(values, PERCENTILES)
        point["latency_ms"] = {
            "p50": float(quantiles[0]) * 1e3,
            "p90": float(quantiles[1]) * 1e3,
            "p99": float(quantiles[2]) * 1e3,
            "mean": float(values.mean()) * 1e3,
            "max": float(values.max()) * 1e3,
        }
    else:
        point["latency_ms"] = {
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0,
        }
    return point


async def run_harness(args: argparse.Namespace) -> Dict[str, Any]:
    rps_points = tuple(args.rps) if args.rps else (
        QUICK_RPS if args.quick else FULL_RPS
    )
    duration_s = args.duration or (1.5 if args.quick else 4.0)

    load_points: List[Dict[str, Any]] = []
    digests: List[str] = []
    for offered_rps in rps_points:
        events = generate_trace(
            args.seed, offered_rps, duration_s,
            tenants=args.tenants, sessions=args.sessions,
            scenes=args.scenes, zipf_s=args.zipf_s,
        )
        digests.append(trace_digest(events))
        backend = _make_backend(args)
        cache = ResultCache(
            CacheConfig(enabled=True, memory_entries=512, use_disk=False)
        )
        config = ServingConfig(
            workers=args.workers,
            queue_limit=args.queue_limit,
            tenant_max_entries=args.tenant_max_entries,
        )
        obs.enable()
        try:
            async with ServingServer(backend, config=config, cache=cache) as server:
                point = await run_load_point(server, events, duration_s)
        finally:
            obs.disable()
        point["offered_rps"] = offered_rps
        load_points.append(point)
        print(
            f"  rps={offered_rps:g}: offered={point['offered']} "
            f"completed={point['completed']} shed={point['shed']} "
            f"coalesced={point['coalesced']} "
            f"p50={point['latency_ms']['p50']:.1f}ms "
            f"p99={point['latency_ms']['p99']:.1f}ms "
            f"throughput={point['throughput_rps']:.1f}rps"
        )

    return {
        "kind": "serving",
        "meta": {
            "seed": args.seed,
            "backend": "app" if args.app else "synthetic",
            "tenants": args.tenants,
            "sessions": args.sessions,
            "scenes": args.scenes,
            "zipf_s": args.zipf_s,
            "workers": args.workers,
            "queue_limit": args.queue_limit,
            "duration_s": duration_s,
            "trace_digest": digest(digests),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "load_points": load_points,
    }


def _oracle_for(backend):
    """``oracle(event, degraded) -> bytes`` for byte-identity checks.

    The synthetic workload exposes its payload function directly; any
    other deterministic backend is oracled by a *fresh* instance of
    itself re-rendering the same request after the measurement window.
    """
    if isinstance(backend, SyntheticWorkload):
        return lambda event, degraded: backend.payload_for(
            event.scene, degraded, timestep=event.timestep
        )
    return lambda event, degraded: backend(request_of(event), degraded)


#: obs counters surfaced per session-mode load point
SPECULATIVE_COUNTERS = ("started", "rendered", "hit", "waste", "cancelled")


async def run_session_harness(args: argparse.Namespace) -> Dict[str, Any]:
    """Baseline-vs-sessions comparison over identical animation traces.

    Every offered-load point runs twice: a **baseline**
    :class:`ServingConfig` with no slots and no speculation (the
    stateless PR-6 server), then the **sessions** configuration with
    sticky slots and speculative next-frame rendering.  Both consume
    the same trace with fresh caches, so the p50/p99 delta and the
    speculative hit rate are attributable to the session machinery
    alone.  Both passes byte-check every payload against the oracle.
    """
    rps_points = tuple(args.rps) if args.rps else (
        SESSION_QUICK_RPS if args.quick else SESSION_FULL_RPS
    )
    duration_s = args.duration or (1.5 if args.quick else 4.0)

    load_points: List[Dict[str, Any]] = []
    digests: List[str] = []
    for offered_rps in rps_points:
        events = generate_session_trace(
            args.seed, offered_rps, duration_s,
            sessions=args.sessions, tenants=args.tenants,
            zipf_s=args.zipf_s, p_step=args.p_step,
        )
        digests.append(trace_digest(events))
        predictable = sum(1 for e in events if e.predictable)

        point: Dict[str, Any] = {
            "offered_rps": offered_rps,
            "predictable": predictable,
        }
        for mode in ("baseline", "sessions"):
            backend = _make_backend(args)
            cache = ResultCache(
                CacheConfig(enabled=True, memory_entries=2048, use_disk=False)
            )
            config = ServingConfig(
                workers=args.workers,
                queue_limit=args.queue_limit,
                tenant_max_entries=args.tenant_max_entries,
                slots=args.slots if mode == "sessions" else 0,
                speculation_budget=(
                    args.speculation_budget if mode == "sessions" else 0
                ),
                speculation_idle_depth=(
                    args.speculation_idle_depth if mode == "sessions" else 0
                ),
            )
            recorder = obs.enable(obs.Recorder())
            try:
                async with ServingServer(
                    backend, config=config, cache=cache
                ) as server:
                    point[mode] = await run_load_point(
                        server, events, duration_s,
                        oracle=_oracle_for(_make_backend(args)),
                    )
                if mode == "sessions":
                    speculative = {
                        name: int(
                            recorder.counter_total(f"serving.speculative.{name}")
                        )
                        for name in SPECULATIVE_COUNTERS
                    }
                    speculative["hit_rate"] = (
                        speculative["hit"] / predictable if predictable else 0.0
                    )
                    point["speculative"] = speculative
            finally:
                obs.disable()
        load_points.append(point)
        print(
            f"  rps={offered_rps:g}: offered={point['sessions']['offered']} "
            f"predictable={predictable} "
            f"spec_hits={point['speculative']['hit']} "
            f"hit_rate={point['speculative']['hit_rate']:.2f} "
            f"mismatches={point['sessions']['payload_mismatches']} "
            f"p99 baseline={point['baseline']['latency_ms']['p99']:.1f}ms "
            f"sessions={point['sessions']['latency_ms']['p99']:.1f}ms"
        )

    return {
        "kind": "serving_sessions",
        "meta": {
            "seed": args.seed,
            "backend": "app" if args.app else "synthetic",
            "tenants": args.tenants,
            "sessions": args.sessions,
            "p_step": args.p_step,
            "zipf_s": args.zipf_s,
            "workers": args.workers,
            "queue_limit": args.queue_limit,
            "slots": args.slots,
            "speculation_budget": args.speculation_budget,
            "speculation_idle_depth": args.speculation_idle_depth,
            "duration_s": duration_s,
            "trace_digest": digest(digests),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "load_points": load_points,
    }


def _make_backend(args: argparse.Namespace):
    if args.app:
        from repro.serving import AppBackend

        return AppBackend(
            config=ServingConfig(workers=args.workers, queue_limit=args.queue_limit)
        )
    return SyntheticWorkload()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", default="serving-v1", help="trace seed")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI profile: 3 offered-load points, short durations",
    )
    parser.add_argument(
        "--rps", action="append", type=float, default=None,
        help="offered-load point in req/s (repeatable; overrides profile)",
    )
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds of trace per load point")
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--scenes", type=int, default=12)
    parser.add_argument("--zipf-s", type=float, default=1.1)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--tenant-max-entries", type=int, default=0)
    parser.add_argument(
        "--app", action="store_true",
        help="drive the real AppBackend spreadsheet path instead of the "
        "synthetic workload",
    )
    parser.add_argument(
        "--session-locality", action="store_true",
        help="session-correlated animation traces: run each load point "
        "as a baseline-vs-sessions comparison and emit a "
        "kind=serving_sessions artifact",
    )
    parser.add_argument("--p-step", type=float, default=0.95,
                        help="per-frame probability a session animates "
                        "(+1 timestep) instead of teleporting")
    parser.add_argument("--slots", type=int, default=2,
                        help="backend slots of the sessions configuration")
    parser.add_argument("--speculation-budget", type=int, default=2)
    parser.add_argument(
        "--speculation-idle-depth", type=int, default=0,
        help="max demand-queue depth at which speculation may launch; "
        "0 (the default) never lets a pre-render contend with queued "
        "demand — the right setting for small worker pools",
    )
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = (
            "BENCH_serving_sessions.json" if args.session_locality
            else "BENCH_serving.json"
        )

    wall0 = time.perf_counter()
    harness = run_session_harness if args.session_locality else run_harness
    payload = asyncio.run(harness(args))
    payload["meta"]["wall_s"] = time.perf_counter() - wall0

    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print(f"wrote {out} ({out.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
