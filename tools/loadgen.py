#!/usr/bin/env python
"""Open-loop load harness for the serving layer (``BENCH_serving.json``).

Drives :class:`repro.serving.ServingServer` with deterministic seeded
traffic and measures latency/throughput at fixed offered-load points.
The generator is **open-loop**: request arrival times are drawn up
front (exponential inter-arrivals at the offered rate) and submissions
fire at those times whether or not earlier requests completed — a slow
server faces a growing queue, exactly the regime admission control and
load shedding exist for.

Traffic shape:

* **zipf scene popularity** — scene ranks are sampled with
  ``p ∝ 1 / rank^s`` (default ``s = 1.1``), so a handful of hot scenes
  dominate; the hot head is what coalescing and the serving cache
  exploit, and the cold tail is what the per-tenant quotas bound;
* **tenant/session fan-out** — each arrival is assigned a tenant and a
  session uniformly, independent of the scene, so identical scenes
  arrive from different tenants (the coalescing fan-out path).

Everything derives from ``--seed`` through
:func:`repro.util.rng.deterministic_rng`: the same seed produces the
same trace (same arrival times, scenes, tenants — ``meta.trace_digest``
asserts it), so two runs of this tool measure the same workload.

The default backend is synthetic — a fixed-iteration numpy workload
whose payload bytes are a deterministic function of the scene — so the
harness measures the *serving layer* (queueing, coalescing, shedding),
not kernel speed.  ``--app`` swaps in the real
:class:`repro.serving.AppBackend` spreadsheet path.

Usage::

    PYTHONPATH=src python tools/loadgen.py --quick --out BENCH_serving.json
    PYTHONPATH=src python tools/loadgen.py --rps 50 --rps 100 --rps 200
    python tools/bench_compare.py BENCH_serving.json   # schema gate
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.cache.config import CacheConfig  # noqa: E402
from repro.cache.keys import digest  # noqa: E402
from repro.cache.store import ResultCache  # noqa: E402
from repro.serving import (  # noqa: E402
    Request,
    ServingConfig,
    ServingServer,
)
from repro.util.rng import deterministic_rng  # noqa: E402

#: offered-load points (requests/second) of the two profiles.  The
#: serving cache absorbs the zipf head, so low rates never stress the
#: pool: measured on the 2-worker default, queueing only becomes
#: visible (p99 rising from ~15ms to ~45ms, coalescing engaging on the
#: hot scene) past ~1000 req/s — the earlier (40, 80, 160) profile
#: under-drove the server and measured nothing but the cache-hit path.
QUICK_RPS = (400.0, 1200.0, 2400.0)
FULL_RPS = (400.0, 1200.0, 2400.0, 4800.0)

#: latency percentiles reported per load point
PERCENTILES = (50.0, 90.0, 99.0)


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled arrival of the open-loop trace."""

    arrival_s: float
    tenant: str
    session: str
    scene: int


def zipf_weights(scenes: int, s: float) -> np.ndarray:
    """Normalized zipf popularity over ``scenes`` ranks (p ∝ 1/rank^s)."""
    ranks = np.arange(1, scenes + 1, dtype=float)
    weights = 1.0 / np.power(ranks, s)
    return weights / weights.sum()


def generate_trace(
    seed: int | str,
    offered_rps: float,
    duration_s: float,
    tenants: int = 8,
    sessions: int = 4,
    scenes: int = 12,
    zipf_s: float = 1.1,
    herd: bool = True,
) -> List[TraceEvent]:
    """The deterministic open-loop trace for one offered-load point.

    Inter-arrival gaps are exponential at ``offered_rps`` and the trace
    is truncated at ``duration_s``.  With ``herd`` (the default) the
    trace opens with a thundering herd — every tenant requests the
    hottest scene at ``t = 0`` — the canonical coalescing fan-out
    pattern (N identical digests in flight, one execution).  Same
    arguments → same trace.
    """
    rng = deterministic_rng(f"loadgen/{seed}/rps{offered_rps:g}")
    weights = zipf_weights(scenes, zipf_s)
    events: List[TraceEvent] = []
    if herd:
        events.extend(
            TraceEvent(
                arrival_s=0.0,
                tenant=f"tenant-{tenant}",
                session=f"session-{tenant}-0",
                scene=0,
            )
            for tenant in range(tenants)
        )
    clock = 0.0
    while True:
        clock += float(rng.exponential(1.0 / offered_rps))
        if clock >= duration_s:
            return events
        scene = int(rng.choice(scenes, p=weights))
        tenant = int(rng.integers(tenants))
        session = int(rng.integers(sessions))
        events.append(
            TraceEvent(
                arrival_s=clock,
                tenant=f"tenant-{tenant}",
                session=f"session-{tenant}-{session}",
                scene=scene,
            )
        )


def trace_digest(events: Sequence[TraceEvent]) -> str:
    """Canonical digest of a trace (same seed ⇒ same digest)."""
    return digest(
        [
            (round(e.arrival_s, 9), e.tenant, e.session, e.scene)
            for e in events
        ]
    )


class SyntheticWorkload:
    """A backend with deterministic cost and deterministic payloads.

    Each call runs a fixed number of small matmul iterations (the
    "kernel"), then returns bytes derived purely from the scene id —
    so coalesced fan-out is byte-checkable and the measured latency
    distribution reflects queueing, not kernel variance.
    """

    def __init__(self, iterations: int = 60, payload_bytes: int = 4096) -> None:
        self.iterations = iterations
        self.payload_bytes = payload_bytes
        self._matrix = deterministic_rng("loadgen/workload").standard_normal((96, 96))

    def __call__(self, request: Request, degraded: bool) -> bytes:
        work = self._matrix
        iterations = 1 if degraded else self.iterations
        for _ in range(iterations):
            work = np.tanh(work @ self._matrix)
        scene = request.params.get("scene", 0)
        rng = deterministic_rng(f"loadgen/payload/{scene}/{degraded}")
        return rng.bytes(self.payload_bytes)

    def payload_for(self, scene: int, degraded: bool = False) -> bytes:
        """The exact bytes ``__call__`` returns for *scene* (test oracle)."""
        rng = deterministic_rng(f"loadgen/payload/{scene}/{degraded}")
        return rng.bytes(self.payload_bytes)


def request_of(event: TraceEvent, width: int = 64, height: int = 48) -> Request:
    return Request(
        kind="render",
        params={"scene": event.scene, "width": width, "height": height},
        tenant=event.tenant,
        session=event.session,
    )


async def run_load_point(
    server: ServingServer,
    events: Sequence[TraceEvent],
    duration_s: float,
) -> Dict[str, Any]:
    """Fire the trace open-loop against a started server; measure."""

    async def fire(event: TraceEvent, t0: float) -> Dict[str, Any]:
        delay = t0 + event.arrival_s - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        started = time.perf_counter()
        response = await server.submit(request_of(event))
        return {
            "status": response.status,
            "source": response.source,
            "coalesced": response.coalesced,
            "latency_s": time.perf_counter() - started,
        }

    t0 = time.perf_counter()
    outcomes = await asyncio.gather(*(fire(e, t0) for e in events))
    wall_s = time.perf_counter() - t0

    latencies = sorted(o["latency_s"] for o in outcomes if o["status"] != "shed")
    completed = [o for o in outcomes if o["status"] in ("ok", "degraded")]
    point: Dict[str, Any] = {
        "duration_s": duration_s,
        "wall_s": wall_s,
        "offered": len(events),
        "completed": len(completed),
        "ok": sum(1 for o in outcomes if o["status"] == "ok"),
        "degraded": sum(1 for o in outcomes if o["status"] == "degraded"),
        "shed": sum(1 for o in outcomes if o["status"] == "shed"),
        "errors": sum(1 for o in outcomes if o["status"] == "error"),
        "coalesced": sum(1 for o in outcomes if o["coalesced"]),
        "cached": sum(
            1 for o in outcomes if o["status"] == "ok" and o["source"] == "cache"
        ),
        "throughput_rps": len(completed) / wall_s if wall_s > 0 else 0.0,
    }
    if latencies:
        values = np.array(latencies)
        quantiles = np.percentile(values, PERCENTILES)
        point["latency_ms"] = {
            "p50": float(quantiles[0]) * 1e3,
            "p90": float(quantiles[1]) * 1e3,
            "p99": float(quantiles[2]) * 1e3,
            "mean": float(values.mean()) * 1e3,
            "max": float(values.max()) * 1e3,
        }
    else:
        point["latency_ms"] = {
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0,
        }
    return point


async def run_harness(args: argparse.Namespace) -> Dict[str, Any]:
    rps_points = tuple(args.rps) if args.rps else (
        QUICK_RPS if args.quick else FULL_RPS
    )
    duration_s = args.duration or (1.5 if args.quick else 4.0)

    load_points: List[Dict[str, Any]] = []
    digests: List[str] = []
    for offered_rps in rps_points:
        events = generate_trace(
            args.seed, offered_rps, duration_s,
            tenants=args.tenants, sessions=args.sessions,
            scenes=args.scenes, zipf_s=args.zipf_s,
        )
        digests.append(trace_digest(events))
        backend = _make_backend(args)
        cache = ResultCache(
            CacheConfig(enabled=True, memory_entries=512, use_disk=False)
        )
        config = ServingConfig(
            workers=args.workers,
            queue_limit=args.queue_limit,
            tenant_max_entries=args.tenant_max_entries,
        )
        obs.enable()
        try:
            async with ServingServer(backend, config=config, cache=cache) as server:
                point = await run_load_point(server, events, duration_s)
        finally:
            obs.disable()
        point["offered_rps"] = offered_rps
        load_points.append(point)
        print(
            f"  rps={offered_rps:g}: offered={point['offered']} "
            f"completed={point['completed']} shed={point['shed']} "
            f"coalesced={point['coalesced']} "
            f"p50={point['latency_ms']['p50']:.1f}ms "
            f"p99={point['latency_ms']['p99']:.1f}ms "
            f"throughput={point['throughput_rps']:.1f}rps"
        )

    return {
        "kind": "serving",
        "meta": {
            "seed": args.seed,
            "backend": "app" if args.app else "synthetic",
            "tenants": args.tenants,
            "sessions": args.sessions,
            "scenes": args.scenes,
            "zipf_s": args.zipf_s,
            "workers": args.workers,
            "queue_limit": args.queue_limit,
            "duration_s": duration_s,
            "trace_digest": digest(digests),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "load_points": load_points,
    }


def _make_backend(args: argparse.Namespace):
    if args.app:
        from repro.serving import AppBackend

        return AppBackend(
            config=ServingConfig(workers=args.workers, queue_limit=args.queue_limit)
        )
    return SyntheticWorkload()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", default="serving-v1", help="trace seed")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI profile: 3 offered-load points, short durations",
    )
    parser.add_argument(
        "--rps", action="append", type=float, default=None,
        help="offered-load point in req/s (repeatable; overrides profile)",
    )
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds of trace per load point")
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--scenes", type=int, default=12)
    parser.add_argument("--zipf-s", type=float, default=1.1)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--tenant-max-entries", type=int, default=0)
    parser.add_argument(
        "--app", action="store_true",
        help="drive the real AppBackend spreadsheet path instead of the "
        "synthetic workload",
    )
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args(argv)

    wall0 = time.perf_counter()
    payload = asyncio.run(run_harness(args))
    payload["meta"]["wall_s"] = time.perf_counter() - wall0

    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print(f"wrote {out} ({out.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
