#!/usr/bin/env python
"""Out-of-core streaming smoke bench -> ``BENCH_streaming.json``.

Renders a looping slicer animation from a chunked v2 ``.cdz`` container
whose payload is ~4x the configured streaming memory budget, and
reports:

* ``frames_per_s`` — sustained animation throughput through the
  read -> verify -> decode pipeline (prefetch enabled);
* ``peak_resident_bytes`` — the prefetcher's chunk-slot accounting,
  which must stay under ``budget_bytes``;
* ``peak_rss_bytes`` — ``ru_maxrss`` of the process, for the artifact
  record (not gated: Python allocator behaviour is machine-bound);
* ``fault_pass`` — a chaos replay of the same animation with
  ``streaming.read`` / ``streaming.verify`` faults armed at a 10% rate
  plus one chunk bit-flipped on disk: the animation must complete with
  every frame accounted as ok or degraded.

The artifact carries ``"kind": "streaming"`` and is schema-gated by
``tools/bench_compare.py`` (structural checks only — there is no
committed cross-machine baseline for streaming throughput).

Usage::

    PYTHONPATH=src python tools/bench_streaming.py --quick --out BENCH_streaming.json
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import tempfile
import time
import zipfile
from pathlib import Path

from repro import obs
from repro.cdms.dataset import open_dataset
from repro.data import catalog
from repro.dv3d import SlicerPlot, StreamingAnimator
from repro.resilience import faults
from repro.streaming.config import StreamingConfig

#: dataset dimensions; ntime drives the chunk count (one chunk per step)
FULL_SIZE = {"nlat": 46, "nlon": 72, "nlev": 17, "ntime": 16}
QUICK_SIZE = {"nlat": 24, "nlon": 36, "nlev": 6, "ntime": 8}

#: budget = dataset / BUDGET_DIVISOR, so the container is ~4x the budget
BUDGET_DIVISOR = 4

VARIABLE = "ta"
CHAOS_FRAMES = 20
CORRUPT_CHUNK = 3


def peak_rss_bytes() -> int:
    # ru_maxrss is KiB on Linux, bytes on macOS; this repo's CI is Linux
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024


def build_container(directory: Path, size: dict) -> Path:
    path = directory / "bench_streaming.cdz"
    catalog.synthetic_reanalysis(**size, seed="bench-streaming").save(
        path, version=2
    )
    return path


def corrupt_copy(pristine: Path, var_index: int = 0) -> Path:
    """A sibling container with one chunk's bytes flipped on disk."""
    member = f"chunks/v{var_index:03d}/c{CORRUPT_CHUNK:06d}.npy"
    path = pristine.with_name("bench_streaming_corrupt.cdz")
    with zipfile.ZipFile(pristine) as src, zipfile.ZipFile(path, "w") as dst:
        for info in src.infolist():
            payload = src.read(info.filename)
            if info.filename == member:
                flipped = bytearray(payload)
                flipped[len(flipped) // 2] ^= 0xFF
                payload = bytes(flipped)
            dst.writestr(info, payload)
    return path


def throughput_pass(path: Path, frames: int) -> dict:
    probe = open_dataset(path, streaming="on")
    layout = probe.streaming_source.layout(VARIABLE)
    dataset_bytes = layout.total_nbytes()
    probe.close()
    budget = max(layout.max_chunk_nbytes(), dataset_bytes // BUDGET_DIVISOR)

    config = StreamingConfig(memory_budget_bytes=budget, prefetch_depth=4)
    with open_dataset(path, streaming="on", streaming_config=config) as ds:
        animator = StreamingAnimator(SlicerPlot(ds.get_variable(VARIABLE)))
        started = time.perf_counter()
        rendered, records = animator.render_frames_with_status(count=frames)
        elapsed = time.perf_counter() - started
        prefetcher = ds.streaming_source.prefetcher(VARIABLE)
        peak_resident = prefetcher.peak_resident_bytes

    if any(r.status != "ok" for r in records):
        raise RuntimeError("throughput pass degraded on pristine data")
    return {
        "frames": len(rendered),
        "elapsed_s": elapsed,
        "frames_per_s": len(rendered) / elapsed if elapsed > 0 else 0.0,
        "dataset_bytes": dataset_bytes,
        "budget_bytes": budget,
        "peak_resident_bytes": peak_resident,
        "peak_rss_bytes": peak_rss_bytes(),
    }


def fault_pass(path: Path) -> dict:
    """The chaos replay: armed fault sites + a corrupt chunk on disk."""
    obs.set_recorder(obs.Recorder())
    obs.enable()
    faults.disarm()
    # chained one-shot faults: each skips 9 checks then fires once, so
    # the site trips on every 10th visit — a 10% injected failure rate
    for _ in range(3):
        faults.arm("streaming.read", "raise", after=9, times=1)
        faults.arm("streaming.verify", "corrupt", after=9, times=1)
    try:
        config = StreamingConfig(retry_base_delay=0.0)
        with open_dataset(path, streaming="on", streaming_config=config) as ds:
            animator = StreamingAnimator(SlicerPlot(ds.get_variable(VARIABLE)))
            frames, records = animator.render_frames_with_status(
                count=CHAOS_FRAMES
            )
    finally:
        faults.disarm()
        obs.disable()

    recorder = obs.get_recorder()
    n_ok = sum(1 for r in records if r.status == "ok")
    n_degraded = sum(1 for r in records if r.status == "degraded")
    counters_match = (
        recorder.counter_total("streaming.frames.ok") == n_ok
        and recorder.counter_total("streaming.frames.degraded") == n_degraded
    )
    return {
        "frames": len(frames),
        "ok_frames": n_ok,
        "degraded_frames": n_degraded,
        "chunks_corrupt": recorder.counter_total("streaming.chunks.corrupt"),
        "chunks_retried": recorder.counter_total("streaming.chunks.retried"),
        "counters_match": bool(counters_match),
        "completed": bool(len(frames) == CHAOS_FRAMES and counters_match),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_streaming.json")
    parser.add_argument(
        "--quick", action="store_true", help="small dataset for CI smoke runs"
    )
    parser.add_argument(
        "--frames", type=int, default=None,
        help="animation frames for the throughput pass (default 2x timesteps)",
    )
    args = parser.parse_args(argv)

    size = QUICK_SIZE if args.quick else FULL_SIZE
    frames = args.frames or 2 * size["ntime"]

    with tempfile.TemporaryDirectory(prefix="bench-streaming-") as tmp:
        pristine = build_container(Path(tmp), size)
        throughput = throughput_pass(pristine, frames)
        chaos = fault_pass(corrupt_copy(pristine))

    report = {
        "kind": "streaming",
        "meta": {
            "generated_by": "tools/bench_streaming.py",
            "quick": bool(args.quick),
            "seed": "bench-streaming",
            "size": size,
            "variable": VARIABLE,
        },
        **throughput,
        "fault_pass": chaos,
    }
    Path(args.out).write_text(json.dumps(report, indent=1) + "\n")
    print(
        f"bench_streaming: {throughput['frames_per_s']:.2f} frames/s, "
        f"resident {throughput['peak_resident_bytes']} / "
        f"budget {throughput['budget_bytes']} bytes "
        f"(dataset {throughput['dataset_bytes']}), "
        f"chaos {'ok' if chaos['completed'] else 'FAILED'} "
        f"({chaos['degraded_frames']}/{chaos['frames']} degraded)"
    )
    return 0 if chaos["completed"] else 1


if __name__ == "__main__":
    sys.exit(main())
