#!/usr/bin/env python
"""Regenerate docs/MODULES.md from the live module registry."""

from pathlib import Path

from repro.workflow.docs import document_registry, undocumented_modules
from repro.workflow.registry import global_registry


def main() -> None:
    registry = global_registry()
    missing = undocumented_modules(registry)
    if missing:
        raise SystemExit(f"undocumented modules: {missing}")
    out = Path(__file__).resolve().parent.parent / "docs" / "MODULES.md"
    out.parent.mkdir(exist_ok=True)
    out.write_text(document_registry(registry))
    print(f"wrote {out} ({len(registry.all_modules())} modules)")


if __name__ == "__main__":
    main()
