"""Exploratory analysis with provenance: branch, compare, revert, replay.

Demonstrates the §II.B / §III.F provenance story end-to-end:

* every workflow construction/configuration step becomes a version;
* "users can easily back up to earlier stages of the exploration and
  start a new branch of investigation without losing the previous
  results" — two colormap/transfer-function treatments are developed as
  sibling branches of one workflow;
* versions are tagged, diffed, and each branch re-executes to exactly
  its own configuration;
* the whole trail serializes to JSON and replays after reload.

Run:  python examples/provenance_branching.py
"""

from repro.provenance.query import diff_versions, version_history
from repro.provenance.vistrail import Vistrail
from repro.workflow.executor import Executor

SIZE = {"nlat": 23, "nlon": 36, "nlev": 8, "ntime": 4}


def build_base_workflow(vistrail: Vistrail) -> dict:
    reader = vistrail.add_module(
        "cdms:CDMSDatasetReader", {"source": "synthetic_reanalysis", "size": SIZE}
    )
    var = vistrail.add_module("cdms:CDMSVariableReader", {"variable": "ta"})
    anom = vistrail.add_module("cdat:CDATOperation", {"operation": "anomalies"})
    plot = vistrail.add_module("dv3d:VolumeRender")
    cell = vistrail.add_module("dv3d:DV3DCell", {"width": 240, "height": 180})
    vistrail.add_connection(reader, "dataset", var, "dataset")
    vistrail.add_connection(var, "variable", anom, "variable")
    vistrail.add_connection(anom, "variable", plot, "variable")
    vistrail.add_connection(plot, "plot", cell, "plot")
    return {"plot": plot, "cell": cell}


def main() -> None:
    vistrail = Vistrail("anomaly-exploration")
    ids = build_base_workflow(vistrail)
    vistrail.tag("base")
    base = vistrail.current_version
    print(f"base workflow: version {base} "
          f"({len(vistrail.tree)} versions in the trail)")

    # --- branch A: sharp, narrow transfer window over 'jet' ----------------
    vistrail.set_parameter(ids["plot"], "colormap", "jet")
    vistrail.set_parameter(ids["plot"], "state", {"tf_center": 0.85, "tf_width": 0.1})
    vistrail.tag("sharp-jet")
    branch_a = vistrail.current_version

    # --- back up and develop branch B: broad diverging view -----------------
    vistrail.checkout(base)
    vistrail.set_parameter(ids["plot"], "colormap", "coolwarm")
    vistrail.set_parameter(ids["plot"], "state", {"tf_center": 0.5, "tf_width": 0.6})
    vistrail.tag("broad-diverging")
    branch_b = vistrail.current_version

    print(f"branches from version {base}: {vistrail.tree.children(base)}")
    diff = diff_versions(vistrail.tree, branch_a, branch_b)
    print("diff between branches:")
    for side in ("only_a", "only_b"):
        for line in diff[side]:
            print(f"  {side}: {line}")

    # --- both branches remain executable, each to its own look --------------
    executor = Executor(caching=True)
    for tag in ("sharp-jet", "broad-diverging"):
        version = vistrail.tree.version_by_tag(tag)
        pipeline = vistrail.tree.materialize(version, vistrail.registry)
        result = executor.execute(pipeline, targets=[ids["cell"]])
        live = result.output(ids["cell"], "cell")
        live.render(240, 180).save(f"provenance_{tag}.ppm")
        print(f"  executed {tag!r}: colormap={live.plot.colormap.name}, "
              f"tf window=({live.plot.transfer.center:.2f}, "
              f"{live.plot.transfer.width:.2f}) "
              f"[cache hits {result.cache_hits}/{len(result.runs)}]"
              f" → provenance_{tag}.ppm")

    # --- the full history of the current branch -----------------------------
    print("\nhistory of 'broad-diverging':")
    for line in version_history(vistrail, branch_b):
        print("  ·", line)

    # --- persistence: the trail replays after reload -------------------------
    vistrail.save("anomaly_exploration.vistrail.json")
    reloaded = Vistrail.load("anomaly_exploration.vistrail.json")
    reloaded.checkout_tag("sharp-jet")
    assert reloaded.pipeline.modules[ids["plot"]].parameters["colormap"] == "jet"
    print("\nsaved + reloaded the trail; 'sharp-jet' replays correctly "
          "(anomaly_exploration.vistrail.json)")


if __name__ == "__main__":
    main()
