"""Quickstart: open a dataset, make a 3-D slicer plot, interact, save a frame.

Mirrors the first session a scientist has with DV3D in the UV-CDAT GUI
(paper Fig. 2), driven entirely through the scripting interface:

1. start the application and a project;
2. pick the "Slicer" plot from the plot palette and drop it on the
   spreadsheet — this builds the full workflow (dataset reader →
   variable reader → slicer plot → cell) with provenance recording;
3. interact: drag a slice plane, cycle the colormap, probe a value;
4. save the rendered cell as a PPM image.

Run:  python examples/quickstart.py  (writes quickstart_*.ppm to CWD)
"""

from repro.app import Application


def main() -> None:
    app = Application()
    app.new_project("quickstart")

    # --- palette → spreadsheet: build and execute the slicer workflow ----
    cell = app.create_plot(
        "Slicer",
        sheet_name="main",
        slot=(0, 0),
        dataset_source="synthetic_reanalysis",
        variables={"variable": "ta"},
        size={"nlat": 46, "nlon": 72, "nlev": 12, "ntime": 6},
        cell_params={"width": 480, "height": 360, "dataset_label": "SYNTH-REANALYSIS"},
    )
    print("built and executed:", cell)

    # --- interactive exploration -----------------------------------------
    plot = cell.plot
    plot.drag_slice("z", +0.25)            # pull the level plane upward
    plot.handle_key("c")                   # cycle the colormap
    probe = plot.probe("z", 0.5, 0.5)      # probe a value mid-plane
    print(f"probe: {probe['value']:.2f} K at "
          f"{probe['longitude']:.1f}E {probe['latitude']:.1f}N")
    cell.pick(plot.volume.center())        # shows up as the pick display

    frame = cell.render(480, 360)
    frame.save("quickstart_slicer.ppm")
    print("wrote quickstart_slicer.ppm  (coverage",
          f"{frame.coverage():.2%} of pixels)")

    # --- every construction and configuration step became provenance -----
    vistrail = next(iter(app.project.vistrails.values()))
    from repro.provenance.query import version_history

    print(f"\nprovenance trail ({vistrail.current_version} versions):")
    for line in version_history(vistrail, vistrail.current_version):
        print("  ·", line)


if __name__ == "__main__":
    main()
