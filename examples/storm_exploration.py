"""Storm case study: the Fig. 3 views — isosurface + volume/slicer combo.

A translating vortex (the synthetic stand-in for a tropical cyclone in
model output) explored with the two coordinated Fig. 3 perspectives:

* an **isosurface** of wind speed colored by core temperature ("an
  isosurface derived from one variable's data volume and colored by the
  spatially correspondent values from a second variable's data volume");
* a **combination volume render and slicer plot** in a second cell;

plus an animation over the storm's lifecycle and a conditioned
comparison (paper: "conditioned comparisons") quantifying the warm core
inside vs outside the high-wind region.

Run:  python examples/storm_exploration.py
"""

import numpy as np

from repro.cdat.conditioned import compare_where
from repro.data.catalog import storm_case_study
from repro.dv3d.animation import Animator
from repro.dv3d.cell import DV3DCell
from repro.dv3d.isosurface import IsosurfacePlot
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.volume import VolumePlot
from repro.rendering.scene import Renderer


def main() -> None:
    dataset = storm_case_study(nlat=48, nlon=48, nlev=16, ntime=8)
    wspd = dataset("wspd")
    tcore = dataset("tcore")
    print("storm dataset:", dataset.summary()["wspd"])

    # --- Fig. 3 bottom: isosurface of A colored by B ----------------------
    iso = IsosurfacePlot(wspd, color_variable=tcore, colormap="coolwarm")
    iso.set_time_index(4)  # near peak intensity
    iso.set_isovalue(np.percentile(wspd.filled(0.0), 97))
    surface = iso.extract_surface()
    print(f"isosurface: {surface.n_triangles} triangles, "
          f"area {surface.surface_area():.1f} deg², "
          f"isovalue {iso.isovalue:.1f} m/s")
    iso_cell = DV3DCell(iso, dataset_label="STORM", show_basemap=True)
    iso_cell.render(420, 320).save("storm_isosurface.ppm")

    # --- Fig. 3 top: combined volume render + slicer in one scene ---------
    volume_plot = VolumePlot(wspd, center=0.85, width=0.25, colormap="jet")
    volume_plot.set_time_index(4)
    slicer = SlicerPlot(wspd, enabled_planes=("z",), colormap="jet")
    slicer.set_time_index(4)
    slicer.drag_slice("z", -0.15)
    combo = volume_plot.build_scene()
    for actor in slicer.build_scene().actors:
        if actor.name.startswith("slice"):
            combo.add_actor(actor)
    frame = Renderer(420, 320).render(combo, volume_plot.default_camera())
    frame.save("storm_volume_slicer.ppm")
    print("wrote storm_isosurface.ppm and storm_volume_slicer.ppm")

    # --- animation over the storm lifecycle (§III.D) ----------------------
    frames = Animator(iso_cell).render_frames(width=210, height=160)
    Animator(iso_cell).save_frames(".", prefix="storm_frame",
                                   width=210, height=160)
    print(f"animation: {len(frames)} frames written as storm_frame_*.ppm")

    # --- conditioned comparison: warm core inside the eyewall --------------
    high_wind = wspd > float(np.percentile(wspd.filled(0.0), 95))
    comparison = compare_where(tcore, tcore * 0.0 + float(tcore.mean()), high_wind)
    print("\nconditioned comparison (tcore in high-wind region vs its mean):")
    print(f"  points: {comparison['count']:.0f}")
    print(f"  mean elevation above domain mean: "
          f"{comparison['mean_difference']:.2f} K")


if __name__ == "__main__":
    main()
