"""Climate-mode analysis: EOFs, composites, and combined 3-D views.

A full exploratory-analysis session of the kind the paper's
introduction motivates — "detect, compare, and analyze features
spanning large heterogeneous, multi-variate, multi-dimensional
datasets" — run end-to-end on synthetic reanalysis data:

1. compute temperature anomalies (CDAT);
2. extract the leading EOF modes and their principal components;
3. composite the geopotential-height field on the leading PC's high
   and low phases, with significance;
4. view the composite difference with the combined volume+slicer plot
   (the Fig. 3 combination) and save an anaglyph stereo frame.

Run:  python examples/climate_modes.py
"""

import numpy as np

from repro.cdat import anomalies
from repro.cdat.composites import composite_analysis
from repro.cdat.eof import eof_analysis
from repro.cdms.variable import Variable
from repro.data.catalog import synthetic_reanalysis
from repro.dv3d.cell import DV3DCell
from repro.dv3d.combined import CombinedPlot
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.volume import VolumePlot
from repro.rendering.ppm import write_ppm
from repro.rendering.scene import Renderer
from repro.rendering.stereo import anaglyph


def main() -> None:
    dataset = synthetic_reanalysis(nlat=36, nlon=48, nlev=8, ntime=36)
    ta = dataset("ta")
    zg = dataset("zg")

    # --- 1. anomalies ------------------------------------------------------
    ta_anom = anomalies(ta(level=500).squeeze())
    print(f"anomaly field: {ta_anom.shape}, "
          f"std {float(ta_anom.std()):.2f} K")

    # --- 2. EOF decomposition ------------------------------------------------
    eof = eof_analysis(ta_anom, n_modes=3)
    print("\nleading modes of 500 hPa temperature anomalies:")
    for m, fraction in enumerate(eof.variance_fraction, start=1):
        print(f"  EOF{m}: {fraction:.1%} of variance")

    # --- 3. composite zg on the leading PC ------------------------------------
    pc1 = Variable(np.asarray(eof.pcs.data)[0], (ta_anom.get_time(),), id="pc1")
    composite = composite_analysis(zg(level=500).squeeze(), pc1)
    masked = composite.significant_difference(alpha=0.10)
    print(f"\ncomposite of zg@500 on PC1 phases: "
          f"{composite.n_high} high / {composite.n_low} low events")
    print(f"  max |high − low|: {float(abs(composite.difference).max()):.1f} m")
    print(f"  fraction significant at p<0.10: {masked.valid_fraction():.1%}")

    # --- 4. combined 3-D view of the full anomaly volume ----------------------
    anom3d = anomalies(ta)
    combo = CombinedPlot([
        VolumePlot(anom3d, center=0.8, width=0.25, colormap="coolwarm"),
        SlicerPlot(anom3d, enabled_planes=("z",), colormap="coolwarm"),
    ])
    combo.set_time_index(int(np.argmax(np.abs(np.asarray(eof.pcs.data)[0]))))
    cell = DV3DCell(combo, dataset_label="TA ANOM", show_axes=True)
    cell.render(480, 360).save("climate_modes_combined.ppm")

    # anaglyph stereo of the same scene (red/cyan glasses)
    left, right = Renderer(480, 360).render_stereo(
        combo.build_scene(), combo.default_camera(), eye_separation=0.05
    )
    write_ppm("climate_modes_anaglyph.ppm", anaglyph(left, right))
    print("\nwrote climate_modes_combined.ppm and climate_modes_anaglyph.ppm")


if __name__ == "__main__":
    main()
