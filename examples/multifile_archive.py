"""Working with a time-chunked archive: the multi-file CDMS workflow.

Climate archives deliver one file per period; this session reproduces
the standard pattern: write quarterly ``.cdz`` chunks to disk (the
archive), reopen and splice them into continuous variables, then run a
seasonal analysis and visualize an interesting quarter — exactly the
"accessing and processing climate data from the local file system"
stage of a §III.G workflow, at archive scale.

Run:  python examples/multifile_archive.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.cdat import annual_mean, anomalies, monthly_climatology
from repro.cdat.filters import detrend
from repro.cdms.concat import concatenate_datasets
from repro.cdms.dataset import Dataset, open_dataset
from repro.data.fields import global_temperature
from repro.dv3d.cell import DV3DCell
from repro.dv3d.slicer import SlicerPlot


def write_archive(root: Path, n_years: int = 2) -> list:
    """One .cdz per quarter, chunked from a continuous generated field."""
    full = global_temperature(nlat=24, nlon=36, nlev=6, ntime=12 * n_years,
                              seed="archive")
    paths = []
    quarters = 4 * n_years
    for q in range(quarters):
        chunk = full[3 * q : 3 * (q + 1)]
        path = root / f"ta_quarter_{q:02d}.cdz"
        Dataset(f"quarter_{q:02d}", [chunk]).save(path)
        paths.append(path)
    return paths


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        paths = write_archive(root)
        print(f"archive: {len(paths)} quarterly files in {root}")

        # --- open all chunks and splice -----------------------------------
        datasets = [open_dataset(p) for p in paths]
        merged = concatenate_datasets(datasets, id="ta_continuous")
        ta = merged("ta")
        print(f"spliced variable: {ta.shape} "
              f"({ta.shape[0]} continuous months)")

        # --- analysis over the continuous record ---------------------------
        clim = monthly_climatology(ta)
        anom = anomalies(ta)
        clean = detrend(anom)
        yearly = annual_mean(ta)
        print(f"climatology: {clim.shape}; anomalies σ = "
              f"{float(anom.std()):.2f} K; "
              f"{yearly.shape[0]} annual means")

        # --- visualize the strongest anomaly month ---------------------------
        month_rms = [float(np.sqrt((anom[t].squeeze() ** 2).mean()))
                     for t in range(anom.shape[0])]
        hottest = int(np.argmax(month_rms))
        plot = SlicerPlot(clean, colormap="coolwarm", enabled_planes=("z",))
        plot.set_time_index(hottest)
        cell = DV3DCell(plot, dataset_label="TA ANOM (ARCHIVE)", show_axes=True)
        cell.render(420, 320).save("archive_anomaly.ppm")
        print(f"strongest anomaly at month {hottest} "
              f"(rms {month_rms[hottest]:.2f} K) → archive_anomaly.ppm")


if __name__ == "__main__":
    main()
