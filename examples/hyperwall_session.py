"""A hyperwall session: the Fig. 5 distributed deployment, simulated.

"In a typical scenario the user would open (or construct) a workflow
with 15 cell modules on the server node.  At execution time the server
instance sends edited versions of the workflow to each client node for
local execution. ... The server instance executes a reduced resolution
instance of the full (15-cell) workflow, whereas each client instance
executes a full resolution 1-cell sub-workflow."

This example builds a 15-cell workflow (five variables × three plot
types), runs it on the real socket-based cluster (client processes on
this machine standing in for the wall's display nodes), propagates an
interaction, and reports the resolution arithmetic of the paper's wall.

Run:  python examples/hyperwall_session.py
"""

from repro.hyperwall.cluster import LocalCluster
from repro.hyperwall.display import NCCS_WALL, WallGeometry
from repro.workflow.pipeline import Pipeline

SIZE = {"nlat": 23, "nlon": 36, "nlev": 8, "ntime": 4}
VARIABLES = ["ta", "zg", "ua", "va", "hus"]
PLOTS = ["Slicer", "VolumeRender", "Isosurface"]


def build_wall_workflow() -> Pipeline:
    """15 cells: each variable through each plot type (5 × 3)."""
    pipeline = Pipeline()
    reader = pipeline.add_module(
        "CDMSDatasetReader", {"source": "synthetic_reanalysis", "size": SIZE}
    )
    for variable in VARIABLES:
        var = pipeline.add_module("CDMSVariableReader", {"variable": variable})
        pipeline.add_connection(reader, "dataset", var, "dataset")
        for plot_type in PLOTS:
            plot = pipeline.add_module(plot_type)
            cell = pipeline.add_module("DV3DCell", {"width": 128, "height": 128,
                                                    "dataset_label": variable.upper()})
            pipeline.add_connection(var, "variable", plot, "variable")
            pipeline.add_connection(plot, "plot", cell, "plot")
    return pipeline


def main() -> None:
    wall = WallGeometry(columns=5, rows=3, tile_width=128, tile_height=128)
    print(f"paper wall: {NCCS_WALL.columns}x{NCCS_WALL.rows} tiles, "
          f"{NCCS_WALL.total_pixels / 1e6:.1f} Mpixel "
          f"(simulated here at {wall.tile_width}² per tile)")

    workflow = build_wall_workflow()
    print(f"server workflow: {len(workflow.modules)} modules, "
          f"{len(workflow.connections)} connections, 15 cells")

    cluster = LocalCluster(workflow, n_clients=15, wall=wall, reduction=4)
    try:
        cluster.start()
        print("15 client processes connected")
        session = cluster.run_session(
            events=[
                {"event_kind": "key", "key": "c"},          # colormap cycle
                {"event_kind": "key", "key": "t"},          # animation step
                {"event_kind": "drag", "dx": 0.15, "dy": 0.0, "mode": "camera"},
            ]
        )
    finally:
        cluster.stop()

    print(f"\nserver executed its reduced-resolution mirror in "
          f"{session['server']['duration']:.2f}s "
          f"({session['server']['n_cells']} cells at 1/4 resolution)")
    total_client = sum(r["duration"] for r in session["clients"])
    print(f"clients executed 15 full-resolution sub-workflows: "
          f"wall-clock {session['clients_wall_time']:.2f}s, "
          f"sum of per-client time {total_client:.2f}s")
    shapes = {tuple(r["image_shape"]) for r in session["clients"]}
    print(f"client tile renders: {shapes}")
    print(f"propagated {len(session['events'])} interaction events to all "
          f"{len(session['clients'])} displays")


if __name__ == "__main__":
    main()
