"""Wind-field exploration: the Vector slicer plot plus CDAT analysis.

"The Vector slicer plot provides a set of slice planes that can be
interactively dragged over a vector field dataset.  A slice through the
field at the plane's location is displayed as a vector glyph or
streamline plot on the plane."

The session: derive geostrophic winds, view them as glyphs then as
streamlines at two levels, and run the calculator over the same data
(zonal-mean zonal wind, jet detection by conditioned comparison).

Run:  python examples/wind_analysis.py
"""

import numpy as np

from repro.app.calculator import Calculator
from repro.app.variable_view import VariableView
from repro.data.catalog import synthetic_reanalysis
from repro.dv3d.cell import DV3DCell
from repro.dv3d.vector_slicer import VectorSlicerPlot


def main() -> None:
    dataset = synthetic_reanalysis(nlat=36, nlon=48, nlev=10, ntime=4)
    u, v = dataset("ua"), dataset("va")

    # --- vector slicer: glyphs near the surface -----------------------------
    glyphs = VectorSlicerPlot(u, v, mode="glyphs", glyph_stride=3, colormap="jet")
    glyphs.drag_slice(-0.3)  # pull the plane toward the surface
    cell = DV3DCell(glyphs, dataset_label="WIND", show_basemap=True)
    cell.render(480, 360).save("wind_glyphs.ppm")
    sample = glyphs.pick_vector(glyphs.volume.center())
    print(f"mid-volume wind: u={sample['u']:.1f} v={sample['v']:.1f} "
          f"|V|={sample['speed']:.1f} m/s")

    # --- switch to streamlines aloft (one key command) -----------------------
    glyphs.handle_key("m")
    glyphs.drag_slice(+0.65)
    cell.render(480, 360).save("wind_streamlines.ppm")
    print("wrote wind_glyphs.ppm and wind_streamlines.ppm "
          f"(mode is now {glyphs.mode!r})")

    # --- the calculator interface over the same variables --------------------
    view = VariableView()
    view.define("u", u)
    view.define("v", v)
    calc = Calculator(view)
    calc.run_script([
        "speed = sqrt(u*u + v*v)",
        "ubar = zonal_mean(u)",
        "jet = keep(speed, speed > 25)",
    ])
    ubar = view.get("ubar")
    jet = view.get("jet")
    print("\ncalculator results:")
    print(f"  zonal-mean u: shape {ubar.shape}, "
          f"max {float(ubar.max()):.1f} m/s")
    lat = ubar.get_latitude().values
    # strongest westerlies by hemisphere at the top retained level
    top = np.ma.mean(ubar.data[:, -1, :], axis=0)
    print(f"  jet cores near {lat[int(np.argmax(top[:18]))]:.0f}N/"
          f"{lat[18 + int(np.argmax(top[18:]))]:.0f}N")
    print(f"  points with |V| > 25 m/s: "
          f"{jet.valid_fraction() * jet.size:.0f} of {jet.size}")


if __name__ == "__main__":
    main()
