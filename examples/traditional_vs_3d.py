"""The paper's motivating contrast: the traditional 2-D toolkit vs DV3D.

§II.A: exploratory climate analysis "has traditionally been confined to
two dimension views such as contour plots, line and scatter graphs, and
histograms", while "interactive three-dimensional views ... can offer a
widened perspective".  This session produces both sides over the same
storm dataset:

* the traditional suite — time series, histogram, scatter, contour and
  pseudocolor maps (``repro.plots2d``);
* the DV3D views — the colored isosurface and the combined
  volume/slicer cell;

and prints how many separate 2-D views the single 3-D cell subsumes.

Run:  python examples/traditional_vs_3d.py
"""

import numpy as np

from repro.cdat import area_average
from repro.data.catalog import storm_case_study
from repro.dv3d.cell import DV3DCell
from repro.dv3d.combined import CombinedPlot
from repro.dv3d.isosurface import IsosurfacePlot
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.volume import VolumePlot
from repro.plots2d import contour_plot, histogram_plot, line_plot, pseudocolor_plot, scatter_plot

PEAK = 4


def main() -> None:
    dataset = storm_case_study(nlat=48, nlon=48, nlev=12, ntime=8)
    wspd = dataset("wspd")
    tcore = dataset("tcore")

    # --- the traditional toolkit ------------------------------------------
    produced = []
    intensity = area_average(wspd)  # (time, level)
    # pull one level's series as a 1-D variable
    series = intensity(level=1000.0).squeeze()
    line_plot(series, title="storm mean wind").save("trad_timeseries.ppm")
    produced.append("trad_timeseries.ppm")

    histogram_plot(wspd, bins=24, title="wind speed").save("trad_histogram.ppm")
    produced.append("trad_histogram.ppm")

    scatter_plot(
        wspd[PEAK].squeeze()(level=(900.0, 1000.0)).squeeze(),
        tcore[PEAK].squeeze()(level=(900.0, 1000.0)).squeeze(),
        title="tcore vs wspd",
    ).save("trad_scatter.ppm")
    produced.append("trad_scatter.ppm")

    surface = wspd[PEAK].squeeze()(level=1000.0).squeeze()
    contour_plot(surface, n_levels=7, title="surface wind").save("trad_contour.ppm")
    produced.append("trad_contour.ppm")
    pseudocolor_plot(surface, colormap="jet", title="surface wind").save("trad_pseudocolor.ppm")
    produced.append("trad_pseudocolor.ppm")

    # to see the vertical structure traditionally, one map per level:
    n_levels = wspd.shape[1]
    print(f"traditional suite: {len(produced)} separate views "
          f"(plus {n_levels} per-level maps to browse the vertical structure)")
    for path in produced:
        print("  ·", path)

    # --- the DV3D side -------------------------------------------------------
    iso = IsosurfacePlot(wspd, color_variable=tcore, colormap="coolwarm")
    iso.set_time_index(PEAK)
    iso.set_isovalue(float(np.percentile(wspd.filled(0.0), 97)))
    DV3DCell(iso, dataset_label="STORM").render(420, 320).save("dv3d_isosurface.ppm")

    combo = CombinedPlot([
        VolumePlot(wspd, center=0.85, width=0.25, colormap="jet"),
        SlicerPlot(wspd, enabled_planes=("z",), colormap="jet"),
    ])
    combo.set_time_index(PEAK)
    DV3DCell(combo, dataset_label="STORM").render(420, 320).save("dv3d_combined.ppm")

    print("\nDV3D: 2 interactive cells (dv3d_isosurface.ppm, dv3d_combined.ppm)")
    print(f"  each browses all {n_levels} levels and {wspd.shape[0]} time steps "
          "by dragging/animating — the 'widened perspective' of §II.A")


if __name__ == "__main__":
    main()
