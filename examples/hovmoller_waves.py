"""Equatorial waves: the Fig. 4 Hovmöller slicer and volume plots.

"The Hovmöller slicer and volume render plots ... operate on a data
volume structured with time (instead of height or pressure level) as
the vertical dimension.  This plot allows scientists to quickly and
easily browse the 3D structure of spatial time series."

The workflow here:

1. fetch the wave case study from the simulated ESG federation;
2. build a Hovmöller slicer (time on z) and render the classic
   longitude×time diagram for the equator;
3. verify the visual impression quantitatively: recover each mode's
   wavenumber, period and propagation direction with the space-time
   spectral analysis;
4. render a Hovmöller *volume* view of the same data.

Run:  python examples/hovmoller_waves.py
"""

from repro.cdat.spectral import dominant_wave
from repro.dv3d.cell import DV3DCell
from repro.dv3d.hovmoller import HovmollerSlicerPlot, HovmollerVolumePlot
from repro.esg.federation import default_federation


def main() -> None:
    # --- ESG access path ---------------------------------------------------
    federation = default_federation()
    hits = federation.search("wave")
    print("ESG search 'wave' →", [(node, rec.dataset_id) for node, rec in hits])
    dataset = federation.fetch("wave_case_study")
    transfer = federation.transfers[-1]
    print(f"fetched from {transfer.node_name} "
          f"(modelled transfer {transfer.modelled_seconds:.2f}s)\n")

    for variable_id in ("olr_anom", "olr_west"):
        wave = dataset(variable_id)
        direction = "eastward" if wave.attributes["eastward"] else "westward"
        print(f"=== {variable_id} (constructed: wavenumber "
              f"{wave.attributes['wavenumber']}, period "
              f"{wave.attributes['period_steps']} steps, {direction}) ===")

        # --- Hovmöller slicer: longitude × time at the equator -------------
        plot = HovmollerSlicerPlot(wave, colormap="coolwarm")
        cell = DV3DCell(plot, dataset_label="WAVES", show_basemap=False)
        cell.render(420, 320).save(f"hovmoller_{variable_id}.ppm")
        values, lons, times = plot.diagram(latitude=0.0)
        print(f"  diagram: {values.shape[0]} longitudes x {values.shape[1]} steps")

        # --- quantitative check of what the eye sees ------------------------
        equator = wave(latitude=0.0).squeeze()
        recovered = dominant_wave(equator)
        print(f"  spectral analysis: wavenumber {recovered['wavenumber']:.0f}, "
              f"period {1.0 / max(recovered['frequency'], 1e-9):.1f} steps, "
              f"{'eastward' if recovered['direction'] > 0 else 'westward'}, "
              f"phase speed {abs(recovered['phase_speed_deg_per_step']):.2f} deg/step")

        # --- Hovmöller volume render ----------------------------------------
        volume_view = HovmollerVolumePlot(wave, center=0.85, width=0.2,
                                          colormap="coolwarm")
        volume_view.render(420, 320).save(f"hovmoller_volume_{variable_id}.ppm")
        print(f"  wrote hovmoller_{variable_id}.ppm and "
              f"hovmoller_volume_{variable_id}.ppm\n")


if __name__ == "__main__":
    main()
