"""Group modules: encapsulating a pipeline as a single module.

§II.B: workflows "can also embody complex analytical processes at
various levels of encapsulation".  A *group* packages a whole pipeline
behind a module facade: selected inner input ports become the group's
input ports, selected inner outputs become its outputs, and executing
the group executes the inner pipeline.  Groups register like any other
module class, so they compose — groups of groups work.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Type

from repro.workflow.executor import Executor
from repro.workflow.module import Module, ParameterSpec
from repro.workflow.pipeline import Pipeline
from repro.workflow.ports import PortSpec
from repro.workflow.registry import ModuleRegistry
from repro.util.errors import WorkflowError

#: (exposed_port_name, inner_module_id, inner_port_name)
PortMap = List[Tuple[str, int, str]]


def create_group(
    name: str,
    pipeline: Pipeline,
    inputs: Optional[PortMap] = None,
    outputs: Optional[PortMap] = None,
    doc: str = "",
) -> Type[Module]:
    """Build a Module subclass wrapping *pipeline*.

    Parameters
    ----------
    name:
        The module name the group registers under.
    pipeline:
        The inner pipeline (copied; later edits to the original do not
        affect the group).
    inputs:
        Exposed input ports: ``(exposed_name, module_id, port_name)``
        triples.  Each target inner port must exist and be unconnected
        inside the pipeline.  Exposed inputs are optional for the
        group's callers only if the inner port is optional.
    outputs:
        Exposed output ports, same triple format.  Defaults to every
        output port of the pipeline's sink modules, named
        ``"<module_id>_<port>"`` (or just ``port`` if unambiguous).
    """
    inner = pipeline.copy()
    inner_inputs: PortMap = list(inputs or [])
    for exposed, module_id, port in inner_inputs:
        spec = inner.modules.get(module_id)
        if spec is None:
            raise WorkflowError(f"group {name!r}: no inner module {module_id}")
        cls = inner.registry.resolve(spec.name)
        cls.input_port(port)  # raises if missing
        for conn in inner.incoming(module_id):
            if conn.target_port == port:
                raise WorkflowError(
                    f"group {name!r}: inner port {module_id}.{port} is already "
                    "connected inside the group"
                )

    if outputs is None:
        auto: PortMap = []
        sink_ports: Dict[str, int] = {}
        for sink in inner.sinks():
            cls = inner.registry.resolve(inner.modules[sink].name)
            for port in cls.output_ports:
                sink_ports[port.name] = sink_ports.get(port.name, 0) + 1
        for sink in inner.sinks():
            cls = inner.registry.resolve(inner.modules[sink].name)
            for port in cls.output_ports:
                exposed = port.name if sink_ports[port.name] == 1 else f"m{sink}_{port.name}"
                auto.append((exposed, sink, port.name))
        inner_outputs = auto
    else:
        inner_outputs = list(outputs)
    if not inner_outputs:
        raise WorkflowError(f"group {name!r}: no outputs to expose")
    for exposed, module_id, port in inner_outputs:
        spec = inner.modules.get(module_id)
        if spec is None:
            raise WorkflowError(f"group {name!r}: no inner module {module_id}")
        inner.registry.resolve(spec.name).output_port(port)

    input_specs = []
    for exposed, module_id, port in inner_inputs:
        inner_spec = inner.registry.resolve(inner.modules[module_id].name).input_port(port)
        input_specs.append(PortSpec(exposed, inner_spec.type_tag, inner_spec.optional))
    output_specs = []
    for exposed, module_id, port in inner_outputs:
        inner_spec = inner.registry.resolve(inner.modules[module_id].name).output_port(port)
        output_specs.append(PortSpec(exposed, inner_spec.type_tag))

    pipeline_dict = inner.to_dict()

    class GroupModule(Module):
        input_ports = tuple(input_specs)
        output_ports = tuple(output_specs)
        parameters = (
            ParameterSpec("overrides", {},
                          "inner parameter overrides: {module_id: {param: value}}"),
        )
        #: groups may wrap stateful plot/cell modules; play safe
        cacheable = False

        _pipeline_dict = pipeline_dict
        _input_map = list(inner_inputs)
        _output_map = list(inner_outputs)
        _registry = inner.registry

        def compute(self, inputs_values: Dict[str, Any]) -> Dict[str, Any]:
            run = Pipeline.from_dict(self._pipeline_dict, self._registry)
            for module_id_str, params in dict(
                self.parameter_values.get("overrides") or {}
            ).items():
                for param, value in dict(params).items():
                    run.set_parameter(int(module_id_str), param, value)
            # feed exposed inputs through injected Constant modules
            for exposed, module_id, port in self._input_map:
                if exposed not in inputs_values:
                    continue
                feeder = run.add_module("basic:Constant",
                                        {"value": inputs_values[exposed]})
                run.add_connection(feeder, "value", module_id, port)
            result = Executor(caching=False).execute(run)
            outputs: Dict[str, Any] = {}
            for exposed, module_id, port in self._output_map:
                outputs[exposed] = result.output(module_id, port)
            return outputs

    GroupModule.name = name
    GroupModule.__name__ = name
    GroupModule.__doc__ = doc or f"Group module encapsulating a {len(inner.modules)}-module pipeline."
    return GroupModule


def register_group(
    registry: ModuleRegistry,
    package_id: str,
    name: str,
    pipeline: Pipeline,
    inputs: Optional[PortMap] = None,
    outputs: Optional[PortMap] = None,
    doc: str = "",
) -> str:
    """Create and register a group in one step; returns the qualified name."""
    return registry.register(package_id, create_group(name, pipeline, inputs, outputs, doc))
