"""The module registry.

VisTrails "provides a package mechanism enabling developers to expose
their libraries ... through a set of VisTrails workflow modules".  The
registry is where those modules live: a mapping from
``package_id:ModuleName`` to module classes, with lookup by qualified
or bare name (bare names resolve when unambiguous).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.workflow.module import Module
from repro.util.errors import WorkflowError


class ModuleRegistry:
    """Registered module classes, namespaced by package id."""

    def __init__(self) -> None:
        self._modules: Dict[str, Type[Module]] = {}  # "pkg:Name" → class
        self._packages: Dict[str, List[str]] = {}  # pkg → [Name, ...]

    def register(self, package_id: str, module_class: Type[Module], overwrite: bool = False) -> str:
        if not issubclass(module_class, Module):
            raise WorkflowError(f"{module_class!r} is not a Module subclass")
        qualified = f"{package_id}:{module_class.module_name()}"
        if qualified in self._modules and not overwrite:
            raise WorkflowError(f"module {qualified!r} already registered")
        self._modules[qualified] = module_class
        names = self._packages.setdefault(package_id, [])
        if module_class.module_name() not in names:
            names.append(module_class.module_name())
        return qualified

    def resolve(self, name: str) -> Type[Module]:
        """Look up by ``pkg:Name`` or bare ``Name`` (must be unambiguous)."""
        if name in self._modules:
            return self._modules[name]
        matches = [q for q in self._modules if q.split(":", 1)[1] == name]
        if len(matches) == 1:
            return self._modules[matches[0]]
        if not matches:
            raise WorkflowError(f"unknown module {name!r}")
        raise WorkflowError(f"ambiguous module {name!r}: {sorted(matches)}")

    def qualified_name(self, name: str) -> str:
        """Canonical ``pkg:Name`` form of a module reference."""
        if name in self._modules:
            return name
        matches = [q for q in self._modules if q.split(":", 1)[1] == name]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise WorkflowError(f"unknown module {name!r}")
        raise WorkflowError(f"ambiguous module {name!r}: {sorted(matches)}")

    def create(self, name: str, parameter_values: Optional[dict] = None) -> Module:
        return self.resolve(name)(parameter_values)

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
            return True
        except WorkflowError:
            return False

    def packages(self) -> List[str]:
        return sorted(self._packages)

    def modules_in(self, package_id: str) -> List[str]:
        return sorted(self._packages.get(package_id, []))

    def all_modules(self) -> List[str]:
        return sorted(self._modules)


_GLOBAL: Optional[ModuleRegistry] = None


def global_registry() -> ModuleRegistry:
    """The process-wide registry with all built-in packages loaded.

    Loads the ``cdms``, ``cdat``, ``dv3d`` and ``basic`` packages on
    first use (the UV-CDAT configuration of Fig. 1).
    """
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = ModuleRegistry()
        # deferred imports: packages register module classes that import
        # heavier subsystems
        from repro.workflow.package import load_builtin_packages

        load_builtin_packages(_GLOBAL)
    return _GLOBAL
