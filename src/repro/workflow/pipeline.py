"""The pipeline graph: modules, connections, parameters.

A :class:`Pipeline` is the pure *structure* of a workflow — which
modules exist, how their ports connect, and what their parameter values
are.  All mutation goes through small methods (add/delete module,
add/delete connection, set parameter) because the provenance layer
records exactly those operations as change actions.

The graph must stay acyclic; validation additionally checks port
existence, type compatibility (at connection time) and required-input
coverage (at execution time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set

from repro.workflow.registry import ModuleRegistry
from repro.util.errors import WorkflowError
from repro.util.ids import IdGenerator


@dataclass(frozen=True)
class Connection:
    """A directed edge: (source module, source port) → (target module, target port)."""

    id: int
    source_id: int
    source_port: str
    target_id: int
    target_port: str


@dataclass
class ModuleSpec:
    """One module occurrence in a pipeline (name + parameter values)."""

    id: int
    name: str  # qualified "pkg:Name" registry reference
    parameters: Dict[str, Any] = field(default_factory=dict)

    def copy(self) -> "ModuleSpec":
        return ModuleSpec(self.id, self.name, dict(self.parameters))


class Pipeline:
    """A mutable, validated workflow graph."""

    def __init__(self, registry: Optional[ModuleRegistry] = None) -> None:
        from repro.workflow.registry import global_registry

        self.registry = registry or global_registry()
        self.modules: Dict[int, ModuleSpec] = {}
        self.connections: Dict[int, Connection] = {}
        self._module_ids = IdGenerator()
        self._connection_ids = IdGenerator()

    def __repr__(self) -> str:
        return f"Pipeline(modules={len(self.modules)}, connections={len(self.connections)})"

    # -- mutation ----------------------------------------------------------

    def add_module(self, name: str, parameters: Optional[Dict[str, Any]] = None,
                   module_id: Optional[int] = None) -> int:
        """Add a module by registry name; returns its id."""
        qualified = self.registry.qualified_name(name)
        cls = self.registry.resolve(qualified)
        params = dict(parameters or {})
        known = {p.name for p in cls.parameters}
        unknown = set(params) - known
        if unknown:
            raise WorkflowError(f"module {name!r}: unknown parameters {sorted(unknown)}")
        if module_id is None:
            module_id = self._module_ids.next()
        elif module_id in self.modules:
            raise WorkflowError(f"module id {module_id} already in pipeline")
        else:
            self._module_ids.reserve_through(module_id)
        self.modules[module_id] = ModuleSpec(module_id, qualified, params)
        return module_id

    def delete_module(self, module_id: int) -> None:
        """Remove a module and every connection touching it."""
        self._require_module(module_id)
        del self.modules[module_id]
        doomed = [
            cid for cid, c in self.connections.items()
            if c.source_id == module_id or c.target_id == module_id
        ]
        for cid in doomed:
            del self.connections[cid]

    def set_parameter(self, module_id: int, name: str, value: Any) -> None:
        spec = self._require_module(module_id)
        cls = self.registry.resolve(spec.name)
        if name not in {p.name for p in cls.parameters}:
            raise WorkflowError(f"module {spec.name!r}: no parameter {name!r}")
        spec.parameters[name] = value

    def add_connection(
        self,
        source_id: int,
        source_port: str,
        target_id: int,
        target_port: str,
        connection_id: Optional[int] = None,
    ) -> int:
        """Connect two ports; validates types and acyclicity; returns edge id."""
        src = self._require_module(source_id)
        dst = self._require_module(target_id)
        src_cls = self.registry.resolve(src.name)
        dst_cls = self.registry.resolve(dst.name)
        out_spec = src_cls.output_port(source_port)
        in_spec = dst_cls.input_port(target_port)
        if not out_spec.compatible_with(in_spec):
            raise WorkflowError(
                f"type mismatch: {src.name}.{source_port} ({out_spec.type_tag}) → "
                f"{dst.name}.{target_port} ({in_spec.type_tag})"
            )
        for conn in self.connections.values():
            if conn.target_id == target_id and conn.target_port == target_port:
                raise WorkflowError(
                    f"input port {dst.name}.{target_port} already connected"
                )
        if source_id == target_id or self._reaches(target_id, source_id):
            raise WorkflowError("connection would create a cycle")
        if connection_id is None:
            connection_id = self._connection_ids.next()
        elif connection_id in self.connections:
            raise WorkflowError(f"connection id {connection_id} already in pipeline")
        else:
            self._connection_ids.reserve_through(connection_id)
        self.connections[connection_id] = Connection(
            connection_id, source_id, source_port, target_id, target_port
        )
        return connection_id

    def delete_connection(self, connection_id: int) -> None:
        if connection_id not in self.connections:
            raise WorkflowError(f"no connection {connection_id}")
        del self.connections[connection_id]

    # -- queries --------------------------------------------------------------

    def _require_module(self, module_id: int) -> ModuleSpec:
        try:
            return self.modules[module_id]
        except KeyError:
            raise WorkflowError(f"no module {module_id} in pipeline") from None

    def _reaches(self, start: int, goal: int) -> bool:
        """Whether *goal* is reachable downstream from *start*."""
        frontier = [start]
        seen: Set[int] = set()
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(
                c.target_id for c in self.connections.values() if c.source_id == node
            )
        return False

    def incoming(self, module_id: int) -> List[Connection]:
        return [c for c in self.connections.values() if c.target_id == module_id]

    def outgoing(self, module_id: int) -> List[Connection]:
        return [c for c in self.connections.values() if c.source_id == module_id]

    def sinks(self) -> List[int]:
        """Modules with no outgoing connections (pipeline end points)."""
        sources = {c.source_id for c in self.connections.values()}
        return sorted(mid for mid in self.modules if mid not in sources)

    def modules_of_type(self, name: str) -> List[int]:
        """Ids of modules whose registry name matches *name* (bare or qualified)."""
        qualified = self.registry.qualified_name(name)
        return sorted(mid for mid, spec in self.modules.items() if spec.name == qualified)

    def topological_order(self) -> List[int]:
        """Module ids in dependency order (raises on cycles)."""
        in_degree = {mid: 0 for mid in self.modules}
        for conn in self.connections.values():
            in_degree[conn.target_id] += 1
        ready = sorted(mid for mid, deg in in_degree.items() if deg == 0)
        order: List[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for conn in sorted(self.outgoing(node), key=lambda c: c.id):
                in_degree[conn.target_id] -= 1
                if in_degree[conn.target_id] == 0:
                    ready.append(conn.target_id)
            ready.sort()
        if len(order) != len(self.modules):
            raise WorkflowError("pipeline graph has a cycle")
        return order

    def upstream_closure(self, module_ids: Iterable[int]) -> Set[int]:
        """All modules that feed (transitively) into *module_ids*, inclusive.

        This is the sub-workflow extraction primitive the hyperwall
        server uses: "each client workflow consists of one of the cell
        modules (and all its upstream modules)".
        """
        frontier = list(module_ids)
        closure: Set[int] = set()
        while frontier:
            node = frontier.pop()
            if node in closure:
                continue
            self._require_module(node)
            closure.add(node)
            frontier.extend(c.source_id for c in self.incoming(node))
        return closure

    def subpipeline(self, module_ids: Iterable[int]) -> "Pipeline":
        """A new pipeline containing *module_ids* (plus upstream closure),
        preserving module/connection ids."""
        keep = self.upstream_closure(module_ids)
        sub = Pipeline(self.registry)
        for mid in sorted(keep):
            spec = self.modules[mid]
            sub.add_module(spec.name, dict(spec.parameters), module_id=mid)
        for conn in sorted(self.connections.values(), key=lambda c: c.id):
            if conn.source_id in keep and conn.target_id in keep:
                sub.add_connection(
                    conn.source_id, conn.source_port, conn.target_id, conn.target_port,
                    connection_id=conn.id,
                )
        return sub

    def validate(self) -> None:
        """Check required inputs are connected or have no way to be computed."""
        for mid, spec in self.modules.items():
            cls = self.registry.resolve(spec.name)
            connected = {c.target_port for c in self.incoming(mid)}
            for port in cls.input_ports:
                if not port.optional and port.name not in connected:
                    raise WorkflowError(
                        f"module {spec.name!r} (id {mid}): required input "
                        f"{port.name!r} is unconnected"
                    )
        self.topological_order()  # raises on cycles

    # -- copy / serialize ----------------------------------------------------------

    def copy(self) -> "Pipeline":
        clone = Pipeline(self.registry)
        for mid in sorted(self.modules):
            spec = self.modules[mid]
            clone.add_module(spec.name, dict(spec.parameters), module_id=mid)
        for conn in sorted(self.connections.values(), key=lambda c: c.id):
            clone.add_connection(
                conn.source_id, conn.source_port, conn.target_id, conn.target_port,
                connection_id=conn.id,
            )
        return clone

    def to_dict(self) -> Dict[str, Any]:
        return {
            "modules": [
                {"id": s.id, "name": s.name, "parameters": s.parameters}
                for s in sorted(self.modules.values(), key=lambda s: s.id)
            ],
            "connections": [
                {
                    "id": c.id,
                    "source_id": c.source_id,
                    "source_port": c.source_port,
                    "target_id": c.target_id,
                    "target_port": c.target_port,
                }
                for c in sorted(self.connections.values(), key=lambda c: c.id)
            ],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any], registry: Optional[ModuleRegistry] = None) -> "Pipeline":
        pipe = Pipeline(registry)
        for m in data.get("modules", []):
            pipe.add_module(m["name"], dict(m.get("parameters", {})), module_id=int(m["id"]))
        for c in data.get("connections", []):
            pipe.add_connection(
                int(c["source_id"]), c["source_port"], int(c["target_id"]), c["target_port"],
                connection_id=int(c["id"]),
            )
        return pipe

    def structurally_equal(self, other: "Pipeline") -> bool:
        return self.to_dict() == other.to_dict()
