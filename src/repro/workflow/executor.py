"""Pipeline execution with caching and parallel task execution.

Two properties the paper claims for the UV-CDAT/VisTrails runtime are
implemented and benchmarked here:

* **upstream result caching** — each module's result is keyed by a
  *signature* hashing its type, parameters and its inputs' signatures.
  Re-executing an edited workflow recomputes only modules whose
  signature changed (how VisTrails makes iterative exploration cheap);
* **parallel task execution** (paper abstract) — independent branches
  execute concurrently on a thread pool; the topology-driven scheduler
  dispatches a module as soon as its upstream modules finish.

Every execution produces an :class:`ExecutionResult` carrying outputs,
per-module timing/status records (consumed by the provenance execution
log) and cache statistics.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.resilience import faults
from repro.workflow.pipeline import Pipeline
from repro.util.errors import ModuleExecutionError, WorkflowError

#: executor failure policies: abort on the first module failure, or
#: keep executing branches not downstream of a failed module and
#: return a partial result with per-module status
FAILURE_POLICIES = ("fail_fast", "continue_independent")


@dataclass
class ModuleRun:
    """Timing/status record of one module execution (or cache hit)."""

    module_id: int
    module_name: str
    status: str  # "ok" | "cached" | "error" | "skipped"
    duration: float
    error: str = ""


@dataclass
class ExecutionResult:
    """Everything an execution produced."""

    outputs: Dict[Tuple[int, str], Any]
    runs: List[ModuleRun] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    wall_time: float = 0.0

    def output(self, module_id: int, port: Optional[str] = None) -> Any:
        """Output of a module; port may be omitted when there is exactly one."""
        if port is not None:
            try:
                return self.outputs[(module_id, port)]
            except KeyError:
                raise WorkflowError(
                    f"no output ({module_id}, {port!r}) in execution result"
                ) from None
        candidates = [(mid, p) for (mid, p) in self.outputs if mid == module_id]
        if len(candidates) == 1:
            return self.outputs[candidates[0]]
        raise WorkflowError(
            f"module {module_id} has {len(candidates)} outputs; specify the port"
        )

    def status_of(self, module_id: int) -> str:
        for run in self.runs:
            if run.module_id == module_id:
                return run.status
        raise WorkflowError(f"module {module_id} was not executed")

    @property
    def ok(self) -> bool:
        """Whether every module ran (or came from cache) successfully."""
        return all(run.status in ("ok", "cached") for run in self.runs)

    def failures(self) -> List[ModuleRun]:
        """Runs that failed (``continue_independent`` partial results)."""
        return [run for run in self.runs if run.status == "error"]

    def skipped(self) -> List[ModuleRun]:
        """Runs skipped because an upstream module failed."""
        return [run for run in self.runs if run.status == "skipped"]


class Executor:
    """Executes pipelines against a module registry.

    Parameters
    ----------
    caching:
        Keep module results keyed by signature across executions.
    max_workers:
        Thread-pool width for parallel branch execution; 1 = serial.
    parallel:
        Optional :class:`repro.parallel.ParallelConfig` installed as
        the ambient config for the duration of each execution, so
        rendering modules (plots, isosurfaces, regrids) run their
        kernels on the process pool without any module-level plumbing.
    cache:
        Optional :class:`repro.cache.CacheConfig` installed the same
        way.  When the effective (explicit or ambient) config is
        enabled, module results are additionally memoized in the
        shared two-tier result cache keyed by their provenance
        signature — so warm results survive across executor instances
        and, through the disk tier, across processes.  Under
        ``continue_independent`` the shared cache is also consulted
        for modules blocked by an upstream failure: a branch whose
        results were cached by an earlier run completes (status
        ``"cached"``) instead of being skipped.
    failure_policy:
        ``"fail_fast"`` (default) raises on the first module failure;
        ``"continue_independent"`` keeps executing every branch not
        downstream of a failed module and returns a partial
        :class:`ExecutionResult` whose runs carry per-module status
        (``error`` for the failed module, ``skipped`` for its
        downstream closure) — the hyperwall's partial-frame semantics
        applied to a single workflow.
    """

    def __init__(
        self,
        caching: bool = True,
        max_workers: int = 1,
        on_module_complete=None,
        parallel=None,
        cache=None,
        failure_policy: str = "fail_fast",
    ) -> None:
        if max_workers < 1:
            raise WorkflowError("max_workers must be >= 1")
        if failure_policy not in FAILURE_POLICIES:
            raise WorkflowError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {failure_policy!r}"
            )
        self.caching = caching
        self.max_workers = int(max_workers)
        #: optional callable(ModuleRun, done_count, total_count) — the
        #: progress hook a GUI's status bar would subscribe to
        self.on_module_complete = on_module_complete
        self.parallel = parallel
        self.cache = cache
        self.failure_policy = failure_policy
        self._cache: Dict[str, Dict[str, Any]] = {}

    def clear_cache(self) -> None:
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    # -- signatures ---------------------------------------------------------

    @staticmethod
    def _signature(
        pipeline: Pipeline, module_id: int, upstream_signatures: Dict[int, str]
    ) -> str:
        spec = pipeline.modules[module_id]
        cls = pipeline.registry.resolve(spec.name)
        instance = cls(spec.parameters)
        feed = sorted(
            (c.target_port, upstream_signatures[c.source_id], c.source_port)
            for c in pipeline.incoming(module_id)
        )
        blob = f"{spec.name}|{instance.parameter_signature()}|{feed}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def signatures(self, pipeline: Pipeline) -> Dict[int, str]:
        """Per-module content signatures in topological order."""
        result: Dict[int, str] = {}
        for mid in pipeline.topological_order():
            result[mid] = self._signature(pipeline, mid, result)
        return result

    # -- execution -------------------------------------------------------------

    def execute(
        self, pipeline: Pipeline, targets: Optional[List[int]] = None
    ) -> ExecutionResult:
        """Execute *pipeline* (or just the upstream closure of *targets*).

        Under ``fail_fast`` raises :class:`ModuleExecutionError` on the
        first module failure (modules already running are allowed to
        finish); under ``continue_independent`` failures are recorded
        in the result and independent branches keep executing.
        """
        from repro.cache.config import use_config as use_cache_config
        from repro.parallel.config import use_config

        with use_config(self.parallel), use_cache_config(self.cache):
            return self._execute_inner(pipeline, targets)

    def _execute_inner(
        self, pipeline: Pipeline, targets: Optional[List[int]] = None
    ) -> ExecutionResult:
        start_wall = time.perf_counter()
        if targets is not None:
            pipeline = pipeline.subpipeline(targets)
        pipeline.validate()
        order = pipeline.topological_order()
        signatures = self.signatures(pipeline)

        result = ExecutionResult(outputs={})
        module_outputs: Dict[int, Dict[str, Any]] = {}
        remaining: Set[int] = set(order)
        dependencies = {
            mid: {c.source_id for c in pipeline.incoming(mid)} for mid in order
        }

        # the shared (ambient or executor-scoped) two-tier result cache;
        # None keeps the seed behavior: executor-local memoization only
        from repro.cache.config import get_config as get_cache_config

        shared = None
        if self.caching and get_cache_config().enabled:
            from repro.cache.keys import cache_key
            from repro.cache.store import get_cache

            shared = get_cache()
            module_key = {
                mid: cache_key("executor.module", signatures[mid]) for mid in order
            }

        # run_module executes on pool worker threads, whose obs span
        # stacks are empty — the execute-level span id is captured here
        # and passed explicitly so per-module spans nest under it.
        exec_span = obs.span(
            "executor.execute", modules=len(order), workers=self.max_workers
        )

        def run_module(mid: int) -> Tuple[int, Dict[str, Any], ModuleRun]:
            spec = pipeline.modules[mid]
            t0 = time.perf_counter()
            sig = signatures[mid]
            cls = pipeline.registry.resolve(spec.name)
            use_cache = self.caching and cls.cacheable
            with obs.span(
                "executor.module", parent_id=exec_span.id, module=spec.name
            ) as mspan:
                if use_cache and sig in self._cache:
                    outputs = self._cache[sig]
                    mspan.set(status="cached")
                    obs.counter("executor.cache.hit", module=spec.name)
                    return mid, outputs, ModuleRun(
                        mid, spec.name, "cached", time.perf_counter() - t0
                    )
                if use_cache and shared is not None:
                    found, outputs = shared.get(module_key[mid], site="executor")
                    if found:
                        self._cache[sig] = outputs
                        mspan.set(status="cached")
                        obs.counter("executor.cache.hit", module=spec.name)
                        return mid, outputs, ModuleRun(
                            mid, spec.name, "cached", time.perf_counter() - t0
                        )
                obs.counter("executor.cache.miss", module=spec.name)
                instance = cls(spec.parameters)
                inputs: Dict[str, Any] = {}
                for conn in pipeline.incoming(mid):
                    inputs[conn.target_port] = module_outputs[conn.source_id][conn.source_port]
                try:
                    faults.check("executor.module", module=spec.name)
                    outputs = instance.check_outputs(instance.compute(inputs))
                except ModuleExecutionError as exc:
                    if self.failure_policy == "fail_fast":
                        raise
                    mspan.set(status="error")
                    obs.counter("executor.module.failed", module=spec.name)
                    return mid, {}, ModuleRun(
                        mid, spec.name, "error",
                        time.perf_counter() - t0, error=str(exc),
                    )
                except Exception as exc:  # noqa: BLE001 - attributed and re-raised
                    wrapped = ModuleExecutionError(spec.name, exc)
                    if self.failure_policy == "fail_fast":
                        raise wrapped from exc
                    mspan.set(status="error")
                    obs.counter("executor.module.failed", module=spec.name)
                    return mid, {}, ModuleRun(
                        mid, spec.name, "error",
                        time.perf_counter() - t0, error=str(wrapped),
                    )
                if use_cache:
                    self._cache[sig] = outputs
                    if shared is not None:
                        shared.put(module_key[mid], outputs, site="executor")
                mspan.set(status="ok")
            duration = time.perf_counter() - t0
            obs.histogram("executor.module.duration", duration, module=spec.name)
            return mid, outputs, ModuleRun(mid, spec.name, "ok", duration)

        def finish(mid: int, outputs: Dict[str, Any], run: ModuleRun) -> None:
            module_outputs[mid] = outputs
            result.runs.append(run)
            for port, value in outputs.items():
                result.outputs[(mid, port)] = value
            if self.on_module_complete is not None:
                self.on_module_complete(run, len(result.runs), len(order))

        def skip(mid: int) -> None:
            spec = pipeline.modules[mid]
            obs.counter("executor.module.skipped", module=spec.name)
            finish(mid, {}, ModuleRun(
                mid, spec.name, "skipped", 0.0, error="upstream module failed"
            ))

        def resolve_blocked(mid: int) -> Optional[Dict[str, Any]]:
            """Cached outputs for a module blocked by an upstream failure.

            A blocked module's signature is computable without running
            its (failed) upstreams, so a result memoized by an earlier
            run can still complete this branch under
            ``continue_independent``.
            """
            spec = pipeline.modules[mid]
            cls = pipeline.registry.resolve(spec.name)
            if not (self.caching and cls.cacheable):
                return None
            sig = signatures[mid]
            if sig in self._cache:
                return self._cache[sig]
            if shared is not None:
                found, outputs = shared.get(module_key[mid], site="executor")
                if found:
                    self._cache[sig] = outputs
                    return outputs
            return None

        def finish_blocked(mid: int, outputs: Dict[str, Any]) -> None:
            spec = pipeline.modules[mid]
            obs.counter("executor.cache.hit", module=spec.name)
            finish(mid, outputs, ModuleRun(mid, spec.name, "cached", 0.0))

        failed: Set[int] = set()  # error or skipped module ids

        with exec_span:
            if self.max_workers == 1:
                for mid in order:
                    if dependencies[mid] & failed:
                        outputs = resolve_blocked(mid)
                        if outputs is None:
                            skip(mid)
                            failed.add(mid)
                        else:
                            finish_blocked(mid, outputs)
                        continue
                    mid, outputs, run = run_module(mid)
                    finish(mid, outputs, run)
                    if run.status == "error":
                        failed.add(mid)
            else:
                with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                    pending: Dict[Future, int] = {}
                    done_set: Set[int] = set()

                    def dispatch_ready() -> None:
                        for mid in sorted(remaining):
                            if dependencies[mid] <= done_set and mid not in {
                                m for m in pending.values()
                            }:
                                pending[pool.submit(run_module, mid)] = mid

                    dispatch_ready()
                    first_error: Optional[BaseException] = None
                    while pending:
                        done, _ = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            mid = pending.pop(future)
                            try:
                                fmid, outputs, run = future.result()
                            except BaseException as exc:  # noqa: BLE001
                                if first_error is None:
                                    first_error = exc
                                remaining.discard(mid)
                                continue
                            finish(fmid, outputs, run)
                            remaining.discard(mid)
                            if run.status == "error":
                                failed.add(mid)
                            else:
                                done_set.add(mid)
                        if first_error is None:
                            dispatch_ready()
                    if first_error is not None:
                        raise first_error
                # everything still remaining is downstream of a failure
                # (otherwise dispatch_ready would have scheduled it); a
                # cached result can still complete such a branch, and a
                # module whose upstreams all resolved from cache runs
                # inline (topological order keeps its inputs available)
                for mid in order:
                    if mid not in remaining:
                        continue
                    if dependencies[mid] <= done_set:
                        fmid, outputs, run = run_module(mid)
                        finish(fmid, outputs, run)
                        if run.status == "error":
                            failed.add(mid)
                        else:
                            done_set.add(mid)
                        continue
                    outputs = resolve_blocked(mid)
                    if outputs is None:
                        skip(mid)
                        failed.add(mid)
                    else:
                        finish_blocked(mid, outputs)
                        done_set.add(mid)

        # cache statistics are derived from the run records (the obs
        # counters above carry the per-module breakdown)
        result.cache_hits = sum(1 for run in result.runs if run.status == "cached")
        result.cache_misses = sum(
            1 for run in result.runs if run.status in ("ok", "error")
        )
        result.wall_time = time.perf_counter() - start_wall
        return result
