"""Workflow engine (the VisTrails substrate).

The paper (§II.B, §III.A): workflows are assemblies of typed modules —
"each module within a workflow can wrap a distinct tool, script, or
library" — connected into pipelines whose framework "transparently maps
the data structures exported from each module into the data structures
required as inputs to the connected modules".  VisTrails additionally
provides a *package mechanism* through which UV-CDAT registers the CDAT
and DV3D module suites.

This package implements that machinery:

* :mod:`repro.workflow.ports` — typed input/output port specifications;
* :mod:`repro.workflow.module` — the module base class and its
  compute contract;
* :mod:`repro.workflow.registry` / :mod:`repro.workflow.package` —
  module registration and the package mechanism;
* :mod:`repro.workflow.pipeline` — the pipeline graph (modules,
  connections, parameters) with validation, topological ordering,
  upstream closure and serialization;
* :mod:`repro.workflow.executor` — execution with upstream result
  caching and optional parallel evaluation of independent branches.
"""

from repro.workflow.ports import PortSpec
from repro.workflow.module import Module, ParameterSpec
from repro.workflow.registry import ModuleRegistry, global_registry
from repro.workflow.package import Package
from repro.workflow.pipeline import Connection, ModuleSpec, Pipeline
from repro.workflow.executor import ExecutionResult, Executor
from repro.workflow.group import create_group, register_group

__all__ = [
    "PortSpec",
    "Module",
    "ParameterSpec",
    "ModuleRegistry",
    "global_registry",
    "Package",
    "Connection",
    "ModuleSpec",
    "Pipeline",
    "ExecutionResult",
    "Executor",
    "create_group",
    "register_group",
]
