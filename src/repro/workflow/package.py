"""Packages: named, versioned collections of workflow modules.

A :class:`Package` bundles module classes under a package id — the
VisTrails mechanism through which "UV-CDAT uses this mechanism to
tightly integrate the CDAT and DV3D modules" (Fig. 1's
tightly-coupled integration path).  The *loosely-coupled* path (VisIt,
ParaView, R, MatLab in Fig. 1) is modelled by
:class:`ExternalToolAdapter`, a module that shells data through a
serialize→call→deserialize boundary instead of passing Python objects
directly; the Fig. 1 benchmark measures the overhead difference.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Type

from repro.workflow.module import Module, ParameterSpec
from repro.workflow.ports import PortSpec
from repro.workflow.registry import ModuleRegistry
from repro.util.errors import WorkflowError


@dataclass
class Package:
    """A named collection of module classes with a version string."""

    package_id: str
    version: str = "1.0"
    description: str = ""
    modules: List[Type[Module]] = field(default_factory=list)

    def add(self, module_class: Type[Module]) -> Type[Module]:
        self.modules.append(module_class)
        return module_class

    def register_all(self, registry: ModuleRegistry) -> List[str]:
        return [registry.register(self.package_id, cls) for cls in self.modules]


# -- basic package -----------------------------------------------------------


class Constant(Module):
    """Emit a constant value (set via the ``value`` parameter)."""

    name = "Constant"
    output_ports = (PortSpec("value", "any"),)
    parameters = (ParameterSpec("value", None, "the constant to emit"),)

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return {"value": self.parameter_values["value"]}


class PythonSource(Module):
    """Run a user Python snippet over named inputs.

    The snippet (parameter ``source``) sees its inputs as local
    variables plus ``inputs`` itself, and must assign a dict to a local
    named ``outputs``.  This is the VisTrails ``PythonSource`` module
    that makes workflows user-extensible without writing a package.
    """

    name = "PythonSource"
    input_ports = (
        PortSpec("a", "any", optional=True),
        PortSpec("b", "any", optional=True),
        PortSpec("c", "any", optional=True),
    )
    output_ports = (PortSpec("result", "any"),)
    parameters = (ParameterSpec("source", "outputs = {'result': None}", "python snippet"),)

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        source = str(self.parameter_values["source"])
        namespace: Dict[str, Any] = {"inputs": dict(inputs)}
        namespace.update(inputs)
        exec(source, {"__builtins__": __builtins__}, namespace)  # noqa: S102 - user scripting hook
        outputs = namespace.get("outputs")
        if not isinstance(outputs, dict) or "result" not in outputs:
            raise WorkflowError(
                "PythonSource snippet must assign outputs = {'result': ...}"
            )
        return {"result": outputs["result"]}


class Tee(Module):
    """Pass a value through unchanged (fan-out helper / probe point)."""

    name = "Tee"
    input_ports = (PortSpec("value", "any"),)
    output_ports = (PortSpec("value", "any"),)

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return {"value": inputs["value"]}


class ExternalToolAdapter(Module):
    """Loosely-coupled integration of an external tool (Fig. 1, right side).

    The wrapped callable is invoked through a JSON serialize /
    deserialize boundary, emulating handing data to an external process
    (VisIt, ParaView, R, MatLab) instead of sharing Python objects.
    Register concrete tools with :meth:`register_tool`.
    """

    name = "ExternalToolAdapter"
    input_ports = (PortSpec("payload", "any"),)
    output_ports = (PortSpec("payload", "any"),)
    parameters = (ParameterSpec("tool", "identity", "registered external tool name"),)

    _tools: Dict[str, Callable[[Any], Any]] = {"identity": lambda payload: payload}

    @classmethod
    def register_tool(cls, name: str, func: Callable[[Any], Any]) -> None:
        cls._tools[name] = func

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        tool_name = str(self.parameter_values["tool"])
        try:
            tool = self._tools[tool_name]
        except KeyError:
            raise WorkflowError(f"no external tool {tool_name!r} registered") from None
        # the loose-coupling boundary: everything crosses as JSON text
        wire_in = json.dumps(inputs["payload"], default=_jsonify)
        result = tool(json.loads(wire_in))
        wire_out = json.dumps(result, default=_jsonify)
        return {"payload": json.loads(wire_out)}


def _jsonify(obj: Any) -> Any:
    """Best-effort JSON coercion for the loose-coupling wire format."""
    import numpy as np

    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    raise TypeError(f"not JSON-serializable: {type(obj)!r}")


def basic_package() -> Package:
    pkg = Package("basic", description="constants, scripting, loose coupling")
    pkg.add(Constant)
    pkg.add(PythonSource)
    pkg.add(Tee)
    pkg.add(ExternalToolAdapter)
    return pkg


def load_builtin_packages(registry: ModuleRegistry) -> None:
    """Register the basic, cdms, cdat and dv3d packages (Fig. 1 stack)."""
    basic_package().register_all(registry)
    from repro.dv3d.package import cdms_package, cdat_package, dv3d_package

    cdms_package().register_all(registry)
    cdat_package().register_all(registry)
    dv3d_package().register_all(registry)
