"""The workflow module base class.

A module declares input ports, output ports and configuration
parameters as class attributes, and implements :meth:`Module.compute`,
a pure mapping from an input dictionary to an output dictionary.  The
executor owns instantiation and data routing; modules never see the
pipeline graph.  (This mirrors the VisTrails module contract that lets
"each module wrap a distinct tool, script, or library".)
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Tuple

from repro.workflow.ports import PortSpec
from repro.util.errors import WorkflowError


@dataclass(frozen=True)
class ParameterSpec:
    """A named configuration parameter with a default value.

    Parameters are the knobs each module's per-module GUI exposes
    ("Each DV3D module offers a distinctive GUI interface ... enabling
    the configuration of workflow parameters").  Values must be
    JSON-serializable so provenance can persist every configuration.
    """

    name: str
    default: Any = None
    doc: str = ""


class Module:
    """Base class for all workflow modules.

    Subclasses set the class attributes and implement :meth:`compute`:

    >>> class Doubler(Module):
    ...     name = "Doubler"
    ...     input_ports = (PortSpec("value"),)
    ...     output_ports = (PortSpec("value"),)
    ...     def compute(self, inputs):
    ...         return {"value": inputs["value"] * 2}
    """

    #: registry name of the module (defaults to the class name)
    name: ClassVar[str] = ""
    input_ports: ClassVar[Tuple[PortSpec, ...]] = ()
    output_ports: ClassVar[Tuple[PortSpec, ...]] = ()
    parameters: ClassVar[Tuple[ParameterSpec, ...]] = ()
    #: stateful modules (interactive plots/cells) must opt out of result
    #: caching: a cached result would be *shared* between pipeline
    #: branches, so interacting with one branch would mutate the other
    cacheable: ClassVar[bool] = True

    def __init__(self, parameter_values: Dict[str, Any] | None = None) -> None:
        values = dict(parameter_values or {})
        known = {p.name for p in self.parameters}
        unknown = set(values) - known
        if unknown:
            raise WorkflowError(
                f"module {self.module_name()!r}: unknown parameters {sorted(unknown)}"
            )
        self.parameter_values: Dict[str, Any] = {
            p.name: values.get(p.name, p.default) for p in self.parameters
        }

    # -- introspection -----------------------------------------------------

    @classmethod
    def module_name(cls) -> str:
        return cls.name or cls.__name__

    @classmethod
    def input_port(cls, name: str) -> PortSpec:
        for port in cls.input_ports:
            if port.name == name:
                return port
        raise WorkflowError(f"module {cls.module_name()!r}: no input port {name!r}")

    @classmethod
    def output_port(cls, name: str) -> PortSpec:
        for port in cls.output_ports:
            if port.name == name:
                return port
        raise WorkflowError(f"module {cls.module_name()!r}: no output port {name!r}")

    @classmethod
    def describe(cls) -> Dict[str, Any]:
        """Structural description (used by the plot palette / builder GUI)."""
        return {
            "name": cls.module_name(),
            "doc": (cls.__doc__ or "").strip().splitlines()[0] if cls.__doc__ else "",
            "inputs": [(p.name, p.type_tag, p.optional) for p in cls.input_ports],
            "outputs": [(p.name, p.type_tag) for p in cls.output_ports],
            "parameters": [(p.name, p.default) for p in cls.parameters],
        }

    def parameter_signature(self) -> str:
        """Deterministic string of parameter values (cache keying)."""
        try:
            return json.dumps(self.parameter_values, sort_keys=True, default=repr)
        except (TypeError, ValueError):
            return repr(sorted(self.parameter_values.items()))

    # -- execution contract -------------------------------------------------

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Transform *inputs* (by port name) into outputs (by port name).

        Implementations must return a dict covering every declared
        output port.  They must not mutate their inputs: upstream
        results are shared across downstream modules and cached.
        """
        raise NotImplementedError

    def check_outputs(self, outputs: Dict[str, Any]) -> Dict[str, Any]:
        """Validate that compute() covered all declared output ports."""
        missing = {p.name for p in self.output_ports} - set(outputs)
        if missing:
            raise WorkflowError(
                f"module {self.module_name()!r}: compute() omitted outputs {sorted(missing)}"
            )
        return outputs
