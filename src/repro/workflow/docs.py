"""Module reference generation.

The workflow builder GUI shows each module's ports and parameters; the
headless equivalent is a generated markdown reference.  Used by
``tools/generate_module_docs.py`` to produce ``docs/MODULES.md`` and by
tests to assert documentation coverage (every registered module must
carry a docstring).
"""

from __future__ import annotations

import importlib
import pkgutil
from typing import List, Tuple

from repro.workflow.registry import ModuleRegistry


def package_summaries() -> List[Tuple[str, str]]:
    """``(dotted name, first docstring line)`` for every ``repro`` subpackage."""
    import repro

    summaries = []
    for info in sorted(pkgutil.iter_modules(repro.__path__), key=lambda m: m.name):
        module = importlib.import_module(f"repro.{info.name}")
        doc = (module.__doc__ or "").strip()
        first_line = doc.splitlines()[0] if doc else ""
        summaries.append((f"repro.{info.name}", first_line))
    return summaries


def document_packages() -> str:
    """Markdown overview table of every ``repro`` subpackage."""
    lines: List[str] = [
        "## Package overview",
        "",
        "Every top-level `repro` subpackage, workflow-visible or not:",
        "",
        "| package | summary |",
        "|---|---|",
    ]
    for name, summary in package_summaries():
        lines.append(f"| `{name}` | {summary} |")
    lines.append("")
    return "\n".join(lines)


def document_module(cls) -> str:
    """Markdown section describing one module class."""
    description = cls.describe()
    lines: List[str] = [f"### `{description['name']}`", ""]
    if description["doc"]:
        lines += [description["doc"], ""]
    if description["inputs"]:
        lines.append("| input port | type | optional |")
        lines.append("|---|---|---|")
        for name, tag, optional in description["inputs"]:
            lines.append(f"| `{name}` | `{tag}` | {'yes' if optional else 'no'} |")
        lines.append("")
    if description["outputs"]:
        lines.append("| output port | type |")
        lines.append("|---|---|")
        for name, tag in description["outputs"]:
            lines.append(f"| `{name}` | `{tag}` |")
        lines.append("")
    if description["parameters"]:
        lines.append("| parameter | default |")
        lines.append("|---|---|")
        for name, default in description["parameters"]:
            lines.append(f"| `{name}` | `{default!r}` |")
        lines.append("")
    return "\n".join(lines)


def document_registry(registry: ModuleRegistry) -> str:
    """The full markdown module reference, grouped by package."""
    lines: List[str] = [
        "# Workflow module reference",
        "",
        "Generated from the live module registry "
        "(`python tools/generate_module_docs.py`).  Every module below can "
        "be placed in a pipeline by its bare name (when unambiguous) or its "
        "qualified `package:Name` form.",
        "",
        document_packages(),
    ]
    for package_id in registry.packages():
        lines += [f"## Package `{package_id}`", ""]
        for module_name in registry.modules_in(package_id):
            cls = registry.resolve(f"{package_id}:{module_name}")
            lines.append(document_module(cls))
    return "\n".join(lines)


def undocumented_modules(registry: ModuleRegistry) -> List[str]:
    """Qualified names of modules missing a docstring (should be empty)."""
    missing = []
    for qualified in registry.all_modules():
        cls = registry.resolve(qualified)
        if not (cls.__doc__ or "").strip():
            missing.append(qualified)
    return missing
