"""Typed port specifications.

Ports are the connection points of workflow modules.  Each has a name
and a *type tag* — a short string like ``"variable"``, ``"image_data"``
or ``"any"`` — used to validate connections when a pipeline is built,
long before execution (the workflow builder rejects mis-typed
connections at drag time, as the VisTrails GUI does).
"""

from __future__ import annotations

from dataclasses import dataclass

#: tags accepted anywhere (produced or consumed)
WILDCARD = "any"


@dataclass(frozen=True)
class PortSpec:
    """One input or output port of a module class.

    Attributes
    ----------
    name:
        Port name, unique among the module's ports of the same polarity.
    type_tag:
        Data-kind tag; connections require equal tags unless either
        side is ``"any"``.
    optional:
        Optional input ports may be left unconnected; required ports
        must be satisfied for a pipeline to validate.
    doc:
        One-line description shown by module introspection.
    """

    name: str
    type_tag: str = WILDCARD
    optional: bool = False
    doc: str = ""

    def compatible_with(self, other: "PortSpec") -> bool:
        """Whether data flowing from *self* (output) can feed *other* (input)."""
        return (
            self.type_tag == other.type_tag
            or self.type_tag == WILDCARD
            or other.type_tag == WILDCARD
        )
