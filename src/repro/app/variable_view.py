"""The variable view: selecting and editing variables.

"The variable view (top right) provides an interface for selecting and
editing variables."  This is its object model: a named workspace of
:class:`~repro.cdms.variable.Variable` objects loaded from datasets
(local or ESG), subset with selectors, renamed, and handed to the
calculator or plot palette.  Every edit appends to an operation history
list that the application can surface as provenance annotations.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.cdms.dataset import Dataset
from repro.cdms.selectors import Selector
from repro.cdms.variable import Variable
from repro.util.errors import CDMSError


class VariableView:
    """The workspace of defined variables."""

    def __init__(self) -> None:
        self._variables: Dict[str, Variable] = {}
        self.history: List[str] = []

    def __contains__(self, name: str) -> bool:
        return name in self._variables

    def __len__(self) -> int:
        return len(self._variables)

    def names(self) -> List[str]:
        return sorted(self._variables)

    def get(self, name: str) -> Variable:
        try:
            return self._variables[name]
        except KeyError:
            raise CDMSError(
                f"no variable {name!r} defined; have {self.names()}"
            ) from None

    # -- loading / editing -------------------------------------------------

    def define(self, name: str, variable: Variable, note: str = "") -> Variable:
        """Add (or replace) a workspace variable under *name*."""
        renamed = variable.clone(deep=False)
        renamed.id = name
        self._variables[name] = renamed
        self.history.append(note or f"define {name}")
        return renamed

    def load(
        self,
        dataset: Dataset,
        variable_id: str,
        name: Optional[str] = None,
        **criteria: Any,
    ) -> Variable:
        """Load a dataset variable (optionally subsetting) into the workspace."""
        variable = dataset(variable_id)
        if criteria:
            variable = variable(Selector(**criteria))
        return self.define(
            name or variable_id,
            variable,
            note=f"load {variable_id} from {dataset.id}"
            + (f" with {criteria}" if criteria else ""),
        )

    def subset(self, name: str, new_name: Optional[str] = None, **criteria: Any) -> Variable:
        """Subset an existing workspace variable into a new one."""
        variable = self.get(name)(Selector(**criteria))
        return self.define(
            new_name or name, variable, note=f"subset {name} with {criteria}"
        )

    def rename(self, old: str, new: str) -> Variable:
        variable = self.get(old)
        if new in self._variables:
            raise CDMSError(f"variable {new!r} already exists")
        del self._variables[old]
        variable.id = new
        self._variables[new] = variable
        self.history.append(f"rename {old} -> {new}")
        return variable

    def delete(self, name: str) -> None:
        self.get(name)
        del self._variables[name]
        self.history.append(f"delete {name}")

    # -- display ------------------------------------------------------------------

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """The table the GUI panel would show."""
        return {
            name: {
                "shape": var.shape,
                "dimensions": [a.id for a in var.axes],
                "units": var.units,
                "order": var.order(),
                "valid_fraction": round(var.valid_fraction(), 4),
            }
            for name, var in sorted(self._variables.items())
        }
