"""The calculator / command-line interface for variable operations.

"The bottom right contains tools for executing data processing and
analysis operations on variables using either a command-line or
calculator interface."  The :class:`Calculator` evaluates expressions
like::

    tanom = anomalies(ta)
    diff = ta - 273.15
    corr = correlation(ta, zg)
    warm = keep(ta, ta > 280)

over the :class:`~repro.app.variable_view.VariableView` workspace,
resolving function names from the CDAT operation registry.  Expressions
are parsed with :mod:`ast` against a strict whitelist — no attribute
access, no subscripts, no arbitrary calls — so the command line stays a
calculator, not an exec().
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Tuple

from repro.app.variable_view import VariableView
from repro.cdat.registry import OperationRegistry, default_registry
from repro.cdms.variable import Variable
from repro.util.errors import CDATError

_ALLOWED_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.Pow: lambda a, b: a ** b,
}

_ALLOWED_COMPARE = {
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
}


class Calculator:
    """Expression evaluation over the variable workspace."""

    def __init__(
        self,
        view: VariableView,
        registry: Optional[OperationRegistry] = None,
    ) -> None:
        self.view = view
        self.registry = registry or default_registry()
        #: extra callables beyond the registry (conditioned helpers)
        from repro.cdat.conditioned import keep_where, mask_where

        self._builtins = {"keep": keep_where, "mask": mask_where, "abs": abs}
        self.transcript: List[Tuple[str, str]] = []

    # -- public API -----------------------------------------------------------

    def evaluate(self, expression: str) -> Any:
        """Evaluate one expression; returns a Variable, number or dict."""
        try:
            tree = ast.parse(expression.strip(), mode="eval")
        except SyntaxError as exc:
            raise CDATError(f"syntax error in {expression!r}: {exc.msg}") from exc
        result = self._eval(tree.body)
        self.transcript.append((expression, type(result).__name__))
        return result

    def assign(self, statement: str) -> Any:
        """Evaluate ``name = expression``; Variables enter the workspace."""
        if "=" not in statement:
            return self.evaluate(statement)
        name, _, expression = statement.partition("=")
        name = name.strip()
        if not name.isidentifier():
            raise CDATError(f"bad assignment target {name!r}")
        result = self.evaluate(expression)
        if isinstance(result, Variable):
            self.view.define(name, result, note=f"calculator: {statement.strip()}")
        return result

    def run_script(self, lines: List[str]) -> List[Any]:
        """The command-line interface: a sequence of assignments."""
        return [self.assign(line) for line in lines if line.strip() and not line.strip().startswith("#")]

    # -- evaluation core ------------------------------------------------------------

    def _eval(self, node: ast.AST) -> Any:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)):
                return node.value
            raise CDATError(f"unsupported constant {node.value!r}")
        if isinstance(node, ast.Name):
            return self.view.get(node.id)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -self._eval(node.operand)
        if isinstance(node, ast.BinOp):
            op = _ALLOWED_BINOPS.get(type(node.op))
            if op is None:
                raise CDATError(f"operator {type(node.op).__name__} not allowed")
            return op(self._eval(node.left), self._eval(node.right))
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1 or len(node.comparators) != 1:
                raise CDATError("chained comparisons not supported")
            op = _ALLOWED_COMPARE.get(type(node.ops[0]))
            if op is None:
                raise CDATError(f"comparison {type(node.ops[0]).__name__} not allowed")
            return op(self._eval(node.left), self._eval(node.comparators[0]))
        if isinstance(node, ast.Call):
            return self._call(node)
        raise CDATError(f"expression element {type(node).__name__} not allowed")

    def _call(self, node: ast.Call) -> Any:
        if not isinstance(node.func, ast.Name):
            raise CDATError("only plain function names may be called")
        name = node.func.id
        args = [self._eval(arg) for arg in node.args]
        kwargs: Dict[str, Any] = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                raise CDATError("**kwargs not allowed")
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(value.value, (int, float, str)):
                kwargs[keyword.arg] = value.value
            else:
                kwargs[keyword.arg] = self._eval(value)
        if name in self._builtins:
            return self._builtins[name](*args, **kwargs)
        if name in self.registry:
            # passthrough to apply() unless the ambient result cache is
            # enabled; then repeated (and cross-plane) runs share entries
            return self.registry.apply_cached(name, *args, **kwargs)
        raise CDATError(
            f"unknown function {name!r}; registry has {self.registry.names()[:8]}..."
        )

    def help(self) -> Dict[str, str]:
        """Names and one-liners for everything callable."""
        listing = dict(self.registry.describe())
        listing.update({name: "conditioned helper" for name in self._builtins})
        return listing
