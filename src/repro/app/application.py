"""The application: the object behind the UV-CDAT main window.

One :class:`Application` instance corresponds to one running UV-CDAT:
it owns projects (project view), the plot palette (plot view), the
variable workspace + calculator (right-hand panels), the ESG federation
handle, and the module registry.  Its convenience methods script the
common GUI gesture end-to-end: pick a plot from the palette, drop it on
a spreadsheet slot, execute it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.app.calculator import Calculator
from repro.app.plot_palette import PlotPalette
from repro.app.variable_view import VariableView
from repro.cdms.dataset import Dataset
from repro.dv3d.cell import DV3DCell
from repro.esg.federation import ESGFederation, default_federation
from repro.spreadsheet.project import Project
from repro.spreadsheet.sheet import CellBinding
from repro.spreadsheet.sync import SyncGroup
from repro.util.errors import SpreadsheetError
from repro.workflow.registry import ModuleRegistry


class Application:
    """A headless UV-CDAT session."""

    def __init__(self, registry: Optional[ModuleRegistry] = None) -> None:
        from repro.workflow.registry import global_registry

        self.registry = registry or global_registry()
        self.projects: Dict[str, Project] = {}
        self.current_project: Optional[str] = None
        self.palette = PlotPalette()
        self.variables = VariableView()
        self.calculator = Calculator(self.variables)
        self.esg: ESGFederation = default_federation()
        self._sync_groups: Dict[Tuple[str, str], SyncGroup] = {}

    # -- project view ------------------------------------------------------

    def new_project(self, name: str) -> Project:
        if name in self.projects:
            raise SpreadsheetError(f"project {name!r} already exists")
        project = Project(name, self.registry)
        self.projects[name] = project
        self.current_project = name
        return project

    @property
    def project(self) -> Project:
        if self.current_project is None:
            raise SpreadsheetError("no current project; call new_project() first")
        return self.projects[self.current_project]

    # -- data access -------------------------------------------------------------

    def open_esg_dataset(self, dataset_id: str) -> Dataset:
        """Discover and fetch a dataset from the (simulated) ESG."""
        return self.esg.fetch(dataset_id)

    # -- the headline gesture: palette → spreadsheet slot -----------------------------

    def create_plot(
        self,
        template_name: str,
        sheet_name: str,
        slot: Tuple[int, int],
        dataset_source: str,
        variables: Dict[str, str],
        size: Optional[Dict[str, int]] = None,
        selector: Optional[Dict[str, Any]] = None,
        cell_params: Optional[Dict[str, Any]] = None,
        execute: bool = True,
    ) -> Optional[DV3DCell]:
        """Drop a palette plot onto a spreadsheet slot.

        Builds the workflow in a fresh vistrail (all steps recorded as
        provenance), tags the version, binds the slot, and (by default)
        executes it.  Returns the live cell when executed.
        """
        project = self.project
        if sheet_name not in project.sheets:
            project.new_sheet(sheet_name)
        sheet = project.sheets[sheet_name]
        template = self.palette.get(template_name)
        vt_name = f"{sheet_name}_{slot[0]}_{slot[1]}_{template_name}".lower()
        vistrail = project.new_vistrail(vt_name)
        ids = template.instantiate(
            vistrail, dataset_source, variables,
            size=size, selector=selector, cell_params=cell_params,
        )
        vistrail.tag(f"{template_name} of {'/'.join(sorted(variables.values()))}")
        binding = CellBinding(vt_name, vistrail.current_version, ids["cell"])
        sheet.place(slot[0], slot[1], binding)
        if execute:
            return project.execute_cell(sheet_name, slot[0], slot[1])
        return None

    def render_slot(
        self,
        sheet_name: str,
        slot: Tuple[int, int],
        width: int = 400,
        height: int = 300,
    ):
        """Render the live cell bound to *slot*, executing it first if needed.

        This is the serving layer's front door into a session: repeat
        renders of an already-executed slot skip workflow execution
        entirely and go straight to the (cache-aware) renderer.
        Returns the :class:`~repro.rendering.framebuffer.Framebuffer`.
        """
        sheet = self.project.sheets[sheet_name]
        cell_slot = sheet.get(slot[0], slot[1])
        if cell_slot is None:
            raise SpreadsheetError(
                f"slot {slot!r} of {sheet_name!r} is empty; create_plot() first"
            )
        if cell_slot.cell is None:
            self.project.execute_cell(sheet_name, slot[0], slot[1])
        return cell_slot.cell.render(width, height)

    # -- synchronized interaction ---------------------------------------------------

    def sync_group(self, sheet_name: str) -> SyncGroup:
        """The propagation group for one sheet of the current project."""
        key = (self.current_project or "", sheet_name)
        if key not in self._sync_groups:
            self._sync_groups[key] = SyncGroup(self.project.sheets[sheet_name])
        return self._sync_groups[key]

    # -- introspection for the panels --------------------------------------------------

    def plot_view(self) -> Dict[str, str]:
        """Contents of the plot palette panel."""
        return self.palette.describe()

    def variable_view(self) -> Dict[str, Dict[str, Any]]:
        """Contents of the variable panel."""
        return self.variables.summary()

    def project_view(self) -> Dict[str, List[str]]:
        """Contents of the project panel: sheets and vistrails per project."""
        return {
            name: sorted(project.sheets) + [f"vistrail:{v}" for v in sorted(project.vistrails)]
            for name, project in sorted(self.projects.items())
        }
