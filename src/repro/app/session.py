"""Session macros: record interaction streams, replay them anywhere.

The paper's provenance story covers workflow *construction*; this layer
covers interactive *exploration*: every propagated spreadsheet event
(key command, drag, configure) can be recorded as a macro and replayed
— on the same sheet, on a different sheet, or shipped to a hyperwall
session — turning an exploration into a reusable, scriptable artifact.
Macros serialize to JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.spreadsheet.sync import SyncGroup
from repro.util.errors import SpreadsheetError

PathLike = Union[str, Path]


@dataclass(frozen=True)
class MacroStep:
    """One recorded interaction."""

    kind: str  # "key" | "drag" | "configure"
    payload: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "payload": self.payload}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "MacroStep":
        try:
            return MacroStep(str(data["kind"]), dict(data["payload"]))
        except (KeyError, TypeError) as exc:
            raise SpreadsheetError(f"malformed macro step: {data!r}") from exc


@dataclass
class Macro:
    """A named, replayable sequence of interactions."""

    name: str
    steps: List[MacroStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def replay(self, group: SyncGroup) -> int:
        """Apply every step through *group*; returns steps applied."""
        for step in self.steps:
            if step.kind == "key":
                group.key(str(step.payload["key"]))
            elif step.kind == "drag":
                group.drag(
                    float(step.payload.get("dx", 0.0)),
                    float(step.payload.get("dy", 0.0)),
                    str(step.payload.get("mode", "camera")),
                )
            elif step.kind == "configure":
                group.configure(dict(step.payload.get("state", {})))
            else:
                raise SpreadsheetError(f"unknown macro step kind {step.kind!r}")
        return len(self.steps)

    def replay_events(self, handler) -> int:
        """Replay through a generic ``handler(kind, **payload)``.

        This is how a recorded desktop exploration is shipped to a
        hyperwall: ``macro.replay_events(hw.propagate_event)`` applies
        every recorded gesture to the server mirror and all displays.
        """
        for step in self.steps:
            if step.kind not in ("key", "drag", "configure"):
                raise SpreadsheetError(f"unknown macro step kind {step.kind!r}")
            handler(step.kind, **step.payload)
        return len(self.steps)

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "steps": [s.to_dict() for s in self.steps]}

    def save(self, path: PathLike) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Macro":
        return Macro(
            str(data.get("name", "macro")),
            [MacroStep.from_dict(raw) for raw in data.get("steps", [])],
        )

    @staticmethod
    def load(path: PathLike) -> "Macro":
        return Macro.from_dict(json.loads(Path(path).read_text()))


class MacroRecorder:
    """Records a sync group's event stream into a :class:`Macro`.

    Usage::

        recorder = MacroRecorder("tour", group)
        recorder.start()
        group.key("c"); group.drag(0.1, 0, "camera")
        macro = recorder.stop()
        macro.replay(other_group)
    """

    def __init__(self, name: str, group: SyncGroup) -> None:
        self.macro = Macro(name)
        self.group = group
        self._mark: int | None = None

    def start(self) -> None:
        if self._mark is not None:
            raise SpreadsheetError("recorder already running")
        self._mark = len(self.group.history)

    def stop(self) -> Macro:
        if self._mark is None:
            raise SpreadsheetError("recorder was not started")
        for kind, payload in self.group.history[self._mark:]:
            if kind in ("key", "drag", "configure"):
                self.macro.steps.append(MacroStep(kind, dict(payload)))
        self._mark = None
        return self.macro
