"""The plot palette: prebuilt DV3D workflows.

"The plot view (bottom left) provides a palette of available plots,
exposing a list of prebuilt workflows from DV3D and other Vistrails
packages."  Each :class:`PlotTemplate` knows how to instantiate its
workflow into a vistrail: the standard §III.G chain of
dataset-reader → variable-reader(s) → plot module → cell module, with
every construction step recorded as provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.provenance.vistrail import Vistrail
from repro.util.errors import DV3DError


@dataclass(frozen=True)
class PlotTemplate:
    """One palette entry."""

    name: str
    plot_module: str  # qualified workflow module, e.g. "dv3d:Slicer"
    description: str
    variable_ports: Tuple[str, ...]  # plot-module ports fed by variables

    def instantiate(
        self,
        vistrail: Vistrail,
        dataset_source: str,
        variables: Dict[str, str],
        size: Optional[Dict[str, int]] = None,
        selector: Optional[Dict[str, Any]] = None,
        cell_params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, int]:
        """Build this plot's workflow inside *vistrail*.

        ``variables`` maps each of :attr:`variable_ports` (required
        first port at minimum) to a dataset variable id.  Returns the
        module ids: ``{"reader": ..., "plot": ..., "cell": ...,
        "<port>_variable": ...}``.
        """
        missing = [p for p in self.variable_ports[:1] if p not in variables]
        if missing:
            raise DV3DError(f"template {self.name!r}: missing variables for ports {missing}")
        ids: Dict[str, int] = {}
        reader = vistrail.add_module(
            "cdms:CDMSDatasetReader", {"source": dataset_source, "size": dict(size or {})}
        )
        ids["reader"] = reader
        plot = vistrail.add_module(self.plot_module)
        ids["plot"] = plot
        for port in self.variable_ports:
            if port not in variables:
                continue
            var_mod = vistrail.add_module(
                "cdms:CDMSVariableReader",
                {"variable": variables[port], "selector": dict(selector or {})},
            )
            ids[f"{port}_variable"] = var_mod
            vistrail.add_connection(reader, "dataset", var_mod, "dataset")
            vistrail.add_connection(var_mod, "variable", plot, port)
        cell = vistrail.add_module("dv3d:DV3DCell", dict(cell_params or {}))
        ids["cell"] = cell
        vistrail.add_connection(plot, "plot", cell, "plot")
        return ids


_TEMPLATES: List[PlotTemplate] = [
    PlotTemplate(
        "Slicer", "dv3d:Slicer",
        "draggable slice planes, pseudocolor + contour overlay",
        ("variable", "overlay"),
    ),
    PlotTemplate(
        "Volume", "dv3d:VolumeRender",
        "volume rendering with interactive leveling",
        ("variable",),
    ),
    PlotTemplate(
        "Isosurface", "dv3d:Isosurface",
        "isosurface of one variable colored by a second",
        ("variable", "color_variable"),
    ),
    PlotTemplate(
        "HovmollerSlicer", "dv3d:HovmollerSlicer",
        "slice planes with time as the vertical dimension",
        ("variable",),
    ),
    PlotTemplate(
        "HovmollerVolume", "dv3d:HovmollerVolume",
        "volume rendering with time as the vertical dimension",
        ("variable",),
    ),
    PlotTemplate(
        "VectorSlicer", "dv3d:VectorSlicer",
        "vector glyphs / streamlines on slice planes",
        ("u", "v", "w"),
    ),
    PlotTemplate(
        "VolumeSlicer", "dv3d:VolumeSlicer",
        "combined volume render + slicer in one cell (Fig. 3 top)",
        ("variable",),
    ),
]


class PlotPalette:
    """The palette of available plot templates."""

    def __init__(self) -> None:
        self._templates = {t.name: t for t in _TEMPLATES}

    def names(self) -> List[str]:
        return sorted(self._templates)

    def get(self, name: str) -> PlotTemplate:
        try:
            return self._templates[name]
        except KeyError:
            raise DV3DError(
                f"no plot template {name!r}; available: {self.names()}"
            ) from None

    def describe(self) -> Dict[str, str]:
        return {name: t.description for name, t in sorted(self._templates.items())}
