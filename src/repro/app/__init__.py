"""The UV-CDAT application facade (the headless GUI model, Fig. 2).

Everything the four panels of the UV-CDAT GUI manipulate, as a
scriptable object model ("Users can interact with either module using
the UV-CDAT GUI, the VisTrails workflow builder, or Python scripts" —
this is the scripting surface):

* project view (top left) → :class:`~repro.spreadsheet.project.Project`
  management on :class:`~repro.app.application.Application`;
* plot view (bottom left) → :mod:`repro.app.plot_palette`, "a palette
  of available plots, exposing a list of prebuilt workflows from DV3D";
* variable view (top right) → :mod:`repro.app.variable_view`, "an
  interface for selecting and editing variables";
* calculator (bottom right) → :mod:`repro.app.calculator`, "tools for
  executing data processing and analysis operations on variables using
  either a command-line or calculator interface".
"""

from repro.app.application import Application
from repro.app.plot_palette import PlotPalette, PlotTemplate
from repro.app.variable_view import VariableView
from repro.app.calculator import Calculator

__all__ = ["Application", "PlotPalette", "PlotTemplate", "VariableView", "Calculator"]
