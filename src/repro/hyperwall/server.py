"""The hyperwall server (control) node.

"In a typical scenario the user would open (or construct) a workflow
with 15 cell modules on the server node.  At execution time the server
instance sends edited versions of the workflow to each client node for
local execution."  The server here:

1. accepts client connections (one per wall tile),
2. partitions the multi-cell workflow and ships each client its
   1-cell sub-workflow (full tile resolution),
3. executes the reduced-resolution full workflow locally (the GUI
   mirror spreadsheet),
4. broadcasts interaction events to all clients and collects replies.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro import obs
from repro.dv3d.cell import DV3DCell
from repro.hyperwall import protocol
from repro.hyperwall.display import WallGeometry
from repro.hyperwall.partition import (
    find_cell_modules,
    make_reduced_pipeline,
    partition_by_cell,
    set_cell_resolution,
)
from repro.hyperwall.protocol import Message
from repro.util.errors import HyperwallError
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline


class HyperwallServer:
    """The control node: owns the listening socket and the mirror cells."""

    def __init__(
        self,
        workflow: Pipeline,
        wall: Optional[WallGeometry] = None,
        reduction: int = 4,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.workflow = workflow
        cells = find_cell_modules(workflow)
        if not cells:
            raise HyperwallError("workflow has no DV3DCell modules")
        self.wall = wall or WallGeometry(columns=max(len(cells), 1), rows=1)
        if len(cells) > self.wall.n_tiles:
            raise HyperwallError(
                f"{len(cells)} cells exceed the wall's {self.wall.n_tiles} tiles"
            )
        self.cell_ids = cells
        self.reduction = int(reduction)
        self.server_pipeline = make_reduced_pipeline(workflow, self.reduction)
        self.server_executor = Executor(caching=True)
        self.server_cells: Dict[int, DV3DCell] = {}
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(self.wall.n_tiles)
        self.host, self.port = self._listener.getsockname()
        self._connections: Dict[int, socket.socket] = {}
        self._lock = threading.Lock()

    # -- connection management ------------------------------------------------

    def accept_clients(self, count: int, timeout: float = 30.0) -> List[int]:
        """Accept *count* client connections; returns their ids in order."""
        self._listener.settimeout(timeout)
        accepted = []
        while len(accepted) < count:
            conn, _addr = self._listener.accept()
            conn.settimeout(120.0)
            hello = protocol.recv_message(conn)
            if hello is None or hello.kind != protocol.KIND_HELLO:
                conn.close()
                raise HyperwallError("client failed to introduce itself")
            client_id = int(hello.payload["client_id"])
            with self._lock:
                self._connections[client_id] = conn
            accepted.append(client_id)
        return accepted

    def _conn(self, client_id: int) -> socket.socket:
        try:
            return self._connections[client_id]
        except KeyError:
            raise HyperwallError(f"no connected client {client_id}") from None

    # -- workflow distribution --------------------------------------------------

    def distribute_workflows(self) -> Dict[int, int]:
        """Ship each connected client its 1-cell sub-workflow.

        Clients are assigned cells in (client_id-sorted, cell_id-sorted)
        order.  Returns ``{client_id: cell_id}``.
        """
        partitions = partition_by_cell(self.workflow)
        assignment: Dict[int, int] = {}
        client_ids = sorted(self._connections)
        if len(client_ids) < len(partitions):
            raise HyperwallError(
                f"{len(partitions)} cells need {len(partitions)} clients; "
                f"only {len(client_ids)} connected"
            )
        for client_id, cell_id in zip(client_ids, sorted(partitions)):
            sub = partitions[cell_id]
            set_cell_resolution(sub, cell_id, self.wall.tile_width, self.wall.tile_height)
            message = Message(
                protocol.KIND_WORKFLOW,
                {"pipeline": sub.to_dict(), "cell_id": cell_id},
            )
            conn = self._conn(client_id)
            protocol.send_message(conn, message)
            ack = protocol.recv_message(conn)
            if ack is None or ack.kind != protocol.KIND_ACK:
                raise HyperwallError(f"client {client_id} failed to ack its workflow")
            assignment[client_id] = cell_id
        return assignment

    # -- execution ------------------------------------------------------------------

    def execute_server(self) -> Dict[str, Any]:
        """Run the reduced-resolution mirror workflow on this node."""
        start = time.perf_counter()
        with obs.span("hyperwall.server.execute", node="server"):
            result = self.server_executor.execute(self.server_pipeline)
        self.server_cells = {
            cid: result.output(cid, "cell")
            for cid in find_cell_modules(self.server_pipeline)
        }
        return {"duration": time.perf_counter() - start, "n_cells": len(self.server_cells)}

    def execute_clients(self) -> List[Dict[str, Any]]:
        """Trigger all clients and gather their reports (in parallel —
        each client is its own process/machine)."""
        client_ids = sorted(self._connections)
        with obs.span("hyperwall.server.execute_clients", clients=len(client_ids)):
            for client_id in client_ids:
                protocol.send_message(self._conn(client_id), Message(protocol.KIND_EXECUTE))
            reports = []
            for client_id in client_ids:
                reply = protocol.recv_message(self._conn(client_id))
                if reply is None:
                    raise HyperwallError(f"client {client_id} disconnected during execution")
                if reply.kind == protocol.KIND_ERROR:
                    raise HyperwallError(
                        f"client {client_id} failed: {reply.payload.get('error')}"
                    )
                if obs.enabled():
                    obs.histogram(
                        "hyperwall.client.duration",
                        float(reply.payload.get("duration", 0.0)),
                        client=str(client_id),
                    )
                reports.append(reply.payload)
        return reports

    # -- interaction propagation -------------------------------------------------------

    def broadcast_event(self, event_kind: str, **event: Any) -> Dict[str, Any]:
        """Apply an interaction locally, then propagate to every client.

        Cells whose plot type has no binding for the gesture ignore it
        (heterogeneous-wall semantics, mirroring the spreadsheet).
        """
        from repro.util.errors import DV3DError

        obs.counter("hyperwall.events.broadcast", kind=event_kind)
        server_deltas: Dict[int, Any] = {}
        for cid, cell in self.server_cells.items():
            try:
                server_deltas[cid] = cell.handle_event(event_kind, **event)
            except DV3DError:
                server_deltas[cid] = {}
        message = Message(
            protocol.KIND_EVENT, {"event_kind": event_kind, "event": event}
        )
        client_ids = sorted(self._connections)
        for client_id in client_ids:
            protocol.send_message(self._conn(client_id), message)
        acks = {}
        for client_id in client_ids:
            reply = protocol.recv_message(self._conn(client_id))
            if reply is None or reply.kind == protocol.KIND_ERROR:
                raise HyperwallError(
                    f"client {client_id} failed to apply event: "
                    f"{None if reply is None else reply.payload}"
                )
            acks[client_id] = reply.payload
        return {"server": server_deltas, "clients": acks}

    def request_renders(self, width: int = 0, height: int = 0) -> List[Dict[str, Any]]:
        """Ask every client for a fresh frame of its (possibly event-
        mutated) cell — the display refresh after interaction."""
        client_ids = sorted(self._connections)
        message = Message(protocol.KIND_RENDER, {"width": width, "height": height})
        for client_id in client_ids:
            protocol.send_message(self._conn(client_id), message)
        reports = []
        for client_id in client_ids:
            reply = protocol.recv_message(self._conn(client_id))
            if reply is None:
                raise HyperwallError(f"client {client_id} disconnected during render")
            if reply.kind == protocol.KIND_ERROR:
                raise HyperwallError(
                    f"client {client_id} failed to render: {reply.payload.get('error')}"
                )
            reports.append(reply.payload)
        return reports

    # -- teardown -------------------------------------------------------------------------

    def shutdown(self) -> None:
        for client_id in sorted(self._connections):
            try:
                protocol.send_message(
                    self._connections[client_id], Message(protocol.KIND_SHUTDOWN)
                )
            except OSError:
                pass
        for conn in self._connections.values():
            try:
                conn.close()
            except OSError:
                pass
        self._connections.clear()
        self._listener.close()
