"""The hyperwall server (control) node.

"In a typical scenario the user would open (or construct) a workflow
with 15 cell modules on the server node.  At execution time the server
instance sends edited versions of the workflow to each client node for
local execution."  The server here:

1. accepts client connections (one per wall tile),
2. partitions the multi-cell workflow and ships each client its
   1-cell sub-workflow (full tile resolution),
3. executes the reduced-resolution full workflow locally (the GUI
   mirror spreadsheet),
4. broadcasts interaction events to all clients and collects replies.

Fault tolerance (see README "Fault tolerance"): every per-client send
and receive is deadline-bounded (*io_timeout*) and failure-checked.  A
client whose connection dies mid-frame is marked dead and its cell is
recovered according to *failover*:

* ``"reassign"`` (default) — the dead client's full-resolution
  sub-workflow is re-shipped to a surviving client (survivors tried
  under the *retry* :class:`~repro.resilience.RetryPolicy`), falling
  back to the degraded mirror when no survivor can take it;
* ``"degrade"`` — the cell is served from the server's own
  reduced-resolution mirror cell;
* ``"fail_fast"`` — the pre-resilience behavior: raise
  :class:`~repro.util.errors.HyperwallError`.

Recovered frames are *partial, never silent*: each per-cell report
carries ``status`` (``live`` | ``reassigned`` | ``degraded``).
Application-level errors (a client replying ``KIND_ERROR``) still
raise — failover covers lost nodes, not broken workflows.  Tests drop
connections deterministically through the ``hyperwall.server.send`` /
``hyperwall.server.recv`` fault sites (``client`` label).
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro import obs
from repro.dv3d.cell import DV3DCell
from repro.hyperwall import protocol
from repro.hyperwall.display import WallGeometry
from repro.hyperwall.partition import (
    find_cell_modules,
    make_reduced_pipeline,
    partition_by_cell,
    set_cell_resolution,
)
from repro.hyperwall.protocol import Message
from repro.resilience import RetryPolicy, faults
from repro.util.errors import HyperwallError
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline

#: how the server recovers a cell whose client died mid-session
FAILOVER_POLICIES = ("reassign", "degrade", "fail_fast")


class HyperwallServer:
    """The control node: owns the listening socket and the mirror cells."""

    def __init__(
        self,
        workflow: Pipeline,
        wall: Optional[WallGeometry] = None,
        reduction: int = 4,
        host: str = "127.0.0.1",
        port: int = 0,
        io_timeout: float = 120.0,
        failover: str = "reassign",
        retry: Optional[RetryPolicy] = None,
        cache=None,
    ) -> None:
        if failover not in FAILOVER_POLICIES:
            raise HyperwallError(
                f"failover must be one of {FAILOVER_POLICIES}, got {failover!r}"
            )
        self.workflow = workflow
        cells = find_cell_modules(workflow)
        if not cells:
            raise HyperwallError("workflow has no DV3DCell modules")
        self.wall = wall or WallGeometry(columns=max(len(cells), 1), rows=1)
        if len(cells) > self.wall.n_tiles:
            raise HyperwallError(
                f"{len(cells)} cells exceed the wall's {self.wall.n_tiles} tiles"
            )
        self.cell_ids = cells
        self.reduction = int(reduction)
        self.io_timeout = float(io_timeout)
        self.failover = failover
        self.retry = retry or RetryPolicy(
            max_attempts=3, base_delay=0.05, max_delay=0.5, seed="hyperwall"
        )
        self.server_pipeline = make_reduced_pipeline(workflow, self.reduction)
        #: optional CacheConfig shared with degraded mirror renders
        self.cache = cache
        self.server_executor = Executor(caching=True, cache=cache)
        self.server_cells: Dict[int, DV3DCell] = {}
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(self.wall.n_tiles)
        self.host, self.port = self._listener.getsockname()
        self._connections: Dict[int, socket.socket] = {}
        self._lock = threading.Lock()
        #: primary cell ownership from :meth:`distribute_workflows`
        self.assignment: Dict[int, int] = {}
        self._partitions: Dict[int, Pipeline] = {}
        #: cells re-homed by failover: cell_id -> surviving client
        self._standby: Dict[int, int] = {}
        #: clients lost this session: client_id -> reason
        self._dead: Dict[int, str] = {}

    # -- connection management ------------------------------------------------

    def accept_clients(self, count: int, timeout: float = 30.0) -> List[int]:
        """Accept *count* client connections; returns their ids in order.

        On any error every socket accepted so far is closed — a failed
        accept round must not leak connections.
        """
        self._listener.settimeout(timeout)
        accepted: List[int] = []
        conn: Optional[socket.socket] = None
        try:
            while len(accepted) < count:
                conn, addr = self._listener.accept()
                conn.settimeout(self.io_timeout)
                try:
                    hello = protocol.recv_message(conn)
                except HyperwallError as exc:
                    raise HyperwallError(
                        f"client at {addr[0]}:{addr[1]} sent a bad hello: {exc}"
                    ) from exc
                if hello is None or hello.kind != protocol.KIND_HELLO:
                    raise HyperwallError(
                        f"client at {addr[0]}:{addr[1]} failed to introduce itself"
                    )
                client_id = int(hello.payload["client_id"])
                with self._lock:
                    self._connections[client_id] = conn
                conn = None
                accepted.append(client_id)
        except Exception:
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
            with self._lock:
                for client_id in accepted:
                    leaked = self._connections.pop(client_id, None)
                    if leaked is not None:
                        try:
                            leaked.close()
                        except OSError:
                            pass
            raise
        return accepted

    def _conn(self, client_id: int) -> socket.socket:
        try:
            return self._connections[client_id]
        except KeyError:
            raise HyperwallError(f"no connected client {client_id}") from None

    @property
    def dead_clients(self) -> Dict[int, str]:
        """Clients lost this session and why (empty when all healthy)."""
        return dict(self._dead)

    def _mark_dead(self, client_id: int, reason: str) -> None:
        with self._lock:
            conn = self._connections.pop(client_id, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        self._dead[client_id] = reason
        obs.counter("hyperwall.clients.lost", client=str(client_id))

    def _send(self, client_id: int, message: Message) -> bool:
        """Send to one client; False (and client marked dead) on failure."""
        conn = self._connections.get(client_id)
        if conn is None:
            return False
        fault = faults.check("hyperwall.server.send", client=client_id, kind=message.kind)
        if fault is not None and fault.action == "drop":
            self._mark_dead(client_id, "injected connection drop on send")
            return False
        try:
            protocol.send_message(conn, message)
            return True
        except (OSError, HyperwallError) as exc:
            self._mark_dead(client_id, f"send failed: {exc}")
            return False

    def _recv(self, client_id: int) -> Optional[Message]:
        """Receive one reply; None (and client marked dead) on EOF,
        timeout, connection error, or a corrupt frame."""
        conn = self._connections.get(client_id)
        if conn is None:
            return None
        fault = faults.check("hyperwall.server.recv", client=client_id)
        if fault is not None and fault.action == "drop":
            self._mark_dead(client_id, "injected connection drop on recv")
            return None
        try:
            reply = protocol.recv_message(conn)
        except (OSError, HyperwallError) as exc:
            self._mark_dead(client_id, f"recv failed: {exc}")
            return None
        if reply is None:
            self._mark_dead(client_id, "connection closed")
            return None
        return reply

    # -- workflow distribution --------------------------------------------------

    def distribute_workflows(self) -> Dict[int, int]:
        """Ship each connected client its 1-cell sub-workflow.

        Clients are assigned cells in (client_id-sorted, cell_id-sorted)
        order.  Returns ``{client_id: cell_id}``.
        """
        self._partitions = partition_by_cell(self.workflow)
        assignment: Dict[int, int] = {}
        client_ids = sorted(self._connections)
        if len(client_ids) < len(self._partitions):
            raise HyperwallError(
                f"{len(self._partitions)} cells need {len(self._partitions)} clients; "
                f"only {len(client_ids)} connected"
            )
        for client_id, cell_id in zip(client_ids, sorted(self._partitions)):
            sub = self._partitions[cell_id]
            set_cell_resolution(sub, cell_id, self.wall.tile_width, self.wall.tile_height)
            message = Message(
                protocol.KIND_WORKFLOW,
                {"pipeline": sub.to_dict(), "cell_id": cell_id},
            )
            conn = self._conn(client_id)
            protocol.send_message(conn, message)
            ack = protocol.recv_message(conn)
            if ack is None or ack.kind != protocol.KIND_ACK:
                raise HyperwallError(f"client {client_id} failed to ack its workflow")
            assignment[client_id] = cell_id
        self.assignment = dict(assignment)
        return assignment

    # -- execution ------------------------------------------------------------------

    def execute_server(self) -> Dict[str, Any]:
        """Run the reduced-resolution mirror workflow on this node."""
        start = time.perf_counter()
        with obs.span("hyperwall.server.execute", node="server"):
            result = self.server_executor.execute(self.server_pipeline)
        self.server_cells = {
            cid: result.output(cid, "cell")
            for cid in find_cell_modules(self.server_pipeline)
        }
        return {"duration": time.perf_counter() - start, "n_cells": len(self.server_cells)}

    def execute_clients(self) -> List[Dict[str, Any]]:
        """Trigger all clients and gather their per-cell reports.

        Every report carries ``status``: ``live`` for a healthy client,
        ``reassigned``/``degraded`` for cells recovered from a dead one
        (see the module docstring).  Under ``fail_fast`` a lost client
        raises instead; an application-level ``KIND_ERROR`` reply
        always raises.
        """
        client_ids = sorted(self._connections)
        with obs.span("hyperwall.server.execute_clients", clients=len(client_ids)):
            triggered = []
            for client_id in client_ids:
                if self._send(client_id, Message(protocol.KIND_EXECUTE)):
                    triggered.append(client_id)
                elif self.failover == "fail_fast":
                    raise HyperwallError(
                        f"client {client_id} disconnected during execution"
                    )
            reports = []
            lost: List[int] = []
            for client_id in client_ids:
                if client_id not in triggered:
                    lost.append(client_id)
                    continue
                reply = self._recv(client_id)
                if reply is None:
                    if self.failover == "fail_fast":
                        raise HyperwallError(
                            f"client {client_id} disconnected during execution"
                        )
                    lost.append(client_id)
                    continue
                if reply.kind == protocol.KIND_ERROR:
                    raise HyperwallError(
                        f"client {client_id} failed: {reply.payload.get('error')}"
                    )
                if obs.enabled():
                    obs.histogram(
                        "hyperwall.client.duration",
                        float(reply.payload.get("duration", 0.0)),
                        client=str(client_id),
                    )
                report = dict(reply.payload)
                report["status"] = "live"
                reports.append(report)
            for client_id in lost:
                cell_id = self.assignment.pop(client_id, None)
                if cell_id is not None:
                    reports.append(self._recover_cell(cell_id))
        return reports

    # -- failover -------------------------------------------------------------------

    def _recover_cell(self, cell_id: int) -> Dict[str, Any]:
        """Produce a report for a cell whose client died."""
        t0 = time.monotonic()
        report = None
        if self.failover == "reassign":
            report = self._reassign_cell(cell_id)
        if report is None:
            report = self._degraded_report(cell_id)
        if obs.enabled():
            obs.histogram(
                "resilience.recovery.seconds",
                time.monotonic() - t0,
                site="hyperwall",
                cell=str(cell_id),
            )
        return report

    def _reassign_cell(self, cell_id: int) -> Optional[Dict[str, Any]]:
        """Re-home *cell_id* on a survivor; None when none can take it."""
        sub = self._partitions.get(cell_id)
        if sub is None:
            return None
        candidates = iter(sorted(self._connections))

        def try_next_survivor() -> Dict[str, Any]:
            survivor = next(candidates, None)
            if survivor is None:
                raise HyperwallError(f"no surviving client can take cell {cell_id}")
            workflow = Message(
                protocol.KIND_WORKFLOW,
                {"pipeline": sub.to_dict(), "cell_id": cell_id},
            )
            if not self._send(survivor, workflow):
                raise HyperwallError(f"survivor {survivor} lost while re-homing")
            ack = self._recv(survivor)
            if ack is None or ack.kind != protocol.KIND_ACK:
                raise HyperwallError(f"survivor {survivor} failed to ack cell {cell_id}")
            if not self._send(
                survivor, Message(protocol.KIND_EXECUTE, {"cell_id": cell_id})
            ):
                raise HyperwallError(f"survivor {survivor} lost during re-execution")
            reply = self._recv(survivor)
            if reply is None or reply.kind != protocol.KIND_REPORT:
                raise HyperwallError(
                    f"survivor {survivor} failed to execute cell {cell_id}"
                )
            report = dict(reply.payload)
            report["status"] = "reassigned"
            report["reassigned_to"] = survivor
            self._standby[cell_id] = survivor
            return report

        try:
            return self.retry.run(
                try_next_survivor,
                retry_on=(HyperwallError,),
                label=f"hyperwall.reassign.cell-{cell_id}",
            )
        except HyperwallError:
            return None

    def _degraded_report(self, cell_id: int) -> Dict[str, Any]:
        """Serve a lost cell from the reduced-resolution mirror."""
        if cell_id not in self.server_cells:
            self.execute_server()  # mirror not built yet: build it lazily
        cell = self.server_cells.get(cell_id)
        if cell is None:
            raise HyperwallError(f"no mirror cell for lost cell {cell_id}")
        from repro.cache.config import use_config as use_cache_config
        from repro.hyperwall.client import image_digest

        width = max(self.wall.tile_width // self.reduction, 16)
        height = max(self.wall.tile_height // self.reduction, 16)
        start = time.perf_counter()
        with obs.span("hyperwall.server.degraded_render", cell=cell_id):
            with use_cache_config(self.cache):
                image = cell.render(width, height).to_uint8()
        obs.counter("resilience.degraded", site="hyperwall.mirror", cell=str(cell_id))
        return {
            "client_id": None,
            "cell_id": cell_id,
            "duration": time.perf_counter() - start,
            "image_shape": list(image.shape),
            "image_mean": float(image.mean()),
            "image_digest": image_digest(image),
            "status": "degraded",
        }

    # -- health ---------------------------------------------------------------------

    def check_health(self) -> Dict[int, bool]:
        """Heartbeat every client; marks unresponsive ones dead.

        Returns ``{client_id: alive}`` covering connected clients and
        any already known dead.
        """
        alive: Dict[int, bool] = {client_id: False for client_id in self._dead}
        for client_id in sorted(self._connections):
            ok = self._send(
                client_id, Message(protocol.KIND_HEARTBEAT, {"ping": True})
            )
            if ok:
                reply = self._recv(client_id)
                ok = reply is not None and reply.kind == protocol.KIND_HEARTBEAT
                if not ok and client_id in self._connections:
                    self._mark_dead(client_id, "bad heartbeat reply")
            alive[client_id] = ok
        if obs.enabled():
            obs.gauge(
                "hyperwall.clients.alive", float(sum(1 for v in alive.values() if v))
            )
        return alive

    # -- interaction propagation -------------------------------------------------------

    def broadcast_event(self, event_kind: str, **event: Any) -> Dict[str, Any]:
        """Apply an interaction locally, then propagate to every client.

        Cells whose plot type has no binding for the gesture ignore it
        (heterogeneous-wall semantics, mirroring the spreadsheet).
        Clients lost mid-broadcast are skipped (their acks simply do
        not appear) unless *failover* is ``fail_fast``.
        """
        from repro.util.errors import DV3DError

        obs.counter("hyperwall.events.broadcast", kind=event_kind)
        server_deltas: Dict[int, Any] = {}
        for cid, cell in self.server_cells.items():
            try:
                server_deltas[cid] = cell.handle_event(event_kind, **event)
            except DV3DError:
                server_deltas[cid] = {}
        message = Message(
            protocol.KIND_EVENT, {"event_kind": event_kind, "event": event}
        )
        sent = [cid for cid in sorted(self._connections) if self._send(cid, message)]
        acks = {}
        for client_id in sent:
            reply = self._recv(client_id)
            if reply is None:
                if self.failover == "fail_fast":
                    raise HyperwallError(
                        f"client {client_id} failed to apply event: disconnected"
                    )
                continue
            if reply.kind == protocol.KIND_ERROR:
                raise HyperwallError(
                    f"client {client_id} failed to apply event: {reply.payload}"
                )
            acks[client_id] = reply.payload
        return {"server": server_deltas, "clients": acks}

    def request_renders(self, width: int = 0, height: int = 0) -> List[Dict[str, Any]]:
        """Ask every client for a fresh frame of its (possibly event-
        mutated) cell — the display refresh after interaction.

        Cells re-homed by an earlier reassignment are rendered by their
        standby client; cells with no live owner come back degraded
        from the mirror (``fail_fast`` raises instead).
        """
        reports = []
        payload = {"width": width, "height": height}
        for client_id in sorted(self.assignment):
            ok = self._send(client_id, Message(protocol.KIND_RENDER, dict(payload)))
            reply = self._recv(client_id) if ok else None
            if reply is None:
                if self.failover == "fail_fast":
                    raise HyperwallError(
                        f"client {client_id} disconnected during render"
                    )
                cell_id = self.assignment[client_id]
                reports.append(self._recover_cell(cell_id))
                del self.assignment[client_id]
                continue
            if reply.kind == protocol.KIND_ERROR:
                raise HyperwallError(
                    f"client {client_id} failed to render: {reply.payload.get('error')}"
                )
            report = dict(reply.payload)
            report["status"] = "live"
            reports.append(report)
        for cell_id, survivor in sorted(self._standby.items()):
            target = dict(payload, cell_id=cell_id)
            ok = self._send(survivor, Message(protocol.KIND_RENDER, target))
            reply = self._recv(survivor) if ok else None
            if reply is None or reply.kind != protocol.KIND_REPORT:
                reports.append(self._degraded_report(cell_id))
                continue
            report = dict(reply.payload)
            report["status"] = "reassigned"
            report["reassigned_to"] = survivor
            reports.append(report)
        return reports

    # -- teardown -------------------------------------------------------------------------

    def shutdown(self) -> None:
        for client_id in sorted(self._connections):
            try:
                protocol.send_message(
                    self._connections[client_id], Message(protocol.KIND_SHUTDOWN)
                )
            except OSError:
                pass
        for conn in self._connections.values():
            try:
                conn.close()
            except OSError:
                pass
        self._connections.clear()
        self._listener.close()
