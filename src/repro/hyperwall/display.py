"""Wall tile geometry.

The NCCS hyperwall of Fig. 5: "a 5×3 array of 46-inch displays, each
with a dedicated compute (client) node, plus a single control (server)
node ... a 17 by 6-foot, 15.7 million pixel display".  The geometry
object maps cell indices to wall tiles and provides the resolution
bookkeeping the benchmarks report (server reduced-resolution pixels vs
wall full-resolution pixels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.util.errors import HyperwallError


@dataclass(frozen=True)
class WallGeometry:
    """A columns × rows tiled display wall."""

    columns: int = 5
    rows: int = 3
    tile_width: int = 1024
    tile_height: int = 1024

    def __post_init__(self) -> None:
        if self.columns < 1 or self.rows < 1:
            raise HyperwallError("wall must have at least one tile")
        if self.tile_width < 1 or self.tile_height < 1:
            raise HyperwallError("bad tile resolution")

    @property
    def n_tiles(self) -> int:
        return self.columns * self.rows

    @property
    def total_pixels(self) -> int:
        return self.n_tiles * self.tile_width * self.tile_height

    def tile_of(self, index: int) -> Tuple[int, int]:
        """Cell index (row-major) → (row, column) wall position."""
        if not 0 <= index < self.n_tiles:
            raise HyperwallError(f"tile index {index} outside wall of {self.n_tiles}")
        return divmod(index, self.columns)

    def index_of(self, row: int, column: int) -> int:
        if not (0 <= row < self.rows and 0 <= column < self.columns):
            raise HyperwallError(f"tile ({row}, {column}) outside {self.rows}x{self.columns}")
        return row * self.columns + column

    def tiles(self) -> List[Tuple[int, int]]:
        return [self.tile_of(i) for i in range(self.n_tiles)]

    def server_mirror_size(self, reduction: int) -> Tuple[int, int]:
        """Size of one reduced-resolution server mirror cell."""
        if reduction < 1:
            raise HyperwallError("reduction factor must be >= 1")
        return (max(self.tile_width // reduction, 1), max(self.tile_height // reduction, 1))


#: the Fig. 5 NCCS configuration: 5×3 wall, 15.7 Mpixel total
NCCS_WALL = WallGeometry(columns=5, rows=3, tile_width=1024, tile_height=1024)
